#![warn(missing_docs)]

//! `congress-cli`: a command-line front end over the congressional-samples
//! workspace. Point it at a CSV (or the built-in TPC-D-style generator),
//! declare the dimensional columns, and it will take the census, plan an
//! allocation, build a synopsis, and answer SQL approximately with error
//! bounds — the whole paper, one command at a time.
//!
//! ```text
//! congress-cli inspect --csv sales.csv --group-by region,product
//! congress-cli plan    --csv sales.csv --group-by region,product --space 5000
//! congress-cli query   --csv sales.csv --group-by region,product --space 5000 \
//!     "SELECT region, AVG(amount) AS a FROM sales GROUP BY region"
//! congress-cli sample  --csv sales.csv --group-by region,product --space 5000 \
//!     --out sales.sample
//! ```

pub mod args;
pub mod commands;
pub mod data;

/// CLI-level error: a message for the user plus a nonzero exit.
pub type CliError = String;

/// Convenience alias.
pub type Result<T> = std::result::Result<T, CliError>;

/// Map any displayable error into a CLI error.
pub fn err<E: std::fmt::Display>(e: E) -> CliError {
    e.to_string()
}

/// Top-level usage text.
pub const USAGE: &str = "\
congress-cli — approximate group-by answering via congressional samples

USAGE:
  congress-cli <COMMAND> [OPTIONS] [SQL]

COMMANDS:
  inspect    Take the census of the data: group counts and size skew
  plan       Show the §4 allocation table for a space budget
  query      Answer a SQL query approximately (with exact comparison)
  sample     Draw a sample and write it as a binary snapshot
  serve      HTTP/JSON front end: POST /query, GET /stats, /metrics,
             /healthz; backend is a fresh synopsis (--csv/--demo) or a
             recovered warehouse (--dir, queries must name `relation`)
  stats      Run a workload and print runtime metrics: query counts per
             rewrite/served path, latency p50/p95/p99, cache hit rates;
             with --dir, a saved warehouse's durability counters
  warehouse  Durable persistence: save | open | verify | repair --dir <DIR>
             (checksummed manifest; corrupt synopses are quarantined and
              rebuilt, or served degraded with --degrade)

DATA SOURCE (choose one):
  --csv <FILE>            load a CSV with a header row (types inferred)
  --demo                  generate the paper's TPC-D-style lineitem table
      --rows <N>            demo table size        (default 100000)
      --groups <N>          demo group count       (default 125)
      --skew <Z>            demo group-size skew   (default 0.86)

COMMON OPTIONS:
  --group-by <c1,c2,...>  dimensional columns G (demo default: the paper's 3)
  --space <N>             synopsis budget in tuples (plan/query/sample)
  --strategy <S>          house | senate | basic | congress   (default congress)
  --rewrite <R>           integrated | nested | normalized | keynorm
                          (default nested)
  --seed <N>              RNG seed (default 0)
  --parallelism <N>       construction threads: 0 = all cores (default),
                          1 = sequential; same output for any value
  --top <N>               rows to print in tables (default 20)
  --out <FILE>            output path (sample)
  --dir <DIR>             warehouse directory (warehouse, stats)
  --repeat <N>            times to replay the stats workload (default 2)
  --prometheus            stats: Prometheus exposition format
  --json                  stats: JSON output
  --degrade               on corruption, serve exact scans instead of
                          rebuilding the synopsis (warehouse open/repair)
  --addr <HOST:PORT>      serve: bind address (default 127.0.0.1:8600;
                          port 0 picks an ephemeral port)
  --workers <N>           serve: query worker threads, 0 = all cores
  --queue-depth <N>       serve: jobs queued before /query sheds with 503
                          (default 64)

EXAMPLES:
  congress-cli plan --demo --space 1000
  congress-cli query --demo --space 7000 \\
    \"SELECT l_returnflag, SUM(l_quantity) AS s FROM lineitem GROUP BY l_returnflag\"
  congress-cli stats --demo --space 5000
  congress-cli warehouse save --demo --space 5000 --dir ./wh
  congress-cli warehouse verify --dir ./wh
  congress-cli warehouse open --dir ./wh
  congress-cli serve --demo --space 5000 --addr 127.0.0.1:8600
";
