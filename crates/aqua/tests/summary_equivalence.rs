//! Equivalence and concurrency checks for the cached-summary answer path.
//!
//! The O(groups) fast path serves unfiltered and group-only-predicate
//! queries from per-(group, stratum) aggregate summaries instead of
//! scanning sample rows. These tests pin the contract from ISSUE 4:
//!
//! 1. Summary-served error bounds are *bit-identical* to the scan path
//!    (`compute_bounds` with no cache), cold and warm.
//! 2. Every invalidation trigger — `insert_batch`, `refresh`, `rebuild`,
//!    warehouse logged inserts, warehouse save/open — drops the summaries
//!    so answers never serve stale state, and answers after a round-trip
//!    through persistence are bit-identical to pre-save warm answers.
//! 3. Concurrent readers hammering `Aqua::answer` while a writer ingests
//!    never panic, and post-ingest answers reflect the new rows.

use aqua::answer::{compute_bounds, compute_bounds_cached};
use aqua::{ApproximateAnswer, Aqua, AquaConfig, RewriteChoice, SamplingStrategy, Warehouse};
use congress::MemStore;
use engine::{
    AggregateSpec, ExecOptions, GroupByQuery, Integrated, QueryCache, SamplePlan, StratifiedInput,
};
use relation::{ColumnId, DataType, Expr, GroupKey, Predicate, Relation, RelationBuilder, Value};

/// Deterministic stratified fixture: `rows` tuples over `strata` strata
/// (stratified on column `g`), mixed scale factors, like the engine's
/// fast-path fixture but sized for bound computations.
fn stratified(rows: usize, strata: usize) -> StratifiedInput {
    let mut b = RelationBuilder::new()
        .column("g", DataType::Int)
        .column("h", DataType::Int)
        .column("v", DataType::Float);
    let mut stratum_of_row = Vec::with_capacity(rows);
    let mut state = 0xDEAD_BEEF_CAFE_F00Du64;
    for _ in 0..rows {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let g = ((state >> 33) as usize) % strata;
        let h = ((state >> 17) as usize) % 5;
        let v = ((state >> 11) % 10_000) as f64 / 100.0;
        b.push_row(&[Value::Int(g as i64), Value::Int(h as i64), Value::from(v)])
            .unwrap();
        stratum_of_row.push(g as u32);
    }
    StratifiedInput {
        rows: b.finish(),
        stratum_of_row,
        scale_factors: (0..strata).map(|s| 1.0 + (s % 7) as f64 * 0.75).collect(),
        strata_keys: (0..strata)
            .map(|s| GroupKey::new(vec![Value::Int(s as i64)]))
            .collect(),
        grouping_columns: vec![ColumnId(0)],
    }
}

fn bound_queries() -> Vec<GroupByQuery> {
    let v = Expr::col(ColumnId(2));
    vec![
        // Unfiltered group-by: served entirely from summaries.
        GroupByQuery::new(
            vec![ColumnId(0)],
            vec![
                AggregateSpec::sum(v.clone(), "s"),
                AggregateSpec::count("c"),
                AggregateSpec::avg(v.clone(), "a"),
            ],
        ),
        // Group-only predicate: also summary-served.
        GroupByQuery::new(
            vec![ColumnId(0)],
            vec![
                AggregateSpec::sum(v.clone(), "s"),
                AggregateSpec::count("c"),
            ],
        )
        .with_predicate(Predicate::le(ColumnId(0), 6i64)),
        // Secondary grouping with a group-only predicate over it.
        GroupByQuery::new(
            vec![ColumnId(1)],
            vec![
                AggregateSpec::avg(v.clone(), "a"),
                AggregateSpec::count("c"),
            ],
        )
        .with_predicate(Predicate::ge(ColumnId(1), 1i64)),
        // Min/Max carry no bounds; the fast path must emit the same `None`s.
        GroupByQuery::new(
            vec![ColumnId(0)],
            vec![
                AggregateSpec::min(v.clone(), "mn"),
                AggregateSpec::max(v, "mx"),
            ],
        ),
    ]
}

fn half_widths(bounds: &[aqua::GroupBounds]) -> Vec<(GroupKey, Vec<Option<u64>>)> {
    bounds
        .iter()
        .map(|gb| {
            (
                gb.key.clone(),
                gb.bounds
                    .iter()
                    .map(|b| b.as_ref().map(|e| e.half_width.to_bits()))
                    .collect(),
            )
        })
        .collect()
}

#[test]
fn summary_bounds_bit_identical_to_scan_bounds() {
    let input = stratified(12_000, 12);
    let plan = Integrated::build(&input).unwrap();
    let cache = QueryCache::new();
    for q in bound_queries() {
        let result = plan.execute_opts(&q, &ExecOptions::default()).unwrap();
        // Scan path: no cache, masked row scan.
        let scan = compute_bounds(&input, &q, &result, 0.9).unwrap();
        // Summary path, cold (builds the cells) then warm (hits them).
        let cold = compute_bounds_cached(&input, &q, &result, 0.9, Some(&cache)).unwrap();
        let warm = compute_bounds_cached(&input, &q, &result, 0.9, Some(&cache)).unwrap();
        assert!(!scan.is_empty(), "fixture query produced no groups");
        assert_eq!(
            half_widths(&scan),
            half_widths(&cold),
            "scan vs cold summary"
        );
        assert_eq!(
            half_widths(&scan),
            half_widths(&warm),
            "scan vs warm summary"
        );
    }
}

// ---------------------------------------------------------------------------
// Invalidation matrix
// ---------------------------------------------------------------------------

fn sales(n: i64) -> Relation {
    let mut b = RelationBuilder::new()
        .column("region", DataType::Str)
        .column("amount", DataType::Float);
    for i in 0..n {
        let region = match i % 10 {
            0 => "east",
            1 | 2 => "south",
            _ => "west",
        };
        b.push_row(&[Value::str(region), Value::from((i % 50) as f64)])
            .unwrap();
    }
    b.finish()
}

fn config(rewrite: RewriteChoice) -> AquaConfig {
    AquaConfig {
        space: 150,
        strategy: SamplingStrategy::Congress,
        rewrite,
        confidence: 0.9,
        seed: 7,
        parallelism: 0,
    }
}

/// An unfiltered query plus a group-only-predicate query — both served by
/// the summary fast path, so both must observe every invalidation.
fn probe_queries() -> Vec<GroupByQuery> {
    let amount = Expr::col(ColumnId(1));
    vec![
        GroupByQuery::new(
            vec![ColumnId(0)],
            vec![
                AggregateSpec::sum(amount.clone(), "s"),
                AggregateSpec::count("c"),
            ],
        ),
        GroupByQuery::new(vec![ColumnId(0)], vec![AggregateSpec::count("c")])
            .with_predicate(Predicate::eq(ColumnId(0), Value::str("north"))),
    ]
}

fn answers(aqua: &Aqua) -> Vec<ApproximateAnswer> {
    probe_queries()
        .iter()
        .map(|q| aqua.answer(q).unwrap())
        .collect()
}

#[test]
fn summaries_invalidated_by_every_trigger() {
    let north = GroupKey::new(vec![Value::str("north")]);
    for rewrite in RewriteChoice::all() {
        let aqua = Aqua::build(sales(2_000), vec![ColumnId(0)], config(rewrite)).unwrap();
        // Warm all summary tables.
        let warm = answers(&aqua);
        for (a, b) in warm.iter().zip(answers(&aqua).iter()) {
            assert_eq!(
                a.result,
                b.result,
                "{}: warm repeat drifted",
                rewrite.name()
            );
            assert_eq!(
                half_widths(&a.bounds),
                half_widths(&b.bounds),
                "{}: warm bounds drifted",
                rewrite.name()
            );
        }
        assert!(warm[0].result.get(&north).is_none());
        assert!(warm[1].result.get(&north).is_none());

        // insert_batch: new group must surface in both probe queries.
        let rows: Vec<Vec<Value>> = (0..160)
            .map(|i| vec![Value::str("north"), Value::from(i as f64)])
            .collect();
        aqua.insert_batch(&rows).unwrap();
        let after_insert = answers(&aqua);
        assert!(
            after_insert[0].result.get(&north).is_some(),
            "{}: insert_batch did not invalidate summaries",
            rewrite.name()
        );
        assert!(
            after_insert[1].result.get(&north).is_some(),
            "{}: group-only predicate served stale summary after insert",
            rewrite.name()
        );

        // refresh: answers stay warm-stable afterwards (fresh summaries).
        aqua.refresh().unwrap();
        let after_refresh = answers(&aqua);
        for (a, b) in after_refresh.iter().zip(answers(&aqua).iter()) {
            assert_eq!(a.result, b.result, "{}: post-refresh drift", rewrite.name());
        }
        assert!(after_refresh[0].result.get(&north).is_some());

        // rebuild: full resample; north must still be present and repeats
        // must stay bit-identical.
        aqua.rebuild().unwrap();
        let after_rebuild = answers(&aqua);
        for (a, b) in after_rebuild.iter().zip(answers(&aqua).iter()) {
            assert_eq!(a.result, b.result, "{}: post-rebuild drift", rewrite.name());
            assert_eq!(
                half_widths(&a.bounds),
                half_widths(&b.bounds),
                "{}: post-rebuild bounds drift",
                rewrite.name()
            );
        }
        assert!(after_rebuild[0].result.get(&north).is_some());
    }
}

#[test]
fn warehouse_roundtrip_preserves_summary_served_answers() {
    let store = MemStore::new();
    let w = Warehouse::new();
    let t = sales(1_800);
    let grouping = t.schema().column_ids(&["region"]).unwrap();
    w.register("sales", t, grouping, config(RewriteChoice::Integrated))
        .unwrap();
    w.save_all(&store).unwrap();

    // Warm the summaries, then push a logged insert through the WAL.
    let warm: Vec<ApproximateAnswer> = probe_queries()
        .iter()
        .map(|q| w.answer("sales", q).unwrap())
        .collect();
    let north = GroupKey::new(vec![Value::str("north")]);
    assert!(warm[0].result.get(&north).is_none());
    let rows: Vec<Vec<Value>> = (0..140)
        .map(|i| vec![Value::str("north"), Value::from(i as f64)])
        .collect();
    w.insert_logged(&store, "sales", &rows).unwrap();
    let after: Vec<ApproximateAnswer> = probe_queries()
        .iter()
        .map(|q| w.answer("sales", q).unwrap())
        .collect();
    assert!(
        after[0].result.get(&north).is_some() && after[1].result.get(&north).is_some(),
        "logged insert must invalidate summary tables"
    );
    // Warm again post-insert, then save and reopen: the recovered warehouse
    // starts from a fresh cache and must reproduce the warm answers
    // (values and bounds) bit-for-bit.
    let warm2: Vec<ApproximateAnswer> = probe_queries()
        .iter()
        .map(|q| w.answer("sales", q).unwrap())
        .collect();
    w.save_all(&store).unwrap();

    let (w2, report) = Warehouse::open(&store, aqua::RecoveryPolicy::Rebuild).unwrap();
    assert!(report.fully_healthy(), "{report:?}");
    for (q, expect) in probe_queries().iter().zip(&warm2) {
        let got = w2.answer("sales", q).unwrap();
        assert_eq!(expect.result, got.result, "reopened answers drifted");
        assert_eq!(
            half_widths(&expect.bounds),
            half_widths(&got.bounds),
            "reopened bounds drifted"
        );
    }
}

// ---------------------------------------------------------------------------
// Concurrency smoke test (loom-free)
// ---------------------------------------------------------------------------

#[test]
fn concurrent_readers_and_ingest_smoke() {
    let aqua = Aqua::build(
        sales(3_000),
        vec![ColumnId(0)],
        config(RewriteChoice::Integrated),
    )
    .unwrap();
    let north = GroupKey::new(vec![Value::str("north")]);
    let queries = probe_queries();

    std::thread::scope(|scope| {
        // 8 readers hammer the summary-served path while one writer ingests.
        for _ in 0..8 {
            scope.spawn(|| {
                for i in 0..60 {
                    let q = &queries[i % queries.len()];
                    let a = aqua.answer(q).unwrap();
                    assert!(a.result.group_count() <= 4, "unexpected groups");
                }
            });
        }
        scope.spawn(|| {
            for batch in 0..6 {
                let rows: Vec<Vec<Value>> = (0..40)
                    .map(|i| vec![Value::str("north"), Value::from((batch * 40 + i) as f64)])
                    .collect();
                aqua.insert_batch(&rows).unwrap();
            }
        });
    });

    // After all ingests, the new group must be visible to both probes.
    for a in answers(&aqua) {
        assert!(
            a.result.get(&north).is_some(),
            "post-ingest answers must reflect the new rows"
        );
    }
}
