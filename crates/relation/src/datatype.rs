//! Logical column data types.

use std::fmt;

use serde::{Deserialize, Serialize};

/// The logical type of a column.
///
/// `Date` is stored as days since 1970-01-01, matching how the TPC-D
/// generator in this workspace encodes `l_shipdate`. Keeping dates integral
/// lets them participate in range predicates and grouping without a calendar
/// library.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DataType {
    /// 64-bit signed integer.
    Int,
    /// 64-bit IEEE float.
    Float,
    /// Dictionary-encoded UTF-8 string.
    Str,
    /// Days since the Unix epoch, stored as `i32`.
    Date,
}

impl DataType {
    /// Whether values of this type can be used as an aggregation input
    /// (i.e. converted losslessly to `f64` for SUM/AVG arithmetic).
    pub fn is_numeric(self) -> bool {
        matches!(self, DataType::Int | DataType::Float | DataType::Date)
    }

    /// Whether values of this type have a total order usable in range
    /// predicates. Strings are ordered lexicographically.
    pub fn is_ordered(self) -> bool {
        true
    }
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DataType::Int => "Int",
            DataType::Float => "Float",
            DataType::Str => "Str",
            DataType::Date => "Date",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numeric_classification() {
        assert!(DataType::Int.is_numeric());
        assert!(DataType::Float.is_numeric());
        assert!(DataType::Date.is_numeric());
        assert!(!DataType::Str.is_numeric());
    }

    #[test]
    fn display_round_trip_names() {
        assert_eq!(DataType::Int.to_string(), "Int");
        assert_eq!(DataType::Str.to_string(), "Str");
        assert_eq!(DataType::Date.to_string(), "Date");
        assert_eq!(DataType::Float.to_string(), "Float");
    }

    #[test]
    fn all_types_are_ordered() {
        for t in [
            DataType::Int,
            DataType::Float,
            DataType::Str,
            DataType::Date,
        ] {
            assert!(t.is_ordered());
        }
    }
}
