//! The [`Relation`]: an immutable columnar table, plus its builder.

use std::fmt;
use std::sync::Arc;

use serde::{Deserialize, Serialize};

use crate::column::Column;
use crate::datatype::DataType;
use crate::error::{RelationError, Result};
use crate::schema::{ColumnId, Field, Schema};
use crate::value::Value;

/// An immutable, null-free, columnar table.
///
/// Relations are the unit the rest of the workspace operates on: the TPC-D
/// generator produces one, the congress crate samples row indices out of one,
/// and the engine's rewrite strategies materialize sample relations (with
/// extra ScaleFactor / GID columns) as new `Relation`s.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Relation {
    schema: Schema,
    columns: Arc<[Column]>,
    rows: usize,
}

impl Relation {
    /// Assemble a relation from a schema and matching columns.
    pub fn new(schema: Schema, columns: Vec<Column>) -> Result<Self> {
        if schema.width() != columns.len() {
            return Err(RelationError::ArityMismatch {
                expected: schema.width(),
                actual: columns.len(),
            });
        }
        let rows = columns.first().map_or(0, Column::len);
        for (i, c) in columns.iter().enumerate() {
            let field = &schema.fields()[i];
            if c.data_type() != field.data_type {
                return Err(RelationError::TypeMismatch {
                    column: field.name.clone(),
                    expected: field.data_type,
                    actual: c.data_type(),
                });
            }
            if c.len() != rows {
                return Err(RelationError::ArityMismatch {
                    expected: rows,
                    actual: c.len(),
                });
            }
        }
        Ok(Relation {
            schema,
            columns: columns.into(),
            rows,
        })
    }

    /// An empty relation with the given schema.
    pub fn empty(schema: Schema) -> Self {
        let columns: Vec<Column> = schema
            .fields()
            .iter()
            .map(|f| Column::empty(f.data_type))
            .collect();
        Relation {
            schema,
            columns: columns.into(),
            rows: 0,
        }
    }

    /// The relation's schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of rows.
    pub fn row_count(&self) -> usize {
        self.rows
    }

    /// Whether the relation has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows == 0
    }

    /// The column at `id`. Panics if out of range (schema-validated ids only).
    pub fn column(&self, id: ColumnId) -> &Column {
        &self.columns[id.index()]
    }

    /// Column lookup by name.
    pub fn column_by_name(&self, name: &str) -> Result<&Column> {
        Ok(self.column(self.schema.column_id(name)?))
    }

    /// The value at (`row`, `col`).
    pub fn value(&self, row: usize, col: ColumnId) -> Value {
        self.columns[col.index()].value(row)
    }

    /// A full row materialized as values (test/debug convenience; hot paths
    /// should iterate columns instead).
    pub fn row(&self, row: usize) -> Result<Vec<Value>> {
        if row >= self.rows {
            return Err(RelationError::RowOutOfRange {
                row,
                rows: self.rows,
            });
        }
        Ok(self.columns.iter().map(|c| c.value(row)).collect())
    }

    /// Materialize the given rows (in order, duplicates allowed) as a new
    /// relation sharing this schema. This is how samples become relations.
    pub fn gather(&self, rows: &[usize]) -> Relation {
        let columns: Vec<Column> = self.columns.iter().map(|c| c.gather(rows)).collect();
        Relation {
            schema: self.schema.clone(),
            columns: columns.into(),
            rows: rows.len(),
        }
    }

    /// Keep only the given columns, in order.
    pub fn project(&self, ids: &[ColumnId]) -> Result<Relation> {
        let schema = self.schema.project(ids)?;
        let columns: Vec<Column> = ids.iter().map(|&id| self.column(id).clone()).collect();
        Ok(Relation {
            schema,
            columns: columns.into(),
            rows: self.rows,
        })
    }

    /// A new relation with extra columns appended (lengths must match).
    pub fn with_columns(&self, extra: Vec<(Field, Column)>) -> Result<Relation> {
        let mut fields = Vec::with_capacity(extra.len());
        let mut columns: Vec<Column> = self.columns.to_vec();
        for (f, c) in extra {
            if c.len() != self.rows {
                return Err(RelationError::ArityMismatch {
                    expected: self.rows,
                    actual: c.len(),
                });
            }
            if c.data_type() != f.data_type {
                return Err(RelationError::TypeMismatch {
                    column: f.name.clone(),
                    expected: f.data_type,
                    actual: c.data_type(),
                });
            }
            fields.push(f);
            columns.push(c);
        }
        let schema = self.schema.with_appended(fields)?;
        Ok(Relation {
            schema,
            columns: columns.into(),
            rows: self.rows,
        })
    }

    /// Concatenate several relations sharing a schema into one. Row ids of
    /// the first part are preserved; part `i+1`'s rows follow part `i`'s.
    /// Used by the Aqua middleware to fold warehouse insertions into the
    /// stored table without rebuilding it row by row.
    pub fn concat(parts: &[&Relation]) -> Result<Relation> {
        let first = parts.first().ok_or(RelationError::ArityMismatch {
            expected: 1,
            actual: 0,
        })?;
        let schema = first.schema.clone();
        let mut columns: Vec<Column> = first.columns.to_vec();
        let mut rows = first.rows;
        for part in &parts[1..] {
            if part.schema != schema {
                return Err(RelationError::ArityMismatch {
                    expected: schema.width(),
                    actual: part.schema.width(),
                });
            }
            for (c, pc) in columns.iter_mut().zip(part.columns.iter()) {
                c.append(pc)?;
            }
            rows += part.rows;
        }
        Ok(Relation {
            schema,
            columns: columns.into(),
            rows,
        })
    }

    /// Approximate heap footprint in bytes (columns only), used by the
    /// synopsis store to enforce space budgets.
    pub fn approx_bytes(&self) -> usize {
        self.columns
            .iter()
            .map(|c| match c {
                Column::Int(v) => v.len() * 8,
                Column::Float(v) => v.len() * 8,
                Column::Date(v) => v.len() * 4,
                Column::Str(v) => v.len() * 4 + v.dict_len() * 16,
            })
            .sum()
    }
}

impl fmt::Display for Relation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Relation{} [{} rows]", self.schema, self.rows)?;
        let show = self.rows.min(8);
        for r in 0..show {
            let vals: Vec<String> = self
                .columns
                .iter()
                .map(|c| c.value(r).to_string())
                .collect();
            writeln!(f, "  {}", vals.join(" | "))?;
        }
        if self.rows > show {
            writeln!(f, "  ... ({} more)", self.rows - show)?;
        }
        Ok(())
    }
}

/// Incremental row-at-a-time builder for a [`Relation`].
#[derive(Debug)]
pub struct RelationBuilder {
    fields: Vec<Field>,
    columns: Vec<Column>,
}

impl RelationBuilder {
    /// Start an empty builder.
    pub fn new() -> Self {
        RelationBuilder {
            fields: Vec::new(),
            columns: Vec::new(),
        }
    }

    /// Builder pre-populated from an existing schema.
    pub fn from_schema(schema: &Schema) -> Self {
        let fields: Vec<Field> = schema.fields().to_vec();
        let columns = fields.iter().map(|f| Column::empty(f.data_type)).collect();
        RelationBuilder { fields, columns }
    }

    /// Declare a column (chainable, must precede `push_row`).
    pub fn column(mut self, name: impl Into<String>, dt: DataType) -> Self {
        self.fields.push(Field::new(name, dt));
        self.columns.push(Column::empty(dt));
        self
    }

    /// Reserve capacity in every column.
    pub fn reserve(&mut self, additional: usize) {
        for c in &mut self.columns {
            match c {
                Column::Int(v) => v.reserve(additional),
                Column::Float(v) => v.reserve(additional),
                Column::Date(v) => v.reserve(additional),
                Column::Str(_) => {}
            }
        }
    }

    /// Append one row of values.
    pub fn push_row(&mut self, row: &[Value]) -> Result<()> {
        if row.len() != self.columns.len() {
            return Err(RelationError::ArityMismatch {
                expected: self.columns.len(),
                actual: row.len(),
            });
        }
        for (c, v) in self.columns.iter_mut().zip(row) {
            c.push(v.clone()).map_err(|e| match e {
                RelationError::TypeMismatch {
                    expected, actual, ..
                } => RelationError::TypeMismatch {
                    column: String::new(),
                    expected,
                    actual,
                },
                other => other,
            })?;
        }
        Ok(())
    }

    /// Number of rows pushed so far.
    pub fn row_count(&self) -> usize {
        self.columns.first().map_or(0, Column::len)
    }

    /// Finish into an immutable relation. Panics only if internal invariants
    /// were violated, which `push_row`'s checks prevent.
    pub fn finish(self) -> Relation {
        let schema = Schema::new(self.fields).expect("builder enforced unique names");
        Relation::new(schema, self.columns).expect("builder enforced column invariants")
    }
}

impl Default for RelationBuilder {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Relation {
        let mut b = RelationBuilder::new()
            .column("k", DataType::Int)
            .column("g", DataType::Str)
            .column("v", DataType::Float);
        for i in 0..10i64 {
            b.push_row(&[
                Value::Int(i),
                Value::str(if i % 2 == 0 { "even" } else { "odd" }),
                Value::from(i as f64 * 1.5),
            ])
            .unwrap();
        }
        b.finish()
    }

    #[test]
    fn build_and_read() {
        let r = sample();
        assert_eq!(r.row_count(), 10);
        assert_eq!(r.schema().width(), 3);
        assert_eq!(r.value(3, ColumnId(0)), Value::Int(3));
        assert_eq!(r.value(3, ColumnId(1)), Value::str("odd"));
        assert_eq!(r.value(4, ColumnId(2)), Value::from(6.0));
        assert_eq!(
            r.row(2).unwrap(),
            vec![Value::Int(2), Value::str("even"), Value::from(3.0)]
        );
        assert!(r.row(10).is_err());
    }

    #[test]
    fn gather_materializes_sample() {
        let r = sample();
        let s = r.gather(&[9, 1, 1]);
        assert_eq!(s.row_count(), 3);
        assert_eq!(s.value(0, ColumnId(0)), Value::Int(9));
        assert_eq!(s.value(1, ColumnId(0)), Value::Int(1));
        assert_eq!(s.value(2, ColumnId(0)), Value::Int(1));
        assert_eq!(s.schema(), r.schema());
    }

    #[test]
    fn project_and_append() {
        let r = sample();
        let p = r.project(&[ColumnId(2)]).unwrap();
        assert_eq!(p.schema().width(), 1);
        assert_eq!(p.row_count(), 10);

        let sf = Column::Float(vec![2.0; 10]);
        let r2 = r
            .with_columns(vec![(Field::new("sf", DataType::Float), sf)])
            .unwrap();
        assert_eq!(r2.schema().width(), 4);
        assert_eq!(r2.value(0, ColumnId(3)), Value::from(2.0));

        // Length mismatch rejected.
        let bad = Column::Float(vec![1.0; 3]);
        assert!(r
            .with_columns(vec![(Field::new("x", DataType::Float), bad)])
            .is_err());
    }

    #[test]
    fn mismatched_construction_rejected() {
        let schema = Schema::new(vec![Field::new("a", DataType::Int)]).unwrap();
        // wrong type
        assert!(Relation::new(schema.clone(), vec![Column::Float(vec![1.0])]).is_err());
        // wrong column count
        assert!(Relation::new(schema.clone(), vec![]).is_err());
        // ragged lengths
        let schema2 = Schema::new(vec![
            Field::new("a", DataType::Int),
            Field::new("b", DataType::Int),
        ])
        .unwrap();
        assert!(
            Relation::new(schema2, vec![Column::Int(vec![1, 2]), Column::Int(vec![1])]).is_err()
        );
    }

    #[test]
    fn builder_arity_checked() {
        let mut b = RelationBuilder::new().column("a", DataType::Int);
        assert!(b.push_row(&[Value::Int(1), Value::Int(2)]).is_err());
        assert!(b.push_row(&[Value::str("x")]).is_err());
        b.push_row(&[Value::Int(1)]).unwrap();
        assert_eq!(b.row_count(), 1);
    }

    #[test]
    fn empty_relation() {
        let schema = Schema::new(vec![Field::new("a", DataType::Int)]).unwrap();
        let r = Relation::empty(schema);
        assert!(r.is_empty());
        assert_eq!(r.gather(&[]).row_count(), 0);
    }

    #[test]
    fn concat_appends_rows() {
        let r = sample();
        let head = r.gather(&[0, 1]);
        let tail = r.gather(&[5]);
        let cat = Relation::concat(&[&head, &tail]).unwrap();
        assert_eq!(cat.row_count(), 3);
        assert_eq!(cat.value(0, ColumnId(0)), Value::Int(0));
        assert_eq!(cat.value(2, ColumnId(0)), Value::Int(5));
        assert_eq!(cat.value(2, ColumnId(1)), Value::str("odd"));
        // single part round-trips
        let one = Relation::concat(&[&head]).unwrap();
        assert_eq!(one.row_count(), 2);
        // empty list rejected
        assert!(Relation::concat(&[]).is_err());
        // schema mismatch rejected
        let other = RelationBuilder::new().column("z", DataType::Int).finish();
        assert!(Relation::concat(&[&head, &other]).is_err());
    }

    #[test]
    fn approx_bytes_scales_with_rows() {
        let r = sample();
        let small = r.gather(&[0]);
        assert!(r.approx_bytes() > small.approx_bytes());
    }

    #[test]
    fn display_truncates() {
        let r = sample();
        let s = r.to_string();
        assert!(s.contains("10 rows"));
        assert!(s.contains("more"));
    }
}
