//! Group-by error metrics (Definition 3.1).
//!
//! The error of a group `g_i` is the percentage relative error
//! `ε_i = |c_i − c'_i| / c_i × 100` (Eq 1); the error of the whole
//! group-by answer is the `L∞`, `L1`, or `L2` norm of the per-group
//! errors. Groups present in the exact answer but missing from the
//! approximate one (no sampled tuple survived the predicate) violate the
//! paper's first user requirement and are charged a configurable penalty
//! (100% by default).

use serde::{Deserialize, Serialize};

use engine::QueryResult;
use relation::GroupKey;

/// Per-group and aggregate error of an approximate group-by answer.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GroupByErrorReport {
    /// Percentage relative error per exact-answer group (missing groups
    /// carry the penalty).
    pub per_group: Vec<(GroupKey, f64)>,
    /// Number of exact-answer groups absent from the approximate answer.
    pub missing_groups: usize,
    /// Number of spurious groups in the approximate answer that the exact
    /// answer does not contain (possible only through bugs — the sample is
    /// a subset of the data — so tests assert this stays 0).
    pub spurious_groups: usize,
}

impl GroupByErrorReport {
    /// `ε∞`: worst per-group error.
    pub fn l_inf(&self) -> f64 {
        self.per_group.iter().map(|(_, e)| *e).fold(0.0, f64::max)
    }

    /// `εL1`: mean per-group error.
    pub fn l1(&self) -> f64 {
        if self.per_group.is_empty() {
            return 0.0;
        }
        self.per_group.iter().map(|(_, e)| *e).sum::<f64>() / self.per_group.len() as f64
    }

    /// `εL2`: root-mean-square per-group error.
    pub fn l2(&self) -> f64 {
        if self.per_group.is_empty() {
            return 0.0;
        }
        let ss: f64 = self.per_group.iter().map(|(_, e)| e * e).sum();
        (ss / self.per_group.len() as f64).sqrt()
    }

    /// Number of groups in the exact answer.
    pub fn group_count(&self) -> usize {
        self.per_group.len()
    }
}

/// Percentage relative error of one estimate (Eq 1). When the exact value
/// is zero, any exact match is 0% and any miss is charged the penalty —
/// relative error is undefined at zero and this matches how the
/// experimental literature treats it.
pub fn relative_error_pct(exact: f64, approx: f64, zero_penalty: f64) -> f64 {
    if exact == 0.0 {
        return if approx == 0.0 { 0.0 } else { zero_penalty };
    }
    ((exact - approx) / exact).abs() * 100.0
}

/// Compare an approximate answer against the exact one on the aggregate at
/// `agg_index`, charging `missing_penalty` percent for exact-answer groups
/// the approximation failed to produce.
pub fn compare_results(
    exact: &QueryResult,
    approx: &QueryResult,
    agg_index: usize,
    missing_penalty: f64,
) -> GroupByErrorReport {
    let approx_by_key = approx.by_key();
    let mut per_group = Vec::with_capacity(exact.group_count());
    let mut missing = 0usize;
    for (key, evals) in exact.iter() {
        match approx_by_key.get(key) {
            Some(avals) => {
                let e = relative_error_pct(evals[agg_index], avals[agg_index], missing_penalty);
                per_group.push((key.clone(), e));
            }
            None => {
                missing += 1;
                per_group.push((key.clone(), missing_penalty));
            }
        }
    }
    let exact_by_key = exact.by_key();
    let spurious = approx
        .iter()
        .filter(|(k, _)| !exact_by_key.contains_key(*k))
        .count();
    GroupByErrorReport {
        per_group,
        missing_groups: missing,
        spurious_groups: spurious,
    }
}

/// The MAC-style error of \[IP99\], which §3.2 discusses and rejects for
/// group-by answers: match each approximate aggregate value to the
/// *closest* exact value (greedy, by absolute difference) and average the
/// matched differences — ignoring group identity entirely.
///
/// Provided for comparison: the paper's criticism is that MAC "does not
/// necessarily match corresponding groups in the two answers", so an
/// answer that permutes group labels scores perfectly. The test
/// `mac_blind_to_group_identity` demonstrates exactly that failure, which
/// is why [`compare_results`] keys by group instead.
pub fn mac_error(exact: &QueryResult, approx: &QueryResult, agg_index: usize) -> f64 {
    let mut evals: Vec<f64> = exact.rows().iter().map(|(_, v)| v[agg_index]).collect();
    let avals: Vec<f64> = approx.rows().iter().map(|(_, v)| v[agg_index]).collect();
    if evals.is_empty() && avals.is_empty() {
        return 0.0;
    }
    let mut total = 0.0;
    let mut matched = 0usize;
    for &a in &avals {
        if evals.is_empty() {
            break;
        }
        // Greedy closest-pair matching.
        let (best_i, best_d) = evals
            .iter()
            .enumerate()
            .map(|(i, &e)| (i, (e - a).abs()))
            .min_by(|x, y| x.1.total_cmp(&y.1))
            .expect("non-empty");
        total += best_d;
        evals.swap_remove(best_i);
        matched += 1;
    }
    // Unmatched values on either side contribute their magnitude.
    let leftovers: f64 = evals.iter().map(|e| e.abs()).sum::<f64>()
        + avals[matched..].iter().map(|a| a.abs()).sum::<f64>();
    (total + leftovers) / (matched + evals.len() + avals.len() - matched).max(1) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use relation::Value;

    fn key(s: &str) -> GroupKey {
        GroupKey::new(vec![Value::str(s)])
    }

    fn result(rows: &[(&str, f64)]) -> QueryResult {
        QueryResult::new(
            vec!["s".into()],
            rows.iter().map(|(k, v)| (key(k), vec![*v])).collect(),
        )
    }

    #[test]
    fn relative_error_basic() {
        assert_eq!(relative_error_pct(100.0, 90.0, 100.0), 10.0);
        assert_eq!(relative_error_pct(100.0, 110.0, 100.0), 10.0);
        assert_eq!(relative_error_pct(-50.0, -55.0, 100.0), 10.0);
        assert_eq!(relative_error_pct(0.0, 0.0, 100.0), 0.0);
        assert_eq!(relative_error_pct(0.0, 5.0, 100.0), 100.0);
    }

    #[test]
    fn compare_matching_groups() {
        let exact = result(&[("a", 100.0), ("b", 200.0)]);
        let approx = result(&[("a", 110.0), ("b", 190.0)]);
        let r = compare_results(&exact, &approx, 0, 100.0);
        assert_eq!(r.missing_groups, 0);
        assert_eq!(r.spurious_groups, 0);
        assert!((r.l1() - 7.5).abs() < 1e-12); // (10 + 5) / 2
        assert!((r.l_inf() - 10.0).abs() < 1e-12);
        let l2_expect = ((100.0 + 25.0) / 2.0f64).sqrt();
        assert!((r.l2() - l2_expect).abs() < 1e-12);
    }

    #[test]
    fn missing_groups_penalized() {
        let exact = result(&[("a", 100.0), ("b", 200.0), ("c", 5.0)]);
        let approx = result(&[("a", 100.0)]);
        let r = compare_results(&exact, &approx, 0, 100.0);
        assert_eq!(r.missing_groups, 2);
        assert_eq!(r.l_inf(), 100.0);
        assert!((r.l1() - (0.0 + 100.0 + 100.0) / 3.0).abs() < 1e-12);
    }

    #[test]
    fn spurious_groups_counted() {
        let exact = result(&[("a", 100.0)]);
        let approx = result(&[("a", 100.0), ("zz", 7.0)]);
        let r = compare_results(&exact, &approx, 0, 100.0);
        assert_eq!(r.spurious_groups, 1);
        assert_eq!(r.missing_groups, 0);
    }

    #[test]
    fn norms_order_l1_le_l2_le_linf() {
        let exact = result(&[("a", 100.0), ("b", 100.0), ("c", 100.0)]);
        let approx = result(&[("a", 99.0), ("b", 80.0), ("c", 100.0)]);
        let r = compare_results(&exact, &approx, 0, 100.0);
        assert!(r.l1() <= r.l2() + 1e-12);
        assert!(r.l2() <= r.l_inf() + 1e-12);
    }

    #[test]
    fn multi_aggregate_index() {
        let exact = QueryResult::new(
            vec!["s".into(), "c".into()],
            vec![(key("a"), vec![100.0, 10.0])],
        );
        let approx = QueryResult::new(
            vec!["s".into(), "c".into()],
            vec![(key("a"), vec![100.0, 12.0])],
        );
        let r0 = compare_results(&exact, &approx, 0, 100.0);
        assert_eq!(r0.l1(), 0.0);
        let r1 = compare_results(&exact, &approx, 1, 100.0);
        assert!((r1.l1() - 20.0).abs() < 1e-12);
    }

    #[test]
    fn mac_blind_to_group_identity() {
        // The §3.2 criticism, concretely: swap two groups' aggregates.
        // MAC scores the permuted answer as PERFECT; the per-group metric
        // correctly reports large errors.
        let exact = result(&[("a", 100.0), ("b", 500.0)]);
        let permuted = result(&[("a", 500.0), ("b", 100.0)]);
        assert_eq!(mac_error(&exact, &permuted, 0), 0.0);
        let proper = compare_results(&exact, &permuted, 0, 100.0);
        assert!(proper.l_inf() > 300.0, "per-group metric sees the swap");
    }

    #[test]
    fn mac_basic_and_unmatched() {
        let exact = result(&[("a", 100.0)]);
        let approx = result(&[("a", 110.0)]);
        assert!((mac_error(&exact, &approx, 0) - 10.0).abs() < 1e-12);
        // Extra approximate group contributes its magnitude.
        let approx2 = result(&[("a", 100.0), ("zz", 50.0)]);
        assert!(mac_error(&exact, &approx2, 0) > 0.0);
        // Missing approximate group likewise.
        let empty = QueryResult::new(vec!["s".into()], vec![]);
        assert!(mac_error(&exact, &empty, 0) > 0.0);
        assert_eq!(mac_error(&empty, &empty, 0), 0.0);
    }

    #[test]
    fn empty_results() {
        let empty = QueryResult::new(vec!["s".into()], vec![]);
        let r = compare_results(&empty, &empty, 0, 100.0);
        assert_eq!(r.group_count(), 0);
        assert_eq!(r.l1(), 0.0);
        assert_eq!(r.l2(), 0.0);
        assert_eq!(r.l_inf(), 0.0);
    }
}
