//! Deterministic seeding for parallel construction.
//!
//! Parallel sample construction must be **bit-for-bit reproducible
//! regardless of thread count**: the whole point of seeding the pipeline
//! is that two runs (or two machines, or a resumed experiment) agree on
//! the sample. A single shared RNG breaks that the moment two strata are
//! filled concurrently — whichever thread draws first perturbs the
//! other's stream.
//!
//! [`SeedSpec`] solves this by deriving an *independent* RNG stream per
//! unit of work from one root seed: each finest group's stream is seeded
//! by mixing the root with a stable hash of the group's key. Streams
//! therefore depend only on (root, group key), never on scheduling,
//! iteration order, or `RAYON_NUM_THREADS` — so the sequential path
//! (`parallelism = 1`) and any parallel execution produce identical
//! samples, tuple for tuple.
//!
//! The hash is a hand-rolled FNV-1a over a stable byte encoding of the
//! key's values (discriminant byte + little-endian payload). We
//! deliberately avoid `std::hash::Hasher` defaults: `DefaultHasher`'s
//! algorithm is not guaranteed stable across Rust releases, and
//! reproducibility here is a documented contract, not an accident.

use rand::rngs::StdRng;
use rand::SeedableRng;
use relation::{GroupKey, Value};

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv1a(hash: &mut u64, bytes: &[u8]) {
    for &b in bytes {
        *hash ^= b as u64;
        *hash = hash.wrapping_mul(FNV_PRIME);
    }
}

/// Stable 64-bit hash of a group key (independent of process, platform,
/// and Rust release).
fn hash_key(key: &GroupKey) -> u64 {
    let mut h = FNV_OFFSET;
    for v in key.values() {
        match v {
            Value::Int(i) => {
                fnv1a(&mut h, &[0x01]);
                fnv1a(&mut h, &i.to_le_bytes());
            }
            Value::Float(f) => {
                fnv1a(&mut h, &[0x02]);
                fnv1a(&mut h, &f.get().to_bits().to_le_bytes());
            }
            Value::Str(s) => {
                fnv1a(&mut h, &[0x03]);
                fnv1a(&mut h, &(s.len() as u64).to_le_bytes());
                fnv1a(&mut h, s.as_bytes());
            }
            Value::Date(d) => {
                fnv1a(&mut h, &[0x04]);
                fnv1a(&mut h, &d.to_le_bytes());
            }
        }
    }
    h
}

/// SplitMix64 finalizer — decorrelates the (root, hash) mix so related
/// roots (0, 1, 2, ...) still yield unrelated streams.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A root seed plus derivation rules for per-group (and per-label) RNG
/// streams — the reproducibility contract of parallel construction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SeedSpec {
    root: u64,
}

impl SeedSpec {
    /// A spec deriving every stream from `root`.
    pub fn new(root: u64) -> SeedSpec {
        SeedSpec { root }
    }

    /// The root seed.
    pub fn root(&self) -> u64 {
        self.root
    }

    /// A derived spec for an independent sub-pipeline (e.g. the Senate
    /// half vs the House half of Basic Congress).
    pub fn fork(&self, label: &str) -> SeedSpec {
        let mut h = FNV_OFFSET;
        fnv1a(&mut h, label.as_bytes());
        SeedSpec {
            root: mix(self.root ^ h),
        }
    }

    /// The RNG stream for one finest group, determined solely by
    /// (root, key) — never by scheduling.
    pub fn rng_for_group(&self, key: &GroupKey) -> StdRng {
        StdRng::seed_from_u64(mix(self.root ^ hash_key(key)))
    }

    /// The RNG stream for an indexed unit of work without a key (e.g. the
    /// single global House reservoir).
    pub fn rng_for_index(&self, index: u64) -> StdRng {
        StdRng::seed_from_u64(mix(self.root ^ mix(index)))
    }

    /// The root stream itself (for strictly sequential tails).
    pub fn rng(&self) -> StdRng {
        StdRng::seed_from_u64(self.root)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::RngCore;

    fn key(vals: Vec<Value>) -> GroupKey {
        GroupKey::new(vals)
    }

    #[test]
    fn same_root_same_key_same_stream() {
        let spec = SeedSpec::new(42);
        let k = key(vec![Value::Int(7), Value::str("x")]);
        let mut a = spec.rng_for_group(&k);
        let mut b = SeedSpec::new(42).rng_for_group(&k.clone());
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_keys_and_roots_diverge() {
        let spec = SeedSpec::new(42);
        let mut a = spec.rng_for_group(&key(vec![Value::Int(1)]));
        let mut b = spec.rng_for_group(&key(vec![Value::Int(2)]));
        assert_ne!(a.next_u64(), b.next_u64());
        let mut c = SeedSpec::new(43).rng_for_group(&key(vec![Value::Int(1)]));
        let mut a2 = SeedSpec::new(42).rng_for_group(&key(vec![Value::Int(1)]));
        assert_ne!(a2.next_u64(), c.next_u64());
    }

    #[test]
    fn encoding_distinguishes_types_and_boundaries() {
        let spec = SeedSpec::new(0);
        // Int(1) vs Date(1) vs Str("1") must all hash differently.
        let variants = [
            key(vec![Value::Int(1)]),
            key(vec![Value::Date(1)]),
            key(vec![Value::str("1")]),
            // Boundary confusion: ("ab", "c") vs ("a", "bc").
            key(vec![Value::str("ab"), Value::str("c")]),
            key(vec![Value::str("a"), Value::str("bc")]),
        ];
        let mut firsts: Vec<u64> = variants
            .iter()
            .map(|k| spec.rng_for_group(k).next_u64())
            .collect();
        firsts.sort_unstable();
        firsts.dedup();
        assert_eq!(firsts.len(), variants.len());
    }

    #[test]
    fn forks_are_independent() {
        let spec = SeedSpec::new(7);
        let k = key(vec![Value::Int(0)]);
        assert_ne!(
            spec.fork("house").rng_for_group(&k).next_u64(),
            spec.fork("senate").rng_for_group(&k).next_u64()
        );
        assert_eq!(spec.fork("house"), spec.fork("house"));
    }

    #[test]
    fn index_streams_are_stable() {
        let spec = SeedSpec::new(9);
        assert_eq!(
            spec.rng_for_index(3).next_u64(),
            SeedSpec::new(9).rng_for_index(3).next_u64()
        );
        assert_ne!(
            spec.rng_for_index(3).next_u64(),
            spec.rng_for_index(4).next_u64()
        );
    }
}
