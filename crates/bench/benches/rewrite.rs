//! Criterion bench backing Table 3 / Figure 18: per-query execution cost
//! of the four rewrite strategies over a fixed Congress sample.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use aqua::{RewriteChoice, SamplingStrategy};
use bench::harness::{build_plan, ExperimentSetup};
use tpcd::GeneratorConfig;

fn bench_rewrites(c: &mut Criterion) {
    let setup = ExperimentSetup::new(GeneratorConfig {
        table_size: 100_000,
        num_groups: 1000,
        group_skew: 0.86,
        agg_skew: 0.86,
        seed: 1,
    });
    let mut group = c.benchmark_group("rewrite_qg2");
    group.sample_size(20);
    for rewrite in RewriteChoice::all() {
        let plan = build_plan(&setup, SamplingStrategy::Congress, rewrite, 0.07, 5);
        group.bench_with_input(
            BenchmarkId::from_parameter(rewrite.name()),
            &plan,
            |b, plan| b.iter(|| plan.execute(&setup.qg2).unwrap()),
        );
    }
    group.finish();

    let mut group = c.benchmark_group("rewrite_qg0");
    group.sample_size(20);
    for rewrite in RewriteChoice::all() {
        let plan = build_plan(&setup, SamplingStrategy::Congress, rewrite, 0.07, 5);
        let q = setup.qg0[0].clone();
        group.bench_with_input(
            BenchmarkId::from_parameter(rewrite.name()),
            &plan,
            |b, plan| b.iter(|| plan.execute(&q).unwrap()),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_rewrites);
criterion_main!(benches);
