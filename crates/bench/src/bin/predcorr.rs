//! Footnote-10 ablation: predicate independence.
//!
//! The §4.2 optimality analysis assumes "the predicate's per-group
//! selectivities are the same for all groups", and footnote 10 claims:
//! "Although the assumption of predicate independence may not always hold
//! in real life, the sample strategy we derive from this analysis works
//! well even when the assumption does not hold." This harness tests that
//! claim: `Q_{g2}`-style queries whose predicate selectivity is
//! deliberately correlated with the grouping (the predicate keeps a
//! *different* fraction of each group).
//!
//! Run: `cargo run -p bench --release --bin predcorr [-- --quick]`
//!
//! Expected: all strategies degrade somewhat vs. the independent-predicate
//! case, but the *ordering* of Figures 14–16 survives — Congress remains
//! best or near-best.

use aqua::{RewriteChoice, SamplingStrategy};
use bench::harness::{build_plan, ExperimentSetup};
use bench::report::{pct, Table};
use congress::compare_results;
use engine::{execute_exact, AggregateSpec, GroupByQuery};
use relation::{Expr, Predicate, Value};
use tpcd::GeneratorConfig;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let config = GeneratorConfig {
        table_size: if quick { 100_000 } else { 500_000 },
        num_groups: 125,
        group_skew: 1.2,
        agg_skew: 0.86,
        seed: 20000520,
    };
    let trials = if quick { 2 } else { 5 };
    eprintln!("generating lineitem: T={} ...", config.table_size);
    let setup = ExperimentSetup::new(config);
    let ids = &setup.dataset.ids;

    // Group-correlated predicates: quantity thresholds interact with the
    // Zipf-skewed value distribution differently per group, and a
    // returnflag-conditional clause makes per-group selectivity range from
    // ~0 to ~1 across groups.
    let correlated: Vec<(&str, Predicate)> = vec![
        (
            "qty >= 25 (value-skew correlated)",
            Predicate::ge(ids.l_quantity, 25.0),
        ),
        (
            "rf = 0 OR qty >= 40 (group-conditional)",
            Predicate::eq(ids.l_returnflag, Value::Int(0)).or(Predicate::ge(ids.l_quantity, 40.0)),
        ),
        (
            "shipdate-dependent (grouping column itself)",
            Predicate::le(ids.l_shipdate, Value::Date(10_500)),
        ),
    ];

    for (label, pred) in correlated {
        let q = GroupByQuery::new(
            vec![ids.l_returnflag, ids.l_linestatus],
            vec![AggregateSpec::sum(Expr::col(ids.l_quantity), "s")],
        )
        .with_predicate(pred);
        let exact = execute_exact(&setup.dataset.relation, &q).expect("exact");

        let mut table = Table::new(
            format!("Footnote-10 ablation — Qg2 with correlated predicate: {label}"),
            &["strategy", "mean err %", "max err %", "missing groups"],
        );
        for strategy in SamplingStrategy::all() {
            let mut mean = 0.0;
            let mut max: f64 = 0.0;
            let mut missing = 0usize;
            for t in 0..trials {
                let plan = build_plan(
                    &setup,
                    strategy,
                    RewriteChoice::Integrated,
                    0.07,
                    30_000 + t,
                );
                let approx = plan.execute(&q).expect("plan execution");
                let report = compare_results(&exact, &approx, 0, 100.0);
                mean += report.l1() / trials as f64;
                max = max.max(report.l_inf());
                missing += report.missing_groups;
            }
            table.row(&[
                strategy.name().to_string(),
                pct(mean),
                pct(max),
                missing.to_string(),
            ]);
        }
        println!("{table}");
    }
}
