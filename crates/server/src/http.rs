//! Minimal HTTP/1.1 request parsing and response rendering.
//!
//! Just enough of RFC 7230 for a JSON query API: request line + headers +
//! `Content-Length` bodies (no chunked encoding, no trailers), keep-alive
//! by default with `Connection: close` honored both ways. Parsing is
//! incremental — feed the connection's receive buffer and get either a
//! complete request, "need more bytes", or a protocol error with the
//! status code to answer before closing.

use std::str;

/// Cap on request head (request line + headers). Oversize heads get 431.
pub const MAX_HEAD: usize = 16 * 1024;
/// Cap on declared body length. Oversize bodies get 413.
pub const MAX_BODY: usize = 1024 * 1024;

/// A parsed request. Header values the server cares about are extracted;
/// everything else is skipped.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Request method (`GET`, `POST`, ...), verbatim.
    pub method: String,
    /// Target path without the query string.
    pub path: String,
    /// Raw query string (no leading `?`), empty if absent.
    pub query: String,
    /// Request body (`Content-Length` bytes; empty without one).
    pub body: Vec<u8>,
    /// Whether the connection should stay open after the response.
    pub keep_alive: bool,
}

/// Outcome of a parse attempt over a (possibly partial) buffer.
#[derive(Debug)]
pub enum Parse {
    /// A full request; `consumed` bytes of the buffer belong to it.
    Complete {
        /// The parsed request.
        request: Request,
        /// Bytes of the input buffer the request occupied.
        consumed: usize,
    },
    /// Not enough bytes yet.
    Partial,
    /// Irrecoverable protocol error: answer with this status, then close.
    Error {
        /// HTTP status to answer with.
        status: u16,
        /// Human-readable cause, safe to echo in the error body.
        reason: &'static str,
    },
}

/// Try to parse one request from the front of `buf`.
pub fn parse(buf: &[u8]) -> Parse {
    let head_end = match find_head_end(buf) {
        Some(i) => i,
        None => {
            if buf.len() > MAX_HEAD {
                return Parse::Error {
                    status: 431,
                    reason: "request head too large",
                };
            }
            return Parse::Partial;
        }
    };
    if head_end > MAX_HEAD {
        return Parse::Error {
            status: 431,
            reason: "request head too large",
        };
    }
    let head = match str::from_utf8(&buf[..head_end]) {
        Ok(h) => h,
        Err(_) => {
            return Parse::Error {
                status: 400,
                reason: "request head is not UTF-8",
            }
        }
    };
    let mut lines = head.split("\r\n");
    let request_line = lines.next().unwrap_or("");
    let mut parts = request_line.split(' ');
    let (method, target, version) = match (parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(t), Some(v)) if parts.next().is_none() && !m.is_empty() => (m, t, v),
        _ => {
            return Parse::Error {
                status: 400,
                reason: "malformed request line",
            }
        }
    };
    if version != "HTTP/1.1" && version != "HTTP/1.0" {
        return Parse::Error {
            status: 505,
            reason: "unsupported HTTP version",
        };
    }

    let mut content_length: usize = 0;
    let mut keep_alive = version == "HTTP/1.1";
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let Some((name, value)) = line.split_once(':') else {
            return Parse::Error {
                status: 400,
                reason: "malformed header line",
            };
        };
        let value = value.trim();
        if name.eq_ignore_ascii_case("content-length") {
            match value.parse::<usize>() {
                Ok(n) => content_length = n,
                Err(_) => {
                    return Parse::Error {
                        status: 400,
                        reason: "bad Content-Length",
                    }
                }
            }
        } else if name.eq_ignore_ascii_case("connection") {
            if value.eq_ignore_ascii_case("close") {
                keep_alive = false;
            } else if value.eq_ignore_ascii_case("keep-alive") {
                keep_alive = true;
            }
        } else if name.eq_ignore_ascii_case("transfer-encoding") {
            return Parse::Error {
                status: 501,
                reason: "transfer encodings not supported",
            };
        }
    }
    if content_length > MAX_BODY {
        return Parse::Error {
            status: 413,
            reason: "request body too large",
        };
    }
    let body_start = head_end + 4;
    if buf.len() < body_start + content_length {
        return Parse::Partial;
    }
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p, q),
        None => (target, ""),
    };
    Parse::Complete {
        request: Request {
            method: method.to_string(),
            path: path.to_string(),
            query: query.to_string(),
            body: buf[body_start..body_start + content_length].to_vec(),
            keep_alive,
        },
        consumed: body_start + content_length,
    }
}

/// Byte offset of the `\r\n\r\n` head terminator, if present.
fn find_head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

fn status_text(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        413 => "Payload Too Large",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        501 => "Not Implemented",
        503 => "Service Unavailable",
        505 => "HTTP Version Not Supported",
        _ => "Unknown",
    }
}

/// Render a complete response with `Content-Length` and the connection
/// disposition the server decided on.
pub fn response(status: u16, content_type: &str, body: &[u8], keep_alive: bool) -> Vec<u8> {
    let mut out = Vec::with_capacity(body.len() + 128);
    out.extend_from_slice(
        format!(
            "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: {}\r\n\r\n",
            status,
            status_text(status),
            content_type,
            body.len(),
            if keep_alive { "keep-alive" } else { "close" },
        )
        .as_bytes(),
    );
    out.extend_from_slice(body);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_get_with_query_string() {
        let raw = b"GET /stats?format=json HTTP/1.1\r\nHost: x\r\n\r\n";
        match parse(raw) {
            Parse::Complete { request, consumed } => {
                assert_eq!(request.method, "GET");
                assert_eq!(request.path, "/stats");
                assert_eq!(request.query, "format=json");
                assert!(request.body.is_empty());
                assert!(request.keep_alive);
                assert_eq!(consumed, raw.len());
            }
            other => panic!("expected complete, got {other:?}"),
        }
    }

    #[test]
    fn parses_post_body_and_pipelined_remainder() {
        let raw = b"POST /query HTTP/1.1\r\nContent-Length: 5\r\n\r\nhelloGET /";
        match parse(raw) {
            Parse::Complete { request, consumed } => {
                assert_eq!(request.body, b"hello");
                assert_eq!(consumed, raw.len() - 5);
            }
            other => panic!("expected complete, got {other:?}"),
        }
    }

    #[test]
    fn partial_until_body_arrives() {
        let raw = b"POST /query HTTP/1.1\r\nContent-Length: 5\r\n\r\nhel";
        assert!(matches!(parse(raw), Parse::Partial));
    }

    #[test]
    fn connection_close_and_http10_default() {
        let raw = b"GET / HTTP/1.1\r\nConnection: close\r\n\r\n";
        let Parse::Complete { request, .. } = parse(raw) else {
            panic!()
        };
        assert!(!request.keep_alive);
        let raw = b"GET / HTTP/1.0\r\n\r\n";
        let Parse::Complete { request, .. } = parse(raw) else {
            panic!()
        };
        assert!(!request.keep_alive);
    }

    #[test]
    fn protocol_errors() {
        assert!(matches!(
            parse(b"BOGUS\r\n\r\n"),
            Parse::Error { status: 400, .. }
        ));
        assert!(matches!(
            parse(b"GET / HTTP/2\r\n\r\n"),
            Parse::Error { status: 505, .. }
        ));
        assert!(matches!(
            parse(b"POST / HTTP/1.1\r\nContent-Length: 99999999\r\n\r\n"),
            Parse::Error { status: 413, .. }
        ));
        assert!(matches!(
            parse(b"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n"),
            Parse::Error { status: 501, .. }
        ));
    }

    #[test]
    fn response_shape() {
        let r = response(200, "application/json", b"{}", true);
        let s = String::from_utf8(r).unwrap();
        assert!(s.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(s.contains("Content-Length: 2\r\n"));
        assert!(s.contains("Connection: keep-alive\r\n"));
        assert!(s.ends_with("\r\n\r\n{}"));
    }
}
