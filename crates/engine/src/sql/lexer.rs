//! Tokenizer for the SQL subset.

use crate::error::{EngineError, Result};

/// A lexical token. Keywords are recognized case-insensitively and carried
/// as upper-cased `Keyword`s; identifiers keep their original spelling.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// SQL keyword (SELECT, FROM, WHERE, ...), upper-cased.
    Keyword(String),
    /// Column/table/alias identifier.
    Ident(String),
    /// Numeric literal.
    Number(f64),
    /// Single-quoted string literal (quotes stripped, `''` unescaped).
    Str(String),
    /// A symbol / operator: `( ) , ; * + - / = <> <= >= < >`.
    Symbol(&'static str),
}

const KEYWORDS: &[&str] = &[
    "SELECT", "FROM", "WHERE", "GROUP", "BY", "HAVING", "AS", "AND", "OR", "NOT", "BETWEEN", "SUM",
    "COUNT", "AVG", "MIN", "MAX",
];

/// Split `text` into tokens.
pub fn tokenize(text: &str) -> Result<Vec<Token>> {
    let bytes = text.as_bytes();
    let mut out = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            c if c.is_whitespace() => i += 1,
            '(' | ')' | ',' | ';' | '*' | '+' | '-' | '/' | '=' => {
                out.push(Token::Symbol(match c {
                    '(' => "(",
                    ')' => ")",
                    ',' => ",",
                    ';' => ";",
                    '*' => "*",
                    '+' => "+",
                    '-' => "-",
                    '/' => "/",
                    _ => "=",
                }));
                i += 1;
            }
            '<' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    out.push(Token::Symbol("<="));
                    i += 2;
                } else if bytes.get(i + 1) == Some(&b'>') {
                    out.push(Token::Symbol("<>"));
                    i += 2;
                } else {
                    out.push(Token::Symbol("<"));
                    i += 1;
                }
            }
            '>' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    out.push(Token::Symbol(">="));
                    i += 2;
                } else {
                    out.push(Token::Symbol(">"));
                    i += 1;
                }
            }
            '!' if bytes.get(i + 1) == Some(&b'=') => {
                out.push(Token::Symbol("<>"));
                i += 2;
            }
            '\'' => {
                let mut s = String::new();
                i += 1;
                loop {
                    match bytes.get(i) {
                        None => return Err(EngineError::Sql("unterminated string literal".into())),
                        Some(b'\'') if bytes.get(i + 1) == Some(&b'\'') => {
                            s.push('\'');
                            i += 2;
                        }
                        Some(b'\'') => {
                            i += 1;
                            break;
                        }
                        Some(&b) => {
                            s.push(b as char);
                            i += 1;
                        }
                    }
                }
                out.push(Token::Str(s));
            }
            c if c.is_ascii_digit() || c == '.' => {
                let start = i;
                while i < bytes.len()
                    && ((bytes[i] as char).is_ascii_digit()
                        || bytes[i] == b'.'
                        || bytes[i] == b'e'
                        || bytes[i] == b'E'
                        || ((bytes[i] == b'+' || bytes[i] == b'-')
                            && i > start
                            && (bytes[i - 1] == b'e' || bytes[i - 1] == b'E')))
                {
                    i += 1;
                }
                let lit = &text[start..i];
                let v: f64 = lit
                    .parse()
                    .map_err(|_| EngineError::Sql(format!("bad numeric literal `{lit}`")))?;
                out.push(Token::Number(v));
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < bytes.len()
                    && ((bytes[i] as char).is_ascii_alphanumeric() || bytes[i] == b'_')
                {
                    i += 1;
                }
                let word = &text[start..i];
                let upper = word.to_ascii_uppercase();
                if KEYWORDS.contains(&upper.as_str()) {
                    out.push(Token::Keyword(upper));
                } else {
                    out.push(Token::Ident(word.to_string()));
                }
            }
            other => {
                return Err(EngineError::Sql(format!(
                    "unexpected character `{other}` in query"
                )))
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokenizes_figure2_query() {
        let toks = tokenize(
            "select l_returnflag, sum(l_quantity) from lineitem \
             where l_shipdate <= '01-SEP-98' group by l_returnflag;",
        )
        .unwrap();
        assert_eq!(toks[0], Token::Keyword("SELECT".into()));
        assert_eq!(toks[1], Token::Ident("l_returnflag".into()));
        assert!(toks.contains(&Token::Str("01-SEP-98".into())));
        assert!(toks.contains(&Token::Symbol("<=")));
        assert_eq!(*toks.last().unwrap(), Token::Symbol(";"));
    }

    #[test]
    fn numbers_and_operators() {
        let toks = tokenize("1.5 + 2e3 >= .25 <> != x").unwrap();
        assert_eq!(toks[0], Token::Number(1.5));
        assert_eq!(toks[2], Token::Number(2000.0));
        assert_eq!(toks[3], Token::Symbol(">="));
        assert_eq!(toks[4], Token::Number(0.25));
        assert_eq!(toks[5], Token::Symbol("<>"));
        assert_eq!(toks[6], Token::Symbol("<>")); // != normalizes
    }

    #[test]
    fn string_escaping() {
        let toks = tokenize("'it''s'").unwrap();
        assert_eq!(toks[0], Token::Str("it's".into()));
        assert!(tokenize("'open").is_err());
    }

    #[test]
    fn keywords_case_insensitive() {
        let toks = tokenize("SeLeCt CoUnT gRoUp").unwrap();
        assert_eq!(toks[0], Token::Keyword("SELECT".into()));
        assert_eq!(toks[1], Token::Keyword("COUNT".into()));
        assert_eq!(toks[2], Token::Keyword("GROUP".into()));
    }

    #[test]
    fn rejects_garbage() {
        assert!(tokenize("select @foo").is_err());
    }
}
