//! Congress restricted to a chosen set of groupings — the paper's "we show
//! how congressional samples can be specialized to specific subsets of
//! group-by queries" (§1, contributions; §4.5–4.6 are the `{∅, G}` and
//! full-lattice instances).
//!
//! When the workload is known to only ever group on certain `T`s (e.g.
//! reports always roll up by `{returnflag}` or `{returnflag, linestatus}`
//! but never by `shipdate` alone), maximizing over just those groupings
//! wastes no space on the others and yields a larger scale-down factor `f`
//! — strictly better guarantees for the groupings that matter.

use crate::alloc::{check_space, scale_to_budget, Allocation, AllocationStrategy};
use crate::census::GroupCensus;
use crate::error::{CongressError, Result};
use crate::lattice::Grouping;

/// Congressional allocation over an explicit set of groupings.
#[derive(Debug, Clone)]
pub struct SubsetCongress {
    groupings: Vec<Grouping>,
}

impl SubsetCongress {
    /// Allocation maximizing over exactly `groupings` (duplicates are
    /// ignored). At least one grouping is required.
    pub fn new(mut groupings: Vec<Grouping>) -> Result<SubsetCongress> {
        groupings.sort();
        groupings.dedup();
        if groupings.is_empty() {
            return Err(CongressError::InvalidSpec(
                "subset congress needs at least one grouping".into(),
            ));
        }
        Ok(SubsetCongress { groupings })
    }

    /// The `{∅, G}` instance — literally Basic Congress.
    pub fn basic(attribute_count: usize) -> SubsetCongress {
        SubsetCongress {
            groupings: vec![Grouping::EMPTY, Grouping::full(attribute_count)],
        }
    }

    /// The groupings being optimized for.
    pub fn groupings(&self) -> &[Grouping] {
        &self.groupings
    }
}

impl AllocationStrategy for SubsetCongress {
    fn name(&self) -> &'static str {
        "Subset Congress"
    }

    fn allocate(&self, census: &GroupCensus, space: f64) -> Result<Allocation> {
        check_space(space)?;
        let full = Grouping::full(census.attribute_count());
        let mut raw = vec![0.0f64; census.group_count()];
        for &t in &self.groupings {
            if !t.is_subset_of(full) {
                return Err(CongressError::InvalidSpec(format!(
                    "grouping {t:?} is not a subset of the census's G"
                )));
            }
            let view = census.supergroups(t);
            let per_group = space / view.group_count as f64;
            for (g, &h) in view.supergroup_of.iter().enumerate() {
                let s = per_group * census.sizes()[g] as f64 / view.sizes[h as usize] as f64;
                if s > raw[g] {
                    raw[g] = s;
                }
            }
        }
        Ok(scale_to_budget(raw, space))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alloc::{BasicCongress, Congress, House, Senate};
    use crate::census::test_support::figure5_census;
    use crate::lattice::all_groupings;

    #[test]
    fn basic_instance_matches_basic_congress() {
        let c = figure5_census(1);
        let sc = SubsetCongress::basic(2);
        let a = sc.allocate(&c, 100.0).unwrap();
        let b = BasicCongress.allocate(&c, 100.0).unwrap();
        for (x, y) in a.targets().iter().zip(b.targets()) {
            assert!((x - y).abs() < 1e-9);
        }
    }

    #[test]
    fn full_lattice_matches_congress() {
        let c = figure5_census(1);
        let sc = SubsetCongress::new(all_groupings(2).collect()).unwrap();
        let a = sc.allocate(&c, 100.0).unwrap();
        let b = Congress.allocate(&c, 100.0).unwrap();
        for (x, y) in a.targets().iter().zip(b.targets()) {
            assert!((x - y).abs() < 1e-9);
        }
    }

    #[test]
    fn singleton_instances_match_house_and_senate() {
        let c = figure5_census(1);
        let only_empty = SubsetCongress::new(vec![Grouping::EMPTY]).unwrap();
        let a = only_empty.allocate(&c, 100.0).unwrap();
        let h = House.allocate(&c, 100.0).unwrap();
        for (x, y) in a.targets().iter().zip(h.targets()) {
            assert!((x - y).abs() < 1e-9);
        }
        let only_full = SubsetCongress::new(vec![Grouping::full(2)]).unwrap();
        let a = only_full.allocate(&c, 100.0).unwrap();
        let s = Senate.allocate(&c, 100.0).unwrap();
        for (x, y) in a.targets().iter().zip(s.targets()) {
            assert!((x - y).abs() < 1e-9);
        }
    }

    #[test]
    fn fewer_groupings_never_shrink_f() {
        // Dropping groupings from the max can only lower Σ raw, so f (the
        // guarantee multiplier) is monotone: subset f ≥ full-lattice f.
        let c = figure5_census(1);
        let full_f = Congress.allocate(&c, 100.0).unwrap().scale_down_factor();
        for t in all_groupings(2) {
            let sc = SubsetCongress::new(vec![t, Grouping::EMPTY]).unwrap();
            let f = sc.allocate(&c, 100.0).unwrap().scale_down_factor();
            assert!(
                f >= full_f - 1e-12,
                "subset {{∅, {t:?}}} has f {f} < full {full_f}"
            );
        }
    }

    #[test]
    fn validation() {
        assert!(SubsetCongress::new(vec![]).is_err());
        let c = figure5_census(1); // |G| = 2
        let sc = SubsetCongress::new(vec![Grouping::from_positions(&[4])]).unwrap();
        assert!(sc.allocate(&c, 10.0).is_err());
        // Duplicates collapse.
        let sc = SubsetCongress::new(vec![Grouping::EMPTY, Grouping::EMPTY]).unwrap();
        assert_eq!(sc.groupings().len(), 1);
    }
}
