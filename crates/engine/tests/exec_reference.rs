//! Property test: the hash-aggregation executor agrees with a naive
//! reference implementation on arbitrary small relations and queries.

use std::collections::BTreeMap;

use engine::{execute_exact, AggregateFn, AggregateSpec, GroupByQuery, QueryResult};
use proptest::prelude::*;
use relation::{ColumnId, DataType, Expr, GroupKey, Predicate, Relation, RelationBuilder, Value};

/// Row domain kept tiny so groups collide often.
#[derive(Debug, Clone)]
struct Row {
    a: i64,
    b: &'static str,
    v: f64,
}

fn row_strategy() -> impl Strategy<Value = Row> {
    (
        0i64..4,
        prop_oneof![Just("x"), Just("y"), Just("z")],
        -100.0f64..100.0,
    )
        .prop_map(|(a, b, v)| Row { a, b, v })
}

fn relation_of(rows: &[Row]) -> Relation {
    let mut b = RelationBuilder::new()
        .column("a", DataType::Int)
        .column("b", DataType::Str)
        .column("v", DataType::Float);
    for r in rows {
        b.push_row(&[Value::Int(r.a), Value::str(r.b), Value::from(r.v)])
            .unwrap();
    }
    b.finish()
}

/// Naive reference: BTreeMap-grouped scalar loops.
fn reference(rows: &[Row], grouping: &[usize], threshold: Option<f64>) -> QueryResult {
    let mut groups: BTreeMap<GroupKey, Vec<f64>> = BTreeMap::new();
    for r in rows {
        if let Some(t) = threshold {
            if r.v < t {
                continue;
            }
        }
        let mut key = Vec::new();
        for &g in grouping {
            key.push(match g {
                0 => Value::Int(r.a),
                _ => Value::str(r.b),
            });
        }
        groups.entry(GroupKey::new(key)).or_default().push(r.v);
    }
    let rows: Vec<(GroupKey, Vec<f64>)> = groups
        .into_iter()
        .map(|(k, vals)| {
            let sum: f64 = vals.iter().sum();
            let count = vals.len() as f64;
            let avg = sum / count;
            let min = vals.iter().copied().fold(f64::INFINITY, f64::min);
            let max = vals.iter().copied().fold(f64::NEG_INFINITY, f64::max);
            (k, vec![sum, count, avg, min, max])
        })
        .collect();
    QueryResult::new(
        vec!["s".into(), "c".into(), "a".into(), "mn".into(), "mx".into()],
        rows,
    )
}

fn full_query(grouping: Vec<ColumnId>, threshold: Option<f64>) -> GroupByQuery {
    let v = Expr::col(ColumnId(2));
    let mut q = GroupByQuery::new(
        grouping,
        vec![
            AggregateSpec::sum(v.clone(), "s"),
            AggregateSpec::count("c"),
            AggregateSpec::avg(v.clone(), "a"),
            AggregateSpec::min(v.clone(), "mn"),
            AggregateSpec::max(v, "mx"),
        ],
    );
    if let Some(t) = threshold {
        q = q.with_predicate(Predicate::ge(ColumnId(2), t));
    }
    q
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn executor_matches_reference(
        rows in proptest::collection::vec(row_strategy(), 1..60),
        grouping_choice in 0usize..4,
        threshold in proptest::option::of(-50.0f64..50.0),
    ) {
        let rel = relation_of(&rows);
        let (cols, positions): (Vec<ColumnId>, Vec<usize>) = match grouping_choice {
            0 => (vec![], vec![]),
            1 => (vec![ColumnId(0)], vec![0]),
            2 => (vec![ColumnId(1)], vec![1]),
            _ => (vec![ColumnId(0), ColumnId(1)], vec![0, 1]),
        };
        let got = execute_exact(&rel, &full_query(cols, threshold)).unwrap();
        let want = reference(&rows, &positions, threshold);

        prop_assert_eq!(got.group_count(), want.group_count());
        for ((k1, v1), (k2, v2)) in got.rows().iter().zip(want.rows()) {
            prop_assert_eq!(k1, k2);
            for (x, y) in v1.iter().zip(v2) {
                prop_assert!((x - y).abs() < 1e-9 * (1.0 + y.abs()),
                    "{} vs {} at {}", x, y, k1);
            }
        }
    }

    /// SUM/COUNT decompose: the per-group totals of any grouping sum to
    /// the scalar total (no predicate).
    #[test]
    fn group_totals_sum_to_scalar(
        rows in proptest::collection::vec(row_strategy(), 1..60),
    ) {
        let rel = relation_of(&rows);
        let scalar = execute_exact(&rel, &full_query(vec![], None)).unwrap();
        let total = scalar.rows()[0].1[0];
        for cols in [vec![ColumnId(0)], vec![ColumnId(1)], vec![ColumnId(0), ColumnId(1)]] {
            let grouped = execute_exact(&rel, &full_query(cols, None)).unwrap();
            let sum: f64 = grouped.rows().iter().map(|(_, v)| v[0]).sum();
            prop_assert!((sum - total).abs() < 1e-7 * (1.0 + total.abs()));
        }
    }

    /// MIN ≤ AVG ≤ MAX per group, always.
    #[test]
    fn avg_between_min_and_max(
        rows in proptest::collection::vec(row_strategy(), 1..60),
    ) {
        let rel = relation_of(&rows);
        let r = execute_exact(&rel, &full_query(vec![ColumnId(0), ColumnId(1)], None)).unwrap();
        for (_, vals) in r.iter() {
            let (avg, mn, mx) = (vals[2], vals[3], vals[4]);
            prop_assert!(mn <= avg + 1e-9 && avg <= mx + 1e-9);
        }
    }
}

/// Sanity: the AggregateFn enum round-trips through the reference columns.
#[test]
fn aggregate_order_matches_reference_layout() {
    assert!(AggregateFn::Sum.unbiased_under_scaling());
    let rows = vec![
        Row {
            a: 1,
            b: "x",
            v: 2.0,
        },
        Row {
            a: 1,
            b: "x",
            v: 4.0,
        },
    ];
    let rel = relation_of(&rows);
    let got = execute_exact(&rel, &full_query(vec![ColumnId(0)], None)).unwrap();
    assert_eq!(got.rows()[0].1, vec![6.0, 2.0, 3.0, 2.0, 4.0]);
}
