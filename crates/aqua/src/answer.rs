//! Approximate answers with per-group error bounds (Figures 2 and 4).

use std::collections::HashMap;
use std::fmt;

use std::sync::Arc;

use congress::bounds::{
    avg_bound_hoeffding, stratified_avg_bound, stratified_sum_bound, ErrorBound, Moments,
};
use engine::rewrite::measure_key;
use engine::{
    AggregateFn, GroupByQuery, GroupIndex, QueryCache, QueryResult, StratifiedInput, StratumCell,
    StratumSummary,
};
use relation::GroupKey;

use crate::error::Result;

/// Error bounds for one output group, one entry per aggregate in the
/// query's SELECT list (`None` for MIN/MAX, which have no distribution-free
/// bound from a sample).
#[derive(Debug, Clone)]
pub struct GroupBounds {
    /// The group key.
    pub key: GroupKey,
    /// Per-aggregate bounds, aligned with the query's aggregates.
    pub bounds: Vec<Option<ErrorBound>>,
}

/// How an answer was produced, so callers can tell a genuine synopsis
/// estimate from a degraded-mode exact scan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AnswerProvenance {
    /// The normal path: estimated from the congressional synopsis.
    Sampled,
    /// Degraded mode: the synopsis was unavailable (e.g. quarantined after
    /// corruption) and the answer is an exact scan of the base relation.
    ExactFallback {
        /// Why the synopsis path was bypassed.
        reason: String,
    },
}

/// An approximate answer: scaled estimates plus bounds at the configured
/// confidence — the shape of the paper's Figure 4 output.
#[derive(Debug, Clone)]
pub struct ApproximateAnswer {
    /// Scaled estimates per group.
    pub result: QueryResult,
    /// Per-group error bounds (same key order as `result`).
    pub bounds: Vec<GroupBounds>,
    /// Confidence level the bounds hold at.
    pub confidence: f64,
    /// Which path produced the answer.
    pub provenance: AnswerProvenance,
}

impl ApproximateAnswer {
    /// Bound lookup by group key.
    pub fn bounds_for(&self, key: &GroupKey) -> Option<&GroupBounds> {
        self.bounds.iter().find(|b| &b.key == key)
    }

    /// `true` when the answer came from an exact scan rather than the
    /// synopsis (degraded mode).
    pub fn is_degraded(&self) -> bool {
        matches!(self.provenance, AnswerProvenance::ExactFallback { .. })
    }
}

impl fmt::Display for ApproximateAnswer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if let AnswerProvenance::ExactFallback { reason } = &self.provenance {
            writeln!(f, "[degraded: exact scan — {reason}]")?;
        }
        writeln!(
            f,
            "group | {} (±bound @ {:.0}% confidence)",
            self.result.aggregate_names.join(" | "),
            self.confidence * 100.0
        )?;
        for (i, (key, vals)) in self.result.iter().enumerate() {
            write!(f, "{key}")?;
            for (j, v) in vals.iter().enumerate() {
                let b = self.bounds.get(i).and_then(|gb| gb.bounds[j]);
                match b {
                    Some(b) => write!(f, " | {:.4e} ± {:.1e}", v, b.half_width)?,
                    None => write!(f, " | {v:.4e}")?,
                }
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

/// Compute per-group, per-aggregate error bounds for `query` over a
/// stratified sample.
///
/// For each output group `h` and contributing stratum `i`, the bound
/// machinery needs the moments of the aggregate input over the sampled
/// tuples and the stratum's (estimated) population within `h`:
/// `N_i = SF_i × (sampled tuples of stratum i in h)`. SUM and COUNT use
/// the stratified-sum Chebyshev bound over *predicate-indicator* values
/// (so tuples failing the WHERE clause contribute zeros, exactly like the
/// rewritten SQL); AVG uses the stratified mean bound over qualifying
/// tuples, falling back to Hoeffding when only one stratum contributes.
pub fn compute_bounds(
    input: &StratifiedInput,
    query: &GroupByQuery,
    result: &QueryResult,
    confidence: f64,
) -> Result<Vec<GroupBounds>> {
    compute_bounds_cached(input, query, result, confidence, None)
}

/// [`compute_bounds`] with an optional per-synopsis [`QueryCache`]: the
/// unfiltered group index over the sample is the same one the rewrite
/// strategies memoize, so the warm path skips rebuilding it here too.
pub fn compute_bounds_cached(
    input: &StratifiedInput,
    query: &GroupByQuery,
    result: &QueryResult,
    confidence: f64,
    cache: Option<&QueryCache>,
) -> Result<Vec<GroupBounds>> {
    let rel = &input.rows;

    // O(groups) fast path: when the predicate is determined by the grouping
    // columns alone, every surviving result group is fully selected, so
    // cached per-(group, stratum) moment cells reproduce the scan's
    // moments exactly — no row scan, no masked evaluation.
    if let Some(cache) = cache {
        if rel.row_count() > 0 && query.predicate.references_only(&query.grouping) {
            return bounds_from_summaries(input, query, result, confidence, cache);
        }
    }

    let mask = query.predicate.eval(rel);
    // Group rows by the *query's* grouping (not the strata grouping).
    let index: Arc<GroupIndex> = match cache {
        Some(c) => c.index_for(rel, &query.grouping, false),
        None => Arc::new(GroupIndex::build(rel, &query.grouping)),
    };

    // Masked evaluation: unselected slots come back 0.0, which is exactly
    // what the indicator-moment accumulation below pushes for them anyway.
    let exprs: Vec<Option<Vec<f64>>> = query
        .aggregates
        .iter()
        .map(|a| {
            a.expr
                .as_ref()
                .map(|e| e.eval_masked(rel, &mask))
                .transpose()
        })
        .collect::<std::result::Result<_, _>>()
        .map_err(crate::AquaError::from)?;

    // Per (group, stratum): moments of v·sel over all sampled tuples
    // (sum/count bound) and of v over selected tuples (avg bound), plus
    // tuple counts.
    type Cell = (Vec<Moments>, Vec<Moments>, u64, u64); // (all, sel, n_all, n_sel)
    let aggs = query.aggregates.len();
    let mut cells: HashMap<(u32, u32), Cell> = HashMap::new();
    for row in 0..rel.row_count() {
        let g = index.group_of(row);
        if g == u32::MAX {
            continue;
        }
        let s = input.stratum_of_row[row];
        let cell = cells
            .entry((g, s))
            .or_insert_with(|| (vec![Moments::new(); aggs], vec![Moments::new(); aggs], 0, 0));
        cell.2 += 1;
        let sel = mask.get(row);
        if sel {
            cell.3 += 1;
        }
        for (ai, e) in exprs.iter().enumerate() {
            let v = e.as_ref().map_or(1.0, |vals| vals[row]);
            cell.0[ai].push(if sel { v } else { 0.0 });
            if sel {
                cell.1[ai].push(v);
            }
        }
    }

    // Assemble per result group. Sort each group's strata by stratum id:
    // the bound formulas fold floating-point terms in vec order, and the
    // HashMap above iterates in a random order, so without the sort two
    // identical calls could disagree in the last bits (and the scan path
    // would not match the summary path, which is id-sorted by build).
    let mut per_group: HashMap<u32, Vec<(u32, Cell)>> = HashMap::new();
    for ((g, s), cell) in cells {
        per_group.entry(g).or_default().push((s, cell));
    }
    for strata in per_group.values_mut() {
        strata.sort_unstable_by_key(|&(s, _)| s);
    }
    let mut out = Vec::with_capacity(result.group_count());
    for (key, _) in result.iter() {
        // Map result keys back to index group ids via the index's memoized
        // reverse map (built once per index, shared by every query).
        let Some(gid) = index.gid_of_key(key) else {
            out.push(GroupBounds {
                key: key.clone(),
                bounds: vec![None; aggs],
            });
            continue;
        };
        let strata = per_group.get(&gid).map_or(&[][..], |v| &v[..]);
        let mut bounds = Vec::with_capacity(aggs);
        for (ai, spec) in query.aggregates.iter().enumerate() {
            let bound = match spec.func {
                AggregateFn::Sum | AggregateFn::Count => {
                    let parts: Vec<(Moments, f64, u64)> = strata
                        .iter()
                        .map(|(s, cell)| {
                            let sf = input.scale_factors[*s as usize];
                            let pop = (sf * cell.2 as f64).round() as u64;
                            (cell.0[ai], sf, pop.max(cell.2))
                        })
                        .collect();
                    Some(stratified_sum_bound(&parts, confidence))
                }
                AggregateFn::Avg => {
                    let parts: Vec<(Moments, f64, u64)> = strata
                        .iter()
                        .filter(|(_, cell)| cell.3 > 0)
                        .map(|(s, cell)| {
                            let sf = input.scale_factors[*s as usize];
                            let pop = (sf * cell.3 as f64).round() as u64;
                            (cell.1[ai], sf, pop.max(cell.3))
                        })
                        .collect();
                    if parts.len() == 1 {
                        Some(avg_bound_hoeffding(&parts[0].0, confidence))
                    } else {
                        Some(stratified_avg_bound(&parts, confidence))
                    }
                }
                AggregateFn::Min | AggregateFn::Max => None,
            };
            bounds.push(bound);
        }
        out.push(GroupBounds {
            key: key.clone(),
            bounds,
        });
    }
    Ok(out)
}

/// Bounds served from cached [`StratumSummary`] tables — the O(groups)
/// path for predicates over the grouping columns alone (including no
/// predicate at all).
///
/// Bit-identity with the scan path: every result group is fully selected
/// (group-determined predicates drop excluded groups from `result`
/// entirely), so the scan's indicator moments over *all* tuples equal its
/// moments over *selected* tuples equal the cached cells, which
/// [`StratumSummary::build`] folds in the same row order with the same
/// float operations as `Moments::push`. Both paths then combine strata
/// sorted by stratum id, so even the fold order of the bound formulas
/// matches.
fn bounds_from_summaries(
    input: &StratifiedInput,
    query: &GroupByQuery,
    result: &QueryResult,
    confidence: f64,
    cache: &QueryCache,
) -> Result<Vec<GroupBounds>> {
    let rel = &input.rows;
    let index = cache.index_for(rel, &query.grouping, false);
    let aggs = query.aggregates.len();

    // One cached per-(group, stratum) moment table per bounded aggregate
    // (MIN/MAX have no distribution-free bound and need no table).
    let mut tables: Vec<Option<Arc<StratumSummary>>> = Vec::with_capacity(aggs);
    for spec in &query.aggregates {
        let table = match spec.func {
            AggregateFn::Min | AggregateFn::Max => None,
            _ => Some(cache.stratum_summary_for(
                &query.grouping,
                &measure_key(spec.expr.as_ref()),
                || {
                    let values = spec.expr.as_ref().map(|e| e.eval(rel)).transpose()?;
                    Ok(StratumSummary::build(
                        &index,
                        &input.stratum_of_row,
                        values.as_deref(),
                    ))
                },
            )?),
        };
        tables.push(table);
    }

    let moments = |cell: &StratumCell| Moments {
        n: cell.count,
        sum: cell.sum,
        sum_sq: cell.sum_sq,
        min: cell.min,
        max: cell.max,
    };

    let mut out = Vec::with_capacity(result.group_count());
    for (key, _) in result.iter() {
        let Some(gid) = index.gid_of_key(key) else {
            out.push(GroupBounds {
                key: key.clone(),
                bounds: vec![None; aggs],
            });
            continue;
        };
        let mut bounds = Vec::with_capacity(aggs);
        for (ai, spec) in query.aggregates.iter().enumerate() {
            let bound = match spec.func {
                AggregateFn::Sum | AggregateFn::Count => {
                    let strata = tables[ai].as_ref().expect("table built").strata_of(gid);
                    let parts: Vec<(Moments, f64, u64)> = strata
                        .iter()
                        .map(|(s, cell)| {
                            let sf = input.scale_factors[*s as usize];
                            let pop = (sf * cell.count as f64).round() as u64;
                            (moments(cell), sf, pop.max(cell.count))
                        })
                        .collect();
                    Some(stratified_sum_bound(&parts, confidence))
                }
                AggregateFn::Avg => {
                    let strata = tables[ai].as_ref().expect("table built").strata_of(gid);
                    let parts: Vec<(Moments, f64, u64)> = strata
                        .iter()
                        .map(|(s, cell)| {
                            let sf = input.scale_factors[*s as usize];
                            let pop = (sf * cell.count as f64).round() as u64;
                            (moments(cell), sf, pop.max(cell.count))
                        })
                        .collect();
                    if parts.len() == 1 {
                        Some(avg_bound_hoeffding(&parts[0].0, confidence))
                    } else {
                        Some(stratified_avg_bound(&parts, confidence))
                    }
                }
                AggregateFn::Min | AggregateFn::Max => None,
            };
            bounds.push(bound);
        }
        out.push(GroupBounds {
            key: key.clone(),
            bounds,
        });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use engine::rewrite::{Integrated, SamplePlan};
    use engine::AggregateSpec;
    use relation::{ColumnId, DataType, Expr, Predicate, RelationBuilder, Value};

    /// Base of 100 rows in 2 groups (80/20); stratified sample of 10+10.
    fn fixture() -> (StratifiedInput, GroupByQuery) {
        let mut b = RelationBuilder::new()
            .column("g", DataType::Str)
            .column("v", DataType::Float);
        for i in 0..100i64 {
            let g = if i < 80 { "big" } else { "small" };
            b.push_row(&[Value::str(g), Value::from((i % 13) as f64)])
                .unwrap();
        }
        let base = b.finish();
        let rows: Vec<usize> = (0..80).step_by(8).chain((80..100).step_by(2)).collect();
        let sampled = base.gather(&rows);
        let input = StratifiedInput {
            rows: sampled,
            stratum_of_row: (0..20).map(|i| u32::from(i >= 10)).collect(),
            scale_factors: vec![8.0, 2.0],
            strata_keys: vec![
                GroupKey::new(vec![Value::str("big")]),
                GroupKey::new(vec![Value::str("small")]),
            ],
            grouping_columns: vec![ColumnId(0)],
        };
        input.validate().unwrap();
        let q = GroupByQuery::new(
            vec![ColumnId(0)],
            vec![
                AggregateSpec::sum(Expr::col(ColumnId(1)), "s"),
                AggregateSpec::count("c"),
                AggregateSpec::avg(Expr::col(ColumnId(1)), "a"),
            ],
        );
        (input, q)
    }

    #[test]
    fn bounds_cover_every_group_and_aggregate() {
        let (input, q) = fixture();
        let plan = Integrated::build(&input).unwrap();
        let result = plan.execute(&q).unwrap();
        let bounds = compute_bounds(&input, &q, &result, 0.9).unwrap();
        assert_eq!(bounds.len(), result.group_count());
        for gb in &bounds {
            assert_eq!(gb.bounds.len(), 3);
            for b in gb.bounds.iter().flatten() {
                assert!(b.half_width.is_finite());
                assert!(b.half_width >= 0.0);
                assert_eq!(b.confidence, 0.9);
            }
        }
    }

    #[test]
    fn count_bound_zero_when_stratum_fully_selected_uniformly() {
        // COUNT over a fully-sampled stratum with no predicate: indicator
        // variance is zero → bound is exactly 0.
        let (mut input, _) = fixture();
        input.scale_factors = vec![1.0, 1.0]; // pretend fully sampled
        let q = GroupByQuery::new(vec![ColumnId(0)], vec![AggregateSpec::count("c")]);
        let plan = Integrated::build(&input).unwrap();
        let result = plan.execute(&q).unwrap();
        let bounds = compute_bounds(&input, &q, &result, 0.9).unwrap();
        for gb in &bounds {
            assert_eq!(gb.bounds[0].unwrap().half_width, 0.0);
        }
    }

    #[test]
    fn min_max_have_no_bounds() {
        let (input, _) = fixture();
        let q = GroupByQuery::new(
            vec![ColumnId(0)],
            vec![AggregateSpec::min(Expr::col(ColumnId(1)), "mn")],
        );
        let plan = Integrated::build(&input).unwrap();
        let result = plan.execute(&q).unwrap();
        let bounds = compute_bounds(&input, &q, &result, 0.9).unwrap();
        assert!(bounds.iter().all(|gb| gb.bounds[0].is_none()));
    }

    #[test]
    fn predicate_widens_sum_bound_via_indicators() {
        let (input, _) = fixture();
        let plan = Integrated::build(&input).unwrap();
        let q_all = GroupByQuery::new(vec![ColumnId(0)], vec![AggregateSpec::count("c")]);
        // A ~50% predicate creates indicator variance where none existed.
        let q_half = q_all
            .clone()
            .with_predicate(Predicate::ge(ColumnId(1), 6.0));
        let r_all = plan.execute(&q_all).unwrap();
        let r_half = plan.execute(&q_half).unwrap();
        let b_all = compute_bounds(&input, &q_all, &r_all, 0.9).unwrap();
        let b_half = compute_bounds(&input, &q_half, &r_half, 0.9).unwrap();
        let key = GroupKey::new(vec![Value::str("big")]);
        let w_all = b_all.iter().find(|g| g.key == key).unwrap().bounds[0]
            .unwrap()
            .half_width;
        let w_half = b_half.iter().find(|g| g.key == key).unwrap().bounds[0]
            .unwrap()
            .half_width;
        assert!(
            w_half > w_all,
            "predicate indicator variance: {w_half} vs {w_all}"
        );
    }

    #[test]
    fn display_renders_bounds() {
        let (input, q) = fixture();
        let plan = Integrated::build(&input).unwrap();
        let result = plan.execute(&q).unwrap();
        let bounds = compute_bounds(&input, &q, &result, 0.9).unwrap();
        let ans = ApproximateAnswer {
            result,
            bounds,
            confidence: 0.9,
            provenance: AnswerProvenance::Sampled,
        };
        let s = ans.to_string();
        assert!(s.contains('±') && s.contains("90%"));
        assert!(!s.contains("degraded") && !ans.is_degraded());
        assert!(ans
            .bounds_for(&GroupKey::new(vec![Value::str("big")]))
            .is_some());
    }

    #[test]
    fn display_flags_degraded_answers() {
        let (input, q) = fixture();
        let plan = Integrated::build(&input).unwrap();
        let result = plan.execute(&q).unwrap();
        let ans = ApproximateAnswer {
            result,
            bounds: Vec::new(),
            confidence: 1.0,
            provenance: AnswerProvenance::ExactFallback {
                reason: "synopsis quarantined".into(),
            },
        };
        assert!(ans.is_degraded());
        let s = ans.to_string();
        assert!(s.contains("degraded") && s.contains("synopsis quarantined"));
    }
}
