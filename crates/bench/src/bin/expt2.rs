//! Experiment 2 (§7.2.2, Figure 17): sensitivity of `Q_{g2}` accuracy to
//! sample size, at the default skew z = 0.86.
//!
//! Run: `cargo run -p bench --release --bin expt2 [-- --quick]`
//!
//! Paper-expected shape: all errors drop with more space; House flattens
//! (extra space goes to large groups); Congress drops rapidly.

use aqua::SamplingStrategy;
use bench::harness::{accuracy_for_strategy, ExperimentSetup, QuerySet};
use bench::report::{pct, Table};
use tpcd::GeneratorConfig;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let config = GeneratorConfig {
        table_size: if quick { 100_000 } else { 1_000_000 },
        num_groups: 1000,
        group_skew: 0.86,
        agg_skew: 0.86,
        seed: 20000515,
    };
    let trials = if quick { 2 } else { 5 };
    let fractions: &[f64] = if quick {
        &[0.01, 0.07, 0.25, 0.75]
    } else {
        &[0.01, 0.02, 0.05, 0.07, 0.10, 0.20, 0.35, 0.50, 0.75]
    };

    eprintln!(
        "generating lineitem: T={}, NG={}, z={} ...",
        config.table_size, config.num_groups, config.group_skew
    );
    let setup = ExperimentSetup::new(config);

    let mut table = Table::new(
        "Figure 17: Qg2 mean error % vs sample percentage (z=0.86) \
         [expect: all drop; House flattens; Congress drops fast]",
        &["SP %", "House", "Senate", "Basic Congress", "Congress"],
    );
    for &f in fractions {
        let mut cells = vec![format!("{:.0}", f * 100.0)];
        for strategy in SamplingStrategy::all() {
            let acc = accuracy_for_strategy(&setup, strategy, QuerySet::Qg2, f, trials, 17_000);
            cells.push(pct(acc.mean_error_pct));
        }
        table.row(&cells);
        eprintln!("  SP={:.0}%: done", f * 100.0);
    }
    println!("{table}");
}
