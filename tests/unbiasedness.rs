//! Statistical integration tests: the stratified estimators of §5.1 are
//! unbiased (SUM/COUNT exactly; AVG asymptotically), and the error bounds
//! of the Aqua layer actually cover the truth at their confidence level.

use aqua::{Aqua, AquaConfig, RewriteChoice, SamplingStrategy};
use congress::alloc::Congress;
use congress::CongressionalSample;
use engine::rewrite::{Integrated, SamplePlan};
use engine::{execute_exact, AggregateSpec, GroupByQuery};
use rand::rngs::StdRng;
use rand::SeedableRng;
use relation::{Expr, GroupKey};
use tpcd::{GeneratorConfig, TpcdDataset};

fn dataset() -> TpcdDataset {
    TpcdDataset::generate(GeneratorConfig {
        table_size: 20_000,
        num_groups: 27,
        group_skew: 1.0,
        agg_skew: 0.86,
        seed: 2_718,
    })
}

#[test]
fn sum_and_count_estimators_are_unbiased() {
    let ds = dataset();
    let cols = ds.grouping_columns();
    let census = congress::GroupCensus::build(&ds.relation, &cols).unwrap();
    let q = GroupByQuery::new(
        vec![ds.ids.l_returnflag],
        vec![
            AggregateSpec::sum(Expr::col(ds.ids.l_quantity), "s"),
            AggregateSpec::count("c"),
        ],
    );
    let exact = execute_exact(&ds.relation, &q).unwrap();

    let trials = 60u64;
    let mut sums: std::collections::HashMap<GroupKey, (f64, f64)> = Default::default();
    for t in 0..trials {
        let mut rng = StdRng::seed_from_u64(3_000 + t);
        let sample =
            CongressionalSample::draw(&ds.relation, &census, &Congress, 1_500.0, &mut rng).unwrap();
        let input = sample.to_stratified_input(&ds.relation).unwrap();
        let plan = Integrated::build(&input).unwrap();
        let approx = plan.execute(&q).unwrap();
        for (key, vals) in approx.iter() {
            let e = sums.entry(key.clone()).or_insert((0.0, 0.0));
            e.0 += vals[0] / trials as f64;
            e.1 += vals[1] / trials as f64;
        }
    }
    for (key, evals) in exact.iter() {
        let (mean_sum, mean_count) = sums[key];
        assert!(
            (mean_sum - evals[0]).abs() < evals[0] * 0.03,
            "SUM bias at {key}: {mean_sum} vs {}",
            evals[0]
        );
        assert!(
            (mean_count - evals[1]).abs() < evals[1] * 0.03,
            "COUNT bias at {key}: {mean_count} vs {}",
            evals[1]
        );
    }
}

#[test]
fn avg_estimator_converges() {
    let ds = dataset();
    let cols = ds.grouping_columns();
    let census = congress::GroupCensus::build(&ds.relation, &cols).unwrap();
    let q = GroupByQuery::new(
        vec![ds.ids.l_linestatus],
        vec![AggregateSpec::avg(Expr::col(ds.ids.l_quantity), "a")],
    );
    let exact = execute_exact(&ds.relation, &q).unwrap();
    let trials = 40u64;
    let mut means: std::collections::HashMap<GroupKey, f64> = Default::default();
    for t in 0..trials {
        let mut rng = StdRng::seed_from_u64(4_000 + t);
        let sample =
            CongressionalSample::draw(&ds.relation, &census, &Congress, 2_000.0, &mut rng).unwrap();
        let input = sample.to_stratified_input(&ds.relation).unwrap();
        let plan = Integrated::build(&input).unwrap();
        let approx = plan.execute(&q).unwrap();
        for (key, vals) in approx.iter() {
            *means.entry(key.clone()).or_insert(0.0) += vals[0] / trials as f64;
        }
    }
    for (key, evals) in exact.iter() {
        let got = means[key];
        assert!(
            (got - evals[0]).abs() < evals[0] * 0.05,
            "AVG drift at {key}: {got} vs {}",
            evals[0]
        );
    }
}

#[test]
fn chebyshev_bounds_cover_truth_at_least_at_confidence() {
    // Chebyshev is conservative, so coverage should comfortably exceed
    // the nominal 90%.
    let ds = dataset();
    let q = GroupByQuery::new(
        vec![ds.ids.l_returnflag],
        vec![AggregateSpec::sum(Expr::col(ds.ids.l_quantity), "s")],
    );
    let exact = execute_exact(&ds.relation, &q).unwrap();

    let trials = 30u64;
    let mut covered = 0u64;
    let mut total = 0u64;
    for t in 0..trials {
        let aqua = Aqua::build(
            ds.relation.clone(),
            ds.grouping_columns(),
            AquaConfig {
                space: 1_500,
                strategy: SamplingStrategy::Congress,
                rewrite: RewriteChoice::Integrated,
                confidence: 0.9,
                seed: 5_000 + t,
                parallelism: 0,
            },
        )
        .unwrap();
        let ans = aqua.answer(&q).unwrap();
        for (key, evals) in exact.iter() {
            let Some(est) = ans.result.get(key) else {
                continue;
            };
            let Some(gb) = ans.bounds_for(key) else {
                continue;
            };
            let Some(bound) = gb.bounds[0] else { continue };
            total += 1;
            if (est[0] - evals[0]).abs() <= bound.half_width {
                covered += 1;
            }
        }
    }
    let coverage = covered as f64 / total as f64;
    assert!(
        coverage >= 0.9,
        "90%-confidence bounds covered only {:.1}% of cases",
        coverage * 100.0
    );
}

#[test]
fn per_stratum_scaling_beats_subsampling_to_common_rate() {
    // §5.1 argues the stratified estimator is superior to down-sampling
    // every stratum to the lowest common rate. Emulate the latter and
    // compare mean absolute errors over trials.
    let ds = dataset();
    let cols = ds.grouping_columns();
    let census = congress::GroupCensus::build(&ds.relation, &cols).unwrap();
    let q = GroupByQuery::new(
        vec![],
        vec![AggregateSpec::sum(Expr::col(ds.ids.l_quantity), "s")],
    );
    let exact = execute_exact(&ds.relation, &q).unwrap().scalar().unwrap();

    let trials = 30u64;
    let (mut err_strat, mut err_common) = (0.0, 0.0);
    for t in 0..trials {
        let mut rng = StdRng::seed_from_u64(6_000 + t);
        let sample =
            CongressionalSample::draw(&ds.relation, &census, &Congress, 1_500.0, &mut rng).unwrap();
        let input = sample.to_stratified_input(&ds.relation).unwrap();
        // Stratified estimate.
        let plan = Integrated::build(&input).unwrap();
        let est = plan.execute(&q).unwrap().scalar().unwrap();
        err_strat += (est - exact).abs() / trials as f64;

        // Common-rate emulation: subsample every stratum to the minimum
        // rate, then scale uniformly.
        let min_rate = input
            .scale_factors
            .iter()
            .map(|sf| 1.0 / sf)
            .fold(f64::INFINITY, f64::min);
        use rand::Rng as _;
        let mut kept_sum = 0.0;
        for (row, &s) in input.stratum_of_row.iter().enumerate() {
            let rate = 1.0 / input.scale_factors[s as usize];
            let keep_p = min_rate / rate;
            if rng.gen::<f64>() < keep_p {
                kept_sum += input.rows.column(ds.ids.l_quantity).value_f64(row).unwrap();
            }
        }
        let est_common = kept_sum / min_rate;
        err_common += (est_common - exact).abs() / trials as f64;
    }
    assert!(
        err_strat < err_common,
        "stratified error {err_strat} should beat common-rate error {err_common}"
    );
}
