//! Plain-text table rendering for experiment reports.

use std::fmt;

/// A simple aligned text table: header row plus data rows.
#[derive(Debug, Clone)]
pub struct Table {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// New table with a title and column headers.
    pub fn new(title: impl Into<String>, header: &[&str]) -> Table {
        Table {
            title: title.into(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a data row (must match the header width).
    pub fn row(&mut self, cells: &[String]) {
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells.to_vec());
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        writeln!(f, "\n== {} ==", self.title)?;
        let line = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            write!(f, "|")?;
            for (w, cell) in widths.iter().zip(cells) {
                write!(f, " {cell:>w$} |", w = w)?;
            }
            writeln!(f)
        };
        line(f, &self.header)?;
        let total: usize = widths.iter().map(|w| w + 3).sum::<usize>() + 1;
        writeln!(f, "{}", "-".repeat(total))?;
        for row in &self.rows {
            line(f, row)?;
        }
        Ok(())
    }
}

/// Format a float with sensible precision for error percentages.
pub fn pct(v: f64) -> String {
    if v >= 100.0 {
        format!("{v:.0}")
    } else if v >= 1.0 {
        format!("{v:.2}")
    } else {
        format!("{v:.4}")
    }
}

/// Format a duration in seconds with millisecond precision.
pub fn secs(d: std::time::Duration) -> String {
    format!("{:.3}", d.as_secs_f64())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new("demo", &["name", "value"]);
        t.row(&["a".into(), "1".into()]);
        t.row(&["long-name".into(), "2.5".into()]);
        let s = t.to_string();
        assert!(s.contains("== demo =="));
        assert!(s.contains("long-name"));
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn rejects_ragged_rows() {
        let mut t = Table::new("x", &["a", "b"]);
        t.row(&["only-one".into()]);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(pct(123.4), "123");
        assert_eq!(pct(12.345), "12.35");
        assert_eq!(pct(0.1234), "0.1234");
        assert_eq!(secs(std::time::Duration::from_millis(1500)), "1.500");
    }
}
