//! Experiment 4 (§7.3.2, Figure 18): execution time of the four rewriting
//! strategies on `Q_{g2}` as the number of groups grows (SP = 7%).
//!
//! Run: `cargo run -p bench --release --bin expt4 [-- --quick]`
//!
//! Paper-expected shape: Integrated and Nested-integrated nearly flat and
//! fastest; Normalized-family slower (join); Nested-integrated beats
//! Integrated at low group counts but degrades past it at very high group
//! counts (per-group multiply overhead + nested plan).

use std::time::{Duration, Instant};

use aqua::{RewriteChoice, SamplingStrategy};
use bench::harness::{build_plan, ExperimentSetup};
use bench::report::{secs, Table};
use tpcd::GeneratorConfig;

fn time_runs(mut f: impl FnMut()) -> Duration {
    let mut times = Vec::with_capacity(5);
    for _ in 0..5 {
        let t0 = Instant::now();
        f();
        times.push(t0.elapsed());
    }
    times[1..].iter().sum::<Duration>() / 4
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let table_size = if quick { 200_000 } else { 1_000_000 };
    let group_counts: &[usize] = if quick {
        &[10, 1000, 50_000]
    } else {
        &[10, 100, 1000, 10_000, 50_000, 200_000]
    };

    let mut table = Table::new(
        "Figure 18: Qg2 execution time (s) vs number of groups (SP=7%) \
         [expect: Integrated-family flat & fast; Nested beats Integrated at low NG, loses at high NG]",
        &["NG", "Integrated", "Nested-integrated", "Normalized", "Key-normalized"],
    );
    for &ng in group_counts {
        eprintln!("generating lineitem: T={table_size}, NG={ng} ...");
        let setup = ExperimentSetup::new(GeneratorConfig {
            table_size,
            num_groups: ng,
            group_skew: 0.86,
            agg_skew: 0.86,
            seed: 20000517,
        });
        let mut cells = vec![ng.to_string()];
        for rewrite in RewriteChoice::all() {
            let plan = build_plan(&setup, SamplingStrategy::Congress, rewrite, 0.07, 4_000);
            let d = time_runs(|| {
                let _ = plan.execute(&setup.qg2).unwrap();
            });
            cells.push(secs(d));
        }
        table.row(&cells);
    }
    println!("{table}");
}
