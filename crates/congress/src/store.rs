//! Durable byte storage for synopses and warehouse state.
//!
//! The paper stores synopses "as regular relations in the DBMS" (§2) and
//! leans on the warehouse for durability. This workspace has no DBMS
//! underneath, so this module supplies the equivalent contract: a
//! [`SnapshotStore`] of named byte blobs with **atomic, durable writes**.
//! Three implementations:
//!
//! * [`FsStore`] — the real thing: temp file → fsync → rename → fsync
//!   directory, so a crash at any instant leaves either the old bytes or
//!   the new bytes, never a torn file.
//! * [`MemStore`] — an in-memory map for fast tests.
//! * [`FaultyStore`] — a deterministic fault injector wrapping any inner
//!   store. Every failure mode the recovery path must survive (ENOSPC,
//!   torn write, bit rot, half-completed rename, process kill at operation
//!   N) can be scripted and replayed in-tree.
//!
//! Keys are relative, `/`-separated paths (`"sales/table.g3.bin"`).

use std::collections::BTreeMap;
use std::fmt;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Result alias for store operations.
pub type StoreResult<T> = std::result::Result<T, StoreError>;

/// A storage-layer failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StoreError {
    /// The operation that failed (`"put"`, `"get"`, ...).
    pub op: String,
    /// The key involved.
    pub key: String,
    /// Human-readable cause.
    pub message: String,
}

impl StoreError {
    fn new(op: &str, key: &str, message: impl Into<String>) -> StoreError {
        StoreError {
            op: op.to_string(),
            key: key.to_string(),
            message: message.into(),
        }
    }

    /// Whether this error is a missing-key lookup (as opposed to an I/O
    /// or injected failure) — recovery treats "absent" and "unreadable"
    /// differently only for reporting.
    pub fn is_not_found(&self) -> bool {
        self.message.contains("not found")
    }
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "store {} `{}`: {}", self.op, self.key, self.message)
    }
}

impl std::error::Error for StoreError {}

/// A flat namespace of durable byte blobs.
///
/// Contract: [`put`](Self::put) is atomic — after a crash the key holds
/// either its previous bytes or the new bytes in full.
/// [`append`](Self::append) is *not* atomic (it backs write-ahead logs,
/// whose readers must tolerate a torn tail).
pub trait SnapshotStore: Send + Sync {
    /// Atomically replace `key` with `bytes`.
    fn put(&self, key: &str, bytes: &[u8]) -> StoreResult<()>;
    /// Read the full contents of `key`.
    fn get(&self, key: &str) -> StoreResult<Vec<u8>>;
    /// Whether `key` exists.
    fn exists(&self, key: &str) -> StoreResult<bool>;
    /// Atomically move `from` to `to` (used for quarantine).
    fn rename(&self, from: &str, to: &str) -> StoreResult<()>;
    /// Remove `key`. Removing a missing key is not an error.
    fn delete(&self, key: &str) -> StoreResult<()>;
    /// All keys, sorted.
    fn list(&self) -> StoreResult<Vec<String>>;
    /// Append `bytes` to `key` durably (creating it if absent).
    fn append(&self, key: &str, bytes: &[u8]) -> StoreResult<()>;
}

fn validate_key(op: &str, key: &str) -> StoreResult<()> {
    let ok = !key.is_empty()
        && !key.starts_with('/')
        && !key.ends_with('/')
        && key
            .split('/')
            .all(|seg| !seg.is_empty() && seg != "." && seg != "..");
    if ok {
        Ok(())
    } else {
        Err(StoreError::new(
            op,
            key,
            "invalid key (relative paths only)",
        ))
    }
}

// ---------------------------------------------------------------------------
// Filesystem store
// ---------------------------------------------------------------------------

/// Filesystem-backed store rooted at a directory, with crash-safe writes.
#[derive(Debug)]
pub struct FsStore {
    root: PathBuf,
    /// Monotonic counter making temp-file names unique within a process.
    tmp_seq: AtomicU64,
}

impl FsStore {
    /// Open (creating if needed) a store rooted at `root`.
    pub fn open(root: impl Into<PathBuf>) -> StoreResult<FsStore> {
        let root = root.into();
        std::fs::create_dir_all(&root)
            .map_err(|e| StoreError::new("open", &root.display().to_string(), e.to_string()))?;
        Ok(FsStore {
            root,
            tmp_seq: AtomicU64::new(0),
        })
    }

    /// The root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    fn path_of(&self, key: &str) -> PathBuf {
        let mut p = self.root.clone();
        for seg in key.split('/') {
            p.push(seg);
        }
        p
    }

    fn ensure_parent(&self, op: &str, key: &str, path: &Path) -> StoreResult<()> {
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent).map_err(|e| StoreError::new(op, key, e.to_string()))?;
        }
        Ok(())
    }

    /// fsync the directory containing `path` so the rename itself is
    /// durable (best-effort where the platform disallows opening dirs).
    fn sync_parent(path: &Path) {
        if let Some(parent) = path.parent() {
            if let Ok(dir) = std::fs::File::open(parent) {
                let _ = dir.sync_all();
            }
        }
    }
}

impl SnapshotStore for FsStore {
    fn put(&self, key: &str, bytes: &[u8]) -> StoreResult<()> {
        validate_key("put", key)?;
        let final_path = self.path_of(key);
        self.ensure_parent("put", key, &final_path)?;
        let tmp = final_path.with_extension(format!(
            "tmp.{}.{}",
            std::process::id(),
            self.tmp_seq.fetch_add(1, Ordering::Relaxed)
        ));
        let write = |tmp: &Path| -> std::io::Result<()> {
            let mut f = std::fs::File::create(tmp)?;
            f.write_all(bytes)?;
            f.sync_all()?;
            Ok(())
        };
        if let Err(e) = write(&tmp) {
            let _ = std::fs::remove_file(&tmp);
            return Err(StoreError::new("put", key, e.to_string()));
        }
        if let Err(e) = std::fs::rename(&tmp, &final_path) {
            let _ = std::fs::remove_file(&tmp);
            return Err(StoreError::new("put", key, e.to_string()));
        }
        Self::sync_parent(&final_path);
        Ok(())
    }

    fn get(&self, key: &str) -> StoreResult<Vec<u8>> {
        validate_key("get", key)?;
        match std::fs::read(self.path_of(key)) {
            Ok(b) => Ok(b),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                Err(StoreError::new("get", key, "not found"))
            }
            Err(e) => Err(StoreError::new("get", key, e.to_string())),
        }
    }

    fn exists(&self, key: &str) -> StoreResult<bool> {
        validate_key("exists", key)?;
        Ok(self.path_of(key).is_file())
    }

    fn rename(&self, from: &str, to: &str) -> StoreResult<()> {
        validate_key("rename", from)?;
        validate_key("rename", to)?;
        let dst = self.path_of(to);
        self.ensure_parent("rename", to, &dst)?;
        std::fs::rename(self.path_of(from), &dst)
            .map_err(|e| StoreError::new("rename", from, e.to_string()))?;
        Self::sync_parent(&dst);
        Ok(())
    }

    fn delete(&self, key: &str) -> StoreResult<()> {
        validate_key("delete", key)?;
        match std::fs::remove_file(self.path_of(key)) {
            Ok(()) => Ok(()),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(()),
            Err(e) => Err(StoreError::new("delete", key, e.to_string())),
        }
    }

    fn list(&self) -> StoreResult<Vec<String>> {
        fn walk(root: &Path, dir: &Path, out: &mut Vec<String>) -> std::io::Result<()> {
            for entry in std::fs::read_dir(dir)? {
                let entry = entry?;
                let path = entry.path();
                if path.is_dir() {
                    walk(root, &path, out)?;
                } else if let Ok(rel) = path.strip_prefix(root) {
                    let key = rel
                        .components()
                        .map(|c| c.as_os_str().to_string_lossy())
                        .collect::<Vec<_>>()
                        .join("/");
                    out.push(key);
                }
            }
            Ok(())
        }
        let mut out = Vec::new();
        walk(&self.root, &self.root, &mut out)
            .map_err(|e| StoreError::new("list", "", e.to_string()))?;
        out.sort();
        Ok(out)
    }

    fn append(&self, key: &str, bytes: &[u8]) -> StoreResult<()> {
        validate_key("append", key)?;
        let path = self.path_of(key);
        self.ensure_parent("append", key, &path)?;
        let mut f = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)
            .map_err(|e| StoreError::new("append", key, e.to_string()))?;
        f.write_all(bytes)
            .and_then(|()| f.sync_all())
            .map_err(|e| StoreError::new("append", key, e.to_string()))
    }
}

// ---------------------------------------------------------------------------
// In-memory store
// ---------------------------------------------------------------------------

/// In-memory store: the same contract as [`FsStore`], for fast tests and
/// as the substrate under [`FaultyStore`].
#[derive(Debug, Default)]
pub struct MemStore {
    map: Mutex<BTreeMap<String, Vec<u8>>>,
}

impl MemStore {
    /// Empty store.
    pub fn new() -> MemStore {
        MemStore::default()
    }
}

impl SnapshotStore for MemStore {
    fn put(&self, key: &str, bytes: &[u8]) -> StoreResult<()> {
        validate_key("put", key)?;
        self.map
            .lock()
            .unwrap()
            .insert(key.to_string(), bytes.to_vec());
        Ok(())
    }

    fn get(&self, key: &str) -> StoreResult<Vec<u8>> {
        validate_key("get", key)?;
        self.map
            .lock()
            .unwrap()
            .get(key)
            .cloned()
            .ok_or_else(|| StoreError::new("get", key, "not found"))
    }

    fn exists(&self, key: &str) -> StoreResult<bool> {
        validate_key("exists", key)?;
        Ok(self.map.lock().unwrap().contains_key(key))
    }

    fn rename(&self, from: &str, to: &str) -> StoreResult<()> {
        validate_key("rename", from)?;
        validate_key("rename", to)?;
        let mut map = self.map.lock().unwrap();
        let bytes = map
            .remove(from)
            .ok_or_else(|| StoreError::new("rename", from, "not found"))?;
        map.insert(to.to_string(), bytes);
        Ok(())
    }

    fn delete(&self, key: &str) -> StoreResult<()> {
        validate_key("delete", key)?;
        self.map.lock().unwrap().remove(key);
        Ok(())
    }

    fn list(&self) -> StoreResult<Vec<String>> {
        Ok(self.map.lock().unwrap().keys().cloned().collect())
    }

    fn append(&self, key: &str, bytes: &[u8]) -> StoreResult<()> {
        validate_key("append", key)?;
        self.map
            .lock()
            .unwrap()
            .entry(key.to_string())
            .or_default()
            .extend_from_slice(bytes);
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Fault injection
// ---------------------------------------------------------------------------

/// A scripted failure for [`FaultyStore`]. Operation indices count every
/// *mutating* operation (`put`, `rename`, `delete`, `append`) the wrapped
/// store sees, starting at 0; reads never trip a fault.
#[derive(Debug, Clone, PartialEq)]
pub enum Fault {
    /// The N-th mutating operation fails cleanly, with no effect (a full
    /// disk, a pulled cable). All later operations fail too — the process
    /// is presumed dead; recovery happens on the *inner* store.
    FailAt {
        /// Mutating-operation index that fails.
        op: u64,
    },
    /// The N-th `put` writes only the first `keep` bytes of its payload
    /// (a torn write on a store without atomic replace) and reports
    /// success. Ops after it proceed normally.
    TruncateAt {
        /// Mutating-operation index to tear.
        op: u64,
        /// Bytes of the payload that reach the store.
        keep: usize,
    },
    /// The N-th `put` lands with bit `bit` of the payload flipped (bit
    /// rot / silent corruption) and reports success.
    FlipBit {
        /// Mutating-operation index to corrupt.
        op: u64,
        /// Absolute bit offset within the payload (wraps modulo size).
        bit: u64,
    },
    /// Every byte written past a cumulative budget fails with ENOSPC.
    /// Puts and appends that would cross the line fail with no effect.
    Enospc {
        /// Total bytes the store accepts before reporting full.
        byte_budget: u64,
    },
    /// The N-th `rename` half-completes: the destination receives the
    /// bytes but the source also survives, and the call reports failure
    /// (a crash between the copy and the unlink of a non-atomic rename).
    PartialRenameAt {
        /// Mutating-operation index to interrupt.
        op: u64,
    },
}

/// Deterministic fault-injecting wrapper around any [`SnapshotStore`].
///
/// The injector counts mutating operations and fires the scripted
/// [`Fault`] when its index comes up, so a test can sweep "kill the
/// writer at every step" by re-running the same workload with `FailAt
/// { op: 0 }, { op: 1 }, ...` and asserting recovery after each.
pub struct FaultyStore<S> {
    inner: S,
    fault: Fault,
    ops: AtomicU64,
    bytes_written: AtomicU64,
    dead: std::sync::atomic::AtomicBool,
}

impl<S: SnapshotStore> FaultyStore<S> {
    /// Wrap `inner`, arming `fault`.
    pub fn new(inner: S, fault: Fault) -> FaultyStore<S> {
        FaultyStore {
            inner,
            fault,
            ops: AtomicU64::new(0),
            bytes_written: AtomicU64::new(0),
            dead: std::sync::atomic::AtomicBool::new(false),
        }
    }

    /// Mutating operations issued so far (including the faulted one).
    pub fn ops(&self) -> u64 {
        self.ops.load(Ordering::SeqCst)
    }

    /// Whether the armed fault has fired.
    pub fn fired(&self) -> bool {
        self.dead.load(Ordering::SeqCst)
            || matches!(self.fault, Fault::TruncateAt { op, .. } | Fault::FlipBit { op, .. } | Fault::PartialRenameAt { op } if self.ops() > op)
    }

    /// The wrapped store (the "disk" that survives the crash).
    pub fn inner(&self) -> &S {
        &self.inner
    }

    /// Unwrap.
    pub fn into_inner(self) -> S {
        self.inner
    }

    /// Take the next op index, returning whether a clean failure fires.
    fn admit(&self, op_name: &str, key: &str, payload: usize) -> StoreResult<u64> {
        if self.dead.load(Ordering::SeqCst) {
            return Err(StoreError::new(op_name, key, "injected: store is dead"));
        }
        let idx = self.ops.fetch_add(1, Ordering::SeqCst);
        match self.fault {
            Fault::FailAt { op } if idx >= op => {
                self.dead.store(true, Ordering::SeqCst);
                Err(StoreError::new(
                    op_name,
                    key,
                    format!("injected: failed at op {idx}"),
                ))
            }
            Fault::Enospc { byte_budget } => {
                let before = self
                    .bytes_written
                    .fetch_add(payload as u64, Ordering::SeqCst);
                if before + payload as u64 > byte_budget {
                    self.bytes_written
                        .fetch_sub(payload as u64, Ordering::SeqCst);
                    Err(StoreError::new(op_name, key, "injected: no space left"))
                } else {
                    Ok(idx)
                }
            }
            _ => Ok(idx),
        }
    }
}

impl<S: SnapshotStore> SnapshotStore for FaultyStore<S> {
    fn put(&self, key: &str, bytes: &[u8]) -> StoreResult<()> {
        let idx = self.admit("put", key, bytes.len())?;
        match self.fault {
            Fault::TruncateAt { op, keep } if idx == op => {
                self.inner.put(key, &bytes[..keep.min(bytes.len())])
            }
            Fault::FlipBit { op, bit } if idx == op && !bytes.is_empty() => {
                let mut corrupted = bytes.to_vec();
                let b = (bit as usize) % (corrupted.len() * 8);
                corrupted[b / 8] ^= 1 << (b % 8);
                self.inner.put(key, &corrupted)
            }
            _ => self.inner.put(key, bytes),
        }
    }

    fn get(&self, key: &str) -> StoreResult<Vec<u8>> {
        self.inner.get(key)
    }

    fn exists(&self, key: &str) -> StoreResult<bool> {
        self.inner.exists(key)
    }

    fn rename(&self, from: &str, to: &str) -> StoreResult<()> {
        let idx = self.admit("rename", from, 0)?;
        if let Fault::PartialRenameAt { op } = self.fault {
            if idx == op {
                let bytes = self.inner.get(from)?;
                self.inner.put(to, &bytes)?;
                self.dead.store(true, Ordering::SeqCst);
                return Err(StoreError::new(
                    "rename",
                    from,
                    "injected: crashed mid-rename",
                ));
            }
        }
        self.inner.rename(from, to)
    }

    fn delete(&self, key: &str) -> StoreResult<()> {
        self.admit("delete", key, 0)?;
        self.inner.delete(key)
    }

    fn list(&self) -> StoreResult<Vec<String>> {
        self.inner.list()
    }

    fn append(&self, key: &str, bytes: &[u8]) -> StoreResult<()> {
        let idx = self.admit("append", key, bytes.len())?;
        if let Fault::TruncateAt { op, keep } = self.fault {
            if idx == op {
                return self.inner.append(key, &bytes[..keep.min(bytes.len())]);
            }
        }
        self.inner.append(key, bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn contract(store: &dyn SnapshotStore) {
        assert!(!store.exists("a/b").unwrap());
        assert!(store.get("a/b").unwrap_err().is_not_found());
        store.put("a/b", b"hello").unwrap();
        assert!(store.exists("a/b").unwrap());
        assert_eq!(store.get("a/b").unwrap(), b"hello");
        store.put("a/b", b"rewritten").unwrap();
        assert_eq!(store.get("a/b").unwrap(), b"rewritten");
        store.append("a/wal", b"one").unwrap();
        store.append("a/wal", b"two").unwrap();
        assert_eq!(store.get("a/wal").unwrap(), b"onetwo");
        store.rename("a/b", "quarantine/b").unwrap();
        assert!(!store.exists("a/b").unwrap());
        assert_eq!(store.get("quarantine/b").unwrap(), b"rewritten");
        let keys = store.list().unwrap();
        assert_eq!(keys, vec!["a/wal".to_string(), "quarantine/b".to_string()]);
        store.delete("quarantine/b").unwrap();
        store.delete("quarantine/b").unwrap(); // idempotent
        assert!(!store.exists("quarantine/b").unwrap());
    }

    #[test]
    fn mem_store_contract() {
        contract(&MemStore::new());
    }

    #[test]
    fn fs_store_contract() {
        let dir = std::env::temp_dir().join(format!("congress_store_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        contract(&FsStore::open(&dir).unwrap());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn fs_store_put_leaves_no_temp_files() {
        let dir = std::env::temp_dir().join(format!("congress_store_tmp_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let store = FsStore::open(&dir).unwrap();
        for i in 0..10 {
            store.put("k", format!("v{i}").as_bytes()).unwrap();
        }
        assert_eq!(store.list().unwrap(), vec!["k".to_string()]);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn keys_are_validated() {
        let store = MemStore::new();
        for bad in ["", "/abs", "a/", "a//b", "../escape", "a/./b"] {
            assert!(store.put(bad, b"x").is_err(), "{bad} must be rejected");
        }
    }

    #[test]
    fn fail_at_kills_the_store() {
        let store = FaultyStore::new(MemStore::new(), Fault::FailAt { op: 1 });
        store.put("a", b"1").unwrap();
        assert!(store.put("b", b"2").is_err());
        assert!(store.put("c", b"3").is_err(), "store stays dead");
        assert!(store.fired());
        // The crash site is inspectable: only the first write landed.
        assert_eq!(store.inner().list().unwrap(), vec!["a".to_string()]);
    }

    #[test]
    fn truncate_and_flip_corrupt_the_payload() {
        let store = FaultyStore::new(MemStore::new(), Fault::TruncateAt { op: 0, keep: 2 });
        store.put("t", b"hello").unwrap();
        assert_eq!(store.get("t").unwrap(), b"he");

        let store = FaultyStore::new(MemStore::new(), Fault::FlipBit { op: 0, bit: 9 });
        store.put("f", &[0x00, 0x00]).unwrap();
        assert_eq!(store.get("f").unwrap(), vec![0x00, 0x02]);
    }

    #[test]
    fn enospc_blocks_writes_past_budget() {
        let store = FaultyStore::new(MemStore::new(), Fault::Enospc { byte_budget: 10 });
        store.put("a", &[0u8; 6]).unwrap();
        assert!(store.put("b", &[0u8; 6]).is_err());
        store.put("c", &[0u8; 4]).unwrap(); // still fits
        assert!(store.append("c", &[0u8; 1]).is_err());
    }

    #[test]
    fn partial_rename_leaves_both_files() {
        let store = FaultyStore::new(MemStore::new(), Fault::PartialRenameAt { op: 1 });
        store.put("src", b"payload").unwrap();
        assert!(store.rename("src", "dst").is_err());
        assert_eq!(store.inner().get("src").unwrap(), b"payload");
        assert_eq!(store.inner().get("dst").unwrap(), b"payload");
    }
}
