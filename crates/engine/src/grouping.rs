//! The group index: dense group ids for rows under a grouping.
//!
//! Grouping is the single hottest operation in this workspace — the exact
//! executor, every rewrite strategy, the congress census, and per-group
//! reservoir construction all need "which group is row *r* in?". The
//! [`GroupIndex`] computes, for a set of grouping columns, a dense
//! `u32` group id per row plus the materialized [`GroupKey`] per id.
//!
//! Implementation: each grouping column is first re-encoded to a dense
//! per-column code (string columns already are; int/float/date columns get
//! an on-the-fly dictionary). Up to four column codes are packed into a
//! `u128` hash key, so the per-row hash probe is over a fixed-width integer
//! rather than an allocated composite key. Groupings wider than four
//! columns fall back to a `Vec<u64>` key — correct, just slower, and outside
//! the paper's parameter range (|G| = 3).

use std::collections::HashMap;

use rayon::prelude::*;

use relation::{Bitmap, ColumnId, GroupKey, Relation};

/// Below this row count sharded/chunked parallel execution is pure
/// overhead. Shared by the parallel index build and the chunked
/// aggregation path so the two gates stay consistent.
pub const PAR_MIN_ROWS: usize = 4096;

/// Minimum rows *per shard* for the sharded parallel index build. The
/// cold-parallel regression in BENCH_query.json (631.8 q/s vs 688.1
/// serial at a 50k-row sample) came from gating on total rows only:
/// splitting 50k rows across 8+ threads gives each shard so little work
/// that per-shard dictionaries plus the merge pass cost more than they
/// save. Capping the shard count at `n / PAR_SHARD_MIN_ROWS` keeps every
/// shard beyond the measured break-even (~32Ki rows).
pub const PAR_SHARD_MIN_ROWS: usize = 32 * 1024;

/// Dense group ids for every row of a relation under one grouping.
#[derive(Debug, Clone)]
pub struct GroupIndex {
    cols: Vec<ColumnId>,
    group_of_row: Vec<u32>,
    keys: Vec<GroupKey>,
    /// First-occurrence row per group id (`u32::MAX` only for the empty
    /// grouping when every row is masked out).
    first_rows: Vec<u32>,
    /// Group ids sorted by ascending key, computed once on first use so a
    /// memoized index lets repeat queries skip the per-result key sort.
    sorted_gids: std::sync::OnceLock<Vec<u32>>,
    /// Key → group id, computed once on first use. Bounds computation maps
    /// estimate keys back to census group ids on every query; memoizing
    /// the reverse index here (the index is cached and shared) replaces a
    /// per-query O(groups) HashMap build with a lookup.
    key_to_gid: std::sync::OnceLock<HashMap<GroupKey, u32>>,
}

impl GroupIndex {
    /// Build the index for `cols` over all rows of `rel`.
    ///
    /// An empty `cols` produces the single empty group (the `T = ∅`
    /// no-group-by grouping), with every row assigned to it.
    pub fn build(rel: &Relation, cols: &[ColumnId]) -> GroupIndex {
        Self::build_filtered(rel, cols, None)
    }

    /// Build the index over only the rows where `mask` is true (or all rows
    /// if `mask` is `None`). Rows excluded by the mask get group id
    /// `u32::MAX` and contribute no group.
    pub fn build_filtered(rel: &Relation, cols: &[ColumnId], mask: Option<&Bitmap>) -> GroupIndex {
        let n = rel.row_count();
        let live = |r: usize| mask.is_none_or(|m| m.get(r));

        if cols.is_empty() {
            let mut group_of_row = vec![u32::MAX; n];
            let mut first = u32::MAX;
            for (r, g) in group_of_row.iter_mut().enumerate() {
                if live(r) {
                    *g = 0;
                    if first == u32::MAX {
                        first = r as u32;
                    }
                }
            }
            return GroupIndex {
                cols: Vec::new(),
                group_of_row,
                keys: vec![GroupKey::empty()],
                first_rows: vec![first],
                sorted_gids: std::sync::OnceLock::new(),
                key_to_gid: std::sync::OnceLock::new(),
            };
        }

        // Dense per-column codes.
        let mut dense_codes: Vec<Vec<u32>> = Vec::with_capacity(cols.len());
        for &c in cols {
            let col = rel.column(c);
            let mut dict: HashMap<u64, u32> = HashMap::new();
            let mut codes = vec![0u32; n];
            for (r, code) in codes.iter_mut().enumerate() {
                if !live(r) {
                    continue;
                }
                let raw = col.group_code(r);
                let next = dict.len() as u32;
                *code = *dict.entry(raw).or_insert(next);
            }
            dense_codes.push(codes);
        }

        let mut group_of_row = vec![u32::MAX; n];
        let mut keys: Vec<GroupKey> = Vec::new();
        let mut first_rows: Vec<u32> = Vec::new();

        if cols.len() <= 4 {
            let mut map: HashMap<u128, u32> = HashMap::new();
            for r in 0..n {
                if !live(r) {
                    continue;
                }
                let mut packed: u128 = 0;
                for codes in &dense_codes {
                    packed = (packed << 32) | codes[r] as u128;
                }
                let next = map.len() as u32;
                let gid = *map.entry(packed).or_insert_with(|| {
                    keys.push(GroupKey::from_row(rel, r, cols));
                    first_rows.push(r as u32);
                    next
                });
                group_of_row[r] = gid;
            }
        } else {
            let mut map: HashMap<Vec<u32>, u32> = HashMap::new();
            let mut scratch: Vec<u32> = Vec::with_capacity(dense_codes.len());
            for r in 0..n {
                if !live(r) {
                    continue;
                }
                scratch.clear();
                scratch.extend(dense_codes.iter().map(|codes| codes[r]));
                // Probe by slice (`Vec<u32>` hashes identically to `[u32]`);
                // the owned key is allocated only when the group is new.
                let gid = match map.get(scratch.as_slice()) {
                    Some(&g) => g,
                    None => {
                        let g = map.len() as u32;
                        keys.push(GroupKey::from_row(rel, r, cols));
                        first_rows.push(r as u32);
                        map.insert(scratch.clone(), g);
                        g
                    }
                };
                group_of_row[r] = gid;
            }
        }

        GroupIndex {
            cols: cols.to_vec(),
            group_of_row,
            keys,
            first_rows,
            sorted_gids: std::sync::OnceLock::new(),
            key_to_gid: std::sync::OnceLock::new(),
        }
    }

    /// Parallel [`Self::build`]: shard the rows across threads, build a
    /// local dictionary per shard, then merge shards in row order.
    ///
    /// Produces an index *identical* to the sequential build for any
    /// thread count: a group's id is its rank by global first-occurrence
    /// row, and merging shards in order (preserving each shard's local
    /// first-seen order) reproduces exactly that rank — the registration
    /// order is a property of the data, not of the chunking.
    pub fn par_build(rel: &Relation, cols: &[ColumnId]) -> GroupIndex {
        Self::par_build_filtered(rel, cols, None)
    }

    /// Parallel [`Self::build_filtered`] (see [`Self::par_build`] for the
    /// equivalence argument). Falls back to the sequential build for small
    /// inputs, a single thread, or the empty grouping.
    pub fn par_build_filtered(
        rel: &Relation,
        cols: &[ColumnId],
        mask: Option<&Bitmap>,
    ) -> GroupIndex {
        let n = rel.row_count();
        // Gate on work *per shard*, not just total rows: the shard count is
        // capped so every shard folds at least PAR_SHARD_MIN_ROWS rows,
        // falling back to the sequential build when even two shards of that
        // size do not fit.
        let threads = rayon::current_num_threads()
            .max(1)
            .min(n / PAR_SHARD_MIN_ROWS);
        if cols.is_empty() || threads <= 1 || n < PAR_MIN_ROWS {
            return Self::build_filtered(rel, cols, mask);
        }
        let live = |r: usize| mask.is_none_or(|m| m.get(r));

        let chunk = n.div_ceil(threads);
        let ranges: Vec<(usize, usize)> = (0..threads)
            .map(|t| (t * chunk, ((t + 1) * chunk).min(n)))
            .filter(|(a, b)| a < b)
            .collect();

        // Shard pass: per shard, a local dictionary over the raw per-column
        // codes. `codes_by_local_id[g]` is the composite code of local group
        // `g`, `first_rows[g]` its first-occurrence row inside the shard,
        // local ids in shard first-seen order.
        struct Shard {
            start: usize,
            codes_by_local_id: Vec<Vec<u64>>,
            first_rows: Vec<usize>,
            local_gids: Vec<u32>,
        }
        let shards: Vec<Shard> = ranges
            .into_par_iter()
            .map(|(start, end)| {
                let columns: Vec<_> = cols.iter().map(|&c| rel.column(c)).collect();
                let mut map: HashMap<Vec<u64>, u32> = HashMap::new();
                let mut codes_by_local_id: Vec<Vec<u64>> = Vec::new();
                let mut first_rows: Vec<usize> = Vec::new();
                let mut local_gids = vec![u32::MAX; end - start];
                for r in start..end {
                    if !live(r) {
                        continue;
                    }
                    let code: Vec<u64> = columns.iter().map(|col| col.group_code(r)).collect();
                    let gid = match map.get(&code) {
                        Some(&g) => g,
                        None => {
                            let g = codes_by_local_id.len() as u32;
                            codes_by_local_id.push(code.clone());
                            first_rows.push(r);
                            map.insert(code, g);
                            g
                        }
                    };
                    local_gids[r - start] = gid;
                }
                Shard {
                    start,
                    codes_by_local_id,
                    first_rows,
                    local_gids,
                }
            })
            .collect();

        // Merge pass (sequential, over distinct groups only): shards in row
        // order, local ids in shard first-seen order, so a group is
        // registered at its global first-occurrence row.
        let mut global: HashMap<Vec<u64>, u32> = HashMap::new();
        let mut keys: Vec<GroupKey> = Vec::new();
        let mut first_rows: Vec<u32> = Vec::new();
        let mut remaps: Vec<Vec<u32>> = Vec::with_capacity(shards.len());
        for shard in &shards {
            let mut remap = Vec::with_capacity(shard.codes_by_local_id.len());
            for (local, code) in shard.codes_by_local_id.iter().enumerate() {
                let gid = match global.get(code) {
                    Some(&g) => g,
                    None => {
                        let g = keys.len() as u32;
                        keys.push(GroupKey::from_row(rel, shard.first_rows[local], cols));
                        first_rows.push(shard.first_rows[local] as u32);
                        global.insert(code.clone(), g);
                        g
                    }
                };
                remap.push(gid);
            }
            remaps.push(remap);
        }

        // Fill pass: translate local ids to global ids.
        let mut group_of_row = vec![u32::MAX; n];
        for (shard, remap) in shards.iter().zip(&remaps) {
            for (i, &lg) in shard.local_gids.iter().enumerate() {
                if lg != u32::MAX {
                    group_of_row[shard.start + i] = remap[lg as usize];
                }
            }
        }

        GroupIndex {
            cols: cols.to_vec(),
            group_of_row,
            keys,
            first_rows,
            sorted_gids: std::sync::OnceLock::new(),
            key_to_gid: std::sync::OnceLock::new(),
        }
    }

    /// The grouping columns this index was built for.
    pub fn columns(&self) -> &[ColumnId] {
        &self.cols
    }

    /// Number of non-empty groups.
    pub fn group_count(&self) -> usize {
        self.keys.len()
    }

    /// Group ids ordered by ascending group key. Keys are distinct, so this
    /// order is exactly what sorting result rows by key would produce —
    /// emitting rows in this order lets [`QueryResult::from_sorted`] skip
    /// the per-query sort.
    ///
    /// [`QueryResult::from_sorted`]: crate::QueryResult::from_sorted
    pub fn gids_by_key(&self) -> &[u32] {
        self.sorted_gids.get_or_init(|| {
            let mut gids: Vec<u32> = (0..self.keys.len() as u32).collect();
            gids.sort_unstable_by(|&a, &b| self.keys[a as usize].cmp(&self.keys[b as usize]));
            gids
        })
    }

    /// Group id of `key`, or `None` if the key names no group. The reverse
    /// index is built once on first use and shared by every subsequent
    /// lookup (bounds computation calls this per result group per query).
    pub fn gid_of_key(&self, key: &GroupKey) -> Option<u32> {
        let map = self.key_to_gid.get_or_init(|| {
            self.keys
                .iter()
                .enumerate()
                .map(|(gid, k)| (k.clone(), gid as u32))
                .collect()
        });
        map.get(key).copied()
    }

    /// Group id of `row`, or `u32::MAX` if the row was masked out.
    #[inline]
    pub fn group_of(&self, row: usize) -> u32 {
        self.group_of_row[row]
    }

    /// Per-row group ids.
    pub fn group_ids(&self) -> &[u32] {
        &self.group_of_row
    }

    /// The key of group `gid`.
    pub fn key(&self, gid: u32) -> &GroupKey {
        &self.keys[gid as usize]
    }

    /// All group keys, indexed by group id.
    pub fn keys(&self) -> &[GroupKey] {
        &self.keys
    }

    /// First-occurrence row of group `gid` — a representative row for
    /// evaluating expressions that are constant within the group (e.g. a
    /// predicate over the grouping columns).
    ///
    /// # Panics
    /// For the empty grouping when every row was masked out, since no
    /// representative row exists.
    pub fn first_row(&self, gid: u32) -> usize {
        let r = self.first_rows[gid as usize];
        assert_ne!(r, u32::MAX, "group has no representative row");
        r as usize
    }

    /// Per-group row counts.
    pub fn group_sizes(&self) -> Vec<usize> {
        let mut sizes = vec![0usize; self.keys.len()];
        for &g in &self.group_of_row {
            if g != u32::MAX {
                sizes[g as usize] += 1;
            }
        }
        sizes
    }

    /// Row indices of each group, in relation order.
    pub fn rows_by_group(&self) -> Vec<Vec<usize>> {
        let mut out: Vec<Vec<usize>> = vec![Vec::new(); self.keys.len()];
        for (r, &g) in self.group_of_row.iter().enumerate() {
            if g != u32::MAX {
                out[g as usize].push(r);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use relation::{DataType, RelationBuilder, Value};

    fn rel() -> Relation {
        let mut b = RelationBuilder::new()
            .column("a", DataType::Str)
            .column("b", DataType::Int)
            .column("v", DataType::Float);
        let rows: [(&str, i64, f64); 6] = [
            ("x", 1, 1.0),
            ("y", 1, 2.0),
            ("x", 2, 3.0),
            ("x", 1, 4.0),
            ("y", 2, 5.0),
            ("x", 2, 6.0),
        ];
        for (a, bb, v) in rows {
            b.push_row(&[Value::str(a), Value::Int(bb), Value::from(v)])
                .unwrap();
        }
        b.finish()
    }

    #[test]
    fn single_column_grouping() {
        let r = rel();
        let ix = GroupIndex::build(&r, &[r.schema().column_id("a").unwrap()]);
        assert_eq!(ix.group_count(), 2);
        assert_eq!(ix.group_of(0), ix.group_of(2));
        assert_ne!(ix.group_of(0), ix.group_of(1));
        let sizes = ix.group_sizes();
        assert_eq!(sizes.iter().sum::<usize>(), 6);
        assert!(sizes.contains(&4) && sizes.contains(&2));
    }

    #[test]
    fn two_column_grouping() {
        let r = rel();
        let cols = r.schema().column_ids(&["a", "b"]).unwrap();
        let ix = GroupIndex::build(&r, &cols);
        assert_eq!(ix.group_count(), 4); // (x,1),(y,1),(x,2),(y,2)
                                         // rows 0 and 3 are both (x,1)
        assert_eq!(ix.group_of(0), ix.group_of(3));
        assert_eq!(ix.key(ix.group_of(0)).values()[0], Value::str("x"));
    }

    #[test]
    fn empty_grouping_is_single_group() {
        let r = rel();
        let ix = GroupIndex::build(&r, &[]);
        assert_eq!(ix.group_count(), 1);
        assert!(ix.keys()[0].is_empty());
        assert!(ix.group_ids().iter().all(|&g| g == 0));
    }

    #[test]
    fn mask_excludes_rows_and_groups() {
        let r = rel();
        let cols = r.schema().column_ids(&["a", "b"]).unwrap();
        // keep only rows 0 and 3, both (x,1)
        let mask = Bitmap::from_bools(&[true, false, false, true, false, false]);
        let ix = GroupIndex::build_filtered(&r, &cols, Some(&mask));
        assert_eq!(ix.group_count(), 1);
        assert_eq!(ix.group_of(1), u32::MAX);
        assert_eq!(ix.group_of(0), 0);
        assert_eq!(ix.group_sizes(), vec![2]);
    }

    #[test]
    fn rows_by_group_partitions() {
        let r = rel();
        let ix = GroupIndex::build(&r, &[r.schema().column_id("b").unwrap()]);
        let parts = ix.rows_by_group();
        let mut all: Vec<usize> = parts.concat();
        all.sort_unstable();
        assert_eq!(all, (0..6).collect::<Vec<_>>());
        // group of b=1 contains rows 0,1,3
        let g1 = ix.group_of(0) as usize;
        assert_eq!(parts[g1], vec![0, 1, 3]);
    }

    #[test]
    fn wide_grouping_falls_back() {
        // 5 grouping columns exercises the Vec<u32>-keyed path.
        let mut b = RelationBuilder::new()
            .column("c1", DataType::Int)
            .column("c2", DataType::Int)
            .column("c3", DataType::Int)
            .column("c4", DataType::Int)
            .column("c5", DataType::Int);
        for i in 0..8i64 {
            b.push_row(&[
                Value::Int(i % 2),
                Value::Int(i / 2 % 2),
                Value::Int(i / 4 % 2),
                Value::Int(0),
                Value::Int(i),
            ])
            .unwrap();
        }
        let r = b.finish();
        let cols: Vec<ColumnId> = (0..5).map(ColumnId).collect();
        let ix = GroupIndex::build(&r, &cols);
        assert_eq!(ix.group_count(), 8); // c5 = i makes every row distinct
    }

    #[test]
    fn wide_fallback_matches_packed_path() {
        // The >4-column composite-key fallback must assign exactly the
        // same group structure as the packed-u128 path. Appending a
        // constant fifth column leaves the grouping semantically unchanged
        // but forces the fallback, so the two indexes must agree row for
        // row — ids, counts, and keys (modulo the appended constant).
        let mut b = RelationBuilder::new()
            .column("c1", DataType::Int)
            .column("c2", DataType::Str)
            .column("c3", DataType::Int)
            .column("c4", DataType::Int)
            .column("c5", DataType::Int);
        for i in 0..200i64 {
            let g = (i * 31) % 17;
            b.push_row(&[
                Value::Int(g % 3),
                Value::str(if g % 2 == 0 { "even" } else { "odd" }),
                Value::Int(g % 5),
                Value::Int(g % 7),
                Value::Int(42), // constant: adds no grouping information
            ])
            .unwrap();
        }
        let r = b.finish();
        let packed_cols: Vec<ColumnId> = (0..4).map(ColumnId).collect();
        let wide_cols: Vec<ColumnId> = (0..5).map(ColumnId).collect();

        let packed = GroupIndex::build(&r, &packed_cols);
        let wide = GroupIndex::build(&r, &wide_cols);
        assert_eq!(wide.group_count(), packed.group_count());
        assert_eq!(wide.group_ids(), packed.group_ids());
        assert_eq!(wide.group_sizes(), packed.group_sizes());
        for gid in 0..packed.group_count() as u32 {
            let w = wide.key(gid).values();
            assert_eq!(&w[..4], packed.key(gid).values());
            assert_eq!(w[4], Value::Int(42));
            assert_eq!(wide.first_row(gid), packed.first_row(gid));
        }

        // Same agreement under a selection mask.
        let mask = Bitmap::from_fn(r.row_count(), |i| i % 3 != 1);
        let packed_m = GroupIndex::build_filtered(&r, &packed_cols, Some(&mask));
        let wide_m = GroupIndex::build_filtered(&r, &wide_cols, Some(&mask));
        assert_eq!(wide_m.group_ids(), packed_m.group_ids());
    }

    /// A relation big enough to exercise the sharded parallel path
    /// (> PAR_MIN_ROWS), with group first-occurrences spread across shards.
    fn big_rel(n: usize) -> Relation {
        let mut b = RelationBuilder::new()
            .column("a", DataType::Int)
            .column("b", DataType::Str)
            .column("v", DataType::Float);
        for i in 0..n {
            // Deliberately non-monotone group pattern so late shards see
            // both old and brand-new groups.
            let g = (i * 7919) % 97;
            b.push_row(&[
                Value::Int((g % 13) as i64),
                Value::str(format!("s{}", g / 13).as_str()),
                Value::from(i as f64),
            ])
            .unwrap();
        }
        b.finish()
    }

    #[test]
    fn par_build_matches_sequential_at_any_thread_count() {
        // Big enough that the per-shard work gate (PAR_SHARD_MIN_ROWS)
        // still yields at least two shards.
        let r = big_rel(80_000);
        let cols = r.schema().column_ids(&["a", "b"]).unwrap();
        let seq = GroupIndex::build(&r, &cols);
        for threads in [1usize, 2, 3, 8] {
            let pool = rayon::ThreadPoolBuilder::new()
                .num_threads(threads)
                .build()
                .unwrap();
            let par = pool.install(|| GroupIndex::par_build(&r, &cols));
            assert_eq!(par.group_ids(), seq.group_ids(), "threads = {threads}");
            assert_eq!(par.keys(), seq.keys(), "threads = {threads}");
            for gid in 0..seq.group_count() as u32 {
                assert_eq!(
                    par.first_row(gid),
                    seq.first_row(gid),
                    "threads = {threads}"
                );
            }
        }
    }

    #[test]
    fn par_build_filtered_matches_sequential() {
        let r = big_rel(66_000);
        let cols = r.schema().column_ids(&["a", "b"]).unwrap();
        let mask = Bitmap::from_fn(r.row_count(), |i| i % 3 != 0);
        let seq = GroupIndex::build_filtered(&r, &cols, Some(&mask));
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(4)
            .build()
            .unwrap();
        let par = pool.install(|| GroupIndex::par_build_filtered(&r, &cols, Some(&mask)));
        assert_eq!(par.group_ids(), seq.group_ids());
        assert_eq!(par.keys(), seq.keys());
        for gid in 0..seq.group_count() as u32 {
            assert_eq!(par.first_row(gid), seq.first_row(gid));
        }
    }

    #[test]
    fn small_parallel_build_falls_back_to_sequential_shape() {
        // Below two shards' worth of rows the parallel entry point must
        // still produce the identical index via the sequential path.
        let r = big_rel(10_000);
        let cols = r.schema().column_ids(&["a", "b"]).unwrap();
        let seq = GroupIndex::build(&r, &cols);
        let par = GroupIndex::par_build(&r, &cols);
        assert_eq!(par.group_ids(), seq.group_ids());
        assert_eq!(par.keys(), seq.keys());
    }

    #[test]
    fn first_row_tracks_global_first_occurrence() {
        let r = rel();
        let a = r.schema().column_id("a").unwrap();
        let ix = GroupIndex::build(&r, &[a]);
        // "x" first appears at row 0, "y" at row 1.
        assert_eq!(ix.first_row(ix.group_of(0)), 0);
        assert_eq!(ix.first_row(ix.group_of(1)), 1);
        // Under a mask the representative is the first *live* row.
        let mask = Bitmap::from_bools(&[false, true, true, true, false, false]);
        let m = GroupIndex::build_filtered(&r, &[a], Some(&mask));
        assert_eq!(m.first_row(m.group_of(2)), 2); // "x" now first at row 2
        assert_eq!(m.first_row(m.group_of(1)), 1);
        // Empty grouping: representative is the first live row overall.
        let e = GroupIndex::build_filtered(&r, &[], Some(&mask));
        assert_eq!(e.first_row(0), 1);
    }

    #[test]
    fn float_groups_by_bit_pattern() {
        let mut b = RelationBuilder::new().column("f", DataType::Float);
        for v in [1.5, 1.5, 2.5] {
            b.push_row(&[Value::from(v)]).unwrap();
        }
        let r = b.finish();
        let ix = GroupIndex::build(&r, &[ColumnId(0)]);
        assert_eq!(ix.group_count(), 2);
    }
}
