//! Statistical invariants of the §4 allocation strategies, checked over a
//! Zipf-skewed lineitem relation (the paper's experimental regime): budget
//! compliance, Senate's equal shares, Congress's per-subgroup dominance
//! over House and Senate before scaling, and the Eq-6 bound on the
//! scale-down factor `f`.

use congress::alloc::{AllocationStrategy, BasicCongress, Congress, House, Senate};
use congress::GroupCensus;
use tpcd::{GeneratorConfig, TpcdDataset};

const SPACE: f64 = 1_500.0;

/// Zipf-skewed dataset (skew 0.86, the paper's default): group sizes span
/// orders of magnitude, which is exactly where the strategies disagree.
fn zipf_census() -> GroupCensus {
    let ds = TpcdDataset::generate(GeneratorConfig {
        table_size: 50_000,
        num_groups: 200,
        group_skew: 0.86,
        agg_skew: 0.5,
        seed: 17,
    });
    GroupCensus::build(&ds.relation, &ds.grouping_columns()).unwrap()
}

fn strategies() -> Vec<(&'static str, Box<dyn AllocationStrategy>)> {
    vec![
        ("House", Box::new(House)),
        ("Senate", Box::new(Senate)),
        ("BasicCongress", Box::new(BasicCongress)),
        ("Congress", Box::new(Congress)),
    ]
}

/// Every strategy's total allocation respects the budget `X`, both as
/// fractional targets and after integerization.
#[test]
fn total_allocation_within_budget() {
    let census = zipf_census();
    for (name, strategy) in strategies() {
        let alloc = strategy.allocate(&census, SPACE).unwrap();
        assert!(
            alloc.total() <= SPACE * (1.0 + 1e-9),
            "{name}: fractional total {} exceeds X = {SPACE}",
            alloc.total()
        );
        let drawn: usize = alloc.integer_counts(census.sizes()).iter().sum();
        assert!(
            drawn as f64 <= SPACE + 0.5,
            "{name}: integerized total {drawn} exceeds X = {SPACE}"
        );
    }
}

/// Senate gives every non-empty finest group exactly the same fractional
/// share, `X / m`, regardless of group size.
#[test]
fn senate_allocates_equally_per_group() {
    let census = zipf_census();
    let alloc = Senate.allocate(&census, SPACE).unwrap();
    let share = SPACE / census.group_count() as f64;
    for (g, &t) in alloc.targets().iter().enumerate() {
        assert!(
            (t - share).abs() < 1e-9,
            "group {g}: Senate share {t} != X/m = {share}"
        );
    }
}

/// Congress's pre-scaling target for each finest subgroup dominates both
/// the House and the Senate allocations — its maximum runs over every
/// grouping `T ⊆ G`, and `T = ∅` / `T = G` reproduce those two.
#[test]
fn congress_dominates_house_and_senate_before_scaling() {
    let census = zipf_census();
    let raw = Congress::raw_targets(&census, SPACE);
    let house = House.allocate(&census, SPACE).unwrap();
    let senate = Senate.allocate(&census, SPACE).unwrap();
    for (g, &r) in raw.iter().enumerate() {
        let floor = house.targets()[g].max(senate.targets()[g]);
        assert!(
            r >= floor - 1e-9,
            "group {g}: raw Congress {r} below max(House, Senate) = {floor}"
        );
    }
    // The published allocation is exactly the raw target scaled by f.
    let alloc = Congress.allocate(&census, SPACE).unwrap();
    let f = alloc.scale_down_factor();
    for (g, &r) in raw.iter().enumerate() {
        assert!(
            (alloc.targets()[g] - f * r).abs() < 1e-6,
            "group {g}: target is not f times the raw allocation"
        );
    }
}

/// The Eq-6 scale-down factor is bounded: `f ∈ (2^-|G|, 1]`. The raw
/// per-group maximum can overshoot the budget by at most the number of
/// groupings in the lattice, `2^|G|`.
#[test]
fn congress_scale_down_factor_in_bounds() {
    let census = zipf_census();
    let alloc = Congress.allocate(&census, SPACE).unwrap();
    let f = alloc.scale_down_factor();
    let k = census.grouping_columns().len() as i32;
    assert!(f <= 1.0, "f = {f} exceeds 1");
    assert!(
        f > 2f64.powi(-k),
        "f = {f} at or below the 2^-|G| = {} lower bound",
        2f64.powi(-k)
    );
}

/// BasicCongress interpolates: per group it starts from
/// max(House, Senate) and scales down to the budget, so its pre-scaling
/// share dominates both and its scale factor obeys the two-term bound
/// `f ∈ (1/2, 1]`.
#[test]
fn basic_congress_dominance_and_bound() {
    let census = zipf_census();
    let alloc = BasicCongress.allocate(&census, SPACE).unwrap();
    let f = alloc.scale_down_factor();
    assert!(
        f <= 1.0 && f > 0.5,
        "BasicCongress f = {f} outside (1/2, 1]"
    );
    let house = House.allocate(&census, SPACE).unwrap();
    let senate = Senate.allocate(&census, SPACE).unwrap();
    for g in 0..census.group_count() {
        let floor = house.targets()[g].max(senate.targets()[g]);
        assert!(
            alloc.targets()[g] >= f * floor - 1e-9,
            "group {g}: BasicCongress {} below f * max(House, Senate)",
            alloc.targets()[g]
        );
    }
}
