//! Offline mini-proptest.
//!
//! Implements the subset of the proptest API this workspace's property
//! tests use: the [`strategy::Strategy`] trait with `prop_map` /
//! `prop_flat_map` / `prop_filter_map` / `prop_filter`, range and tuple
//! strategies, [`collection::vec`], [`bool::weighted`], [`option::of`],
//! `prop_oneof!`, and the `proptest!` test macro with
//! `#![proptest_config(ProptestConfig::with_cases(n))]`.
//!
//! Differences from real proptest, deliberately accepted:
//! - **No shrinking.** A failing case reports its inputs via the assertion
//!   message and the case seed; re-run with `PROPTEST_SEED` to reproduce.
//! - **Deterministic by default.** Case seeds derive from the test name
//!   and case index, so CI runs are reproducible; set `PROPTEST_SEED` to
//!   explore a different part of the space.

pub mod strategy;
pub mod test_runner;

pub mod collection {
    //! Collection strategies.

    use crate::strategy::{Strategy, TestRng};
    use rand::Rng;
    use std::ops::{Range, RangeInclusive};

    /// Number-of-elements specification for [`vec`].
    #[derive(Clone, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi_inclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                lo: n,
                hi_inclusive: n,
            }
        }
    }
    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi_inclusive: r.end - 1,
            }
        }
    }
    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi_inclusive: *r.end(),
            }
        }
    }

    /// Strategy producing `Vec`s of `element` with a length drawn from
    /// `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`vec`].
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn new_value(&self, rng: &mut TestRng) -> Self::Value {
            let n = rng.gen_range(self.size.lo..=self.size.hi_inclusive);
            (0..n).map(|_| self.element.new_value(rng)).collect()
        }
    }
}

pub mod bool {
    //! Boolean strategies.

    use crate::strategy::{Strategy, TestRng};
    use rand::Rng;

    /// Strategy producing `true` with probability `p`.
    pub fn weighted(p: f64) -> Weighted {
        assert!((0.0..=1.0).contains(&p), "weight must be a probability");
        Weighted { p }
    }

    /// See [`weighted`].
    #[derive(Clone, Copy, Debug)]
    pub struct Weighted {
        p: f64,
    }

    impl Strategy for Weighted {
        type Value = bool;
        fn new_value(&self, rng: &mut TestRng) -> bool {
            rng.gen_bool(self.p)
        }
    }
}

pub mod option {
    //! `Option` strategies.

    use crate::strategy::{Strategy, TestRng};
    use rand::Rng;

    /// Strategy producing `Some(inner)` three times out of four (matching
    /// real proptest's default Some-weight) and `None` otherwise.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    /// See [`of`].
    #[derive(Clone, Debug)]
    pub struct OptionStrategy<S> {
        inner: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn new_value(&self, rng: &mut TestRng) -> Self::Value {
            if rng.gen_bool(0.75) {
                Some(self.inner.new_value(rng))
            } else {
                None
            }
        }
    }
}

pub mod prelude {
    //! The usual glob import.
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestCaseResult};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Fail the current property test case if `cond` is false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// Fail the current property test case unless the two values are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{:?}` == `{:?}` ({} == {})",
            l, r, stringify!($left), stringify!($right)
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, $($fmt)*);
    }};
}

/// Fail the current property test case if the two values are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l != *r, "assertion failed: `{:?}` != `{:?}`", l, r);
    }};
}

/// Uniform choice between same-typed strategies.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$($strategy),+])
    };
}

/// Define property tests. Each `fn` becomes a `#[test]` that draws its
/// arguments from the given strategies `cases` times.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_items! { ($config) $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_items! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ( ($config:expr) ) => {};
    (
        ($config:expr)
        $(#[$meta:meta])*
        fn $name:ident ( $( $arg:ident in $strategy:expr ),+ $(,)? ) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $config;
            $crate::test_runner::run_cases(&config, stringify!($name), |__proptest_rng| {
                $( let $arg = $crate::strategy::Strategy::new_value(&($strategy), __proptest_rng); )+
                let __proptest_body =
                    || -> ::core::result::Result<(), $crate::test_runner::TestCaseError> {
                        $body
                        #[allow(unreachable_code)]
                        ::core::result::Result::Ok(())
                    };
                __proptest_body()
            });
        }
        $crate::__proptest_items! { ($config) $($rest)* }
    };
}
