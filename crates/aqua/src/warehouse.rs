//! A multi-relation warehouse front end (the paper's Figure 1: Aqua keeps
//! a *set* of synopses — base-table samples and join synopses — inside the
//! DBMS, under one administrator-supplied space budget), with durable
//! crash-safe persistence on top of any [`SnapshotStore`].
//!
//! # Persistence model
//!
//! [`Warehouse::save_all`] writes each relation's base table (exact binary
//! encoding), synopsis snapshot, and configuration under a fresh
//! *generation* number, then commits the whole save with one atomic `put`
//! of the [`manifest`](crate::manifest). Files of the previous generation
//! are deleted only after the commit, so a crash at any store operation
//! leaves a complete generation on disk — old or new, never a mix.
//!
//! [`Warehouse::open`] verifies every blob against the manifest's length
//! and CRC32C before trusting it. A corrupt or missing synopsis is
//! *quarantined* (renamed under `quarantine/`) and the relation is either
//! rebuilt from its (intact) base table or served in **degraded mode** —
//! exact scans, surfaced through
//! [`AnswerProvenance::ExactFallback`](crate::answer::AnswerProvenance) —
//! depending on the [`RecoveryPolicy`]. A corrupt base table makes the
//! relation unrecoverable from this store; it is quarantined and reported,
//! and the rest of the warehouse still opens.
//!
//! Inserts between saves can be made durable with
//! [`Warehouse::insert_logged`], which appends length+CRC framed row
//! batches to a per-relation write-ahead log; `open` replays intact
//! records and truncates a torn tail.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::RwLock;

use congress::{crc32c, SnapshotStore};
use engine::join::foreign_key_join;
use engine::{execute_exact, GroupByQuery, QueryResult};
use relation::{binio, ColumnId, Relation, Schema, Value};

use crate::answer::{AnswerProvenance, ApproximateAnswer};
use crate::config::AquaConfig;
use crate::error::{AquaError, Result};
use crate::manifest::{FileRef, Manifest, ManifestEntry, MANIFEST_KEY, QUARANTINE_PREFIX};
use crate::system::Aqua;

/// What [`Warehouse::open`] does with a relation whose synopsis is
/// missing or fails verification (the base table being intact).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecoveryPolicy {
    /// Rebuild the synopsis from the base table (slow open, full service).
    Rebuild,
    /// Serve the relation in degraded mode — exact scans of the base
    /// table, flagged via [`AnswerProvenance::ExactFallback`] — until an
    /// explicit [`Warehouse::repair`].
    Degrade,
}

/// Per-relation outcome of [`Warehouse::open`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RelationStatus {
    /// Table and synopsis verified clean.
    Healthy,
    /// The synopsis was quarantined (or absent) and rebuilt from the base
    /// table.
    Rebuilt {
        /// Store key the corrupt snapshot was moved to, if one existed.
        quarantined: Option<String>,
    },
    /// Serving exact scans only.
    Degraded {
        /// Why the synopsis path is unavailable.
        reason: String,
    },
    /// The base table itself failed verification; the relation could not
    /// be loaded at all.
    Lost {
        /// What failed.
        reason: String,
    },
}

impl RelationStatus {
    /// Stable lowercase label, used as a metric label value.
    pub fn label(&self) -> &'static str {
        match self {
            RelationStatus::Healthy => "healthy",
            RelationStatus::Rebuilt { .. } => "rebuilt",
            RelationStatus::Degraded { .. } => "degraded",
            RelationStatus::Lost { .. } => "lost",
        }
    }
}

/// One relation's recovery report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RelationReport {
    /// Relation name.
    pub name: String,
    /// How the relation came back.
    pub status: RelationStatus,
    /// Intact WAL records replayed into the relation.
    pub wal_records_replayed: usize,
    /// Torn/corrupt WAL bytes dropped (the tail is truncated in-store).
    pub wal_bytes_dropped: usize,
}

/// What [`Warehouse::open`] found and did.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OpenReport {
    /// Generation of the manifest that was opened.
    pub generation: u64,
    /// Per-relation outcomes, in manifest order.
    pub relations: Vec<RelationReport>,
}

impl OpenReport {
    /// `true` when every relation came back healthy with no WAL damage.
    pub fn fully_healthy(&self) -> bool {
        self.relations
            .iter()
            .all(|r| r.status == RelationStatus::Healthy && r.wal_bytes_dropped == 0)
    }
}

/// What [`Warehouse::save_all`] wrote.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SaveReport {
    /// The generation this save committed.
    pub generation: u64,
    /// Blobs written (tables + snapshots + manifest).
    pub files_written: usize,
    /// Total payload bytes across those blobs.
    pub bytes_written: u64,
}

/// What [`Warehouse::verify`] found (read-only; nothing is modified).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VerifyReport {
    /// Generation of the manifest that was checked.
    pub generation: u64,
    /// `true` when every blob matches the manifest and no WAL is torn.
    pub ok: bool,
    /// Human-readable per-check lines.
    pub lines: Vec<String>,
}

/// A relation being served without a synopsis: exact scans only.
struct Degraded {
    table: RwLock<Relation>,
    grouping: Vec<ColumnId>,
    config: AquaConfig,
    reason: String,
}

enum Serving {
    Sampled(Arc<Aqua>),
    Degraded(Arc<Degraded>),
}

struct Entry {
    serving: Serving,
    /// Store key prefix for this relation's blobs.
    dir: String,
}

/// A named collection of approximate-query-answering systems, one per
/// (base or pre-joined) relation.
#[derive(Default)]
pub struct Warehouse {
    relations: RwLock<HashMap<String, Entry>>,
    /// Last committed save generation (0 = never saved).
    generation: AtomicU64,
    /// Warehouse-level durability counters (`warehouse_*`); per-relation
    /// query metrics live in each [`Aqua`]'s own registry and are merged
    /// in by [`Warehouse::stats`].
    registry: Arc<obs::Registry>,
}

/// Store-safe key prefix for a relation name: printable-safe characters
/// kept, the rest replaced, plus a CRC of the raw name so distinct names
/// never share a prefix.
fn store_dir(name: &str) -> String {
    let safe: String = name
        .chars()
        .take(48)
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '-' || c == '_' || c == '.' {
                c
            } else {
                '_'
            }
        })
        .collect();
    format!("rel-{safe}-{:08x}", crc32c(name.as_bytes()))
}

fn table_key(dir: &str, generation: u64) -> String {
    format!("{dir}/table.g{generation}.bin")
}
fn snapshot_key(dir: &str, generation: u64) -> String {
    format!("{dir}/synopsis.g{generation}.bin")
}
fn wal_key(dir: &str, generation: u64) -> String {
    format!("{dir}/wal.g{generation}.log")
}

/// Fetch a blob and verify it against its manifest reference. Returns the
/// bytes or a human-readable reason for rejection.
fn load_checked(store: &dyn SnapshotStore, fref: &FileRef) -> std::result::Result<Vec<u8>, String> {
    let bytes = store.get(&fref.key).map_err(|e| e.to_string())?;
    if bytes.len() as u64 != fref.len {
        return Err(format!(
            "`{}`: length {} does not match manifest ({})",
            fref.key,
            bytes.len(),
            fref.len
        ));
    }
    let crc = crc32c(&bytes);
    if crc != fref.crc {
        return Err(format!(
            "`{}`: checksum {crc:08x} does not match manifest ({:08x})",
            fref.key, fref.crc
        ));
    }
    Ok(bytes)
}

/// Move a (possibly missing) blob under `quarantine/`, best-effort.
fn quarantine(store: &dyn SnapshotStore, key: &str) -> Option<String> {
    let dest = format!("{QUARANTINE_PREFIX}/{key}");
    match store.rename(key, &dest) {
        Ok(()) => Some(dest),
        Err(_) => None, // missing blob, or a store that cannot rename
    }
}

/// Upper bound on a single WAL record's payload; anything larger is
/// treated as a torn/corrupt tail rather than allocated.
const MAX_WAL_RECORD: usize = 1 << 24;

/// Scan a WAL blob: decode intact `len|payload|crc32c` frames into rows,
/// stopping at the first torn or corrupt frame. Returns the rows, the
/// record count, and the byte offset where valid data ends.
fn scan_wal(schema: &Schema, buf: &[u8]) -> (Vec<Vec<Value>>, usize, usize) {
    let mut rows = Vec::new();
    let mut records = 0;
    let mut off = 0usize;
    while off + 4 <= buf.len() {
        let len = u32::from_be_bytes(buf[off..off + 4].try_into().unwrap()) as usize;
        if len > MAX_WAL_RECORD || off + 4 + len + 4 > buf.len() {
            break;
        }
        let payload = &buf[off + 4..off + 4 + len];
        let stored = u32::from_be_bytes(buf[off + 4 + len..off + 8 + len].try_into().unwrap());
        if crc32c(payload) != stored {
            break;
        }
        match binio::decode_rows(schema, payload) {
            Ok(batch) => rows.extend(batch),
            Err(_) => break,
        }
        off += 8 + len;
        records += 1;
    }
    (rows, records, off)
}

impl Warehouse {
    /// Empty warehouse.
    pub fn new() -> Warehouse {
        Warehouse::default()
    }

    /// Register a base relation with its dimensional columns and synopsis
    /// configuration. Errors if the name is taken — checked *before* the
    /// (potentially expensive) synopsis build, so a duplicate registration
    /// fails fast without wasted work.
    pub fn register(
        &self,
        name: impl Into<String>,
        table: Relation,
        grouping: Vec<ColumnId>,
        config: AquaConfig,
    ) -> Result<()> {
        let name = name.into();
        let taken = |name: &str| {
            AquaError::InvalidConfig(format!("relation `{name}` is already registered"))
        };
        if self.relations.read().contains_key(&name) {
            return Err(taken(&name));
        }
        let system = Aqua::build(table, grouping, config)?;
        let mut map = self.relations.write();
        // Re-check under the write lock: a racing registration may have
        // claimed the name while the synopsis was building.
        if map.contains_key(&name) {
            return Err(taken(&name));
        }
        let dir = store_dir(&name);
        map.insert(
            name,
            Entry {
                serving: Serving::Sampled(Arc::new(system)),
                dir,
            },
        );
        Ok(())
    }

    /// Register a *join synopsis* (§2): materialize the foreign-key join
    /// `fact ⋈ dim` and build a congressional sample over the result, so
    /// multi-table group-by queries become single-relation queries.
    #[allow(clippy::too_many_arguments)]
    pub fn register_join_synopsis(
        &self,
        name: impl Into<String>,
        fact: &Relation,
        fk: ColumnId,
        dim: &Relation,
        pk: ColumnId,
        dim_prefix: &str,
        grouping_names: &[&str],
        config: AquaConfig,
    ) -> Result<()> {
        let joined = foreign_key_join(fact, fk, dim, pk, dim_prefix)?;
        let grouping = joined.schema().column_ids(grouping_names)?;
        self.register(name, joined, grouping, config)
    }

    fn unknown(name: &str) -> AquaError {
        AquaError::InvalidConfig(format!("unknown relation `{name}`"))
    }

    /// The system serving `name`. Errors for unknown relations and for
    /// relations currently in degraded mode (which have no synopsis to
    /// hand out — use [`Self::answer`]/[`Self::exact`], or
    /// [`Self::repair`] the warehouse).
    pub fn system(&self, name: &str) -> Result<Arc<Aqua>> {
        match self.relations.read().get(name) {
            Some(Entry {
                serving: Serving::Sampled(aqua),
                ..
            }) => Ok(Arc::clone(aqua)),
            Some(Entry {
                serving: Serving::Degraded(d),
                ..
            }) => Err(AquaError::Storage(format!(
                "relation `{name}` is degraded ({}); exact scans only",
                d.reason
            ))),
            None => Err(Self::unknown(name)),
        }
    }

    /// Relations currently served in degraded mode, as `(name, reason)`.
    pub fn degraded_relations(&self) -> Vec<(String, String)> {
        let mut out: Vec<(String, String)> = self
            .relations
            .read()
            .iter()
            .filter_map(|(name, e)| match &e.serving {
                Serving::Degraded(d) => Some((name.clone(), d.reason.clone())),
                Serving::Sampled(_) => None,
            })
            .collect();
        out.sort();
        out
    }

    /// Answer approximately against the named relation. A degraded
    /// relation answers with an exact scan, flagged in the returned
    /// answer's [`provenance`](ApproximateAnswer::provenance).
    pub fn answer(&self, name: &str, query: &GroupByQuery) -> Result<ApproximateAnswer> {
        let serving = self.serving(name)?;
        match serving {
            Serving::Sampled(aqua) => aqua.answer(query),
            Serving::Degraded(d) => {
                self.registry
                    .counter("warehouse_degraded_answers_total")
                    .inc();
                let result = execute_exact(&d.table.read(), query)?;
                Ok(ApproximateAnswer {
                    result,
                    bounds: Vec::new(),
                    confidence: 1.0,
                    provenance: AnswerProvenance::ExactFallback {
                        reason: d.reason.clone(),
                    },
                })
            }
        }
    }

    /// Answer SQL against the named relation through the serving fast
    /// path ([`Aqua::answer_sql_shared`]: plan cache + answer cache). A
    /// degraded relation parses and scans exactly, with an empty
    /// `rewritten` (there is no synopsis to rewrite against).
    pub fn answer_sql(&self, name: &str, sql: &str) -> Result<Arc<crate::ServedAnswer>> {
        match self.serving(name)? {
            Serving::Sampled(aqua) => aqua.answer_sql_shared(sql),
            Serving::Degraded(d) => {
                self.registry
                    .counter("warehouse_degraded_answers_total")
                    .inc();
                let table = d.table.read();
                let query = engine::sql::parse(table.schema(), sql)?;
                let result = execute_exact(&table, &query)?;
                Ok(Arc::new(crate::ServedAnswer {
                    answer: ApproximateAnswer {
                        result,
                        bounds: Vec::new(),
                        confidence: 1.0,
                        provenance: AnswerProvenance::ExactFallback {
                            reason: d.reason.clone(),
                        },
                    },
                    rewritten: String::new(),
                }))
            }
        }
    }

    /// Exact answer against the named relation's stored table.
    pub fn exact(&self, name: &str, query: &GroupByQuery) -> Result<QueryResult> {
        match self.serving(name)? {
            Serving::Sampled(aqua) => aqua.exact(query),
            Serving::Degraded(d) => Ok(execute_exact(&d.table.read(), query)?),
        }
    }

    /// Insert tuples into the named relation (synopsis maintained
    /// incrementally for sampled relations; degraded relations grow their
    /// base table). Not durable — see [`Self::insert_logged`]. Routing
    /// through [`Aqua::insert_batch`] also invalidates the relation's
    /// query cache (indexes and aggregate summaries), so subsequent
    /// answers are served from post-insert state.
    pub fn insert(&self, name: &str, rows: &[Vec<Value>]) -> Result<()> {
        match self.serving(name)? {
            Serving::Sampled(aqua) => aqua.insert_batch(rows),
            Serving::Degraded(d) => Self::append_degraded(&d, rows),
        }
    }

    /// Insert tuples *durably*: the batch is appended to the relation's
    /// write-ahead log (length + CRC32C framed) before being applied in
    /// memory, so a crash before the next [`Self::save_all`] loses
    /// nothing — [`Self::open`] replays the log. The in-memory apply goes
    /// through the same ingest path as [`Self::insert`], so WAL inserts
    /// invalidate cached indexes/summaries exactly like plain ones; a
    /// replay on `open` starts from a fresh (empty) cache anyway.
    pub fn insert_logged(
        &self,
        store: &dyn SnapshotStore,
        name: &str,
        rows: &[Vec<Value>],
    ) -> Result<()> {
        if rows.is_empty() {
            return Ok(());
        }
        // Hold the map read lock across append + apply so `save_all`
        // (which takes the write lock) can never interleave and miss the
        // batch from both the saved table and the surviving WAL.
        let map = self.relations.read();
        let entry = map.get(name).ok_or_else(|| Self::unknown(name))?;
        let schema = match &entry.serving {
            Serving::Sampled(aqua) => aqua.table_snapshot().schema().clone(),
            Serving::Degraded(d) => d.table.read().schema().clone(),
        };
        let payload = binio::encode_rows(&schema, rows)?;
        let mut frame = Vec::with_capacity(payload.len() + 8);
        frame.extend_from_slice(&(payload.len() as u32).to_be_bytes());
        frame.extend_from_slice(&payload);
        frame.extend_from_slice(&crc32c(&payload).to_be_bytes());
        let key = wal_key(&entry.dir, self.generation.load(Ordering::SeqCst));
        store.append(&key, &frame)?;
        self.registry.counter("warehouse_wal_appends_total").inc();
        self.registry
            .counter("warehouse_wal_appended_bytes_total")
            .add(frame.len() as u64);
        match &entry.serving {
            Serving::Sampled(aqua) => aqua.insert_batch(rows),
            Serving::Degraded(d) => Self::append_degraded(d, rows),
        }
    }

    fn append_degraded(d: &Degraded, rows: &[Vec<Value>]) -> Result<()> {
        if rows.is_empty() {
            return Ok(());
        }
        let mut table = d.table.write();
        let mut builder = relation::RelationBuilder::from_schema(table.schema());
        for row in rows {
            builder.push_row(row)?;
        }
        let batch = builder.finish();
        *table = Relation::concat(&[&*table, &batch])?;
        Ok(())
    }

    fn serving(&self, name: &str) -> Result<Serving> {
        match self.relations.read().get(name) {
            Some(Entry {
                serving: Serving::Sampled(a),
                ..
            }) => Ok(Serving::Sampled(Arc::clone(a))),
            Some(Entry {
                serving: Serving::Degraded(d),
                ..
            }) => Ok(Serving::Degraded(Arc::clone(d))),
            None => Err(Self::unknown(name)),
        }
    }

    /// Registered relation names, sorted.
    pub fn relation_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.relations.read().keys().cloned().collect();
        names.sort();
        names
    }

    /// Total sampled tuples across every synopsis — what counts against
    /// the administrator's space budget. Degraded relations contribute 0.
    pub fn total_synopsis_rows(&self) -> usize {
        self.relations
            .read()
            .values()
            .map(|e| match &e.serving {
                Serving::Sampled(a) => a.synopsis_rows(),
                Serving::Degraded(_) => 0,
            })
            .sum()
    }

    /// Split a total tuple budget across relations proportionally to their
    /// row counts (a simple default for the administrator's single "space
    /// for synopses" knob). Returns `(name, budget)` pairs for the given
    /// table sizes.
    pub fn divide_space(total: usize, sizes: &[(&str, usize)]) -> Vec<(String, usize)> {
        let all: usize = sizes.iter().map(|(_, n)| n).sum();
        if all == 0 {
            return sizes.iter().map(|(n, _)| (n.to_string(), 0)).collect();
        }
        let mut out: Vec<(String, usize)> = sizes
            .iter()
            .map(|(name, n)| (name.to_string(), total * n / all))
            .collect();
        // Distribute rounding leftovers to the largest relations.
        let mut assigned: usize = out.iter().map(|(_, b)| b).sum();
        let mut order: Vec<usize> = (0..out.len()).collect();
        order.sort_by_key(|&i| std::cmp::Reverse(sizes[i].1));
        let mut i = 0;
        while assigned < total && !order.is_empty() {
            out[order[i % order.len()]].1 += 1;
            assigned += 1;
            i += 1;
        }
        out
    }

    // -----------------------------------------------------------------
    // Durability
    // -----------------------------------------------------------------

    /// Persist every relation to `store` under a fresh generation,
    /// committing with one atomic manifest write.
    ///
    /// Crash safety: until the manifest `put` succeeds, the previous
    /// manifest and all of its files are untouched, so a failure at any
    /// point leaves the on-store warehouse exactly as it was. Cleanup of
    /// the superseded generation runs only after the commit and is
    /// best-effort (stale files are harmless; they are never referenced).
    pub fn save_all(&self, store: &dyn SnapshotStore) -> Result<SaveReport> {
        let timer = obs::Timer::start();
        // Write lock: no inserts may land between a table export and the
        // manifest commit, or they would be lost from both table and WAL.
        let map = self.relations.write();
        let old_gen = self.generation.load(Ordering::SeqCst);
        let generation = old_gen + 1;

        let mut names: Vec<&String> = map.keys().collect();
        names.sort();
        let mut entries = Vec::with_capacity(names.len());
        let mut files_written = 0usize;
        let mut bytes_written = 0u64;
        for name in names {
            let entry = &map[name];
            let (table, grouping, config, snapshot_bytes) = match &entry.serving {
                Serving::Sampled(aqua) => {
                    let snap = aqua.export_synopsis()?;
                    (
                        aqua.table_snapshot(),
                        aqua.grouping_columns(),
                        aqua.config(),
                        Some(snap),
                    )
                }
                Serving::Degraded(d) => {
                    (d.table.read().clone(), d.grouping.clone(), d.config, None)
                }
            };
            let table_bytes = binio::encode(&table);
            let tkey = table_key(&entry.dir, generation);
            store.put(&tkey, &table_bytes)?;
            files_written += 1;
            bytes_written += table_bytes.len() as u64;
            let table_ref = FileRef {
                key: tkey,
                len: table_bytes.len() as u64,
                crc: crc32c(&table_bytes),
            };
            let snapshot = match snapshot_bytes {
                Some(snap) => {
                    let skey = snapshot_key(&entry.dir, generation);
                    store.put(&skey, &snap)?;
                    files_written += 1;
                    bytes_written += snap.len() as u64;
                    Some(FileRef {
                        key: skey,
                        len: snap.len() as u64,
                        crc: crc32c(&snap),
                    })
                }
                None => None,
            };
            entries.push(ManifestEntry {
                name: name.clone(),
                dir: entry.dir.clone(),
                grouping: grouping.iter().map(|c| c.0).collect(),
                config,
                table: table_ref,
                snapshot,
                wal: wal_key(&entry.dir, generation),
            });
        }

        let manifest = Manifest {
            generation,
            entries,
        };
        let text = manifest.encode();
        store.put(MANIFEST_KEY, text.as_bytes())?; // commit point
        files_written += 1;
        bytes_written += text.len() as u64;
        self.generation.store(generation, Ordering::SeqCst);

        // Best-effort cleanup of the superseded generation. Failures are
        // ignored: the commit already happened and stale blobs are inert.
        for entry in map.values() {
            let _ = store.delete(&table_key(&entry.dir, old_gen));
            let _ = store.delete(&snapshot_key(&entry.dir, old_gen));
            let _ = store.delete(&wal_key(&entry.dir, old_gen));
        }

        self.registry.counter("warehouse_saves_total").inc();
        self.registry
            .counter("warehouse_save_files_total")
            .add(files_written as u64);
        self.registry
            .counter("warehouse_save_bytes_total")
            .add(bytes_written);
        self.registry
            .histogram("warehouse_save_us")
            .record(timer.elapsed_us());
        Ok(SaveReport {
            generation,
            files_written,
            bytes_written,
        })
    }

    /// Open a saved warehouse from `store`, verifying every blob and
    /// recovering per `policy`. Always returns a working warehouse if a
    /// valid manifest exists — individual relations may come back
    /// rebuilt, degraded, or (with a corrupt base table) lost, all
    /// detailed in the [`OpenReport`].
    pub fn open(
        store: &dyn SnapshotStore,
        policy: RecoveryPolicy,
    ) -> Result<(Warehouse, OpenReport)> {
        let manifest_bytes = store.get(MANIFEST_KEY).map_err(|e| {
            if e.is_not_found() {
                AquaError::Storage("no warehouse manifest in this store".into())
            } else {
                AquaError::from(e)
            }
        })?;
        let manifest = Manifest::parse(&manifest_bytes)?;
        let registry = Arc::new(obs::Registry::new());
        registry.counter("warehouse_opens_total").inc();

        let mut map = HashMap::new();
        let mut reports = Vec::with_capacity(manifest.entries.len());
        for entry in &manifest.entries {
            let mut report = RelationReport {
                name: entry.name.clone(),
                status: RelationStatus::Healthy,
                wal_records_replayed: 0,
                wal_bytes_dropped: 0,
            };

            let table = match load_checked(store, &entry.table)
                .and_then(|bytes| binio::decode(&bytes).map_err(|e| e.to_string()))
            {
                Ok(table) => table,
                Err(reason) => {
                    quarantine(store, &entry.table.key);
                    report.status = RelationStatus::Lost {
                        reason: format!("base table {reason}"),
                    };
                    reports.push(report);
                    continue;
                }
            };
            let schema = table.schema().clone();
            let grouping: Vec<ColumnId> = entry.grouping.iter().map(|&i| ColumnId(i)).collect();

            let degrade = |table: Relation, reason: String| {
                Serving::Degraded(Arc::new(Degraded {
                    table: RwLock::new(table),
                    grouping: grouping.clone(),
                    config: entry.config,
                    reason,
                }))
            };
            let serving = match &entry.snapshot {
                Some(fref) => {
                    let loaded = load_checked(store, fref).and_then(|bytes| {
                        Aqua::build_from_snapshot(
                            table.clone(),
                            entry.config,
                            bytes::Bytes::from(bytes),
                        )
                        .map_err(|e| e.to_string())
                    });
                    match loaded {
                        Ok(aqua) => Serving::Sampled(Arc::new(aqua)),
                        Err(reason) => {
                            let quarantined = quarantine(store, &fref.key);
                            match policy {
                                RecoveryPolicy::Rebuild => {
                                    match Aqua::build(table.clone(), grouping.clone(), entry.config)
                                    {
                                        Ok(aqua) => {
                                            report.status = RelationStatus::Rebuilt { quarantined };
                                            Serving::Sampled(Arc::new(aqua))
                                        }
                                        Err(e) => {
                                            let reason =
                                                format!("synopsis {reason}; rebuild failed: {e}");
                                            report.status = RelationStatus::Degraded {
                                                reason: reason.clone(),
                                            };
                                            degrade(table, reason)
                                        }
                                    }
                                }
                                RecoveryPolicy::Degrade => {
                                    let reason = format!("synopsis {reason}");
                                    report.status = RelationStatus::Degraded {
                                        reason: reason.clone(),
                                    };
                                    degrade(table, reason)
                                }
                            }
                        }
                    }
                }
                // Saved while degraded: no snapshot ever existed.
                None => match policy {
                    RecoveryPolicy::Rebuild => {
                        match Aqua::build(table.clone(), grouping.clone(), entry.config) {
                            Ok(aqua) => {
                                report.status = RelationStatus::Rebuilt { quarantined: None };
                                Serving::Sampled(Arc::new(aqua))
                            }
                            Err(e) => {
                                let reason = format!("saved degraded; rebuild failed: {e}");
                                report.status = RelationStatus::Degraded {
                                    reason: reason.clone(),
                                };
                                degrade(table, reason)
                            }
                        }
                    }
                    RecoveryPolicy::Degrade => {
                        let reason = "saved without a synopsis".to_string();
                        report.status = RelationStatus::Degraded {
                            reason: reason.clone(),
                        };
                        degrade(table, reason)
                    }
                },
            };

            // Replay the write-ahead log, truncating any torn tail.
            match store.get(&entry.wal) {
                Ok(buf) => {
                    let (rows, records, valid_end) = scan_wal(&schema, &buf);
                    report.wal_records_replayed = records;
                    report.wal_bytes_dropped = buf.len() - valid_end;
                    if report.wal_bytes_dropped > 0 {
                        store.put(&entry.wal, &buf[..valid_end])?;
                    }
                    if !rows.is_empty() {
                        match &serving {
                            Serving::Sampled(aqua) => aqua.insert_batch(&rows)?,
                            Serving::Degraded(d) => Self::append_degraded(d, &rows)?,
                        }
                    }
                }
                Err(e) if e.is_not_found() => {}
                Err(e) => return Err(e.into()),
            }

            registry
                .counter(&obs::label(
                    "warehouse_recovered_relations_total",
                    &[("status", report.status.label())],
                ))
                .inc();
            registry
                .counter("warehouse_wal_replayed_records_total")
                .add(report.wal_records_replayed as u64);
            if report.wal_bytes_dropped > 0 {
                registry.counter("warehouse_wal_truncations_total").inc();
                registry
                    .counter("warehouse_wal_dropped_bytes_total")
                    .add(report.wal_bytes_dropped as u64);
            }
            reports.push(report);
            map.insert(
                entry.name.clone(),
                Entry {
                    serving,
                    dir: entry.dir.clone(),
                },
            );
        }

        let warehouse = Warehouse {
            relations: RwLock::new(map),
            generation: AtomicU64::new(manifest.generation),
            registry,
        };
        Ok((
            warehouse,
            OpenReport {
                generation: manifest.generation,
                relations: reports,
            },
        ))
    }

    /// Read-only integrity check of a saved warehouse: manifest checksum,
    /// every blob's length and CRC32C, and WAL frame integrity. Modifies
    /// nothing — corrupt blobs are reported, not quarantined.
    pub fn verify(store: &dyn SnapshotStore) -> Result<VerifyReport> {
        let manifest_bytes = store.get(MANIFEST_KEY).map_err(|e| {
            if e.is_not_found() {
                AquaError::Storage("no warehouse manifest in this store".into())
            } else {
                AquaError::from(e)
            }
        })?;
        let manifest = Manifest::parse(&manifest_bytes)?;
        let mut ok = true;
        let mut lines = vec![format!(
            "manifest: generation {}, {} relation(s), checksum ok",
            manifest.generation,
            manifest.entries.len()
        )];
        for entry in &manifest.entries {
            let mut check = |label: &str, fref: &FileRef| match load_checked(store, fref) {
                Ok(bytes) => lines.push(format!(
                    "{}: {label} ok ({} bytes, crc {:08x})",
                    entry.name,
                    bytes.len(),
                    fref.crc
                )),
                Err(reason) => {
                    ok = false;
                    lines.push(format!("{}: {label} CORRUPT — {reason}", entry.name));
                }
            };
            check("table", &entry.table);
            match &entry.snapshot {
                Some(fref) => check("synopsis", fref),
                None => lines.push(format!("{}: no synopsis (saved degraded)", entry.name)),
            }
            match store.get(&entry.wal) {
                Ok(buf) => {
                    // Frame scan only; decoding rows needs the table, which
                    // may itself be corrupt. An empty schema decodes nothing,
                    // so count frames directly.
                    let mut off = 0usize;
                    let mut frames = 0usize;
                    while off + 4 <= buf.len() {
                        let len =
                            u32::from_be_bytes(buf[off..off + 4].try_into().unwrap()) as usize;
                        if len > MAX_WAL_RECORD || off + 4 + len + 4 > buf.len() {
                            break;
                        }
                        let payload = &buf[off + 4..off + 4 + len];
                        let stored = u32::from_be_bytes(
                            buf[off + 4 + len..off + 8 + len].try_into().unwrap(),
                        );
                        if crc32c(payload) != stored {
                            break;
                        }
                        off += 8 + len;
                        frames += 1;
                    }
                    if off == buf.len() {
                        lines.push(format!(
                            "{}: wal ok ({frames} record(s), {} bytes)",
                            entry.name,
                            buf.len()
                        ));
                    } else {
                        ok = false;
                        lines.push(format!(
                            "{}: wal TORN — {} valid record(s), {} trailing byte(s) corrupt",
                            entry.name,
                            frames,
                            buf.len() - off
                        ));
                    }
                }
                Err(e) if e.is_not_found() => {
                    lines.push(format!("{}: wal empty", entry.name));
                }
                Err(e) => return Err(e.into()),
            }
        }
        Ok(VerifyReport {
            generation: manifest.generation,
            ok,
            lines,
        })
    }

    /// Point-in-time metrics snapshot: the warehouse's own durability
    /// counters (`warehouse_*`) merged with every sampled relation's
    /// [`Aqua::stats`] (query spans, cache counters, maintenance timings
    /// — summed across relations). Degraded relations contribute only the
    /// warehouse-level counters.
    pub fn stats(&self) -> crate::system::StatsSnapshot {
        let mut snap = self.registry.snapshot();
        snap.set_gauge("warehouse_generation", self.generation() as i64);
        let map = self.relations.read();
        snap.set_gauge("warehouse_relations", map.len() as i64);
        for entry in map.values() {
            if let Serving::Sampled(aqua) = &entry.serving {
                snap.merge(&aqua.stats());
            }
        }
        snap
    }

    /// Last committed save generation (0 = never saved).
    pub fn generation(&self) -> u64 {
        self.generation.load(Ordering::SeqCst)
    }

    /// Open with recovery, then immediately re-save: quarantined blobs are
    /// replaced by freshly built ones, torn WALs are folded into the new
    /// generation's tables, and (under [`RecoveryPolicy::Rebuild`])
    /// degraded relations regain their synopses.
    pub fn repair(
        store: &dyn SnapshotStore,
        policy: RecoveryPolicy,
    ) -> Result<(Warehouse, OpenReport, SaveReport)> {
        let (warehouse, open_report) = Warehouse::open(store, policy)?;
        let save_report = warehouse.save_all(store)?;
        Ok((warehouse, open_report, save_report))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SamplingStrategy;
    use congress::MemStore;
    use engine::AggregateSpec;
    use relation::{DataType, Expr, RelationBuilder};

    fn sales(n: i64) -> Relation {
        let mut b = RelationBuilder::new()
            .column("region", DataType::Str)
            .column("amount", DataType::Float)
            .column("cust_fk", DataType::Int);
        for i in 0..n {
            b.push_row(&[
                Value::str(if i % 3 == 0 { "east" } else { "west" }),
                Value::from((i % 90) as f64),
                Value::Int(i % 10),
            ])
            .unwrap();
        }
        b.finish()
    }

    fn customers() -> Relation {
        let mut b = RelationBuilder::new()
            .column("cust_id", DataType::Int)
            .column("segment", DataType::Str);
        for i in 0..10i64 {
            b.push_row(&[
                Value::Int(i),
                Value::str(if i < 2 { "enterprise" } else { "retail" }),
            ])
            .unwrap();
        }
        b.finish()
    }

    fn config() -> AquaConfig {
        AquaConfig {
            space: 200,
            strategy: SamplingStrategy::Congress,
            seed: 1,
            ..AquaConfig::default()
        }
    }

    #[test]
    fn register_answer_and_insert() {
        let w = Warehouse::new();
        let t = sales(3000);
        let grouping = t.schema().column_ids(&["region"]).unwrap();
        w.register("sales", t, grouping, config()).unwrap();
        assert_eq!(w.relation_names(), vec!["sales"]);

        let q = GroupByQuery::new(vec![ColumnId(0)], vec![AggregateSpec::count("c")]);
        let ans = w.answer("sales", &q).unwrap();
        assert_eq!(ans.result.group_count(), 2);
        assert!(!ans.is_degraded());
        w.insert(
            "sales",
            &[vec![Value::str("north"), Value::from(1.0), Value::Int(0)]],
        )
        .unwrap();
        let ans = w.answer("sales", &q).unwrap();
        assert_eq!(ans.result.group_count(), 3);
        assert!(w.total_synopsis_rows() > 0);
        assert!(w.degraded_relations().is_empty());
    }

    #[test]
    fn duplicate_and_unknown_names_rejected() {
        let w = Warehouse::new();
        let t = sales(100);
        let g = t.schema().column_ids(&["region"]).unwrap();
        w.register("sales", t.clone(), g.clone(), config()).unwrap();
        assert!(w.register("sales", t, g, config()).is_err());
        assert!(w.system("nope").is_err());
        let q = GroupByQuery::new(vec![], vec![AggregateSpec::count("c")]);
        assert!(w.answer("nope", &q).is_err());
    }

    #[test]
    fn duplicate_name_fails_before_synopsis_build() {
        let w = Warehouse::new();
        let t = sales(100);
        let g = t.schema().column_ids(&["region"]).unwrap();
        w.register("sales", t.clone(), g.clone(), config()).unwrap();
        // An *empty* table would make `Aqua::build` fail with its own
        // "empty relation" error — so getting the duplicate-name error
        // back proves the name check ran first, without wasted work.
        let empty = t.gather(&[]);
        let err = w.register("sales", empty, g, config()).unwrap_err();
        assert!(
            err.to_string().contains("already registered"),
            "expected fast duplicate-name failure, got: {err}"
        );
    }

    #[test]
    fn join_synopsis_registration() {
        let w = Warehouse::new();
        let fact = sales(2000);
        let dim = customers();
        w.register_join_synopsis(
            "sales_by_customer",
            &fact,
            fact.schema().column_id("cust_fk").unwrap(),
            &dim,
            dim.schema().column_id("cust_id").unwrap(),
            "c_",
            &["region", "c_segment"],
            config(),
        )
        .unwrap();
        // Cross-table grouping answered from the join synopsis.
        let joined = w.system("sales_by_customer").unwrap();
        let seg = ColumnId(4); // region, amount, cust_fk, c_cust_id, c_segment
        let q = GroupByQuery::new(
            vec![seg],
            vec![AggregateSpec::sum(Expr::col(ColumnId(1)), "rev")],
        );
        let ans = joined.answer(&q).unwrap();
        assert_eq!(ans.result.group_count(), 2); // enterprise / retail
    }

    #[test]
    fn divide_space_proportional_and_exact() {
        let parts =
            Warehouse::divide_space(100, &[("big", 7_000), ("mid", 2_000), ("tiny", 1_000)]);
        let total: usize = parts.iter().map(|(_, b)| b).sum();
        assert_eq!(total, 100);
        let get = |n: &str| parts.iter().find(|(m, _)| m == n).unwrap().1;
        assert_eq!(get("big"), 70);
        assert_eq!(get("mid"), 20);
        assert_eq!(get("tiny"), 10);
        // Degenerate: all-empty sizes.
        let parts = Warehouse::divide_space(10, &[("a", 0)]);
        assert_eq!(parts[0].1, 0);
    }

    #[test]
    fn save_open_round_trip_preserves_answers() {
        let store = MemStore::new();
        let w = Warehouse::new();
        let t = sales(2000);
        let grouping = t.schema().column_ids(&["region"]).unwrap();
        w.register("sales", t, grouping, config()).unwrap();
        let q = GroupByQuery::new(vec![ColumnId(0)], vec![AggregateSpec::count("c")]);
        let before = w.answer("sales", &q).unwrap();
        let save = w.save_all(&store).unwrap();
        assert_eq!(save.generation, 1);

        let (w2, report) = Warehouse::open(&store, RecoveryPolicy::Rebuild).unwrap();
        assert!(report.fully_healthy(), "{report:?}");
        let after = w2.answer("sales", &q).unwrap();
        assert!(!after.is_degraded());
        assert_eq!(before.result, after.result);
        assert_eq!(
            w2.exact("sales", &q).unwrap(),
            w.exact("sales", &q).unwrap()
        );
    }

    #[test]
    fn logged_inserts_survive_via_wal_replay() {
        let store = MemStore::new();
        let w = Warehouse::new();
        let t = sales(500);
        let grouping = t.schema().column_ids(&["region"]).unwrap();
        w.register("sales", t, grouping, config()).unwrap();
        w.save_all(&store).unwrap();
        // Durable inserts after the save — never re-saved.
        w.insert_logged(
            &store,
            "sales",
            &[
                vec![Value::str("north"), Value::from(5.0), Value::Int(1)],
                vec![Value::str("north"), Value::from(6.0), Value::Int(2)],
            ],
        )
        .unwrap();
        let (w2, report) = Warehouse::open(&store, RecoveryPolicy::Rebuild).unwrap();
        assert_eq!(report.relations[0].wal_records_replayed, 1);
        assert_eq!(report.relations[0].wal_bytes_dropped, 0);
        let q = GroupByQuery::new(vec![ColumnId(0)], vec![AggregateSpec::count("c")]);
        let exact = w2.exact("sales", &q).unwrap();
        let north = exact
            .get(&relation::GroupKey::new(vec![Value::str("north")]))
            .expect("replayed rows present");
        assert_eq!(north[0], 2.0);
    }

    #[test]
    fn verify_reports_clean_and_corrupt_stores() {
        let store = MemStore::new();
        let w = Warehouse::new();
        let t = sales(500);
        let grouping = t.schema().column_ids(&["region"]).unwrap();
        w.register("sales", t, grouping, config()).unwrap();
        w.save_all(&store).unwrap();
        let report = Warehouse::verify(&store).unwrap();
        assert!(report.ok, "{:?}", report.lines);

        // Flip one bit in the synopsis blob.
        let key = store
            .list()
            .unwrap()
            .into_iter()
            .find(|k| k.contains("synopsis"))
            .unwrap();
        let mut bytes = store.get(&key).unwrap();
        bytes[10] ^= 0x40;
        store.put(&key, &bytes).unwrap();
        let report = Warehouse::verify(&store).unwrap();
        assert!(!report.ok);
        assert!(report.lines.iter().any(|l| l.contains("CORRUPT")));
    }
}
