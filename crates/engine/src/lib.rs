#![warn(missing_docs)]

//! Group-by aggregate query engine and sample rewriting strategies.
//!
//! This crate is the execution substrate the paper's Aqua middleware relied
//! on its back-end DBMS (Oracle v7) for. It provides:
//!
//! * a typed group-by query description ([`GroupByQuery`]),
//! * an exact hash-aggregation executor ([`execute_exact`]),
//! * the *group index* ([`grouping::GroupIndex`]) shared by execution,
//!   sampling, and census construction,
//! * a hash join used by the Normalized rewrite family, and
//! * the paper's four query-rewriting strategies (§5.2) as physical plans
//!   over a stratified sample: [`rewrite::Integrated`],
//!   [`rewrite::NestedIntegrated`], [`rewrite::Normalized`], and
//!   [`rewrite::KeyNormalized`].
//!
//! All four strategies compute the same unbiased stratified estimate
//! (§5.1); they differ — as in the paper — in *how* the per-stratum
//! ScaleFactor reaches the aggregation operator, and therefore in cost.

pub mod aggregate;
pub mod cache;
pub mod error;
pub mod exec;
pub mod grouping;
pub mod join;
pub mod plan_cache;
pub mod query;
pub mod result;
pub mod rewrite;
pub mod sql;
pub mod stratified;

pub use aggregate::{AggregateFn, AggregateSpec, Partial};
pub use cache::{
    CacheStats, CacheStatsDetail, ExecOptions, ExecTrace, KindStats, MeasureSummary, QueryCache,
    ServedFrom, StratumCell, StratumLayout, StratumSummary,
};
pub use error::{EngineError, Result};
pub use exec::execute_exact;
pub use grouping::GroupIndex;
pub use plan_cache::{CachedPlan, PlanCache, PlanCacheStats};
pub use query::{GroupByQuery, Having};
pub use result::QueryResult;
pub use rewrite::{Integrated, KeyNormalized, NestedIntegrated, Normalized, SamplePlan};
pub use stratified::StratifiedInput;
