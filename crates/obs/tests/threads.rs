//! Threaded smoke test: N recorder threads hammer one counter and one
//! histogram while a reader takes snapshots. Final totals must match the
//! serial sum, and every intermediate snapshot must be internally
//! consistent (count == bucket total, per-bucket counts monotone across
//! snapshots, quantiles monotone in q).

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;

use obs::Registry;

const THREADS: u64 = 8;
const RECORDS_PER_THREAD: u64 = 20_000;

#[test]
fn concurrent_recording_is_exact_and_snapshots_consistent() {
    let registry = Arc::new(Registry::new());
    let counter = registry.counter("events_total");
    let hist = registry.histogram("latency_us");
    let done = Arc::new(AtomicBool::new(false));

    let reader = {
        let registry = Arc::clone(&registry);
        let done = Arc::clone(&done);
        thread::spawn(move || {
            let mut prev_buckets: Vec<u64> = Vec::new();
            let mut prev_count = 0u64;
            let mut snaps = 0u64;
            while !done.load(Ordering::Acquire) {
                let s = registry.snapshot();
                let h = s.histogram("latency_us").unwrap();
                // Structural consistency: the snapshot's count is the
                // bucket total by construction, so quantile walks always
                // terminate inside the bucket array.
                assert_eq!(h.count, h.buckets.iter().sum::<u64>());
                assert!(h.count >= prev_count, "count went backwards");
                prev_count = h.count;
                // Recorders only add: no bucket may shrink between
                // snapshots (a shrink would mean a torn read).
                if !prev_buckets.is_empty() {
                    for (i, (&now, &before)) in h.buckets.iter().zip(&prev_buckets).enumerate() {
                        assert!(now >= before, "bucket {i} shrank: {before} -> {now}");
                    }
                }
                prev_buckets = h.buckets.clone();
                let mut prev_q = 0u64;
                for q in [0.1, 0.5, 0.9, 0.99, 1.0] {
                    let est = h.quantile(q);
                    assert!(est >= prev_q, "quantile not monotone at q={q}");
                    prev_q = est;
                }
                snaps += 1;
            }
            snaps
        })
    };

    let workers: Vec<_> = (0..THREADS)
        .map(|t| {
            let counter = counter.clone();
            let hist = hist.clone();
            thread::spawn(move || {
                for i in 0..RECORDS_PER_THREAD {
                    // Deterministic value stream, distinct per thread.
                    let v = (t * RECORDS_PER_THREAD + i) % 4096;
                    counter.inc();
                    hist.record(v);
                }
            })
        })
        .collect();
    for w in workers {
        w.join().unwrap();
    }
    done.store(true, Ordering::Release);
    let snaps_taken = reader.join().unwrap();
    assert!(snaps_taken > 0, "reader never ran");

    // Final totals match the serial sum exactly.
    let s = registry.snapshot();
    let h = s.histogram("latency_us").unwrap();
    if obs::ENABLED {
        assert_eq!(s.counter("events_total"), THREADS * RECORDS_PER_THREAD);
        assert_eq!(h.count, THREADS * RECORDS_PER_THREAD);
        let expect_sum: u64 = (0..THREADS)
            .flat_map(|t| (0..RECORDS_PER_THREAD).map(move |i| (t * RECORDS_PER_THREAD + i) % 4096))
            .sum();
        assert_eq!(h.sum, expect_sum);
        assert_eq!(h.min, 0);
        assert_eq!(h.max, 4095);
    } else {
        assert_eq!(s.counter("events_total"), 0);
        assert_eq!(h.count, 0);
    }
}
