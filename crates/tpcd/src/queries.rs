//! The paper's query sets (Table 2).
//!
//! * `Q_{g2}` — two grouping columns, two SUM aggregates (derived from
//!   TPC-D Query 3).
//! * `Q_{g3}` — all three grouping columns, the finest partitioning.
//! * `Q_{g0}` — no grouping, `SUM(l_quantity)` over an `l_id` range of
//!   width `c` starting at a random `s` (20 such queries in §7.1.1, with
//!   `c = 70K` ≈ 7% selectivity at `T = 1M`).

use engine::{AggregateSpec, GroupByQuery};
use rand::Rng;
use relation::{Expr, Predicate, Value};

use crate::lineitem::LineitemSchema;

/// `SELECT l_returnflag, l_linestatus, SUM(l_quantity), SUM(l_extendedprice)
/// FROM lineitem GROUP BY l_returnflag, l_linestatus`.
pub fn q_g2(ids: &LineitemSchema) -> GroupByQuery {
    GroupByQuery::new(
        vec![ids.l_returnflag, ids.l_linestatus],
        vec![
            AggregateSpec::sum(Expr::col(ids.l_quantity), "sum_l_quantity"),
            AggregateSpec::sum(Expr::col(ids.l_extendedprice), "sum_l_extendedprice"),
        ],
    )
}

/// `SELECT l_returnflag, l_linestatus, l_shipdate, SUM(l_quantity)
/// FROM lineitem GROUP BY l_returnflag, l_linestatus, l_shipdate`.
pub fn q_g3(ids: &LineitemSchema) -> GroupByQuery {
    GroupByQuery::new(
        vec![ids.l_returnflag, ids.l_linestatus, ids.l_shipdate],
        vec![AggregateSpec::sum(
            Expr::col(ids.l_quantity),
            "sum_l_quantity",
        )],
    )
}

/// `SELECT SUM(l_quantity) FROM lineitem WHERE s ≤ l_id ≤ s + c`.
pub fn q_g0(ids: &LineitemSchema, s: i64, c: i64) -> GroupByQuery {
    GroupByQuery::new(
        vec![],
        vec![AggregateSpec::sum(
            Expr::col(ids.l_quantity),
            "sum_l_quantity",
        )],
    )
    .with_predicate(Predicate::between(
        ids.l_id,
        Value::Int(s),
        Value::Int(s + c),
    ))
}

/// The §7.1.1 `Q_{g0}` workload: `n` queries with `s` drawn uniformly from
/// `[1, table_size − c]` and fixed range width `c`.
pub fn q_g0_set<R: Rng>(
    ids: &LineitemSchema,
    n: usize,
    table_size: usize,
    c: i64,
    rng: &mut R,
) -> Vec<GroupByQuery> {
    let hi = (table_size as i64 - c).max(1);
    (0..n)
        .map(|_| q_g0(ids, rng.gen_range(1..=hi), c))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{GeneratorConfig, TpcdDataset};
    use engine::execute_exact;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn dataset() -> TpcdDataset {
        TpcdDataset::generate(GeneratorConfig {
            table_size: 10_000,
            num_groups: 27,
            group_skew: 0.86,
            agg_skew: 0.86,
            seed: 7,
        })
    }

    #[test]
    fn qg2_shape_and_execution() {
        let ds = dataset();
        let q = q_g2(&ds.ids);
        assert_eq!(q.grouping.len(), 2);
        assert_eq!(q.aggregates.len(), 2);
        let r = execute_exact(&ds.relation, &q).unwrap();
        // 3 distinct values per column → 9 (returnflag, linestatus) pairs.
        assert_eq!(r.group_count(), 9);
    }

    #[test]
    fn qg3_is_finest_grouping() {
        let ds = dataset();
        let r = execute_exact(&ds.relation, &q_g3(&ds.ids)).unwrap();
        assert_eq!(r.group_count(), 27);
        // Total over all groups equals the ungrouped SUM.
        let total: f64 = r.rows().iter().map(|(_, v)| v[0]).sum();
        let all = execute_exact(&ds.relation, &q_g0(&ds.ids, 1, 10_000)).unwrap();
        assert!((total - all.scalar().unwrap()).abs() < 1e-6);
    }

    #[test]
    fn qg0_selectivity_matches_range() {
        let ds = dataset();
        let q = q_g0(&ds.ids, 1_000, 700);
        assert!(q.is_scalar());
        let sel = q.predicate.selectivity(&ds.relation);
        assert!((sel - 701.0 / 10_000.0).abs() < 1e-9);
    }

    #[test]
    fn qg0_set_randomizes_start() {
        let ds = dataset();
        let mut rng = StdRng::seed_from_u64(83);
        let qs = q_g0_set(&ds.ids, 20, 10_000, 700, &mut rng);
        assert_eq!(qs.len(), 20);
        // All selectivities ≈ 7%, starts differ.
        let sels: Vec<f64> = qs
            .iter()
            .map(|q| q.predicate.selectivity(&ds.relation))
            .collect();
        for &s in &sels {
            assert!((s - 0.07).abs() < 0.001, "{s}");
        }
        let preds: Vec<String> = qs.iter().map(|q| q.predicate.to_string()).collect();
        let mut uniq = preds.clone();
        uniq.sort();
        uniq.dedup();
        assert!(uniq.len() > 10, "starts should vary");
    }
}
