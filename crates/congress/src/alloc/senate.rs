//! The Senate strategy (§4.4): equal space per non-empty group of the
//! finest grouping, like two senators per state regardless of population.

use crate::alloc::{check_space, Allocation, AllocationStrategy};
use crate::census::GroupCensus;
use crate::error::Result;

/// Equal-per-group allocation at the finest grouping.
#[derive(Debug, Clone, Copy, Default)]
pub struct Senate;

impl AllocationStrategy for Senate {
    fn name(&self) -> &'static str {
        "Senate"
    }

    fn allocate(&self, census: &GroupCensus, space: f64) -> Result<Allocation> {
        check_space(space)?;
        let m = census.group_count() as f64;
        let per_group = space / m;
        Ok(Allocation::new(vec![per_group; census.group_count()], 1.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::census::test_support::figure5_census;

    #[test]
    fn figure5_senate_allocation() {
        // Paper Figure 5, Senate column: 25 per group for X = 100.
        let c = figure5_census(1);
        let a = Senate.allocate(&c, 100.0).unwrap();
        assert_eq!(a.targets(), &[25.0, 25.0, 25.0, 25.0]);
        assert_eq!(a.scale_down_factor(), 1.0);
    }

    #[test]
    fn small_groups_capped_at_integerization() {
        let c = figure5_census(100); // groups of 30, 30, 15, 25
        let a = Senate.allocate(&c, 80.0).unwrap();
        // target 20 each; the 15-tuple group caps at 15 and the excess
        // spreads over the others.
        let counts = a.integer_counts(c.sizes());
        assert_eq!(counts.iter().sum::<usize>(), 80);
        let g15 = c.sizes().iter().position(|&s| s == 15).unwrap();
        assert_eq!(counts[g15], 15);
        for (g, &cnt) in counts.iter().enumerate() {
            assert!(cnt as u64 <= c.sizes()[g]);
        }
    }
}
