//! Integration: the qualitative accuracy orderings of §7.2 hold on
//! skewed TPC-D-style data — the repo-scale version of Figures 14–16.

use aqua::SamplingStrategy;
use bench_harness::*;
use congress::alloc::AllocationStrategy;

/// Minimal local re-implementation of the bench harness pieces we need
/// (the root test crate cannot depend on `bench`'s unpublished internals
/// without making the root package heavier, so this mirrors the setup).
mod bench_harness {
    use congress::alloc::{BasicCongress, Congress, House, Senate};
    use congress::{compare_results, CongressionalSample, GroupCensus};
    use engine::rewrite::{Integrated, SamplePlan};
    use engine::{execute_exact, GroupByQuery};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    use aqua::SamplingStrategy;
    use tpcd::{GeneratorConfig, TpcdDataset};

    pub struct Setup {
        pub ds: TpcdDataset,
        pub census: GroupCensus,
    }

    pub fn setup(z: f64) -> Setup {
        let ds = TpcdDataset::generate(GeneratorConfig {
            table_size: 60_000,
            num_groups: 125,
            group_skew: z,
            agg_skew: 0.86,
            seed: 4242,
        });
        let census = GroupCensus::build(&ds.relation, &ds.grouping_columns()).unwrap();
        Setup { ds, census }
    }

    /// Mean per-group error of `strategy` on `query`, averaged over seeds.
    pub fn mean_error(
        s: &Setup,
        strategy: SamplingStrategy,
        query: &GroupByQuery,
        fraction: f64,
        trials: u64,
    ) -> f64 {
        let exact = execute_exact(&s.ds.relation, query).unwrap();
        let space = fraction * s.ds.relation.row_count() as f64;
        let mut total = 0.0;
        for t in 0..trials {
            let mut rng = StdRng::seed_from_u64(900 + t);
            let sample = match strategy {
                SamplingStrategy::House => {
                    CongressionalSample::draw(&s.ds.relation, &s.census, &House, space, &mut rng)
                }
                SamplingStrategy::Senate => {
                    CongressionalSample::draw(&s.ds.relation, &s.census, &Senate, space, &mut rng)
                }
                SamplingStrategy::BasicCongress => CongressionalSample::draw(
                    &s.ds.relation,
                    &s.census,
                    &BasicCongress,
                    space,
                    &mut rng,
                ),
                SamplingStrategy::Congress => {
                    CongressionalSample::draw(&s.ds.relation, &s.census, &Congress, space, &mut rng)
                }
            }
            .unwrap();
            let input = match strategy {
                SamplingStrategy::House => {
                    sample.to_stratified_input_uniform(&s.ds.relation).unwrap()
                }
                _ => sample.to_stratified_input(&s.ds.relation).unwrap(),
            };
            let plan = Integrated::build(&input).unwrap();
            let approx = plan.execute(query).unwrap();
            total += compare_results(&exact, &approx, 0, 100.0).l1();
        }
        total / trials as f64
    }
}

#[test]
fn figure15_shape_senate_beats_house_at_finest_grouping() {
    let s = setup(1.5);
    let q = tpcd::q_g3(&s.ds.ids);
    let house = mean_error(&s, SamplingStrategy::House, &q, 0.07, 3);
    let senate = mean_error(&s, SamplingStrategy::Senate, &q, 0.07, 3);
    let congress = mean_error(&s, SamplingStrategy::Congress, &q, 0.07, 3);
    assert!(
        senate < house,
        "senate {senate} must beat house {house} at the finest grouping"
    );
    assert!(
        congress < house,
        "congress {congress} must beat house {house} at the finest grouping"
    );
}

#[test]
fn figure14_shape_house_beats_senate_on_ungrouped_ranges() {
    let s = setup(1.5);
    // Average over several Q_{g0}-style range queries.
    let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(5);
    let queries = tpcd::q_g0_set(&s.ds.ids, 10, 60_000, 4_200, &mut rng);
    let avg = |strategy| -> f64 {
        queries
            .iter()
            .map(|q| mean_error(&s, strategy, q, 0.07, 2))
            .sum::<f64>()
            / queries.len() as f64
    };
    let house = avg(SamplingStrategy::House);
    let senate = avg(SamplingStrategy::Senate);
    assert!(
        house < senate,
        "house {house} must beat senate {senate} on uniform range queries"
    );
}

#[test]
fn figure16_shape_congress_competitive_everywhere() {
    // The paper's conclusion: Congress is "consistently the best or close
    // to best". Check it is never far worse than the per-query winner,
    // *after accounting for the Eq-6 scale-down penalty*: the uniform
    // scale-down hands every finest group `f · X/m` tuples where the
    // per-query winner (Senate, at the finest grouping) gets `X/m`, so
    // Congress's standard error can legitimately be up to ~1/√f higher —
    // and at this miniature scale (median group ≈ 50 tuples) Senate's
    // near-exhaustive per-group samples gain a finite-population correction
    // that pushes the honest bound toward 1/f.
    let s = setup(1.5);
    let f = congress::alloc::Congress
        .allocate(&s.census, 0.07 * s.ds.relation.row_count() as f64)
        .unwrap()
        .scale_down_factor();
    assert!(f > 0.0 && f <= 1.0, "scale-down factor {f} out of range");
    for (tag, q) in [
        ("qg2", tpcd::q_g2(&s.ds.ids)),
        ("qg3", tpcd::q_g3(&s.ds.ids)),
    ] {
        let house = mean_error(&s, SamplingStrategy::House, &q, 0.07, 3);
        let senate = mean_error(&s, SamplingStrategy::Senate, &q, 0.07, 3);
        let congress = mean_error(&s, SamplingStrategy::Congress, &q, 0.07, 3);
        let best = house.min(senate);
        assert!(
            congress <= best / f + 1.0,
            "{tag}: congress {congress} vs best-of-extremes {best} (f = {f:.3})"
        );
    }
}

#[test]
fn no_missing_groups_at_reasonable_sample_sizes() {
    // §3.2's first user requirement: every non-empty group appears.
    let s = setup(1.5);
    let q = tpcd::q_g3(&s.ds.ids);
    for strategy in [
        SamplingStrategy::Senate,
        SamplingStrategy::BasicCongress,
        SamplingStrategy::Congress,
    ] {
        let exact = engine::execute_exact(&s.ds.relation, &q).unwrap();
        let space = 0.07 * s.ds.relation.row_count() as f64;
        let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(8);
        let sample = match strategy {
            SamplingStrategy::Senate => congress::CongressionalSample::draw(
                &s.ds.relation,
                &s.census,
                &congress::alloc::Senate,
                space,
                &mut rng,
            ),
            SamplingStrategy::BasicCongress => congress::CongressionalSample::draw(
                &s.ds.relation,
                &s.census,
                &congress::alloc::BasicCongress,
                space,
                &mut rng,
            ),
            _ => congress::CongressionalSample::draw(
                &s.ds.relation,
                &s.census,
                &congress::alloc::Congress,
                space,
                &mut rng,
            ),
        }
        .unwrap();
        let input = sample.to_stratified_input(&s.ds.relation).unwrap();
        let plan = engine::rewrite::Integrated::build(&input).unwrap();
        use engine::rewrite::SamplePlan as _;
        let approx = plan.execute(&q).unwrap();
        let report = congress::compare_results(&exact, &approx, 0, 100.0);
        assert_eq!(
            report.missing_groups, 0,
            "{:?} lost groups at a 7% sample",
            strategy
        );
    }
}
