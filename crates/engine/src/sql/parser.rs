//! Recursive-descent parser for the SQL subset, resolving names against a
//! schema as it goes.

use relation::predicate::CmpOp;
use relation::{ColumnId, DataType, Expr, Predicate, Schema, Value};

use crate::aggregate::{AggregateFn, AggregateSpec};
use crate::error::{EngineError, Result};
use crate::query::{GroupByQuery, Having};
use crate::sql::lexer::{tokenize, Token};

/// Parse `text` into a [`GroupByQuery`] against `schema`.
///
/// Grammar (case-insensitive keywords):
///
/// ```text
/// query    := SELECT items FROM ident [WHERE pred] [GROUP BY cols] [HAVING hcond] [;]
/// items    := item (',' item)*
/// item     := column | agg [AS ident]
/// agg      := (SUM|AVG|MIN|MAX) '(' expr ')' | COUNT '(' '*' ')'
/// expr     := term (('+'|'-') term)* ; term := factor (('*'|'/') factor)*
/// factor   := number | column | '(' expr ')'
/// pred     := conj (OR conj)* ; conj := unit (AND unit)*
/// unit     := [NOT] ( '(' pred ')' | column cmp literal
///                   | column BETWEEN literal AND literal )
/// hcond    := ident cmp number
/// ```
///
/// # Example
///
/// ```
/// use relation::{DataType, Field, Schema};
///
/// let schema = Schema::new(vec![
///     Field::new("state", DataType::Str),
///     Field::new("income", DataType::Float),
/// ]).unwrap();
/// let q = engine::sql::parse(
///     &schema,
///     "SELECT state, AVG(income) AS a FROM census GROUP BY state HAVING a > 50000",
/// ).unwrap();
/// assert_eq!(q.grouping.len(), 1);
/// assert!(q.having.is_some());
/// ```
pub fn parse(schema: &Schema, text: &str) -> Result<GroupByQuery> {
    let tokens = tokenize(text)?;
    let mut p = Parser {
        schema,
        tokens,
        pos: 0,
    };
    p.query()
}

struct Parser<'a> {
    schema: &'a Schema,
    tokens: Vec<Token>,
    pos: usize,
}

/// One SELECT-list entry before GROUP BY validation.
enum SelectItem {
    Column(ColumnId, String),
    Aggregate(AggregateSpec),
}

impl<'a> Parser<'a> {
    fn err<T>(&self, msg: impl Into<String>) -> Result<T> {
        Err(EngineError::Sql(msg.into()))
    }

    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if matches!(self.peek(), Some(Token::Keyword(k)) if k == kw) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn eat_symbol(&mut self, sym: &str) -> bool {
        if matches!(self.peek(), Some(Token::Symbol(s)) if *s == sym) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<()> {
        if self.eat_keyword(kw) {
            Ok(())
        } else {
            self.err(format!("expected {kw}, found {:?}", self.peek()))
        }
    }

    fn expect_symbol(&mut self, sym: &str) -> Result<()> {
        if self.eat_symbol(sym) {
            Ok(())
        } else {
            self.err(format!("expected `{sym}`, found {:?}", self.peek()))
        }
    }

    fn ident(&mut self, what: &str) -> Result<String> {
        match self.next() {
            Some(Token::Ident(s)) => Ok(s),
            other => self.err(format!("expected {what}, found {other:?}")),
        }
    }

    fn column(&mut self, name: &str) -> Result<ColumnId> {
        // Case-insensitive, as SQL identifiers are: the plan cache keys on
        // normalized text with identifier case folded, so resolution must
        // accept any casing for the fold to be sound.
        self.schema
            .column_id_ci(name)
            .map_err(|_| EngineError::Sql(format!("unknown column `{name}`")))
    }

    fn query(&mut self) -> Result<GroupByQuery> {
        self.expect_keyword("SELECT")?;
        let mut items = vec![self.select_item()?];
        while self.eat_symbol(",") {
            items.push(self.select_item()?);
        }
        self.expect_keyword("FROM")?;
        let _table = self
            .ident("table name")
            .map_err(|_| EngineError::Sql("expected table name after FROM".into()))?;

        let predicate = if self.eat_keyword("WHERE") {
            self.predicate()?
        } else {
            Predicate::True
        };

        let mut grouping: Vec<ColumnId> = Vec::new();
        if self.eat_keyword("GROUP") {
            self.expect_keyword("BY")?;
            loop {
                let name = self.ident("grouping column")?;
                grouping.push(self.column(&name)?);
                if !self.eat_symbol(",") {
                    break;
                }
            }
        }

        let having = if self.eat_keyword("HAVING") {
            Some(self.having()?)
        } else {
            None
        };

        let _ = self.eat_symbol(";");
        if let Some(t) = self.peek() {
            return self.err(format!("trailing input starting at {t:?}"));
        }

        // Standard SQL rule: plain columns in the SELECT list must appear
        // in GROUP BY; the query needs at least one aggregate.
        let mut aggregates = Vec::new();
        for item in items {
            match item {
                SelectItem::Aggregate(a) => aggregates.push(a),
                SelectItem::Column(id, name) => {
                    if !grouping.contains(&id) {
                        return self.err(format!(
                            "column `{name}` in SELECT list must appear in GROUP BY"
                        ));
                    }
                }
            }
        }
        if aggregates.is_empty() {
            return self.err("query must contain at least one aggregate");
        }

        let mut q = GroupByQuery::new(grouping, aggregates).with_predicate(predicate);
        if let Some(h) = having {
            q = q.with_having(h);
        }
        Ok(q)
    }

    fn select_item(&mut self) -> Result<SelectItem> {
        let func = match self.peek() {
            Some(Token::Keyword(k)) => match k.as_str() {
                "SUM" => Some(AggregateFn::Sum),
                "AVG" => Some(AggregateFn::Avg),
                "MIN" => Some(AggregateFn::Min),
                "MAX" => Some(AggregateFn::Max),
                "COUNT" => Some(AggregateFn::Count),
                _ => None,
            },
            _ => None,
        };
        let Some(func) = func else {
            // Plain grouping column.
            let name = self.ident("column or aggregate in SELECT list")?;
            let id = self.column(&name)?;
            return Ok(SelectItem::Column(id, name));
        };
        self.pos += 1; // consume the function keyword
        self.expect_symbol("(")?;
        let (expr, default_name) = if func == AggregateFn::Count {
            if !self.eat_symbol("*") {
                return self.err("COUNT supports only COUNT(*)");
            }
            (None, "count_star".to_string())
        } else {
            let start = self.pos;
            let e = self.expr()?;
            // Default output name: func_firstcolumn if the expression is a
            // bare column, else func_expr<position>.
            let name = match &e {
                Expr::Column(id) => format!(
                    "{}_{}",
                    func.to_string().to_ascii_lowercase(),
                    self.schema.fields()[id.index()].name
                ),
                _ => format!("{}_expr{}", func.to_string().to_ascii_lowercase(), start),
            };
            (Some(e), name)
        };
        self.expect_symbol(")")?;
        let name = if self.eat_keyword("AS") {
            self.ident("alias after AS")?
        } else {
            default_name
        };
        Ok(SelectItem::Aggregate(AggregateSpec { func, expr, name }))
    }

    fn expr(&mut self) -> Result<Expr> {
        let mut lhs = self.term()?;
        loop {
            if self.eat_symbol("+") {
                lhs = lhs.add(self.term()?);
            } else if self.eat_symbol("-") {
                lhs = lhs.sub(self.term()?);
            } else {
                return Ok(lhs);
            }
        }
    }

    fn term(&mut self) -> Result<Expr> {
        let mut lhs = self.factor()?;
        loop {
            if self.eat_symbol("*") {
                lhs = lhs.mul(self.factor()?);
            } else if self.eat_symbol("/") {
                lhs = lhs.div(self.factor()?);
            } else {
                return Ok(lhs);
            }
        }
    }

    fn factor(&mut self) -> Result<Expr> {
        match self.next() {
            Some(Token::Number(v)) => Ok(Expr::lit(v)),
            Some(Token::Ident(name)) => Ok(Expr::col(self.column(&name)?)),
            Some(Token::Symbol("(")) => {
                let e = self.expr()?;
                self.expect_symbol(")")?;
                Ok(e)
            }
            Some(Token::Symbol("-")) => Ok(Expr::lit(0.0).sub(self.factor()?)),
            other => self.err(format!("expected expression, found {other:?}")),
        }
    }

    fn predicate(&mut self) -> Result<Predicate> {
        let mut lhs = self.conjunction()?;
        while self.eat_keyword("OR") {
            lhs = lhs.or(self.conjunction()?);
        }
        Ok(lhs)
    }

    fn conjunction(&mut self) -> Result<Predicate> {
        let mut lhs = self.pred_unit()?;
        while self.eat_keyword("AND") {
            lhs = lhs.and(self.pred_unit()?);
        }
        Ok(lhs)
    }

    fn pred_unit(&mut self) -> Result<Predicate> {
        if self.eat_keyword("NOT") {
            return Ok(self.pred_unit()?.not());
        }
        if self.eat_symbol("(") {
            let p = self.predicate()?;
            self.expect_symbol(")")?;
            return Ok(p);
        }
        let name = self.ident("column in predicate")?;
        let col = self.column(&name)?;
        let dt = self.schema.fields()[col.index()].data_type;
        if self.eat_keyword("BETWEEN") {
            let lo = self.literal(dt)?;
            self.expect_keyword("AND")?;
            let hi = self.literal(dt)?;
            return Ok(Predicate::Between { col, lo, hi });
        }
        let op = self.cmp_op()?;
        let value = self.literal(dt)?;
        Ok(Predicate::Cmp { col, op, value })
    }

    fn cmp_op(&mut self) -> Result<CmpOp> {
        match self.next() {
            Some(Token::Symbol("=")) => Ok(CmpOp::Eq),
            Some(Token::Symbol("<>")) => Ok(CmpOp::Ne),
            Some(Token::Symbol("<")) => Ok(CmpOp::Lt),
            Some(Token::Symbol("<=")) => Ok(CmpOp::Le),
            Some(Token::Symbol(">")) => Ok(CmpOp::Gt),
            Some(Token::Symbol(">=")) => Ok(CmpOp::Ge),
            other => self.err(format!("expected comparison operator, found {other:?}")),
        }
    }

    /// A literal typed by the column it compares against.
    fn literal(&mut self, dt: DataType) -> Result<Value> {
        match (self.next(), dt) {
            (Some(Token::Number(v)), DataType::Int) => Ok(Value::Int(v as i64)),
            (Some(Token::Number(v)), DataType::Float) => Ok(Value::from(v)),
            (Some(Token::Number(v)), DataType::Date) => Ok(Value::Date(v as i32)),
            // Figure 2 uses Oracle-style date literals: '01-SEP-98'.
            (Some(Token::Str(s)), DataType::Date) => relation::parse_date(&s)
                .map(Value::Date)
                .map_err(|e| EngineError::Sql(e.to_string())),
            (Some(Token::Str(s)), DataType::Str) => Ok(Value::str(s.as_str())),
            (other, dt) => self.err(format!("literal {other:?} does not match column type {dt}")),
        }
    }

    fn having(&mut self) -> Result<Having> {
        let name = self.ident("aggregate alias in HAVING")?;
        let op = self.cmp_op()?;
        let value = match self.next() {
            Some(Token::Number(v)) => v,
            other => return self.err(format!("expected number in HAVING, found {other:?}")),
        };
        Ok(Having::new(name, op, value))
    }
}
