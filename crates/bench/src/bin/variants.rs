//! §4.6 "alternative definitions of Congress" ablation: the paper gives
//! four ways to materialize the same allocation —
//!
//! 1. exact per-group draws of `SampleSize(g)` (Eq 5),
//! 2. Bernoulli inclusion with probability `SampleSize(g)/n_g`,
//! 3. per-tuple probabilities over the lattice (Eq 8, via the §6
//!    maintainer), and
//! 4. the shared-tuples lattice walk (the pseudocode after Eq 8) —
//!
//! and claims "in practice, the difference between these approaches is
//! negligible." This harness measures all four on the same data/queries.
//!
//! Run: `cargo run -p bench --release --bin variants [-- --quick]`

use bench::harness::ExperimentSetup;
use bench::report::{pct, Table};
use congress::alloc::Congress;
use congress::build::{construct_congress_shared, construct_one_pass, OnePassStrategy};
use congress::{compare_results, CongressionalSample};
use engine::execute_exact;
use engine::rewrite::{Integrated, SamplePlan};
use rand::rngs::StdRng;
use rand::SeedableRng;
use tpcd::GeneratorConfig;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let config = GeneratorConfig {
        table_size: if quick { 60_000 } else { 300_000 },
        num_groups: 125,
        group_skew: 1.2,
        agg_skew: 0.86,
        seed: 20000521,
    };
    let trials = if quick { 3 } else { 8 };
    eprintln!("generating lineitem: T={} ...", config.table_size);
    let setup = ExperimentSetup::new(config);
    let space = 0.07 * setup.dataset.relation.row_count() as f64;

    let queries = [("Qg2", &setup.qg2), ("Qg3", &setup.qg3)];
    let mut table = Table::new(
        "§4.6 construction variants — mean error % (all four should be close: \
         'the difference between these approaches is negligible')",
        &["variant", "Qg2", "Qg3", "avg sampled tuples"],
    );

    type Builder<'a> = Box<dyn Fn(u64) -> CongressionalSample + 'a>;
    let rel = &setup.dataset.relation;
    let census = &setup.census;
    let cols = setup.dataset.grouping_columns();
    let variants: Vec<(&str, Builder)> = vec![
        (
            "exact draw (Eq 5)",
            Box::new(move |seed| {
                let mut rng = StdRng::seed_from_u64(seed);
                CongressionalSample::draw(rel, census, &Congress, space, &mut rng).unwrap()
            }),
        ),
        (
            "Bernoulli (SampleSize/n_g)",
            Box::new(move |seed| {
                let mut rng = StdRng::seed_from_u64(seed);
                CongressionalSample::draw_bernoulli(rel, census, &Congress, space, &mut rng)
                    .unwrap()
            }),
        ),
        (
            "Eq-8 maintainer (one pass)",
            Box::new(move |seed| {
                let mut rng = StdRng::seed_from_u64(seed);
                construct_one_pass(
                    rel,
                    &cols,
                    OnePassStrategy::Congress,
                    space as usize,
                    &mut rng,
                )
                .unwrap()
            }),
        ),
        (
            "shared lattice walk",
            Box::new(move |seed| {
                let mut rng = StdRng::seed_from_u64(seed);
                construct_congress_shared(rel, census, space, &mut rng).unwrap()
            }),
        ),
    ];

    let exact: Vec<_> = queries
        .iter()
        .map(|(_, q)| execute_exact(rel, q).unwrap())
        .collect();

    for (name, build) in &variants {
        let mut errs = vec![0.0f64; queries.len()];
        let mut tuples = 0.0;
        for t in 0..trials {
            let sample = build(40_000 + t);
            tuples += sample.total_sampled() as f64 / trials as f64;
            let input = sample.to_stratified_input(rel).unwrap();
            let plan = Integrated::build(&input).unwrap();
            for (qi, (_, q)) in queries.iter().enumerate() {
                let approx = plan.execute(q).unwrap();
                errs[qi] += compare_results(&exact[qi], &approx, 0, 100.0).l1() / trials as f64;
            }
        }
        table.row(&[
            name.to_string(),
            pct(errs[0]),
            pct(errs[1]),
            format!("{tuples:.0}"),
        ]);
        eprintln!("  {name}: done");
    }
    println!("{table}");
}
