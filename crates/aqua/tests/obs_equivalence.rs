//! Observability must be a pure observer: answers and error bounds from
//! the instrumented [`Aqua::answer`] path are bit-identical to a manual,
//! uninstrumented execution of the same pipeline (`Synopsis` +
//! `plan.execute_opts` with no trace + `compute_bounds_cached`).
//!
//! The manual path below contains zero metric calls on *either* feature
//! leg, so running this test under both the default build and
//! `--features obs-off` proves the instrumented path's output is
//! identical in all three configurations: metrics recorded, metrics
//! compiled out, and no metrics at all. CI runs both legs.

use aqua::answer::compute_bounds_cached;
use aqua::{Aqua, AquaConfig, RewriteChoice, SamplingStrategy, Synopsis};
use engine::{AggregateSpec, ExecOptions, GroupByQuery};
use relation::{ColumnId, DataType, Expr, GroupKey, Predicate, Relation, RelationBuilder, Value};

fn sales(n: i64) -> Relation {
    let mut b = RelationBuilder::new()
        .column("region", DataType::Str)
        .column("amount", DataType::Float);
    for i in 0..n {
        let region = match i % 10 {
            0 => "east",
            1 | 2 => "south",
            _ => "west",
        };
        b.push_row(&[Value::str(region), Value::from((i % 50) as f64)])
            .unwrap();
    }
    b.finish()
}

fn config(rewrite: RewriteChoice, parallelism: usize) -> AquaConfig {
    AquaConfig {
        space: 150,
        strategy: SamplingStrategy::Congress,
        rewrite,
        confidence: 0.9,
        seed: 7,
        parallelism,
    }
}

fn workload() -> Vec<GroupByQuery> {
    let amount = Expr::col(ColumnId(1));
    vec![
        // Summary-served.
        GroupByQuery::new(
            vec![ColumnId(0)],
            vec![
                AggregateSpec::sum(amount.clone(), "s"),
                AggregateSpec::count("c"),
                AggregateSpec::avg(amount.clone(), "a"),
            ],
        ),
        // Group-only predicate: summary-served.
        GroupByQuery::new(vec![ColumnId(0)], vec![AggregateSpec::count("c")])
            .with_predicate(Predicate::eq(ColumnId(0), Value::str("west"))),
        // Non-grouping predicate: sample scan.
        GroupByQuery::new(
            vec![ColumnId(0)],
            vec![AggregateSpec::sum(amount, "s"), AggregateSpec::count("c")],
        )
        .with_predicate(Predicate::ge(ColumnId(1), 10.0)),
    ]
}

/// Result values as exact bit patterns, per group.
type ResultBits = Vec<(GroupKey, Vec<u64>)>;
/// (half_width, confidence) bit patterns per aggregate, per group.
type BoundBits = Vec<(GroupKey, Vec<Option<(u64, u64)>>)>;

fn result_bits(r: &engine::QueryResult) -> ResultBits {
    r.iter()
        .map(|(k, vals)| (k.clone(), vals.iter().map(|v| v.to_bits()).collect()))
        .collect()
}

fn bound_bits(bounds: &[aqua::GroupBounds]) -> BoundBits {
    bounds
        .iter()
        .map(|gb| {
            (
                gb.key.clone(),
                gb.bounds
                    .iter()
                    .map(|b| {
                        b.as_ref()
                            .map(|e| (e.half_width.to_bits(), e.confidence.to_bits()))
                    })
                    .collect(),
            )
        })
        .collect()
}

/// The uninstrumented reference: a `Synopsis` built exactly the way
/// `Aqua::build` builds one (ingest + bulk rebuild), queried directly
/// through `plan.execute_opts` with `trace: None` and bounds computed via
/// `compute_bounds_cached` — the answer pipeline with no observer.
fn manual_answers(
    table: &Relation,
    config: AquaConfig,
    queries: &[GroupByQuery],
) -> Vec<(ResultBits, BoundBits)> {
    let mut synopsis = Synopsis::new(config, vec![ColumnId(0)]).unwrap();
    synopsis.ingest(table, 0).unwrap();
    synopsis.rebuild_bulk(table).unwrap();
    let plan = synopsis.plan().unwrap();
    let cache = synopsis.query_cache();
    let input = synopsis.input().unwrap();
    let parallel = synopsis.config().effective_parallelism() != 1;
    queries
        .iter()
        .map(|q| {
            let opts = ExecOptions {
                cache: Some(cache),
                parallel,
                trace: None,
            };
            let result = plan.execute_opts(q, &opts).unwrap();
            let bounds =
                compute_bounds_cached(input, q, &result, config.confidence, Some(cache)).unwrap();
            (result_bits(&result), bound_bits(&bounds))
        })
        .collect()
}

#[test]
fn instrumented_answers_bit_identical_to_uninstrumented_path() {
    for parallelism in [1usize, 0] {
        for rewrite in RewriteChoice::all() {
            let table = sales(2_000);
            let cfg = config(rewrite, parallelism);
            let reference = manual_answers(&table, cfg, &workload());

            let aqua = Aqua::build(table, vec![ColumnId(0)], cfg).unwrap();
            // Two passes: cold (populating the cache under tracing) and
            // warm (cache hits under tracing) must both match.
            for pass in ["cold", "warm"] {
                for (q, (want_result, want_bounds)) in workload().iter().zip(&reference) {
                    let got = aqua.answer(q).unwrap();
                    assert_eq!(
                        &result_bits(&got.result),
                        want_result,
                        "{} {pass} parallelism={parallelism}: values drifted",
                        rewrite.name()
                    );
                    assert_eq!(
                        &bound_bits(&got.bounds),
                        want_bounds,
                        "{} {pass} parallelism={parallelism}: bounds drifted",
                        rewrite.name()
                    );
                }
            }
        }
    }
}
