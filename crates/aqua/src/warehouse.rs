//! A multi-relation warehouse front end (the paper's Figure 1: Aqua keeps
//! a *set* of synopses — base-table samples and join synopses — inside the
//! DBMS, under one administrator-supplied space budget).

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::RwLock;

use engine::join::foreign_key_join;
use engine::{GroupByQuery, QueryResult};
use relation::{ColumnId, Relation, Value};

use crate::answer::ApproximateAnswer;
use crate::config::AquaConfig;
use crate::error::{AquaError, Result};
use crate::system::Aqua;

/// A named collection of approximate-query-answering systems, one per
/// (base or pre-joined) relation.
#[derive(Default)]
pub struct Warehouse {
    relations: RwLock<HashMap<String, Arc<Aqua>>>,
}

impl Warehouse {
    /// Empty warehouse.
    pub fn new() -> Warehouse {
        Warehouse::default()
    }

    /// Register a base relation with its dimensional columns and synopsis
    /// configuration. Errors if the name is taken.
    pub fn register(
        &self,
        name: impl Into<String>,
        table: Relation,
        grouping: Vec<ColumnId>,
        config: AquaConfig,
    ) -> Result<()> {
        let name = name.into();
        let system = Aqua::build(table, grouping, config)?;
        let mut map = self.relations.write();
        if map.contains_key(&name) {
            return Err(AquaError::InvalidConfig(format!(
                "relation `{name}` is already registered"
            )));
        }
        map.insert(name, Arc::new(system));
        Ok(())
    }

    /// Register a *join synopsis* (§2): materialize the foreign-key join
    /// `fact ⋈ dim` and build a congressional sample over the result, so
    /// multi-table group-by queries become single-relation queries.
    #[allow(clippy::too_many_arguments)]
    pub fn register_join_synopsis(
        &self,
        name: impl Into<String>,
        fact: &Relation,
        fk: ColumnId,
        dim: &Relation,
        pk: ColumnId,
        dim_prefix: &str,
        grouping_names: &[&str],
        config: AquaConfig,
    ) -> Result<()> {
        let joined = foreign_key_join(fact, fk, dim, pk, dim_prefix)?;
        let grouping = joined.schema().column_ids(grouping_names)?;
        self.register(name, joined, grouping, config)
    }

    /// The system serving `name`.
    pub fn system(&self, name: &str) -> Result<Arc<Aqua>> {
        self.relations
            .read()
            .get(name)
            .cloned()
            .ok_or_else(|| AquaError::InvalidConfig(format!("unknown relation `{name}`")))
    }

    /// Answer approximately against the named relation.
    pub fn answer(&self, name: &str, query: &GroupByQuery) -> Result<ApproximateAnswer> {
        self.system(name)?.answer(query)
    }

    /// Exact answer against the named relation's stored table.
    pub fn exact(&self, name: &str, query: &GroupByQuery) -> Result<QueryResult> {
        self.system(name)?.exact(query)
    }

    /// Insert tuples into the named relation (synopsis maintained
    /// incrementally, as always).
    pub fn insert(&self, name: &str, rows: &[Vec<Value>]) -> Result<()> {
        self.system(name)?.insert_batch(rows)
    }

    /// Registered relation names, sorted.
    pub fn relation_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.relations.read().keys().cloned().collect();
        names.sort();
        names
    }

    /// Total sampled tuples across every synopsis — what counts against
    /// the administrator's space budget.
    pub fn total_synopsis_rows(&self) -> usize {
        self.relations
            .read()
            .values()
            .map(|s| s.synopsis_rows())
            .sum()
    }

    /// Split a total tuple budget across relations proportionally to their
    /// row counts (a simple default for the administrator's single "space
    /// for synopses" knob). Returns `(name, budget)` pairs for the given
    /// table sizes.
    pub fn divide_space(total: usize, sizes: &[(&str, usize)]) -> Vec<(String, usize)> {
        let all: usize = sizes.iter().map(|(_, n)| n).sum();
        if all == 0 {
            return sizes.iter().map(|(n, _)| (n.to_string(), 0)).collect();
        }
        let mut out: Vec<(String, usize)> = sizes
            .iter()
            .map(|(name, n)| (name.to_string(), total * n / all))
            .collect();
        // Distribute rounding leftovers to the largest relations.
        let mut assigned: usize = out.iter().map(|(_, b)| b).sum();
        let mut order: Vec<usize> = (0..out.len()).collect();
        order.sort_by_key(|&i| std::cmp::Reverse(sizes[i].1));
        let mut i = 0;
        while assigned < total && !order.is_empty() {
            out[order[i % order.len()]].1 += 1;
            assigned += 1;
            i += 1;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SamplingStrategy;
    use engine::AggregateSpec;
    use relation::{DataType, Expr, RelationBuilder};

    fn sales(n: i64) -> Relation {
        let mut b = RelationBuilder::new()
            .column("region", DataType::Str)
            .column("amount", DataType::Float)
            .column("cust_fk", DataType::Int);
        for i in 0..n {
            b.push_row(&[
                Value::str(if i % 3 == 0 { "east" } else { "west" }),
                Value::from((i % 90) as f64),
                Value::Int(i % 10),
            ])
            .unwrap();
        }
        b.finish()
    }

    fn customers() -> Relation {
        let mut b = RelationBuilder::new()
            .column("cust_id", DataType::Int)
            .column("segment", DataType::Str);
        for i in 0..10i64 {
            b.push_row(&[
                Value::Int(i),
                Value::str(if i < 2 { "enterprise" } else { "retail" }),
            ])
            .unwrap();
        }
        b.finish()
    }

    fn config() -> AquaConfig {
        AquaConfig {
            space: 200,
            strategy: SamplingStrategy::Congress,
            seed: 1,
            ..AquaConfig::default()
        }
    }

    #[test]
    fn register_answer_and_insert() {
        let w = Warehouse::new();
        let t = sales(3000);
        let grouping = t.schema().column_ids(&["region"]).unwrap();
        w.register("sales", t, grouping, config()).unwrap();
        assert_eq!(w.relation_names(), vec!["sales"]);

        let q = GroupByQuery::new(vec![ColumnId(0)], vec![AggregateSpec::count("c")]);
        let ans = w.answer("sales", &q).unwrap();
        assert_eq!(ans.result.group_count(), 2);
        w.insert(
            "sales",
            &[vec![Value::str("north"), Value::from(1.0), Value::Int(0)]],
        )
        .unwrap();
        let ans = w.answer("sales", &q).unwrap();
        assert_eq!(ans.result.group_count(), 3);
        assert!(w.total_synopsis_rows() > 0);
    }

    #[test]
    fn duplicate_and_unknown_names_rejected() {
        let w = Warehouse::new();
        let t = sales(100);
        let g = t.schema().column_ids(&["region"]).unwrap();
        w.register("sales", t.clone(), g.clone(), config()).unwrap();
        assert!(w.register("sales", t, g, config()).is_err());
        assert!(w.system("nope").is_err());
        let q = GroupByQuery::new(vec![], vec![AggregateSpec::count("c")]);
        assert!(w.answer("nope", &q).is_err());
    }

    #[test]
    fn join_synopsis_registration() {
        let w = Warehouse::new();
        let fact = sales(2000);
        let dim = customers();
        w.register_join_synopsis(
            "sales_by_customer",
            &fact,
            fact.schema().column_id("cust_fk").unwrap(),
            &dim,
            dim.schema().column_id("cust_id").unwrap(),
            "c_",
            &["region", "c_segment"],
            config(),
        )
        .unwrap();
        // Cross-table grouping answered from the join synopsis.
        let joined = w.system("sales_by_customer").unwrap();
        let seg = ColumnId(4); // region, amount, cust_fk, c_cust_id, c_segment
        let q = GroupByQuery::new(
            vec![seg],
            vec![AggregateSpec::sum(Expr::col(ColumnId(1)), "rev")],
        );
        let ans = joined.answer(&q).unwrap();
        assert_eq!(ans.result.group_count(), 2); // enterprise / retail
    }

    #[test]
    fn divide_space_proportional_and_exact() {
        let parts =
            Warehouse::divide_space(100, &[("big", 7_000), ("mid", 2_000), ("tiny", 1_000)]);
        let total: usize = parts.iter().map(|(_, b)| b).sum();
        assert_eq!(total, 100);
        let get = |n: &str| parts.iter().find(|(m, _)| m == n).unwrap().1;
        assert_eq!(get("big"), 70);
        assert_eq!(get("mid"), 20);
        assert_eq!(get("tiny"), 10);
        // Degenerate: all-empty sizes.
        let parts = Warehouse::divide_space(10, &[("a", 0)]);
        assert_eq!(parts[0].1, 0);
    }
}
