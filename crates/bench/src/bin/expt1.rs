//! Experiment 1 (§7.2.1, Figures 14–16): accuracy of the four sample
//! allocation strategies on the three query classes, at the default 7%
//! sample with heavy group-size skew (z = 1.5).
//!
//! Run: `cargo run -p bench --release --bin expt1 [-- --quick]`
//!
//! Paper-expected shapes:
//! * Figure 14 (Qg0): Senate worst; House best; Congress ≈ House.
//! * Figure 15 (Qg3): House worst; Senate best; Congress in between.
//! * Figure 16 (Qg2): House and Senate both poor; Congress best.

use aqua::SamplingStrategy;
use bench::harness::{accuracy_for_strategy, ExperimentSetup, QuerySet};
use bench::report::{pct, Table};
use tpcd::GeneratorConfig;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let config = GeneratorConfig {
        table_size: if quick { 100_000 } else { 1_000_000 },
        num_groups: 1000,
        group_skew: 1.5,
        agg_skew: 0.86,
        seed: 20000514,
    };
    let trials = if quick { 2 } else { 5 };
    eprintln!(
        "generating lineitem: T={}, NG={}, z={} ...",
        config.table_size, config.num_groups, config.group_skew
    );
    let setup = ExperimentSetup::new(config);
    eprintln!(
        "census: {} non-empty groups over {} rows",
        setup.census.group_count(),
        setup.census.total_rows()
    );

    for (set, figure, expectation) in [
        (
            QuerySet::Qg0,
            "Figure 14",
            "Senate worst; House best; Congress close to House",
        ),
        (
            QuerySet::Qg3,
            "Figure 15",
            "House worst; Senate best; Congress between",
        ),
        (
            QuerySet::Qg2,
            "Figure 16",
            "House & Senate poor; Congress best/near-best",
        ),
    ] {
        let mut table = Table::new(
            format!(
                "{figure}: {} error, SP=7%, z=1.5  [expect: {expectation}]",
                set.name()
            ),
            &["strategy", "mean err %", "max err %"],
        );
        for strategy in SamplingStrategy::all() {
            let acc = accuracy_for_strategy(&setup, strategy, set, 0.07, trials, 7_000);
            table.row(&[
                strategy.name().to_string(),
                pct(acc.mean_error_pct),
                pct(acc.max_error_pct),
            ]);
            eprintln!("  {} / {}: done", set.name(), strategy.name());
        }
        println!("{table}");
    }
}
