//! Hand-rolled JSON for the wire format (the vendored serde facade does
//! not serialize, matching the rest of the workspace — see
//! `obs::Snapshot::to_json`).
//!
//! Two halves: rendering a [`ServedAnswer`] into the response body, and a
//! deliberately small reader that extracts *string fields from one flat
//! object* — exactly the shape of the `/query` request body
//! (`{"sql": "...", "relation": "..."}`). Unknown fields are skipped;
//! nested containers are rejected rather than mis-parsed.

use std::collections::HashMap;
use std::fmt::Write as _;

use aqua::{AnswerProvenance, ServedAnswer};
use relation::Value;

/// Append `s` as a JSON string literal (quotes included).
pub fn push_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A float as a JSON value: finite numbers verbatim, non-finite as `null`
/// (JSON has no NaN/Infinity).
fn push_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        let _ = write!(out, "{v}");
    } else {
        out.push_str("null");
    }
}

fn push_value(out: &mut String, v: &Value) {
    match v {
        Value::Int(i) => {
            let _ = write!(out, "{i}");
        }
        Value::Float(f) => push_f64(out, f.get()),
        Value::Str(s) => push_escaped(out, s),
        Value::Date(d) => {
            let _ = write!(out, "{d}");
        }
    }
}

/// Render a served answer as the `/query` response body:
///
/// ```json
/// {
///   "provenance": "sampled",
///   "confidence": 0.95,
///   "rewritten": "SELECT ...",
///   "aggregates": ["c", "s"],
///   "groups": [
///     {"key": ["CA"], "values": [12.0, 34.5],
///      "bounds": [{"half_width": 1.2, "confidence": 0.95, "kind": "..."}, null]}
///   ]
/// }
/// ```
///
/// Bounds align with `aggregates`; `null` marks an unbounded aggregate
/// (e.g. MIN/MAX) or a degraded exact answer (which has no bounds at all).
pub fn render_answer(served: &ServedAnswer) -> String {
    let answer = &served.answer;
    let mut out = String::with_capacity(256 + answer.result.group_count() * 96);
    out.push_str("{\"provenance\":");
    match &answer.provenance {
        AnswerProvenance::Sampled => out.push_str("\"sampled\""),
        AnswerProvenance::ExactFallback { reason } => {
            out.push_str("\"exact_fallback\",\"degraded_reason\":");
            push_escaped(&mut out, reason);
        }
    }
    out.push_str(",\"confidence\":");
    push_f64(&mut out, answer.confidence);
    out.push_str(",\"rewritten\":");
    push_escaped(&mut out, &served.rewritten);
    out.push_str(",\"aggregates\":[");
    for (i, name) in answer.result.aggregate_names.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        push_escaped(&mut out, name);
    }
    out.push_str("],\"groups\":[");
    for (gi, (key, values)) in answer.result.iter().enumerate() {
        if gi > 0 {
            out.push(',');
        }
        out.push_str("{\"key\":[");
        for (i, v) in key.values().iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            push_value(&mut out, v);
        }
        out.push_str("],\"values\":[");
        for (i, v) in values.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            push_f64(&mut out, *v);
        }
        out.push(']');
        // `bounds` rows share the result's key order (see
        // `ApproximateAnswer`), so index instead of searching.
        if let Some(gb) = answer.bounds.get(gi) {
            debug_assert_eq!(&gb.key, key);
            out.push_str(",\"bounds\":[");
            for (i, b) in gb.bounds.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                match b {
                    Some(b) => {
                        out.push_str("{\"half_width\":");
                        push_f64(&mut out, b.half_width);
                        out.push_str(",\"confidence\":");
                        push_f64(&mut out, b.confidence);
                        let _ = write!(out, ",\"kind\":\"{:?}\"", b.kind);
                        out.push('}');
                    }
                    None => out.push_str("null"),
                }
            }
            out.push(']');
        }
        out.push('}');
    }
    out.push_str("]}");
    out
}

/// An error response body: `{"error": "..."}`.
pub fn render_error(message: &str) -> String {
    let mut out = String::with_capacity(message.len() + 12);
    out.push_str("{\"error\":");
    push_escaped(&mut out, message);
    out.push('}');
    out
}

/// Parse a flat JSON object of string fields. Non-string values and
/// nested containers are errors; duplicate keys keep the last value.
pub fn parse_flat_object(text: &str) -> Result<HashMap<String, String>, String> {
    let mut chars = text.char_indices().peekable();
    let mut fields = HashMap::new();

    skip_ws(&mut chars);
    expect(&mut chars, '{')?;
    skip_ws(&mut chars);
    if matches!(chars.peek(), Some((_, '}'))) {
        chars.next();
        return finish(chars, fields);
    }
    loop {
        skip_ws(&mut chars);
        let key = parse_string(&mut chars, text)?;
        skip_ws(&mut chars);
        expect(&mut chars, ':')?;
        skip_ws(&mut chars);
        match chars.peek() {
            Some((_, '"')) => {
                let value = parse_string(&mut chars, text)?;
                fields.insert(key, value);
            }
            Some((_, c)) => return Err(format!("expected string value, found '{c}'")),
            None => return Err("unexpected end of input".into()),
        }
        skip_ws(&mut chars);
        match chars.next() {
            Some((_, ',')) => continue,
            Some((_, '}')) => return finish(chars, fields),
            Some((_, c)) => return Err(format!("expected ',' or '}}', found '{c}'")),
            None => return Err("unexpected end of input".into()),
        }
    }
}

type Chars<'a> = std::iter::Peekable<std::str::CharIndices<'a>>;

fn finish(
    mut chars: Chars<'_>,
    fields: HashMap<String, String>,
) -> Result<HashMap<String, String>, String> {
    skip_ws(&mut chars);
    match chars.next() {
        None => Ok(fields),
        Some((_, c)) => Err(format!("trailing content after object: '{c}'")),
    }
}

fn skip_ws(chars: &mut Chars<'_>) {
    while matches!(chars.peek(), Some((_, c)) if c.is_ascii_whitespace()) {
        chars.next();
    }
}

fn expect(chars: &mut Chars<'_>, want: char) -> Result<(), String> {
    match chars.next() {
        Some((_, c)) if c == want => Ok(()),
        Some((_, c)) => Err(format!("expected '{want}', found '{c}'")),
        None => Err(format!("expected '{want}', found end of input")),
    }
}

fn parse_string(chars: &mut Chars<'_>, _text: &str) -> Result<String, String> {
    expect(chars, '"')?;
    let mut out = String::new();
    loop {
        match chars.next() {
            Some((_, '"')) => return Ok(out),
            Some((_, '\\')) => match chars.next() {
                Some((_, '"')) => out.push('"'),
                Some((_, '\\')) => out.push('\\'),
                Some((_, '/')) => out.push('/'),
                Some((_, 'n')) => out.push('\n'),
                Some((_, 'r')) => out.push('\r'),
                Some((_, 't')) => out.push('\t'),
                Some((_, 'b')) => out.push('\u{8}'),
                Some((_, 'f')) => out.push('\u{c}'),
                Some((_, 'u')) => {
                    let mut code = 0u32;
                    for _ in 0..4 {
                        let d = chars
                            .next()
                            .and_then(|(_, c)| c.to_digit(16))
                            .ok_or("bad \\u escape")?;
                        code = code * 16 + d;
                    }
                    out.push(char::from_u32(code).ok_or("bad \\u code point")?);
                }
                Some((_, c)) => return Err(format!("bad escape '\\{c}'")),
                None => return Err("unterminated string".into()),
            },
            Some((_, c)) => out.push(c),
            None => return Err("unterminated string".into()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flat_object_round_trip() {
        let m = parse_flat_object(r#" {"sql": "SELECT 'a''b'", "relation": "census"} "#).unwrap();
        assert_eq!(m["sql"], "SELECT 'a''b'");
        assert_eq!(m["relation"], "census");
        assert!(parse_flat_object("{}").unwrap().is_empty());
    }

    #[test]
    fn escapes_decode() {
        let m = parse_flat_object(r#"{"k": "a\"b\\c\ndA"}"#).unwrap();
        assert_eq!(m["k"], "a\"b\\c\ndA");
    }

    #[test]
    fn rejects_non_flat_and_malformed() {
        assert!(parse_flat_object(r#"{"k": 1}"#).is_err());
        assert!(parse_flat_object(r#"{"k": {"x": "y"}}"#).is_err());
        assert!(parse_flat_object(r#"{"k": "v""#).is_err());
        assert!(parse_flat_object(r#"{"k": "v"} extra"#).is_err());
        assert!(parse_flat_object("not json").is_err());
    }

    #[test]
    fn escaping_output() {
        let mut s = String::new();
        push_escaped(&mut s, "a\"b\\c\nd\u{1}");
        assert_eq!(s, "\"a\\\"b\\\\c\\nd\\u0001\"");
        assert_eq!(render_error("boom"), r#"{"error":"boom"}"#);
    }
}
