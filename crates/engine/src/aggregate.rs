//! Aggregate functions and their accumulators.

use std::fmt;

use serde::{Deserialize, Serialize};

use relation::Expr;

/// Aggregate operators supported by the engine.
///
/// SUM, COUNT, and AVG are the operators the paper's rewriting section
/// (§5.1) derives unbiased stratified estimators for. MIN and MAX are
/// supported for exact execution and as best-effort (not unbiased) sample
/// estimates — standard practice for extrema over samples.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AggregateFn {
    /// `SUM(expr)`
    Sum,
    /// `COUNT(*)`
    Count,
    /// `AVG(expr)`
    Avg,
    /// `MIN(expr)`
    Min,
    /// `MAX(expr)`
    Max,
}

impl AggregateFn {
    /// Whether the function requires an input expression (`COUNT(*)` does not).
    pub fn needs_expr(self) -> bool {
        !matches!(self, AggregateFn::Count)
    }

    /// Whether the sample-based estimate of this aggregate is statistically
    /// unbiased under stratified scaling (§5.1).
    pub fn unbiased_under_scaling(self) -> bool {
        matches!(
            self,
            AggregateFn::Sum | AggregateFn::Count | AggregateFn::Avg
        )
    }
}

impl fmt::Display for AggregateFn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            AggregateFn::Sum => "SUM",
            AggregateFn::Count => "COUNT",
            AggregateFn::Avg => "AVG",
            AggregateFn::Min => "MIN",
            AggregateFn::Max => "MAX",
        })
    }
}

/// One aggregate in a query's SELECT list.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AggregateSpec {
    /// The aggregate operator.
    pub func: AggregateFn,
    /// Input expression; `None` only for `COUNT(*)`.
    pub expr: Option<Expr>,
    /// Output column label.
    pub name: String,
}

impl AggregateSpec {
    /// `SUM(expr) AS name`
    pub fn sum(expr: Expr, name: impl Into<String>) -> Self {
        AggregateSpec {
            func: AggregateFn::Sum,
            expr: Some(expr),
            name: name.into(),
        }
    }

    /// `COUNT(*) AS name`
    pub fn count(name: impl Into<String>) -> Self {
        AggregateSpec {
            func: AggregateFn::Count,
            expr: None,
            name: name.into(),
        }
    }

    /// `AVG(expr) AS name`
    pub fn avg(expr: Expr, name: impl Into<String>) -> Self {
        AggregateSpec {
            func: AggregateFn::Avg,
            expr: Some(expr),
            name: name.into(),
        }
    }

    /// `MIN(expr) AS name`
    pub fn min(expr: Expr, name: impl Into<String>) -> Self {
        AggregateSpec {
            func: AggregateFn::Min,
            expr: Some(expr),
            name: name.into(),
        }
    }

    /// `MAX(expr) AS name`
    pub fn max(expr: Expr, name: impl Into<String>) -> Self {
        AggregateSpec {
            func: AggregateFn::Max,
            expr: Some(expr),
            name: name.into(),
        }
    }
}

/// Function-independent accumulation state for one group: `Σ value·weight`,
/// `Σ weight`, the raw value range, and the folded row count. Every
/// aggregate operator finishes from these five fields, which is what makes
/// the state cacheable per (grouping, measure expression) rather than per
/// query — see [`crate::cache::MeasureSummary`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Partial {
    weighted_sum: f64,
    weight: f64,
    min: f64,
    max: f64,
    rows: u64,
}

impl Default for Partial {
    fn default() -> Self {
        Partial::new()
    }
}

impl Partial {
    /// Empty state.
    pub fn new() -> Partial {
        Partial {
            weighted_sum: 0.0,
            weight: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            rows: 0,
        }
    }

    /// Fold in one row's value and weight.
    #[inline]
    pub fn add(&mut self, value: f64, weight: f64) {
        self.weighted_sum += value * weight;
        self.weight += weight;
        if value < self.min {
            self.min = value;
        }
        if value > self.max {
            self.max = value;
        }
        self.rows += 1;
    }

    /// Merge another partial into this one.
    pub fn merge(&mut self, other: &Partial) {
        self.weighted_sum += other.weighted_sum;
        self.weight += other.weight;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        self.rows += other.rows;
    }

    /// Number of raw rows folded in.
    pub fn rows(&self) -> u64 {
        self.rows
    }

    /// `Σ value·weight` accumulated so far.
    pub fn weighted_sum(&self) -> f64 {
        self.weighted_sum
    }

    /// `Σ weight` accumulated so far.
    pub fn total_weight(&self) -> f64 {
        self.weight
    }

    /// Minimum raw value seen (`+∞` if empty).
    pub fn min_value(&self) -> f64 {
        self.min
    }

    /// Maximum raw value seen (`-∞` if empty).
    pub fn max_value(&self) -> f64 {
        self.max
    }
}

/// Streaming accumulator for one aggregate over one group.
///
/// `add` takes the row's expression value and a weight. Exact execution
/// passes weight 1; the rewrite strategies pass the stratum ScaleFactor,
/// which yields exactly the paper's scaled SUM / scaled COUNT / ratio AVG.
#[derive(Debug, Clone, Copy)]
pub struct Accumulator {
    func: AggregateFn,
    state: Partial,
}

impl Accumulator {
    /// Fresh accumulator for `func`.
    pub fn new(func: AggregateFn) -> Self {
        Accumulator {
            func,
            state: Partial::new(),
        }
    }

    /// Restore an accumulator from a cached [`Partial`]. Because the state
    /// is function-independent, one cached partial per (grouping, measure)
    /// serves SUM, COUNT, AVG, MIN, and MAX alike.
    pub fn from_partial(func: AggregateFn, state: Partial) -> Self {
        Accumulator { func, state }
    }

    /// Fold in one row. `value` is ignored for COUNT.
    #[inline]
    pub fn add(&mut self, value: f64, weight: f64) {
        self.state.add(value, weight);
    }

    /// Merge another accumulator of the same function into this one.
    pub fn merge(&mut self, other: &Accumulator) {
        debug_assert_eq!(self.func, other.func);
        self.state.merge(&other.state);
    }

    /// Number of raw rows folded in.
    pub fn rows(&self) -> u64 {
        self.state.rows()
    }

    /// `Σ value·weight` accumulated so far.
    pub fn weighted_sum(&self) -> f64 {
        self.state.weighted_sum()
    }

    /// `Σ weight` accumulated so far.
    pub fn total_weight(&self) -> f64 {
        self.state.total_weight()
    }

    /// Minimum raw value seen (`+∞` if empty).
    pub fn min_value(&self) -> f64 {
        self.state.min_value()
    }

    /// Maximum raw value seen (`-∞` if empty).
    pub fn max_value(&self) -> f64 {
        self.state.max_value()
    }

    /// The aggregate's final value. AVG of an empty group is NaN; the
    /// executors never emit empty groups, so this is unreachable in queries.
    pub fn finish(&self) -> f64 {
        match self.func {
            AggregateFn::Sum => self.state.weighted_sum(),
            AggregateFn::Count => self.state.total_weight(),
            AggregateFn::Avg => self.state.weighted_sum() / self.state.total_weight(),
            AggregateFn::Min => self.state.min_value(),
            AggregateFn::Max => self.state.max_value(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use relation::ColumnId;

    #[test]
    fn sum_with_unit_weight_is_plain_sum() {
        let mut a = Accumulator::new(AggregateFn::Sum);
        for v in [1.0, 2.0, 3.5] {
            a.add(v, 1.0);
        }
        assert_eq!(a.finish(), 6.5);
        assert_eq!(a.rows(), 3);
    }

    #[test]
    fn scaled_sum_matches_paper_example() {
        // §5.1: q1 from a 1% stratum (SF=100), q2 from a 2% stratum (SF=50).
        let mut a = Accumulator::new(AggregateFn::Sum);
        a.add(10.0, 100.0);
        a.add(20.0, 50.0);
        assert_eq!(a.finish(), 10.0 * 100.0 + 20.0 * 50.0);
    }

    #[test]
    fn count_sums_scale_factors() {
        let mut a = Accumulator::new(AggregateFn::Count);
        a.add(0.0, 100.0);
        a.add(0.0, 50.0);
        assert_eq!(a.finish(), 150.0);
    }

    #[test]
    fn avg_is_ratio_of_scaled_sums() {
        let mut a = Accumulator::new(AggregateFn::Avg);
        a.add(10.0, 100.0);
        a.add(20.0, 50.0);
        let expect = (10.0 * 100.0 + 20.0 * 50.0) / 150.0;
        assert!((a.finish() - expect).abs() < 1e-12);
    }

    #[test]
    fn min_max_ignore_weights() {
        let mut mn = Accumulator::new(AggregateFn::Min);
        let mut mx = Accumulator::new(AggregateFn::Max);
        for (v, w) in [(5.0, 10.0), (-2.0, 1.0), (7.0, 0.5)] {
            mn.add(v, w);
            mx.add(v, w);
        }
        assert_eq!(mn.finish(), -2.0);
        assert_eq!(mx.finish(), 7.0);
    }

    #[test]
    fn merge_equals_sequential() {
        let mut a = Accumulator::new(AggregateFn::Avg);
        let mut b = Accumulator::new(AggregateFn::Avg);
        let mut whole = Accumulator::new(AggregateFn::Avg);
        for (i, v) in [1.0, 4.0, 9.0, 16.0].iter().enumerate() {
            let w = (i + 1) as f64;
            if i % 2 == 0 {
                a.add(*v, w);
            } else {
                b.add(*v, w);
            }
            whole.add(*v, w);
        }
        a.merge(&b);
        assert!((a.finish() - whole.finish()).abs() < 1e-12);
        assert_eq!(a.rows(), whole.rows());
    }

    #[test]
    fn restored_partial_is_bit_identical_to_streamed() {
        // One shared Partial serves every aggregate function: streaming the
        // same (value, weight) pairs through an Accumulator must land on
        // exactly the same state.
        let pairs = [(1.5, 2.0), (-3.25, 8.0), (7.0, 0.5), (0.1, 1.0)];
        let mut p = Partial::new();
        for (v, w) in pairs {
            p.add(v, w);
        }
        for func in [
            AggregateFn::Sum,
            AggregateFn::Count,
            AggregateFn::Avg,
            AggregateFn::Min,
            AggregateFn::Max,
        ] {
            let mut streamed = Accumulator::new(func);
            for (v, w) in pairs {
                streamed.add(v, w);
            }
            let restored = Accumulator::from_partial(func, p);
            assert_eq!(restored.finish().to_bits(), streamed.finish().to_bits());
            assert_eq!(restored.rows(), streamed.rows());
            assert_eq!(restored.weighted_sum(), streamed.weighted_sum());
        }
    }

    #[test]
    fn partial_merge_matches_accumulator_merge() {
        let mut a = Partial::new();
        let mut b = Partial::new();
        let mut aa = Accumulator::new(AggregateFn::Sum);
        let mut ab = Accumulator::new(AggregateFn::Sum);
        for (i, v) in [2.0, 3.0, 5.0, 7.0].iter().enumerate() {
            if i % 2 == 0 {
                a.add(*v, 1.5);
                aa.add(*v, 1.5);
            } else {
                b.add(*v, 1.5);
                ab.add(*v, 1.5);
            }
        }
        a.merge(&b);
        aa.merge(&ab);
        assert_eq!(
            Accumulator::from_partial(AggregateFn::Sum, a).finish(),
            aa.finish()
        );
        assert_eq!(a.rows(), aa.rows());
        assert_eq!(a.min_value(), aa.min_value());
        assert_eq!(a.max_value(), aa.max_value());
    }

    #[test]
    fn spec_constructors() {
        let s = AggregateSpec::sum(Expr::col(ColumnId(0)), "s");
        assert_eq!(s.func, AggregateFn::Sum);
        assert!(s.expr.is_some());
        let c = AggregateSpec::count("c");
        assert!(c.expr.is_none());
        assert!(!AggregateFn::Count.needs_expr());
        assert!(AggregateFn::Avg.needs_expr());
        assert!(AggregateFn::Sum.unbiased_under_scaling());
        assert!(!AggregateFn::Min.unbiased_under_scaling());
    }

    #[test]
    fn display_names() {
        assert_eq!(AggregateFn::Sum.to_string(), "SUM");
        assert_eq!(AggregateFn::Avg.to_string(), "AVG");
    }
}
