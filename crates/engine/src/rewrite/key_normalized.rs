//! Key-normalized rewriting (paper Fig 10): like Normalized, but each
//! sample tuple carries an integer group identifier (GID) and AuxRel is
//! keyed by GID — "a shorter join predicate involving just one attribute"
//! (§7.3.1).

use relation::{Column, ColumnId, DataType, Field, Relation};

use crate::cache::{ExecOptions, StratumLayout};
use crate::error::{EngineError, Result};
use crate::join::hash_join_unique_int;
use crate::query::GroupByQuery;
use crate::result::QueryResult;
use crate::rewrite::normalized::build_gid_aux;
use crate::rewrite::{aggregate_weighted_opts, SamplePlan};
use crate::stratified::StratifiedInput;

/// Name of the appended GID column.
pub const GID_COLUMN: &str = "__gid";

/// The Key-normalized physical layout: `SampRel(base..., __gid)` plus
/// `AuxRel(__gid, __sf)`.
#[derive(Debug, Clone)]
pub struct KeyNormalized {
    rel: Relation,
    aux: Relation,
    gid_col: ColumnId,
    /// Stratum id per sample row (the GID column's values); lets a cached
    /// [`StratumLayout`] replace the per-query GID join on the warm path.
    stratum_of_row: Vec<u32>,
}

impl KeyNormalized {
    /// Materialize the layout from a stratified sample.
    pub fn build(input: &StratifiedInput) -> Result<KeyNormalized> {
        input.validate()?;
        let gids: Vec<i64> = input.stratum_of_row.iter().map(|&s| s as i64).collect();
        let rel = input.rows.with_columns(vec![(
            Field::new(GID_COLUMN, DataType::Int),
            Column::Int(gids),
        )])?;
        let gid_col = rel.schema().column_id(GID_COLUMN)?;
        let aux = build_gid_aux(&input.scale_factors);
        Ok(KeyNormalized {
            rel,
            aux,
            gid_col,
            stratum_of_row: input.stratum_of_row.clone(),
        })
    }

    /// The auxiliary (GID → ScaleFactor) relation.
    pub fn aux_relation(&self) -> &Relation {
        &self.aux
    }

    fn join_scale_factors(&self) -> Result<Vec<f64>> {
        let probe = self.rel.column(self.gid_col).as_int().expect("GID is Int");
        let build = self
            .aux
            .column(self.aux.schema().column_id(GID_COLUMN)?)
            .as_int()
            .expect("aux GID is Int");
        let sfs = self
            .aux
            .column(self.aux.schema().column_id("__sf")?)
            .as_float()
            .expect("__sf is Float");
        hash_join_unique_int(probe, build)?
            .into_iter()
            .map(|m| {
                m.map(|r| sfs[r]).ok_or_else(|| {
                    EngineError::InvalidStratifiedInput(
                        "sample tuple's GID missing from AuxRel".into(),
                    )
                })
            })
            .collect()
    }
}

impl SamplePlan for KeyNormalized {
    fn name(&self) -> &'static str {
        "Key-normalized"
    }

    fn execute_opts(&self, query: &GroupByQuery, opts: &ExecOptions) -> Result<QueryResult> {
        // Cold path: pay the single-int GID join per query (Fig 10). Warm
        // path: the cached stratum layout expands AuxRel's SF column to the
        // identical per-row weights without probing a hash table.
        match opts.cache {
            Some(cache) => {
                let layout = cache.layout_for(|| {
                    StratumLayout::build(&self.stratum_of_row, self.aux.row_count())
                });
                let weights = cache.weights_for(|| {
                    let sf_col = self.aux.schema().column_id("__sf")?;
                    let sfs = self.aux.column(sf_col).as_float().expect("__sf is Float");
                    Ok(layout.expand(sfs))
                })?;
                aggregate_weighted_opts(&self.rel, &weights, query, opts)
            }
            None => {
                let weights = self.join_scale_factors()?;
                aggregate_weighted_opts(&self.rel, &weights, query, opts)
            }
        }
    }

    fn sample_relation(&self) -> &Relation {
        &self.rel
    }

    fn storage_bytes(&self) -> usize {
        self.rel.approx_bytes() + self.aux.approx_bytes()
    }

    fn rate_change_cost(&self, stratum: u32) -> usize {
        usize::from((stratum as usize) < self.aux.row_count())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aggregate::AggregateSpec;
    use crate::stratified::test_support::sample;
    use relation::{Expr, GroupKey, Value};

    #[test]
    fn layout_has_gid_and_compact_aux() {
        let p = KeyNormalized::build(&sample()).unwrap();
        assert_eq!(p.sample_relation().schema().width(), 4); // a, b, v, __gid
        assert_eq!(p.aux_relation().schema().width(), 2); // __gid, __sf
        assert_eq!(p.aux_relation().row_count(), 3);
    }

    #[test]
    fn gid_join_recovers_scale_factors() {
        let p = KeyNormalized::build(&sample()).unwrap();
        assert_eq!(
            p.join_scale_factors().unwrap(),
            vec![2.0, 2.0, 2.0, 1.0, 1.0]
        );
    }

    #[test]
    fn aux_smaller_than_normalized_aux() {
        // The GID aux drops the grouping columns, so it is at most as wide.
        let s = sample();
        let kn = KeyNormalized::build(&s).unwrap();
        let n = crate::rewrite::Normalized::build(&s).unwrap();
        assert!(kn.aux_relation().approx_bytes() <= n.aux_relation().approx_bytes());
    }

    #[test]
    fn executes_scaled_query() {
        let p = KeyNormalized::build(&sample()).unwrap();
        let q = GroupByQuery::new(
            vec![ColumnId(0)],
            vec![AggregateSpec::avg(Expr::col(ColumnId(2)), "a")],
        );
        let r = p.execute(&q).unwrap();
        let y = GroupKey::new(vec![Value::str("y")]);
        assert_eq!(r.get(&y), Some(&[150.0][..]));
    }
}
