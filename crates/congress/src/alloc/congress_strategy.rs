//! The Congress strategy (§4.6): for every grouping `T ⊆ G`, compute the
//! space each finest group would deserve if `T` were the only grouping
//! (Eq 4), take the per-group maximum over all `T`, and scale down to the
//! budget (Eq 5–6).

use rayon::prelude::*;

use crate::alloc::{check_space, scale_to_budget, Allocation, AllocationStrategy};
use crate::census::GroupCensus;
use crate::error::Result;
use crate::lattice::all_groupings;

/// Elementwise maximum of two per-group vectors — the reduce step of the
/// parallel lattice walks below. `f64::max` is associative and commutative
/// over the non-NaN values produced here, so the reduction is exact and
/// independent of evaluation order (and therefore of thread count).
fn elementwise_max(mut a: Vec<f64>, b: Vec<f64>) -> Vec<f64> {
    for (x, y) in a.iter_mut().zip(b) {
        if y > *x {
            *x = y;
        }
    }
    a
}

/// Full congressional allocation over the entire grouping lattice.
///
/// ```
/// use congress::alloc::{AllocationStrategy, Congress};
/// use congress::GroupCensus;
/// use relation::{ColumnId, GroupKey, Value};
///
/// // The paper's Figure 5 census: 4 groups over attributes (A, B).
/// let keys: Vec<GroupKey> = [("a1","b1"), ("a1","b2"), ("a1","b3"), ("a2","b3")]
///     .iter()
///     .map(|(a, b)| GroupKey::new(vec![Value::str(*a), Value::str(*b)]))
///     .collect();
/// let census = GroupCensus::from_counts(
///     vec![ColumnId(0), ColumnId(1)], keys, vec![3000, 3000, 1500, 2500],
/// ).unwrap();
///
/// let alloc = Congress.allocate(&census, 100.0).unwrap();
/// // Figure 5's bottom-right column: 23.5, 23.5, 17.6, 35.3.
/// assert!((alloc.targets()[3] - 35.3).abs() < 0.1);
/// assert!((alloc.total() - 100.0).abs() < 1e-9);
/// assert!((alloc.scale_down_factor() - 0.7059).abs() < 1e-3);
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct Congress;

impl Congress {
    /// The raw (pre-scaling) per-group allocation `max_{T⊆G} s_{g,T}`.
    ///
    /// Exposed so the scale-down analysis experiment (§4.6) can observe the
    /// unscaled sum directly.
    pub fn raw_targets(census: &GroupCensus, space: f64) -> Vec<f64> {
        let k = census.attribute_count();
        let m = census.group_count();
        // Parallel over the 2^k groupings: each computes its Eq-4 vector
        // independently, then an exact elementwise max folds them.
        all_groupings(k)
            .collect::<Vec<_>>()
            .into_par_iter()
            .map(|t| {
                let view = census.supergroups(t);
                let per_group = space / view.group_count as f64;
                view.supergroup_of
                    .iter()
                    .enumerate()
                    // Eq 4: s_{g,T} = (X / m_T) · (n_g / n_h)
                    .map(|(g, &h)| {
                        per_group * census.sizes()[g] as f64 / view.sizes[h as usize] as f64
                    })
                    .collect::<Vec<f64>>()
            })
            .reduce(|| vec![0.0f64; m], elementwise_max)
    }
}

impl AllocationStrategy for Congress {
    fn name(&self) -> &'static str {
        "Congress"
    }

    fn allocate(&self, census: &GroupCensus, space: f64) -> Result<Allocation> {
        check_space(space)?;
        let raw = Self::raw_targets(census, space);
        Ok(scale_to_budget(raw, space))
    }
}

/// The alternative per-tuple formulation of Congress (Eq 8): the inclusion
/// probability of each tuple `τ`, namely
/// `max_{T⊆G} X / (m_T · n_{g(τ,T)})`, normalized so the expected sample
/// size is `X`. Returned per *finest group* (all tuples of a finest group
/// share the same probability, since `g(τ,T)` is determined by the finest
/// group).
pub fn per_tuple_probabilities(census: &GroupCensus, space: f64) -> Result<Vec<f64>> {
    check_space(space)?;
    let k = census.attribute_count();
    let m = census.group_count();
    // max_T X / (m_T · n_{g(τ,T)}) per finest group, parallel over the
    // lattice like [`Congress::raw_targets`].
    let best = all_groupings(k)
        .collect::<Vec<_>>()
        .into_par_iter()
        .map(|t| {
            let view = census.supergroups(t);
            view.supergroup_of
                .iter()
                .map(|&h| space / (view.group_count as f64 * view.sizes[h as usize] as f64))
                .collect::<Vec<f64>>()
        })
        .reduce(|| vec![0.0f64; m], elementwise_max);
    // Normalize: Σ_τ p_τ = Σ_g n_g·best_g must equal X.
    let total: f64 = best
        .iter()
        .zip(census.sizes())
        .map(|(&p, &ng)| p * ng as f64)
        .sum();
    let norm = space / total;
    Ok(best.into_iter().map(|p| (p * norm).min(1.0)).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::census::test_support::figure5_census;
    use relation::Value;

    /// Look up the target for a specific (A, B) group in Figure 5.
    fn target_for(census: &GroupCensus, targets: &[f64], a: &str, b: &str) -> f64 {
        let idx = census
            .keys()
            .iter()
            .position(|k| k.values()[0] == Value::str(a) && k.values()[1] == Value::str(b))
            .unwrap();
        targets[idx]
    }

    #[test]
    fn figure5_raw_targets_match_paper() {
        // Paper Figure 5, "Congress (before scaling)": 33.3, 33.3, 25, 50.
        let c = figure5_census(1);
        let raw = Congress::raw_targets(&c, 100.0);
        assert!((target_for(&c, &raw, "a1", "b1") - 100.0 / 3.0).abs() < 0.05);
        assert!((target_for(&c, &raw, "a1", "b2") - 100.0 / 3.0).abs() < 0.05);
        assert!((target_for(&c, &raw, "a1", "b3") - 25.0).abs() < 0.05);
        assert!((target_for(&c, &raw, "a2", "b3") - 50.0).abs() < 0.05);
    }

    #[test]
    fn figure5_scaled_targets_match_paper() {
        // Paper Figure 5, "Congress" (after scaling): 23.5, 23.5, 17.7, 35.3.
        let c = figure5_census(1);
        let a = Congress.allocate(&c, 100.0).unwrap();
        assert!((target_for(&c, a.targets(), "a1", "b1") - 23.5).abs() < 0.1);
        assert!((target_for(&c, a.targets(), "a1", "b2") - 23.5).abs() < 0.1);
        assert!((target_for(&c, a.targets(), "a1", "b3") - 17.7).abs() < 0.1);
        assert!((target_for(&c, a.targets(), "a2", "b3") - 35.3).abs() < 0.1);
        assert!((a.total() - 100.0).abs() < 1e-9);
        // f = 100 / 141.67
        assert!((a.scale_down_factor() - 100.0 / (100.0 / 3.0 * 2.0 + 25.0 + 50.0)).abs() < 1e-9);
    }

    #[test]
    fn congress_dominates_house_and_senate_up_to_f() {
        use crate::alloc::{House, Senate};
        let c = figure5_census(1);
        let x = 100.0;
        let cg = Congress.allocate(&c, x).unwrap();
        let f = cg.scale_down_factor();
        let h = House.allocate(&c, x).unwrap();
        let s = Senate.allocate(&c, x).unwrap();
        for g in 0..c.group_count() {
            // Congress guarantee: every group gets ≥ f × its best ideal.
            assert!(cg.targets()[g] >= f * h.targets()[g] - 1e-9);
            assert!(cg.targets()[g] >= f * s.targets()[g] - 1e-9);
        }
    }

    #[test]
    fn uniform_distribution_has_f_equal_one() {
        // §4.6: f = 1 when tuples are uniform across all groups.
        use relation::{ColumnId, GroupKey};
        let mut keys = Vec::new();
        for a in 0..2i64 {
            for b in 0..3i64 {
                keys.push(GroupKey::new(vec![Value::Int(a), Value::Int(b)]));
            }
        }
        let c = crate::census::GroupCensus::from_counts(
            vec![ColumnId(0), ColumnId(1)],
            keys,
            vec![100; 6],
        )
        .unwrap();
        let a = Congress.allocate(&c, 60.0).unwrap();
        assert!((a.scale_down_factor() - 1.0).abs() < 1e-12);
        for &t in a.targets() {
            assert!((t - 10.0).abs() < 1e-9);
        }
    }

    #[test]
    fn single_attribute_congress_reduces_to_basic() {
        // With |G| = 1, the lattice is {∅, G}, so Congress ≡ Basic Congress.
        use crate::alloc::BasicCongress;
        use relation::{ColumnId, GroupKey};
        let keys: Vec<GroupKey> = (0..3).map(|i| GroupKey::new(vec![Value::Int(i)])).collect();
        let c =
            crate::census::GroupCensus::from_counts(vec![ColumnId(0)], keys, vec![700, 200, 100])
                .unwrap();
        let cg = Congress.allocate(&c, 90.0).unwrap();
        let bc = BasicCongress.allocate(&c, 90.0).unwrap();
        for (x, y) in cg.targets().iter().zip(bc.targets()) {
            assert!((x - y).abs() < 1e-9);
        }
    }

    #[test]
    fn per_tuple_probabilities_sum_to_space() {
        let c = figure5_census(1);
        let probs = per_tuple_probabilities(&c, 100.0).unwrap();
        let expected: f64 = probs
            .iter()
            .zip(c.sizes())
            .map(|(&p, &n)| p * n as f64)
            .sum();
        assert!((expected - 100.0).abs() < 1e-6);
        assert!(probs.iter().all(|&p| (0.0..=1.0).contains(&p)));
    }

    #[test]
    fn per_tuple_probabilities_match_sample_sizes() {
        // Eq 8's expected group sample size equals Eq 5's SampleSize(g).
        let c = figure5_census(1);
        let probs = per_tuple_probabilities(&c, 100.0).unwrap();
        let alloc = Congress.allocate(&c, 100.0).unwrap();
        for (g, &p) in probs.iter().enumerate() {
            let expect = p * c.sizes()[g] as f64;
            assert!(
                (expect - alloc.targets()[g]).abs() < 1e-6,
                "group {g}: {expect} vs {}",
                alloc.targets()[g]
            );
        }
    }
}
