//! Compact binary persistence for congressional samples.
//!
//! Aqua stores its synopses durably ("stored as regular relations in the
//! DBMS", §2) so they survive restarts and can be shipped between the
//! warehouse and the middleware. This module provides an equivalent for
//! this workspace: a versioned, length-prefixed binary encoding of a
//! [`CongressionalSample`] built on [`bytes`]. The encoding stores row
//! *indices* (not tuples), so a snapshot is small — the base relation is
//! re-joined at load time by [`CongressionalSample::to_stratified_input`].
//!
//! # Format v2 (current)
//!
//! ```text
//! u32 magic "CGRS" | u16 version=2 | u16 section count
//! per section: u8 kind | u32 payload len | payload | u32 crc32c(payload)
//! u32 footer = crc32c(every byte above)
//! ```
//!
//! Section 0 (`meta`) carries the strategy name, grouping columns, and
//! stratum count; section 1 (`strata`) carries the per-stratum keys,
//! population sizes, and sampled row ids. Every section is individually
//! checksummed so corruption is pinpointed, and the footer covers the
//! whole encoding so *any* bit flip — including in the headers and the
//! section CRCs themselves — is detected before a byte is interpreted.
//!
//! v1 snapshots (no checksums) produced by earlier releases still decode;
//! [`encode`] always writes v2. Decoding is defensive throughout: a
//! hostile or torn buffer produces a [`CongressError::CorruptSnapshot`],
//! never a panic or an unbounded allocation.

use bytes::{Buf, BufMut, Bytes, BytesMut};

use relation::{ColumnId, GroupKey, Value};

use crate::checksum::crc32c;
use crate::error::{CongressError, Result};
use crate::sample::CongressionalSample;

/// Format magic: `b"CGRS"`.
const MAGIC: u32 = 0x4347_5253;
/// Current format version.
const VERSION: u16 = 2;
/// Oldest version this build still reads.
const MIN_VERSION: u16 = 1;

/// Section kinds (v2).
const SECTION_META: u8 = 0;
const SECTION_STRATA: u8 = 1;

/// Value type tags.
const TAG_INT: u8 = 0;
const TAG_FLOAT: u8 = 1;
const TAG_STR: u8 = 2;
const TAG_DATE: u8 = 3;

/// Hard cap on one string value inside a snapshot. Group-key strings are
/// short (dimension values); a length field beyond this is corruption, and
/// rejecting it *before* the bounds check keeps a hostile length from ever
/// reaching an allocation.
pub const MAX_STR_LEN: usize = 1 << 20;

/// Smallest possible encoded stratum: key arity (2) + group size (8) +
/// row count (4), with zero key values and zero rows.
const MIN_STRATUM_BYTES: usize = 14;

fn corrupt(what: impl Into<String>) -> CongressError {
    CongressError::CorruptSnapshot(what.into())
}

fn put_value(buf: &mut BytesMut, v: &Value) {
    match v {
        Value::Int(x) => {
            buf.put_u8(TAG_INT);
            buf.put_i64(*x);
        }
        Value::Float(x) => {
            buf.put_u8(TAG_FLOAT);
            buf.put_f64(x.get());
        }
        Value::Str(s) => {
            buf.put_u8(TAG_STR);
            let b = s.as_bytes();
            buf.put_u32(b.len() as u32);
            buf.put_slice(b);
        }
        Value::Date(d) => {
            buf.put_u8(TAG_DATE);
            buf.put_i32(*d);
        }
    }
}

fn get_value(buf: &mut Bytes) -> Result<Value> {
    if buf.remaining() < 1 {
        return Err(corrupt("truncated value tag"));
    }
    match buf.get_u8() {
        TAG_INT => {
            if buf.remaining() < 8 {
                return Err(corrupt("truncated int"));
            }
            Ok(Value::Int(buf.get_i64()))
        }
        TAG_FLOAT => {
            if buf.remaining() < 8 {
                return Err(corrupt("truncated float"));
            }
            Ok(Value::from(buf.get_f64()))
        }
        TAG_STR => {
            if buf.remaining() < 4 {
                return Err(corrupt("truncated string length"));
            }
            let len = buf.get_u32() as usize;
            // Cap the declared length before any allocation or copy: a
            // flipped length field must fail loudly, not reserve memory.
            if len > MAX_STR_LEN {
                return Err(corrupt(format!(
                    "string length {len} exceeds maximum {MAX_STR_LEN}"
                )));
            }
            if buf.remaining() < len {
                return Err(corrupt("truncated string body"));
            }
            let bytes = buf.copy_to_bytes(len);
            let s = std::str::from_utf8(&bytes).map_err(|_| corrupt("invalid utf-8"))?;
            Ok(Value::str(s))
        }
        TAG_DATE => {
            if buf.remaining() < 4 {
                return Err(corrupt("truncated date"));
            }
            Ok(Value::Date(buf.get_i32()))
        }
        t => Err(corrupt(format!("unknown value tag {t}"))),
    }
}

fn encode_meta(sample: &CongressionalSample) -> BytesMut {
    let mut buf = BytesMut::with_capacity(64);
    let name = sample.strategy_name().as_bytes();
    buf.put_u16(name.len() as u16);
    buf.put_slice(name);
    buf.put_u16(sample.grouping_columns().len() as u16);
    for c in sample.grouping_columns() {
        buf.put_u32(c.index() as u32);
    }
    buf.put_u32(sample.stratum_count() as u32);
    buf
}

fn encode_strata(sample: &CongressionalSample) -> BytesMut {
    let mut buf = BytesMut::with_capacity(sample.total_sampled() * 8 + 64);
    for g in 0..sample.stratum_count() {
        let key = &sample.strata_keys()[g];
        buf.put_u16(key.len() as u16);
        for v in key.values() {
            put_value(&mut buf, v);
        }
        buf.put_u64(sample.group_sizes()[g]);
        let rows = &sample.sampled_rows()[g];
        buf.put_u32(rows.len() as u32);
        for &r in rows {
            buf.put_u64(r as u64);
        }
    }
    buf
}

/// Serialize a sample to its binary snapshot form (format v2, with
/// per-section CRC32C checksums and a whole-file footer checksum).
pub fn encode(sample: &CongressionalSample) -> Bytes {
    let meta = encode_meta(sample);
    let strata = encode_strata(sample);
    let mut buf = BytesMut::with_capacity(meta.len() + strata.len() + 32);
    buf.put_u32(MAGIC);
    buf.put_u16(VERSION);
    buf.put_u16(2); // section count
    for (kind, payload) in [(SECTION_META, &meta), (SECTION_STRATA, &strata)] {
        buf.put_u8(kind);
        buf.put_u32(payload.len() as u32);
        buf.put_slice(payload);
        buf.put_u32(crc32c(payload));
    }
    let footer = crc32c(&buf);
    buf.put_u32(footer);
    buf.freeze()
}

/// Parse the meta payload: (strategy name, grouping columns, stratum count).
fn decode_meta(buf: &mut Bytes) -> Result<(String, Vec<ColumnId>, usize)> {
    if buf.remaining() < 2 {
        return Err(corrupt("truncated strategy name"));
    }
    let name_len = buf.get_u16() as usize;
    if buf.remaining() < name_len {
        return Err(corrupt("truncated strategy name body"));
    }
    let name_bytes = buf.copy_to_bytes(name_len);
    let name = std::str::from_utf8(&name_bytes)
        .map_err(|_| corrupt("strategy name not utf-8"))?
        .to_string();

    if buf.remaining() < 2 {
        return Err(corrupt("truncated grouping column count"));
    }
    let ncols = buf.get_u16() as usize;
    if buf.remaining() < ncols * 4 {
        return Err(corrupt("truncated grouping columns"));
    }
    let mut cols = Vec::with_capacity(ncols);
    for _ in 0..ncols {
        cols.push(ColumnId(buf.get_u32() as usize));
    }

    if buf.remaining() < 4 {
        return Err(corrupt("truncated stratum count"));
    }
    let strata = buf.get_u32() as usize;
    Ok((name, cols, strata))
}

/// Parse `strata` strata from the buffer: (keys, sizes, rows).
#[allow(clippy::type_complexity)]
fn decode_strata(
    buf: &mut Bytes,
    strata: usize,
) -> Result<(Vec<GroupKey>, Vec<u64>, Vec<Vec<usize>>)> {
    // Sanity-check the declared count against the bytes actually present
    // before reserving capacity: a hostile count must not drive an
    // allocation.
    if buf.remaining() < strata.saturating_mul(MIN_STRATUM_BYTES) {
        return Err(corrupt(format!(
            "stratum count {strata} exceeds what the buffer can hold"
        )));
    }
    let mut keys = Vec::with_capacity(strata);
    let mut sizes = Vec::with_capacity(strata);
    let mut rows = Vec::with_capacity(strata);
    for _ in 0..strata {
        if buf.remaining() < 2 {
            return Err(corrupt("truncated key arity"));
        }
        let arity = buf.get_u16() as usize;
        if buf.remaining() < arity {
            return Err(corrupt("truncated key values"));
        }
        let mut vals = Vec::with_capacity(arity);
        for _ in 0..arity {
            vals.push(get_value(buf)?);
        }
        keys.push(GroupKey::new(vals));
        if buf.remaining() < 12 {
            return Err(corrupt("truncated stratum header"));
        }
        sizes.push(buf.get_u64());
        let n = buf.get_u32() as usize;
        if buf.remaining() < n * 8 {
            return Err(corrupt("truncated row list"));
        }
        let mut rs = Vec::with_capacity(n);
        for _ in 0..n {
            rs.push(buf.get_u64() as usize);
        }
        rows.push(rs);
    }
    Ok((keys, sizes, rows))
}

/// Decode the v1 body (everything after magic + version): the unchecked
/// legacy layout, kept for snapshots written before checksums existed.
fn decode_v1(mut buf: Bytes) -> Result<CongressionalSample> {
    let (name, cols, strata) = decode_meta(&mut buf)?;
    let (keys, sizes, rows) = decode_strata(&mut buf, strata)?;
    if buf.has_remaining() {
        return Err(corrupt("trailing bytes"));
    }
    CongressionalSample::from_parts(cols, keys, sizes, rows, name)
}

/// Extract and checksum-verify the v2 sections, returning (meta, strata)
/// payloads. `full` is the complete snapshot (for the footer); `buf` is
/// positioned just past magic + version.
fn decode_v2_sections(full: &Bytes, mut buf: Bytes) -> Result<(Bytes, Bytes)> {
    // Verify the whole-file footer before interpreting anything else: the
    // last 4 bytes must be the CRC32C of every byte before them.
    if full.len() < 12 {
        return Err(corrupt("v2 snapshot too short for footer"));
    }
    let body = &full[..full.len() - 4];
    let stored_footer = u32::from_be_bytes(full[full.len() - 4..].try_into().expect("4 bytes"));
    if crc32c(body) != stored_footer {
        return Err(corrupt("footer checksum mismatch"));
    }

    if buf.remaining() < 2 {
        return Err(corrupt("truncated section count"));
    }
    let sections = buf.get_u16();
    if sections != 2 {
        return Err(corrupt(format!("expected 2 sections, found {sections}")));
    }
    let mut meta = None;
    let mut strata = None;
    for expected_kind in [SECTION_META, SECTION_STRATA] {
        if buf.remaining() < 5 {
            return Err(corrupt("truncated section header"));
        }
        let kind = buf.get_u8();
        if kind != expected_kind {
            return Err(corrupt(format!(
                "section kind {kind} where {expected_kind} expected"
            )));
        }
        let len = buf.get_u32() as usize;
        // The payload plus its own CRC and the footer must fit in what
        // remains; checked before the slice so a hostile length fails
        // cleanly.
        if buf.remaining() < len + 4 {
            return Err(corrupt("section length exceeds buffer"));
        }
        let payload = buf.copy_to_bytes(len);
        let stored = buf.get_u32();
        if crc32c(&payload) != stored {
            return Err(corrupt(format!(
                "section {expected_kind} checksum mismatch"
            )));
        }
        match kind {
            SECTION_META => meta = Some(payload),
            _ => strata = Some(payload),
        }
    }
    if buf.remaining() != 4 {
        return Err(corrupt("trailing bytes before footer"));
    }
    Ok((meta.expect("meta parsed"), strata.expect("strata parsed")))
}

/// Deserialize a snapshot produced by [`encode`] (v2) or by the v1
/// encoder of earlier releases.
pub fn decode(buf: Bytes) -> Result<CongressionalSample> {
    let full = buf.clone();
    let mut buf = buf;
    if buf.remaining() < 6 {
        return Err(corrupt("header too short"));
    }
    if buf.get_u32() != MAGIC {
        return Err(corrupt("bad magic"));
    }
    let version = buf.get_u16();
    match version {
        1 => decode_v1(buf),
        2 => {
            let (mut meta, mut strata_buf) = decode_v2_sections(&full, buf)?;
            let (name, cols, strata) = decode_meta(&mut meta)?;
            if meta.has_remaining() {
                return Err(corrupt("trailing bytes in meta section"));
            }
            let (keys, sizes, rows) = decode_strata(&mut strata_buf, strata)?;
            if strata_buf.has_remaining() {
                return Err(corrupt("trailing bytes in strata section"));
            }
            CongressionalSample::from_parts(cols, keys, sizes, rows, name)
        }
        v => Err(CongressError::InvalidSpec(format!(
            "unsupported snapshot version {v} (this build reads {MIN_VERSION}..={VERSION})"
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alloc::Congress;
    use crate::census::test_support::{figure5_census, figure5_relation};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn sample() -> CongressionalSample {
        let rel = figure5_relation(10);
        let census = figure5_census(10);
        let mut rng = StdRng::seed_from_u64(12);
        CongressionalSample::draw(&rel, &census, &Congress, 80.0, &mut rng).unwrap()
    }

    #[test]
    fn round_trip_preserves_everything() {
        let s = sample();
        let bytes = encode(&s);
        let back = decode(bytes).unwrap();
        assert_eq!(back.strategy_name(), s.strategy_name());
        assert_eq!(back.grouping_columns(), s.grouping_columns());
        assert_eq!(back.strata_keys(), s.strata_keys());
        assert_eq!(back.group_sizes(), s.group_sizes());
        assert_eq!(back.sampled_rows(), s.sampled_rows());
    }

    #[test]
    fn round_trip_through_stratified_input() {
        let rel = figure5_relation(10);
        let s = sample();
        let back = decode(encode(&s)).unwrap();
        let a = s.to_stratified_input(&rel).unwrap();
        let b = back.to_stratified_input(&rel).unwrap();
        assert_eq!(a.scale_factors, b.scale_factors);
        assert_eq!(a.stratum_of_row, b.stratum_of_row);
        assert_eq!(a.rows.row_count(), b.rows.row_count());
    }

    #[test]
    fn snapshot_is_compact() {
        let s = sample();
        let bytes = encode(&s);
        // ~8 bytes per sampled row id + key/header/checksum overhead; far
        // below materializing the tuples themselves.
        assert!(bytes.len() < 96 + s.total_sampled() * 8 + s.stratum_count() * 64);
    }

    #[test]
    fn rejects_bad_magic_and_version() {
        let s = sample();
        let mut raw = encode(&s).to_vec();
        raw[0] ^= 0xFF;
        assert!(decode(Bytes::from(raw.clone())).is_err());
        let mut raw = encode(&s).to_vec();
        raw[5] = 99; // version
        assert!(decode(Bytes::from(raw)).is_err());
    }

    #[test]
    fn rejects_truncation_anywhere() {
        let s = sample();
        let full = encode(&s);
        for cut in [0, 3, 6, 10, full.len() / 2, full.len() - 1] {
            let truncated = full.slice(0..cut);
            assert!(decode(truncated).is_err(), "cut at {cut} must fail");
        }
    }

    #[test]
    fn rejects_trailing_garbage() {
        let s = sample();
        let mut raw = encode(&s).to_vec();
        raw.push(0);
        assert!(decode(Bytes::from(raw)).is_err());
    }

    #[test]
    fn detects_any_single_bit_flip() {
        let s = sample();
        let full = encode(&s).to_vec();
        for byte in 0..full.len() {
            let mut raw = full.clone();
            raw[byte] ^= 0x01;
            assert!(
                decode(Bytes::from(raw)).is_err(),
                "bit flip at byte {byte} must be detected"
            );
        }
    }

    #[test]
    fn hostile_string_length_rejected_before_allocation() {
        // Hand-build a strata payload whose first value claims a string
        // of u32::MAX bytes. The decoder must reject the length outright
        // (CorruptSnapshot), not attempt a 4 GiB reservation.
        let mut payload = BytesMut::new();
        payload.put_u16(1); // key arity
        payload.put_u8(TAG_STR);
        payload.put_u32(u32::MAX); // hostile length
        payload.put_u64(0); // would-be group size
        payload.put_u32(0); // would-be row count
        let mut strata_buf = payload.freeze();
        let err = decode_strata(&mut strata_buf, 1).unwrap_err();
        match err {
            CongressError::CorruptSnapshot(msg) => {
                assert!(msg.contains("exceeds maximum"), "{msg}");
            }
            other => panic!("expected CorruptSnapshot, got {other:?}"),
        }
    }

    #[test]
    fn hostile_stratum_count_rejected_before_allocation() {
        let mut buf = Bytes::from_static(&[0u8; 16]);
        let err = decode_strata(&mut buf, u32::MAX as usize).unwrap_err();
        assert!(matches!(err, CongressError::CorruptSnapshot(_)), "{err:?}");
    }

    #[test]
    fn v1_snapshot_still_decodes() {
        // Fixture written by the v1 encoder (pre-checksum format), checked
        // in under tests/fixtures. Same draw parameters as `sample()`.
        let raw = std::fs::read(concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/tests/fixtures/snapshot_v1.bin"
        ))
        .expect("v1 fixture present");
        assert_eq!(&raw[4..6], &1u16.to_be_bytes(), "fixture must be v1");
        let decoded = decode(Bytes::from(raw)).unwrap();
        let expected = sample();
        assert_eq!(decoded.strategy_name(), expected.strategy_name());
        assert_eq!(decoded.strata_keys(), expected.strata_keys());
        assert_eq!(decoded.group_sizes(), expected.group_sizes());
        assert_eq!(decoded.sampled_rows(), expected.sampled_rows());
    }

    #[test]
    fn all_value_types_round_trip() {
        let mut buf = BytesMut::new();
        let vals = [
            Value::Int(-42),
            Value::from(1.5),
            Value::str("héllo"),
            Value::Date(12345),
        ];
        for v in &vals {
            put_value(&mut buf, v);
        }
        let mut bytes = buf.freeze();
        for v in &vals {
            assert_eq!(&get_value(&mut bytes).unwrap(), v);
        }
        assert!(!bytes.has_remaining());
    }
}
