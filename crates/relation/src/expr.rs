//! Scalar arithmetic expressions over numeric columns.
//!
//! Aggregates in the paper are taken over either a raw measured column
//! (`sum(l_quantity)`) or a derived expression such as TPC-D Q1's
//! `l_extendedprice * (1 - l_discount) * (1 + l_tax)`. §8 also proposes
//! allocating sample space by the variance of "some commonly-used
//! expression" — so expressions are first-class here.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::bitmap::Bitmap;
use crate::error::{RelationError, Result};
use crate::relation::Relation;
use crate::schema::ColumnId;

/// Binary arithmetic operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ArithOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/` (division by zero yields `f64` infinity/NaN, as in IEEE)
    Div,
}

impl ArithOp {
    fn apply(self, a: f64, b: f64) -> f64 {
        match self {
            ArithOp::Add => a + b,
            ArithOp::Sub => a - b,
            ArithOp::Mul => a * b,
            ArithOp::Div => a / b,
        }
    }
}

impl fmt::Display for ArithOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            ArithOp::Add => "+",
            ArithOp::Sub => "-",
            ArithOp::Mul => "*",
            ArithOp::Div => "/",
        })
    }
}

/// A numeric scalar expression evaluated per row to `f64`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Expr {
    /// Reference to a numeric column.
    Column(ColumnId),
    /// Floating literal.
    Literal(f64),
    /// Binary arithmetic.
    Binary {
        /// Operator.
        op: ArithOp,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
    },
}

impl Expr {
    /// Column reference.
    pub fn col(id: ColumnId) -> Expr {
        Expr::Column(id)
    }

    /// Literal.
    pub fn lit(v: f64) -> Expr {
        Expr::Literal(v)
    }

    fn binary(op: ArithOp, lhs: Expr, rhs: Expr) -> Expr {
        Expr::Binary {
            op,
            lhs: Box::new(lhs),
            rhs: Box::new(rhs),
        }
    }

    /// `self + rhs`
    #[allow(clippy::should_implement_trait)]
    pub fn add(self, rhs: Expr) -> Expr {
        Expr::binary(ArithOp::Add, self, rhs)
    }

    /// `self - rhs`
    #[allow(clippy::should_implement_trait)]
    pub fn sub(self, rhs: Expr) -> Expr {
        Expr::binary(ArithOp::Sub, self, rhs)
    }

    /// `self * rhs`
    #[allow(clippy::should_implement_trait)]
    pub fn mul(self, rhs: Expr) -> Expr {
        Expr::binary(ArithOp::Mul, self, rhs)
    }

    /// `self / rhs`
    #[allow(clippy::should_implement_trait)]
    pub fn div(self, rhs: Expr) -> Expr {
        Expr::binary(ArithOp::Div, self, rhs)
    }

    /// Evaluate on one row. Errors if a referenced column is non-numeric or
    /// out of range.
    pub fn eval_row(&self, rel: &Relation, row: usize) -> Result<f64> {
        match self {
            Expr::Column(id) => {
                let field = rel.schema().field(*id)?;
                rel.column(*id)
                    .value_f64(row)
                    .ok_or(RelationError::InvalidOperandType {
                        context: "arithmetic expression",
                        actual: field.data_type,
                    })
            }
            Expr::Literal(v) => Ok(*v),
            Expr::Binary { op, lhs, rhs } => {
                Ok(op.apply(lhs.eval_row(rel, row)?, rhs.eval_row(rel, row)?))
            }
        }
    }

    /// Evaluate over all rows into a dense vector.
    pub fn eval(&self, rel: &Relation) -> Result<Vec<f64>> {
        self.validate(rel)?;
        let n = rel.row_count();
        match self {
            // Fast paths for the two overwhelmingly common shapes.
            Expr::Column(id) => {
                let col = rel.column(*id);
                Ok((0..n)
                    .map(|r| col.value_f64(r).expect("validated numeric"))
                    .collect())
            }
            Expr::Literal(v) => Ok(vec![*v; n]),
            Expr::Binary { op, lhs, rhs } => {
                let mut a = lhs.eval(rel)?;
                let b = rhs.eval(rel)?;
                for (x, y) in a.iter_mut().zip(b) {
                    *x = op.apply(*x, y);
                }
                Ok(a)
            }
        }
    }

    /// Evaluate only the rows selected by `mask` into a dense vector;
    /// unselected slots are left at `0.0` and must not be consumed.
    ///
    /// For the selected rows this performs exactly the same per-row
    /// operations as [`Self::eval`], so the values at selected positions
    /// are bit-identical to a full evaluation — selective predicates just
    /// stop paying for the rows the query discards anyway.
    pub fn eval_masked(&self, rel: &Relation, mask: &Bitmap) -> Result<Vec<f64>> {
        self.validate(rel)?;
        debug_assert_eq!(mask.len(), rel.row_count());
        Ok(self.eval_masked_validated(rel, mask))
    }

    fn eval_masked_validated(&self, rel: &Relation, mask: &Bitmap) -> Vec<f64> {
        let n = rel.row_count();
        match self {
            Expr::Column(id) => {
                let col = rel.column(*id);
                let mut out = vec![0.0; n];
                for r in mask.ones() {
                    out[r] = col.value_f64(r).expect("validated numeric");
                }
                out
            }
            Expr::Literal(v) => {
                let mut out = vec![0.0; n];
                for r in mask.ones() {
                    out[r] = *v;
                }
                out
            }
            Expr::Binary { op, lhs, rhs } => {
                let mut a = lhs.eval_masked_validated(rel, mask);
                let b = rhs.eval_masked_validated(rel, mask);
                for r in mask.ones() {
                    a[r] = op.apply(a[r], b[r]);
                }
                a
            }
        }
    }

    /// Check that every referenced column exists and is numeric.
    pub fn validate(&self, rel: &Relation) -> Result<()> {
        match self {
            Expr::Column(id) => {
                let field = rel.schema().field(*id)?;
                if !field.data_type.is_numeric() {
                    return Err(RelationError::InvalidOperandType {
                        context: "arithmetic expression",
                        actual: field.data_type,
                    });
                }
                Ok(())
            }
            Expr::Literal(_) => Ok(()),
            Expr::Binary { lhs, rhs, .. } => {
                lhs.validate(rel)?;
                rhs.validate(rel)
            }
        }
    }

    /// All column ids referenced by the expression.
    pub fn referenced_columns(&self) -> Vec<ColumnId> {
        fn walk(e: &Expr, out: &mut Vec<ColumnId>) {
            match e {
                Expr::Column(id) => {
                    if !out.contains(id) {
                        out.push(*id);
                    }
                }
                Expr::Literal(_) => {}
                Expr::Binary { lhs, rhs, .. } => {
                    walk(lhs, out);
                    walk(rhs, out);
                }
            }
        }
        let mut out = Vec::new();
        walk(self, &mut out);
        out
    }
}

impl From<ColumnId> for Expr {
    fn from(id: ColumnId) -> Self {
        Expr::Column(id)
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Column(id) => write!(f, "{id}"),
            Expr::Literal(v) => write!(f, "{v}"),
            Expr::Binary { op, lhs, rhs } => write!(f, "({lhs} {op} {rhs})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datatype::DataType;
    use crate::relation::RelationBuilder;
    use crate::value::Value;

    fn rel() -> Relation {
        let mut b = RelationBuilder::new()
            .column("price", DataType::Float)
            .column("disc", DataType::Float)
            .column("tax", DataType::Float)
            .column("name", DataType::Str);
        b.push_row(&[
            Value::from(100.0),
            Value::from(0.1),
            Value::from(0.05),
            Value::str("x"),
        ])
        .unwrap();
        b.push_row(&[
            Value::from(200.0),
            Value::from(0.0),
            Value::from(0.1),
            Value::str("y"),
        ])
        .unwrap();
        b.finish()
    }

    #[test]
    fn tpcd_q1_expression() {
        // price * (1 - disc) * (1 + tax)
        let r = rel();
        let e = Expr::col(ColumnId(0))
            .mul(Expr::lit(1.0).sub(Expr::col(ColumnId(1))))
            .mul(Expr::lit(1.0).add(Expr::col(ColumnId(2))));
        let v = e.eval(&r).unwrap();
        assert!((v[0] - 100.0 * 0.9 * 1.05).abs() < 1e-9);
        assert!((v[1] - 200.0 * 1.0 * 1.1).abs() < 1e-9);
    }

    #[test]
    fn row_and_vector_agree() {
        let r = rel();
        let e = Expr::col(ColumnId(0))
            .div(Expr::lit(2.0))
            .add(Expr::lit(1.0));
        let v = e.eval(&r).unwrap();
        for (i, &vi) in v.iter().enumerate() {
            assert_eq!(vi, e.eval_row(&r, i).unwrap());
        }
    }

    #[test]
    fn masked_eval_matches_full_on_selected_rows() {
        use crate::bitmap::Bitmap;
        let r = rel();
        let e = Expr::col(ColumnId(0))
            .mul(Expr::lit(1.0).sub(Expr::col(ColumnId(1))))
            .mul(Expr::lit(1.0).add(Expr::col(ColumnId(2))));
        let full = e.eval(&r).unwrap();
        let mask = Bitmap::from_fn(r.row_count(), |i| i == 1);
        let masked = e.eval_masked(&r, &mask).unwrap();
        assert_eq!(masked[1], full[1]); // bit-identical where selected
        assert_eq!(masked[0], 0.0); // unselected slots untouched
                                    // Validation still applies to masked evaluation.
        assert!(Expr::col(ColumnId(3)).eval_masked(&r, &mask).is_err());
    }

    #[test]
    fn non_numeric_column_rejected() {
        let r = rel();
        let e = Expr::col(ColumnId(3));
        assert!(matches!(
            e.eval(&r),
            Err(RelationError::InvalidOperandType { .. })
        ));
        let e2 = Expr::lit(1.0).add(Expr::col(ColumnId(3)));
        assert!(e2.validate(&r).is_err());
    }

    #[test]
    fn unknown_column_rejected() {
        let r = rel();
        assert!(Expr::col(ColumnId(99)).validate(&r).is_err());
    }

    #[test]
    fn referenced_columns_deduped() {
        let e = Expr::col(ColumnId(1))
            .add(Expr::col(ColumnId(0)))
            .mul(Expr::col(ColumnId(1)));
        assert_eq!(e.referenced_columns(), vec![ColumnId(1), ColumnId(0)]);
    }

    #[test]
    fn division_follows_ieee() {
        let r = rel();
        let e = Expr::lit(1.0).div(Expr::lit(0.0));
        assert_eq!(e.eval(&r).unwrap()[0], f64::INFINITY);
    }

    #[test]
    fn display_is_parenthesized() {
        let e = Expr::col(ColumnId(0)).mul(Expr::lit(2.0));
        assert_eq!(e.to_string(), "(#0 * 2)");
    }
}
