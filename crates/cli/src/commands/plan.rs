//! `plan`: show the §4 allocation table for a budget.

use std::fmt::Write as _;

use congress::alloc::{AllocationStrategy, BasicCongress, Congress, House, Senate};
use congress::GroupCensus;

use crate::args::Args;
use crate::data::load;
use crate::{err, Result};

/// Compute and print per-group targets for all four strategies (the
/// Figure-5 table for the user's own data).
pub fn plan(args: &Args) -> Result<String> {
    let source = load(args)?;
    let space: f64 = args.get_parsed("space", 0.0f64)?;
    if space <= 0.0 {
        return Err("plan requires --space <tuples>".into());
    }
    let top = args.get_parsed("top", 20usize)?;
    let census = GroupCensus::build(&source.relation, &source.grouping).map_err(err)?;

    let strategies: Vec<(&str, Box<dyn AllocationStrategy>)> = vec![
        ("House", Box::new(House)),
        ("Senate", Box::new(Senate)),
        ("Basic", Box::new(BasicCongress)),
        ("Congress", Box::new(Congress)),
    ];
    let allocations: Vec<_> = strategies
        .iter()
        .map(|(_, s)| s.allocate(&census, space).map_err(err))
        .collect::<Result<_>>()?;

    let mut out = String::new();
    let _ = writeln!(
        out,
        "allocation plan for `{}`: {} groups, budget {space} tuples",
        source.name,
        census.group_count()
    );
    let _ = writeln!(
        out,
        "{:<28} {:>10} {:>9} {:>9} {:>9} {:>9}",
        "group", "rows", "House", "Senate", "Basic", "Congress"
    );

    // Print the largest groups first (where the strategies disagree most),
    // then the smallest.
    let mut order: Vec<usize> = (0..census.group_count()).collect();
    order.sort_by_key(|&g| std::cmp::Reverse(census.sizes()[g]));
    let shown: Vec<usize> = if order.len() <= top {
        order
    } else {
        let head = top / 2;
        let tail = top - head;
        let mut v: Vec<usize> = order[..head].to_vec();
        v.push(usize::MAX); // ellipsis marker
        v.extend_from_slice(&order[order.len() - tail..]);
        v
    };
    for g in shown {
        if g == usize::MAX {
            let _ = writeln!(out, "{:^28}", "⋮");
            continue;
        }
        let _ = writeln!(
            out,
            "{:<28} {:>10} {:>9.1} {:>9.1} {:>9.1} {:>9.1}",
            census.keys()[g].to_string(),
            census.sizes()[g],
            allocations[0].targets()[g],
            allocations[1].targets()[g],
            allocations[2].targets()[g],
            allocations[3].targets()[g],
        );
    }
    let _ = writeln!(
        out,
        "\nscale-down factor f: Basic {:.4}, Congress {:.4} \
         (every group gets ≥ f × its ideal share under every grouping)",
        allocations[2].scale_down_factor(),
        allocations[3].scale_down_factor()
    );
    let min_cong = allocations[3]
        .targets()
        .iter()
        .cloned()
        .fold(f64::INFINITY, f64::min);
    let min_house = allocations[0]
        .targets()
        .iter()
        .cloned()
        .fold(f64::INFINITY, f64::min);
    let _ = writeln!(
        out,
        "smallest per-group target: House {min_house:.2} vs Congress {min_cong:.2}"
    );
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::commands::test_support::args;

    #[test]
    fn plan_prints_allocation_table() {
        let out = plan(&args(&[
            "plan", "--demo", "--rows", "8000", "--groups", "27", "--skew", "1.2", "--space", "540",
        ]))
        .unwrap();
        assert!(out.contains("House"), "{out}");
        assert!(out.contains("scale-down factor"), "{out}");
        // Congress's floor beats House's under skew.
        assert!(out.contains("smallest per-group target"), "{out}");
    }

    #[test]
    fn plan_requires_space() {
        let e = plan(&args(&[
            "plan", "--demo", "--rows", "1000", "--groups", "8",
        ]))
        .unwrap_err();
        assert!(e.contains("--space"));
    }
}
