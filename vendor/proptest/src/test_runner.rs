//! Case runner and failure plumbing for the `proptest!` macro.

use crate::strategy::TestRng;
use rand::SeedableRng;

/// Per-test configuration.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases to run.
    pub cases: u32,
}

impl ProptestConfig {
    /// Run `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// A failed (or rejected) test case.
#[derive(Debug, Clone)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// Hard failure with a message.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError {
            message: message.into(),
        }
    }

    /// Alias kept for API parity with real proptest.
    pub fn reject(message: impl Into<String>) -> Self {
        Self::fail(message)
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for TestCaseError {}

/// Result of one test case body.
pub type TestCaseResult = Result<(), TestCaseError>;

fn fnv1a(s: &str) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01B3);
    }
    h
}

/// Drive `body` through `config.cases` seeded cases. Seeds are a pure
/// function of the test name and case index (plus the optional
/// `PROPTEST_SEED` env var), so failures are reproducible by re-running
/// the same binary.
pub fn run_cases<F>(config: &ProptestConfig, test_name: &str, mut body: F)
where
    F: FnMut(&mut TestRng) -> TestCaseResult,
{
    let base: u64 = std::env::var("PROPTEST_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0x5EED_CA5E);
    for case in 0..config.cases {
        let seed = base ^ fnv1a(test_name) ^ (case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let mut rng = TestRng::seed_from_u64(seed);
        if let Err(e) = body(&mut rng) {
            panic!(
                "proptest `{test_name}` failed at case {case}/{} (seed {seed:#x}): {e}\n\
                 (re-run with PROPTEST_SEED={base} to reproduce)",
                config.cases
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prelude::*;
    use crate::strategy::Strategy as _;

    #[test]
    fn seeds_are_stable_per_name_and_case() {
        let mut draws_a = Vec::new();
        run_cases(&ProptestConfig::with_cases(5), "stable", |rng| {
            draws_a.push((0u64..1_000_000).new_value(rng));
            Ok(())
        });
        let mut draws_b = Vec::new();
        run_cases(&ProptestConfig::with_cases(5), "stable", |rng| {
            draws_b.push((0u64..1_000_000).new_value(rng));
            Ok(())
        });
        assert_eq!(draws_a, draws_b);
        assert!(draws_a.windows(2).any(|w| w[0] != w[1]));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// The macro itself: multiple args, combinators, assertions.
        #[test]
        fn macro_end_to_end(
            xs in crate::collection::vec(0i64..100, 1..20),
            flag in crate::bool::weighted(0.5),
            opt in crate::option::of(1u32..5),
            label in prop_oneof![Just("p"), Just("q")],
        ) {
            prop_assert!(xs.iter().all(|&x| (0..100).contains(&x)));
            prop_assert!(label == "p" || label == "q");
            if let Some(v) = opt {
                prop_assert!((1..5).contains(&v));
            }
            let doubled = xs.iter().map(|x| x * 2).collect::<Vec<_>>();
            prop_assert_eq!(doubled.len(), xs.len());
            prop_assert_ne!(xs.len(), 0, "vec strategy must respect min size");
            let _ = flag;
        }

        /// flat_map + filter_map compose.
        #[test]
        fn combinators_compose(
            pair in (1usize..5).prop_flat_map(|n| crate::collection::vec(0usize..10, n))
                .prop_filter_map("nonempty", |v| if v.is_empty() { None } else { Some(v) }),
        ) {
            prop_assert!(!pair.is_empty());
        }
    }

    #[test]
    #[should_panic(expected = "proptest `always_fails` failed")]
    fn failures_panic_with_context() {
        run_cases(&ProptestConfig::with_cases(1), "always_fails", |_rng| {
            Err(TestCaseError::fail("boom"))
        });
    }
}
