//! The paper's running example (§1.1): per-state aggregates over a census
//! database where California has ~70× Wyoming's population.
//!
//! A marketing analyst asks for average income per (state, gender). With a
//! uniform sample, small states get almost no sample tuples and their
//! estimates are unusable; a congressional sample guarantees every
//! (state), (gender), and (state, gender) group a fair share of the
//! sample — whichever grouping the analyst ends up asking for.
//!
//! Run: `cargo run --release --example census_analysis`

use aqua::{Aqua, AquaConfig, SamplingStrategy};
use congress::compare_results;
use engine::{AggregateSpec, GroupByQuery};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use relation::{DataType, Expr, RelationBuilder, Value};

/// States with wildly different populations (shrunk from real scale).
const STATES: &[(&str, usize)] = &[
    ("CA", 70_000),
    ("TX", 52_000),
    ("NY", 38_000),
    ("CO", 10_000),
    ("MT", 2_100),
    ("WY", 1_000),
];

fn build_census_table() -> relation::Relation {
    let mut rng = StdRng::seed_from_u64(1848);
    let mut b = RelationBuilder::new()
        .column("st", DataType::Str)
        .column("gen", DataType::Str)
        .column("sal", DataType::Float);
    for (state, pop) in STATES {
        // Give each state its own income level so errors are easy to see.
        let base = 30_000.0 + (state.as_bytes()[0] as f64) * 400.0;
        for i in 0..*pop {
            let gen = if i % 2 == 0 { "m" } else { "f" };
            let noise: f64 = rng.gen_range(-0.4..0.4);
            b.push_row(&[
                Value::str(*state),
                Value::str(gen),
                Value::from(base * (1.0 + noise)),
            ])
            .expect("row matches schema");
        }
    }
    b.finish()
}

fn main() {
    let table = build_census_table();
    let grouping = table.schema().column_ids(&["st", "gen"]).unwrap();
    let sal = table.schema().column_id("sal").unwrap();
    let st = grouping[0];

    // The analyst's query: average income per state.
    let per_state = GroupByQuery::new(
        vec![st],
        vec![
            AggregateSpec::avg(Expr::col(sal), "avg_income"),
            AggregateSpec::count("population_est"),
        ],
    );

    println!(
        "census table: {} people, states CA..WY with {}x population spread\n",
        table.row_count(),
        STATES[0].1 / STATES.last().unwrap().1
    );

    for strategy in [SamplingStrategy::House, SamplingStrategy::Congress] {
        let aqua = Aqua::build(
            table.clone(),
            grouping.clone(),
            AquaConfig {
                space: 1_500, // <1% of the table
                strategy,
                seed: 7,
                ..AquaConfig::default()
            },
        )
        .expect("aqua builds");

        let exact = aqua.exact(&per_state).unwrap();
        let approx = aqua.answer(&per_state).unwrap();
        let report = compare_results(&exact, &approx.result, 0, 100.0);

        println!(
            "=== {} sample, {} tuples ===",
            strategy.name(),
            aqua.synopsis_rows()
        );
        println!("state | est avg income | exact | error %");
        for (key, exact_vals) in exact.iter() {
            let est = approx.result.get(key).map(|v| v[0]);
            match est {
                Some(est) => println!(
                    "{key} | {est:9.0} | {:9.0} | {:.2}%",
                    exact_vals[0],
                    (est - exact_vals[0]).abs() / exact_vals[0] * 100.0
                ),
                None => println!("{key} | MISSING FROM ANSWER | {:9.0} | –", exact_vals[0]),
            }
        }
        println!(
            "mean error {:.2}%, worst state {:.2}%\n",
            report.l1(),
            report.l_inf()
        );
    }

    // Congress also covers the *other* groupings with the same sample.
    let aqua = Aqua::build(
        table.clone(),
        grouping.clone(),
        AquaConfig {
            space: 1_500,
            strategy: SamplingStrategy::Congress,
            seed: 7,
            ..AquaConfig::default()
        },
    )
    .unwrap();
    for (label, cols) in [
        ("no grouping (national avg)", vec![]),
        ("by gender", vec![grouping[1]]),
        ("by state × gender", grouping.clone()),
    ] {
        let q = GroupByQuery::new(cols, vec![AggregateSpec::avg(Expr::col(sal), "avg_income")]);
        let report = compare_results(
            &aqua.exact(&q).unwrap(),
            &aqua.answer(&q).unwrap().result,
            0,
            100.0,
        );
        println!(
            "Congress sample, {label:28}: mean err {:.2}% over {} group(s)",
            report.l1(),
            report.group_count()
        );
    }
}
