//! `warehouse`: durable, crash-safe persistence of a warehouse — save a
//! synopsis-backed relation to a directory, and open/verify/repair it.

use std::fmt::Write as _;

use aqua::{
    AquaConfig, OpenReport, RecoveryPolicy, RelationStatus, SaveReport, VerifyReport, Warehouse,
};
use congress::FsStore;

use crate::args::Args;
use crate::data::{load, rewrite, strategy};
use crate::{err, Result};

/// Dispatch `warehouse <save|open|verify|repair>`.
///
/// * `save` — load the data source, build a congressional synopsis, and
///   persist table + synopsis + manifest to `--dir` (atomic commit).
/// * `open` — recover a saved warehouse, verifying every checksum;
///   corrupt synopses are quarantined and rebuilt (default) or served
///   degraded (`--degrade`).
/// * `verify` — read-only integrity check of every blob and WAL.
/// * `repair` — open with recovery, then re-save a fresh generation.
pub fn warehouse(args: &Args) -> Result<String> {
    let action = args
        .positional()
        .first()
        .map(String::as_str)
        .ok_or_else(|| "warehouse requires an action: save|open|verify|repair".to_string())?;
    let dir = args.require("dir")?;
    let store = FsStore::open(dir).map_err(err)?;
    let policy = if args.has("degrade") {
        RecoveryPolicy::Degrade
    } else {
        RecoveryPolicy::Rebuild
    };
    match action {
        "save" => save(args, &store),
        "open" => {
            let (w, report) = Warehouse::open(&store, policy).map_err(err)?;
            Ok(render_open(&w, &report))
        }
        "verify" => {
            let report = Warehouse::verify(&store).map_err(err)?;
            Ok(render_verify(&report))
        }
        "repair" => {
            let (w, open_report, save_report) = Warehouse::repair(&store, policy).map_err(err)?;
            let mut out = render_open(&w, &open_report);
            let _ = writeln!(
                out,
                "repaired: generation {} committed ({} files, {} bytes)",
                save_report.generation, save_report.files_written, save_report.bytes_written
            );
            Ok(out)
        }
        other => Err(format!(
            "unknown warehouse action `{other}` (save|open|verify|repair)"
        )),
    }
}

fn save(args: &Args, store: &FsStore) -> Result<String> {
    let source = load(args)?;
    let space: usize = args.get_parsed("space", 0usize)?;
    if space == 0 {
        return Err("warehouse save requires --space <tuples>".into());
    }
    let config = AquaConfig {
        space,
        strategy: strategy(args)?,
        rewrite: rewrite(args)?,
        seed: args.get_parsed("seed", 0u64)?,
        parallelism: args.get_parsed("parallelism", 0usize)?,
        ..AquaConfig::default()
    };
    let w = Warehouse::new();
    w.register(
        source.name.clone(),
        source.relation,
        source.grouping,
        config,
    )
    .map_err(err)?;
    let SaveReport {
        generation,
        files_written,
        bytes_written,
    } = w.save_all(store).map_err(err)?;
    Ok(format!(
        "saved relation `{}` to {} — generation {generation}, {files_written} files, \
         {bytes_written} bytes ({} synopsis tuples)\n",
        source.name,
        store.root().display(),
        w.total_synopsis_rows()
    ))
}

fn render_open(w: &Warehouse, report: &OpenReport) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "opened warehouse at generation {}: {} relation(s)",
        report.generation,
        report.relations.len()
    );
    for r in &report.relations {
        let status = match &r.status {
            RelationStatus::Healthy => "healthy".to_string(),
            RelationStatus::Rebuilt { quarantined } => match quarantined {
                Some(key) => format!("rebuilt (corrupt synopsis quarantined at {key})"),
                None => "rebuilt (no synopsis was saved)".to_string(),
            },
            RelationStatus::Degraded { reason } => {
                format!("DEGRADED — exact scans only ({reason})")
            }
            RelationStatus::Lost { reason } => format!("LOST — {reason}"),
        };
        let _ = writeln!(out, "  {}: {status}", r.name);
        if r.wal_records_replayed > 0 || r.wal_bytes_dropped > 0 {
            let _ = writeln!(
                out,
                "    wal: {} record(s) replayed, {} torn byte(s) dropped",
                r.wal_records_replayed, r.wal_bytes_dropped
            );
        }
    }
    let degraded = w.degraded_relations();
    if !degraded.is_empty() {
        let _ = writeln!(
            out,
            "warning: {} relation(s) degraded; run `warehouse repair` to rebuild",
            degraded.len()
        );
    }
    out
}

fn render_verify(report: &VerifyReport) -> String {
    let mut out = String::new();
    for line in &report.lines {
        let _ = writeln!(out, "{line}");
    }
    let _ = writeln!(
        out,
        "{}",
        if report.ok {
            "verify: OK"
        } else {
            "verify: FAILED — run `warehouse repair`"
        }
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::commands::test_support::args;

    fn tmp(name: &str) -> String {
        let dir = std::env::temp_dir()
            .join("congress_cli_warehouse")
            .join(name);
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir.to_str().unwrap().to_string()
    }

    fn save_demo(dir: &str) {
        warehouse(&args(&[
            "warehouse",
            "save",
            "--demo",
            "--rows",
            "3000",
            "--groups",
            "27",
            "--space",
            "300",
            "--dir",
            dir,
        ]))
        .unwrap();
    }

    #[test]
    fn save_verify_open_round_trip() {
        let dir = tmp("round_trip");
        save_demo(&dir);
        let out = warehouse(&args(&["warehouse", "verify", "--dir", &dir])).unwrap();
        assert!(out.contains("verify: OK"), "{out}");
        let out = warehouse(&args(&["warehouse", "open", "--dir", &dir])).unwrap();
        assert!(out.contains("lineitem: healthy"), "{out}");
    }

    #[test]
    fn corruption_is_detected_and_repaired() {
        let dir = tmp("repair");
        save_demo(&dir);
        // Flip a byte in the synopsis blob on disk.
        let snap = walk(&dir)
            .into_iter()
            .find(|p| p.contains("synopsis"))
            .unwrap();
        let mut bytes = std::fs::read(&snap).unwrap();
        bytes[20] ^= 0x08;
        std::fs::write(&snap, &bytes).unwrap();

        let out = warehouse(&args(&["warehouse", "verify", "--dir", &dir])).unwrap();
        assert!(out.contains("verify: FAILED"), "{out}");
        assert!(out.contains("CORRUPT"), "{out}");

        // Degraded open serves, loudly.
        let out = warehouse(&args(&["warehouse", "open", "--dir", &dir, "--degrade"])).unwrap();
        assert!(out.contains("DEGRADED"), "{out}");

        // Repair rebuilds and the store verifies clean again.
        let out = warehouse(&args(&["warehouse", "repair", "--dir", &dir])).unwrap();
        assert!(out.contains("rebuilt"), "{out}");
        assert!(out.contains("repaired: generation 2"), "{out}");
        let out = warehouse(&args(&["warehouse", "verify", "--dir", &dir])).unwrap();
        assert!(out.contains("verify: OK"), "{out}");
    }

    #[test]
    fn bad_invocations() {
        let dir = tmp("bad");
        let e = warehouse(&args(&["warehouse", "--dir", &dir])).unwrap_err();
        assert!(e.contains("save|open|verify|repair"), "{e}");
        let e = warehouse(&args(&["warehouse", "frob", "--dir", &dir])).unwrap_err();
        assert!(e.contains("unknown warehouse action"), "{e}");
        let e = warehouse(&args(&[
            "warehouse",
            "save",
            "--demo",
            "--rows",
            "100",
            "--groups",
            "8",
            "--dir",
            &dir,
        ]))
        .unwrap_err();
        assert!(e.contains("--space"), "{e}");
        let e = warehouse(&args(&["warehouse", "open", "--dir", &dir])).unwrap_err();
        assert!(e.contains("manifest"), "{e}");
        let e = warehouse(&args(&["warehouse", "open"])).unwrap_err();
        assert!(e.contains("--dir"), "{e}");
    }

    /// Recursively list files under `dir`.
    fn walk(dir: &str) -> Vec<String> {
        let mut out = Vec::new();
        let mut stack = vec![std::path::PathBuf::from(dir)];
        while let Some(d) = stack.pop() {
            for entry in std::fs::read_dir(&d).unwrap() {
                let path = entry.unwrap().path();
                if path.is_dir() {
                    stack.push(path);
                } else {
                    out.push(path.to_str().unwrap().to_string());
                }
            }
        }
        out
    }
}
