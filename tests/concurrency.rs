//! Concurrency: the middleware serves queries while insert batches land —
//! readers see consistent snapshots, writers never corrupt the synopsis.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use aqua::{Aqua, AquaConfig, SamplingStrategy};
use engine::{AggregateSpec, GroupByQuery};
use relation::{ColumnId, DataType, RelationBuilder, Value};

fn table(n: i64) -> relation::Relation {
    let mut b = RelationBuilder::new()
        .column("g", DataType::Str)
        .column("v", DataType::Float);
    for i in 0..n {
        let g = ["a", "b", "c"][(i % 3) as usize];
        b.push_row(&[Value::str(g), Value::from((i % 100) as f64)])
            .unwrap();
    }
    b.finish()
}

#[test]
fn concurrent_queries_and_inserts() {
    let aqua = Arc::new(
        Aqua::build(
            table(20_000),
            vec![ColumnId(0)],
            AquaConfig {
                space: 600,
                strategy: SamplingStrategy::Congress,
                seed: 3,
                ..AquaConfig::default()
            },
        )
        .unwrap(),
    );
    let stop = Arc::new(AtomicBool::new(false));
    let query = GroupByQuery::new(vec![ColumnId(0)], vec![AggregateSpec::count("c")]);

    let mut readers = Vec::new();
    for _ in 0..4 {
        let aqua = Arc::clone(&aqua);
        let stop = Arc::clone(&stop);
        let query = query.clone();
        readers.push(std::thread::spawn(move || {
            let mut answered = 0u64;
            while !stop.load(Ordering::Relaxed) {
                let ans = aqua.answer(&query).expect("query under concurrency");
                // Structural sanity on every answer: 3 or 4 groups (the
                // writer introduces group "d" part-way through), counts
                // positive.
                let gc = ans.result.group_count();
                assert!((3..=4).contains(&gc), "saw {gc} groups");
                for (_, vals) in ans.result.iter() {
                    assert!(vals[0] > 0.0);
                }
                answered += 1;
            }
            answered
        }));
    }

    // Writer: 40 insert batches, introducing a new group half-way.
    for batch in 0..40 {
        let g = if batch >= 20 { "d" } else { "a" };
        let rows: Vec<Vec<Value>> = (0..250)
            .map(|i| vec![Value::str(g), Value::from(i as f64)])
            .collect();
        aqua.insert_batch(&rows).expect("insert under concurrency");
    }
    // Let readers observe the final state, then stop them.
    let final_ans = aqua.answer(&query).unwrap();
    assert_eq!(final_ans.result.group_count(), 4);
    stop.store(true, Ordering::Relaxed);
    let total_answers: u64 = readers.into_iter().map(|h| h.join().unwrap()).sum();
    assert!(total_answers > 0, "readers must have made progress");
    assert_eq!(aqua.table_rows(), 20_000 + 40 * 250);
}

/// Readers keep answering while a writer repeatedly drives the bulk
/// *parallel* reconstruction path (plus insert batches between rebuilds).
/// Every answer must come from a complete synopsis — the rebuild swaps the
/// plan, input, and sample under the write lock, so a reader never sees a
/// torn mix of old and new strata.
#[test]
fn queries_during_parallel_rebuild() {
    let aqua = Arc::new(
        Aqua::build(
            table(20_000),
            vec![ColumnId(0)],
            AquaConfig {
                space: 600,
                strategy: SamplingStrategy::Congress,
                seed: 5,
                parallelism: 4,
                ..AquaConfig::default()
            },
        )
        .unwrap(),
    );
    let stop = Arc::new(AtomicBool::new(false));
    let query = GroupByQuery::new(vec![ColumnId(0)], vec![AggregateSpec::count("c")]);

    let mut readers = Vec::new();
    for _ in 0..4 {
        let aqua = Arc::clone(&aqua);
        let stop = Arc::clone(&stop);
        let query = query.clone();
        readers.push(std::thread::spawn(move || {
            let mut answered = 0u64;
            while !stop.load(Ordering::Relaxed) {
                let ans = aqua.answer(&query).expect("query during rebuild");
                // A torn read would surface as a group with a garbage
                // count or a partially registered stratum set.
                assert_eq!(ans.result.group_count(), 3, "strata set must be whole");
                let total: f64 = ans.result.iter().map(|(_, vals)| vals[0]).sum();
                assert!(total > 0.0, "counts must be positive");
                assert_eq!(ans.bounds.len(), 3, "bounds must cover every group");
                answered += 1;
            }
            answered
        }));
    }

    // Writer: parallel rebuilds interleaved with inserts into existing
    // groups (so the expected group count stays 3 throughout).
    for round in 0..12 {
        let g = ["a", "b", "c"][round % 3];
        let rows: Vec<Vec<Value>> = (0..200)
            .map(|i| vec![Value::str(g), Value::from(i as f64)])
            .collect();
        aqua.insert_batch(&rows).expect("insert between rebuilds");
        aqua.rebuild().expect("parallel rebuild under readers");
    }
    stop.store(true, Ordering::Relaxed);
    let total_answers: u64 = readers.into_iter().map(|h| h.join().unwrap()).sum();
    assert!(total_answers > 0, "readers must have made progress");
    assert_eq!(aqua.table_rows(), 20_000 + 12 * 200);
    // The final synopsis reflects the last rebuild, within budget.
    assert!(aqua.synopsis_rows() > 0);
}

#[test]
fn warehouse_shared_across_threads() {
    let w = Arc::new(aqua::Warehouse::new());
    w.register(
        "sales",
        table(5_000),
        vec![ColumnId(0)],
        AquaConfig {
            space: 300,
            strategy: SamplingStrategy::Senate,
            seed: 8,
            ..AquaConfig::default()
        },
    )
    .unwrap();
    let query = GroupByQuery::new(vec![ColumnId(0)], vec![AggregateSpec::count("c")]);
    let handles: Vec<_> = (0..6)
        .map(|i| {
            let w = Arc::clone(&w);
            let query = query.clone();
            std::thread::spawn(move || {
                if i % 2 == 0 {
                    let ans = w.answer("sales", &query).unwrap();
                    assert_eq!(ans.result.group_count(), 3);
                } else {
                    w.insert("sales", &[vec![Value::str("a"), Value::from(1.0)]])
                        .unwrap();
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    assert_eq!(w.system("sales").unwrap().table_rows(), 5_003);
}
