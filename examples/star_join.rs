//! Join synopses (§2): answering multi-table group-by queries from a
//! congressional sample over a pre-joined star schema.
//!
//! The paper handles multi-table warehouses by sampling the *result of the
//! foreign-key join* ("join synopses"), so that every join query becomes a
//! single-relation query on the synopsis. Here: `lineitem ⋈ orders`,
//! grouped by the orders-side `o_orderpriority` crossed with the
//! lineitem-side `l_returnflag` — a query no single-table sample could
//! answer.
//!
//! Run: `cargo run --release --example star_join`

use aqua::{Aqua, AquaConfig, SamplingStrategy};
use congress::compare_results;
use engine::{AggregateSpec, GroupByQuery};
use relation::Expr;
use tpcd::{GeneratorConfig, StarConfig, StarSchema};

fn main() {
    let star = StarSchema::generate(StarConfig {
        lineitem: GeneratorConfig {
            table_size: 200_000,
            num_groups: 27,
            group_skew: 1.2,
            agg_skew: 0.86,
            seed: 8,
        },
        orders: 20_000,
        priority_skew: 1.2, // URGENT orders are common, LOW is rare
    });

    println!(
        "star schema: {} lineitems ⋈ {} orders",
        star.lineitem.row_count(),
        star.orders.row_count()
    );

    // Materialize the join-synopsis base relation once (at synopsis-build
    // time, as Aqua does) ...
    let joined = star.join_relation().expect("FK integrity holds");
    let priority = joined.schema().column_id("o_orderpriority").unwrap();
    let returnflag = joined.schema().column_id("l_returnflag").unwrap();
    let revenue = joined.schema().column_id("l_extendedprice").unwrap();

    // ... and declare the cross-table grouping columns as the sample's G.
    let grouping = vec![priority, returnflag];
    let aqua = Aqua::build(
        joined,
        grouping.clone(),
        AquaConfig {
            space: 6_000, // 3% of the join
            strategy: SamplingStrategy::Congress,
            seed: 21,
            ..AquaConfig::default()
        },
    )
    .expect("synopsis over the join");

    // The multi-table query: revenue per (order priority, return flag).
    let q = GroupByQuery::new(
        grouping,
        vec![
            AggregateSpec::sum(Expr::col(revenue), "revenue"),
            AggregateSpec::count("lineitems"),
        ],
    );
    let exact = aqua.exact(&q).unwrap();
    let approx = aqua.answer(&q).unwrap();
    let report = compare_results(&exact, &approx.result, 0, 100.0);

    println!("\napproximate revenue by (priority, returnflag):\n{approx}");
    println!(
        "vs exact: mean error {:.2}%, worst group {:.2}%, missing groups {}",
        report.l1(),
        report.l_inf(),
        report.missing_groups
    );

    // Roll up to priority alone — same synopsis, coarser grouping.
    let rollup = GroupByQuery::new(
        vec![priority],
        vec![AggregateSpec::avg(Expr::col(revenue), "avg_revenue")],
    );
    let report = compare_results(
        &aqua.exact(&rollup).unwrap(),
        &aqua.answer(&rollup).unwrap().result,
        0,
        100.0,
    );
    println!(
        "roll-up to priority alone: mean error {:.2}% over {} priorities",
        report.l1(),
        report.group_count()
    );
}
