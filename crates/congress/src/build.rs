//! §6 sample construction: reservoirs, one-pass incremental maintainers,
//! and the census-based (cube) construction routes.
//!
//! The paper gives two ways to materialize a congressional sample:
//!
//! 1. **Cube-based** (§4.6 / §6): compute the census (the count cube at
//!    the finest grouping), run an allocation strategy, then draw the
//!    per-group sample sizes exactly — [`construct_with_census`] — or in
//!    one shared Bernoulli pass over the tuples using the Eq-8 per-tuple
//!    probabilities — [`construct_congress_shared`].
//! 2. **One-pass incremental** (§6): stream the tuples once, maintaining
//!    per-group reservoirs plus the exact group counts, and snapshot a
//!    valid sample at any prefix of the stream. The four maintainers
//!    ([`HouseMaintainer`], [`SenateMaintainer`], [`BasicCongressMaintainer`]
//!    per Theorem 6.1, and [`CongressMaintainer`] per the Eq-8 scheme)
//!    share the [`IncrementalMaintainer`] trait; [`construct_one_pass`]
//!    drives one of them over a whole relation.
//!
//! Every maintainer snapshot reports **exact** group sizes (counts are
//! maintained outside the reservoirs), so scale factors computed from a
//! snapshot are unbiased even when the reservoirs subsample heavily.

use std::collections::HashMap;

use rand::Rng;

use crate::alloc::{per_tuple_probabilities, AllocationStrategy, BasicCongress, Congress};
use crate::census::GroupCensus;
use crate::error::{CongressError, Result};
use crate::sample::CongressionalSample;
use relation::{ColumnId, GroupKey, Relation};

// ---------------------------------------------------------------------------
// Reservoir
// ---------------------------------------------------------------------------

/// A fixed-capacity uniform reservoir (Vitter's algorithm R): after `n`
/// offers it holds a uniformly random `min(n, capacity)`-subset of the
/// offered items.
#[derive(Debug, Clone)]
pub struct Reservoir<T> {
    capacity: usize,
    seen: u64,
    items: Vec<T>,
}

impl<T> Reservoir<T> {
    /// A new, empty reservoir holding at most `capacity` items.
    pub fn new(capacity: usize) -> Reservoir<T> {
        Reservoir {
            capacity,
            seen: 0,
            items: Vec::with_capacity(capacity.min(1024)),
        }
    }

    /// Offer one item from the stream.
    pub fn offer<R: Rng + ?Sized>(&mut self, item: T, rng: &mut R) {
        self.seen += 1;
        if self.items.len() < self.capacity {
            self.items.push(item);
        } else if self.capacity > 0 {
            // Replace with probability capacity / seen.
            let j = rng.gen_range(0..self.seen);
            if (j as usize) < self.capacity {
                self.items[j as usize] = item;
            }
        }
    }

    /// Number of items currently held (`min(seen, capacity)`).
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the reservoir holds nothing.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// How many items have been offered in total.
    pub fn seen(&self) -> u64 {
        self.seen
    }

    /// Maximum number of items retained.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The retained items (unordered).
    pub fn items(&self) -> &[T] {
        &self.items
    }

    /// Lower the capacity, discarding uniformly at random down to the new
    /// bound. A uniform subset of a uniform subset is uniform, so the
    /// reservoir invariant is preserved and offers may continue.
    pub fn shrink<R: Rng + ?Sized>(&mut self, new_capacity: usize, rng: &mut R) {
        while self.items.len() > new_capacity {
            let i = rng.gen_range(0..self.items.len());
            self.items.swap_remove(i);
        }
        self.capacity = new_capacity;
    }
}

impl<T: Clone> Reservoir<T> {
    /// A uniformly random `min(k, len)`-subset of the held items.
    fn subsample<R: Rng + ?Sized>(&self, k: usize, rng: &mut R) -> Vec<T> {
        let k = k.min(self.items.len());
        // Partial Fisher–Yates over indices; the reservoir itself is not
        // disturbed (snapshots must leave the maintainer resumable).
        let mut idx: Vec<usize> = (0..self.items.len()).collect();
        for i in 0..k {
            let j = rng.gen_range(i..idx.len());
            idx.swap(i, j);
        }
        idx[..k].iter().map(|&i| self.items[i].clone()).collect()
    }
}

// ---------------------------------------------------------------------------
// Group directory (first-seen ordering, exact counts)
// ---------------------------------------------------------------------------

/// Exact per-group counts with stable first-seen ordering — the `n_g`
/// counters every maintainer keeps alongside its reservoirs.
#[derive(Debug, Clone, Default)]
struct GroupDirectory {
    index: HashMap<GroupKey, usize>,
    keys: Vec<GroupKey>,
    counts: Vec<u64>,
}

impl GroupDirectory {
    /// Record one tuple of `key`; returns its group index and whether the
    /// group is new.
    fn observe(&mut self, key: &GroupKey) -> (usize, bool) {
        if let Some(&g) = self.index.get(key) {
            self.counts[g] += 1;
            (g, false)
        } else {
            let g = self.keys.len();
            self.index.insert(key.clone(), g);
            self.keys.push(key.clone());
            self.counts.push(1);
            (g, true)
        }
    }

    fn len(&self) -> usize {
        self.keys.len()
    }
}

// ---------------------------------------------------------------------------
// The maintainer trait
// ---------------------------------------------------------------------------

/// A one-pass sample maintainer (§6): consumes an insert stream and can
/// produce a valid [`CongressionalSample`] snapshot at any prefix, without
/// disturbing its own state (snapshots are resumable).
pub trait IncrementalMaintainer {
    /// Consume one tuple: its row id and finest-grouping key.
    fn insert<R: Rng + ?Sized>(&mut self, row: usize, key: &GroupKey, rng: &mut R);

    /// Total tuples inserted so far.
    fn seen(&self) -> u64;

    /// Number of row slots currently held across the reservoirs.
    fn sample_len(&self) -> usize;

    /// Materialize the current sample. Group sizes in the snapshot are the
    /// exact stream counts; the grouping columns are left empty (callers
    /// that know them use [`CongressionalSample::set_grouping_columns`]).
    fn snapshot<R: Rng + ?Sized>(&self, rng: &mut R) -> Result<CongressionalSample>;
}

/// An empty maintainer yields an empty (zero-strata) snapshot: a
/// zero-length stream prefix is still a valid snapshot point for a
/// resumable maintainer.
fn empty_snapshot(name: &str) -> Result<CongressionalSample> {
    CongressionalSample::from_parts(Vec::new(), Vec::new(), Vec::new(), Vec::new(), name)
}

// ---------------------------------------------------------------------------
// House
// ---------------------------------------------------------------------------

/// One-pass House (uniform) maintainer: a single global reservoir of the
/// whole stream, plus exact group counts so snapshots expose every
/// observed group (possibly with zero sampled tuples).
#[derive(Debug, Clone)]
pub struct HouseMaintainer {
    dir: GroupDirectory,
    reservoir: Reservoir<(usize, usize)>,
    seen: u64,
}

impl HouseMaintainer {
    /// A maintainer targeting `space` sampled tuples.
    pub fn new(space: usize) -> HouseMaintainer {
        HouseMaintainer {
            dir: GroupDirectory::default(),
            reservoir: Reservoir::new(space),
            seen: 0,
        }
    }
}

impl IncrementalMaintainer for HouseMaintainer {
    fn insert<R: Rng + ?Sized>(&mut self, row: usize, key: &GroupKey, rng: &mut R) {
        let (g, _) = self.dir.observe(key);
        self.reservoir.offer((row, g), rng);
        self.seen += 1;
    }

    fn seen(&self) -> u64 {
        self.seen
    }

    fn sample_len(&self) -> usize {
        self.reservoir.len()
    }

    fn snapshot<R: Rng + ?Sized>(&self, _rng: &mut R) -> Result<CongressionalSample> {
        if self.dir.len() == 0 {
            return empty_snapshot("House");
        }
        let mut rows: Vec<Vec<usize>> = vec![Vec::new(); self.dir.len()];
        for &(row, g) in self.reservoir.items() {
            rows[g].push(row);
        }
        CongressionalSample::from_parts(
            Vec::new(),
            self.dir.keys.clone(),
            self.dir.counts.clone(),
            rows,
            "House",
        )
    }
}

// ---------------------------------------------------------------------------
// Senate
// ---------------------------------------------------------------------------

/// One-pass Senate maintainer: one reservoir per group, each capped at the
/// current per-group quota `max(1, ⌊X/m⌋)`. When a new group appears the
/// quota drops and existing reservoirs shrink by uniform discard, so every
/// group's sample stays a uniform subset of its tuples.
#[derive(Debug, Clone)]
pub struct SenateMaintainer {
    space: usize,
    dir: GroupDirectory,
    reservoirs: Vec<Reservoir<usize>>,
    seen: u64,
}

impl SenateMaintainer {
    /// A maintainer targeting `space` sampled tuples across all groups.
    pub fn new(space: usize) -> SenateMaintainer {
        SenateMaintainer {
            space,
            dir: GroupDirectory::default(),
            reservoirs: Vec::new(),
            seen: 0,
        }
    }

    fn quota(&self) -> usize {
        (self.space / self.dir.len().max(1)).max(1)
    }
}

impl IncrementalMaintainer for SenateMaintainer {
    fn insert<R: Rng + ?Sized>(&mut self, row: usize, key: &GroupKey, rng: &mut R) {
        let (g, new) = self.dir.observe(key);
        if new {
            let quota = self.quota();
            for r in &mut self.reservoirs {
                r.shrink(quota, rng);
            }
            self.reservoirs.push(Reservoir::new(quota));
        }
        self.reservoirs[g].offer(row, rng);
        self.seen += 1;
    }

    fn seen(&self) -> u64 {
        self.seen
    }

    fn sample_len(&self) -> usize {
        self.reservoirs.iter().map(Reservoir::len).sum()
    }

    fn snapshot<R: Rng + ?Sized>(&self, _rng: &mut R) -> Result<CongressionalSample> {
        if self.dir.len() == 0 {
            return empty_snapshot("Senate");
        }
        let rows: Vec<Vec<usize>> = self.reservoirs.iter().map(|r| r.items().to_vec()).collect();
        CongressionalSample::from_parts(
            Vec::new(),
            self.dir.keys.clone(),
            self.dir.counts.clone(),
            rows,
            "Senate",
        )
    }
}

// ---------------------------------------------------------------------------
// Basic Congress
// ---------------------------------------------------------------------------

/// One-pass Basic Congress maintainer (Theorem 6.1): the union of a global
/// `y`-reservoir (the House part) and per-group reservoirs of quota
/// `⌈y/m⌉` (the Senate part). Snapshots rerun the Basic Congress
/// allocation over the exact maintained counts and subsample the union
/// pool down to the integer targets, so the published sample respects the
/// budget while every observed group keeps at least one tuple.
#[derive(Debug, Clone)]
pub struct BasicCongressMaintainer {
    y: usize,
    dir: GroupDirectory,
    global: Reservoir<(usize, usize)>,
    per_group: Vec<Reservoir<usize>>,
    seen: u64,
}

impl BasicCongressMaintainer {
    /// A maintainer with House/Senate halves of size `y` each.
    pub fn new(y: usize) -> BasicCongressMaintainer {
        BasicCongressMaintainer {
            y,
            dir: GroupDirectory::default(),
            global: Reservoir::new(y),
            per_group: Vec::new(),
            seen: 0,
        }
    }

    fn quota(&self) -> usize {
        self.y.div_ceil(self.dir.len().max(1)).max(1)
    }
}

impl IncrementalMaintainer for BasicCongressMaintainer {
    fn insert<R: Rng + ?Sized>(&mut self, row: usize, key: &GroupKey, rng: &mut R) {
        let (g, new) = self.dir.observe(key);
        if new {
            let quota = self.quota();
            for r in &mut self.per_group {
                r.shrink(quota, rng);
            }
            self.per_group.push(Reservoir::new(quota));
        }
        self.global.offer((row, g), rng);
        self.per_group[g].offer(row, rng);
        self.seen += 1;
    }

    fn seen(&self) -> u64 {
        self.seen
    }

    fn sample_len(&self) -> usize {
        self.global.len() + self.per_group.iter().map(Reservoir::len).sum::<usize>()
    }

    fn snapshot<R: Rng + ?Sized>(&self, rng: &mut R) -> Result<CongressionalSample> {
        if self.dir.len() == 0 {
            return empty_snapshot("BasicCongress");
        }
        let mut pools: Vec<Vec<usize>> =
            self.per_group.iter().map(|r| r.items().to_vec()).collect();
        for &(row, g) in self.global.items() {
            pools[g].push(row);
        }
        for group in &mut pools {
            group.sort_unstable();
            group.dedup();
        }
        // The union pool holds up to 2y tuples; the published sample must
        // respect the budget. Rerun the Basic Congress allocation over the
        // exact maintained counts and subsample each group's pool to its
        // integer target (a uniform subset of a uniform pool stays uniform
        // within the group). Every observed group keeps at least one tuple.
        let cols: Vec<ColumnId> = (0..self.dir.keys[0].len()).map(ColumnId).collect();
        let census =
            GroupCensus::from_counts(cols, self.dir.keys.clone(), self.dir.counts.clone())?;
        let alloc = BasicCongress.allocate(&census, self.y as f64)?;
        let targets = alloc.integer_counts(census.sizes());
        let rows: Vec<Vec<usize>> = pools
            .iter()
            .zip(&targets)
            .map(|(pool, &t)| crate::sample::sample_without_replacement(pool, t.max(1), rng))
            .collect();
        CongressionalSample::from_parts(
            Vec::new(),
            self.dir.keys.clone(),
            self.dir.counts.clone(),
            rows,
            "BasicCongress",
        )
    }
}

// ---------------------------------------------------------------------------
// Congress
// ---------------------------------------------------------------------------

/// One-pass Congress maintainer (the Eq-8 scheme): exact counts for every
/// finest group plus a generously-capped per-group reservoir. A snapshot
/// rebuilds the count cube from the exact counts, runs the Eq-5 Congress
/// allocation, and subsamples each reservoir down to its integer target —
/// so snapshots track the census-based allocation exactly wherever the
/// reservoirs hold enough tuples.
#[derive(Debug, Clone)]
pub struct CongressMaintainer {
    attrs: usize,
    budget: f64,
    cap: usize,
    dir: GroupDirectory,
    reservoirs: Vec<Reservoir<usize>>,
    seen: u64,
}

impl CongressMaintainer {
    /// A maintainer over `attrs` grouping attributes with tuple budget `y`.
    pub fn new(attrs: usize, y: f64) -> CongressMaintainer {
        let cap = (y.max(1.0).ceil() as usize).max(1);
        CongressMaintainer {
            attrs,
            budget: y,
            cap,
            dir: GroupDirectory::default(),
            reservoirs: Vec::new(),
            seen: 0,
        }
    }

    /// Snapshot against an explicit budget (defaults to the construction
    /// budget when `None`): recompute the Congress allocation from the
    /// exact maintained counts and subsample the reservoirs to it.
    pub fn snapshot_with_budget<R: Rng + ?Sized>(
        &self,
        budget: Option<f64>,
        rng: &mut R,
    ) -> Result<CongressionalSample> {
        if self.dir.len() == 0 {
            return empty_snapshot("Congress");
        }
        let budget = budget.unwrap_or(self.budget);
        // Placeholder column ids: the maintainer never saw the schema, only
        // the keys. Callers attach real columns via set_grouping_columns.
        let cols: Vec<ColumnId> = (0..self.attrs).map(ColumnId).collect();
        let census =
            GroupCensus::from_counts(cols, self.dir.keys.clone(), self.dir.counts.clone())?;
        let alloc = Congress.allocate(&census, budget)?;
        let targets = alloc.integer_counts(census.sizes());
        let rows: Vec<Vec<usize>> = self
            .reservoirs
            .iter()
            .zip(&targets)
            .map(|(r, &t)| r.subsample(t, rng))
            .collect();
        CongressionalSample::from_parts(
            Vec::new(),
            self.dir.keys.clone(),
            self.dir.counts.clone(),
            rows,
            "Congress",
        )
    }
}

impl IncrementalMaintainer for CongressMaintainer {
    fn insert<R: Rng + ?Sized>(&mut self, row: usize, key: &GroupKey, rng: &mut R) {
        let (g, new) = self.dir.observe(key);
        if new {
            self.reservoirs.push(Reservoir::new(self.cap));
        }
        self.reservoirs[g].offer(row, rng);
        self.seen += 1;
    }

    fn seen(&self) -> u64 {
        self.seen
    }

    fn sample_len(&self) -> usize {
        self.reservoirs.iter().map(Reservoir::len).sum()
    }

    fn snapshot<R: Rng + ?Sized>(&self, rng: &mut R) -> Result<CongressionalSample> {
        self.snapshot_with_budget(None, rng)
    }
}

// ---------------------------------------------------------------------------
// Driver functions
// ---------------------------------------------------------------------------

/// Which one-pass maintainer [`construct_one_pass`] should drive.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OnePassStrategy {
    /// Uniform sampling ([`HouseMaintainer`]).
    House,
    /// Equal per-group allocation ([`SenateMaintainer`]).
    Senate,
    /// House ∪ Senate union ([`BasicCongressMaintainer`]).
    BasicCongress,
    /// Full Eq-5/Eq-8 Congress ([`CongressMaintainer`]).
    Congress,
}

/// Build a sample in a single pass over `rel` without a precomputed
/// census, streaming every row through the chosen maintainer.
pub fn construct_one_pass<R: Rng + ?Sized>(
    rel: &Relation,
    cols: &[ColumnId],
    strategy: OnePassStrategy,
    space: usize,
    rng: &mut R,
) -> Result<CongressionalSample> {
    if rel.row_count() == 0 {
        return Err(CongressError::EmptyRelation);
    }
    fn drive<M: IncrementalMaintainer, R: Rng + ?Sized>(
        mut m: M,
        rel: &Relation,
        cols: &[ColumnId],
        rng: &mut R,
    ) -> Result<CongressionalSample> {
        for row in 0..rel.row_count() {
            let key = GroupKey::from_row(rel, row, cols);
            m.insert(row, &key, rng);
        }
        m.snapshot(rng)
    }
    let mut sample = match strategy {
        OnePassStrategy::House => drive(HouseMaintainer::new(space), rel, cols, rng)?,
        OnePassStrategy::Senate => drive(SenateMaintainer::new(space), rel, cols, rng)?,
        OnePassStrategy::BasicCongress => {
            drive(BasicCongressMaintainer::new(space), rel, cols, rng)?
        }
        OnePassStrategy::Congress => drive(
            CongressMaintainer::new(cols.len(), space as f64),
            rel,
            cols,
            rng,
        )?,
    };
    sample.set_grouping_columns(cols.to_vec());
    Ok(sample)
}

/// Cube-based construction (§4.6): allocate per-group sample sizes from a
/// precomputed census and draw them exactly.
pub fn construct_with_census<S: AllocationStrategy, R: Rng>(
    rel: &Relation,
    census: &GroupCensus,
    strategy: &S,
    space: f64,
    rng: &mut R,
) -> Result<CongressionalSample> {
    CongressionalSample::draw(rel, census, strategy, space, rng)
}

/// The §4.6 "shared lattice walk" Congress variant: compute every tuple's
/// Eq-8 inclusion probability (one walk over the grouping lattice, shared
/// by all tuples of a finest group) and take a single Bernoulli pass over
/// the relation.
pub fn construct_congress_shared<R: Rng + ?Sized>(
    rel: &Relation,
    census: &GroupCensus,
    space: f64,
    rng: &mut R,
) -> Result<CongressionalSample> {
    let probs = per_tuple_probabilities(census, space)?;
    let group_of_row = census.group_of_row().ok_or_else(|| {
        CongressError::CensusMismatch("census was built from counts, not rows".into())
    })?;
    if group_of_row.len() != rel.row_count() {
        return Err(CongressError::CensusMismatch(format!(
            "census covers {} rows, relation has {}",
            group_of_row.len(),
            rel.row_count()
        )));
    }
    let mut rows: Vec<Vec<usize>> = vec![Vec::new(); census.group_count()];
    for (r, &g) in group_of_row.iter().enumerate() {
        if rng.gen_bool(probs[g as usize].min(1.0)) {
            rows[g as usize].push(r);
        }
    }
    CongressionalSample::from_parts(
        census.grouping_columns().to_vec(),
        census.keys().to_vec(),
        census.sizes().to_vec(),
        rows,
        "Congress",
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use relation::Value;

    fn key(g: i64) -> GroupKey {
        GroupKey::new(vec![Value::Int(g)])
    }

    #[test]
    fn reservoir_holds_min_seen_capacity() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut r = Reservoir::new(10);
        for i in 0..5usize {
            r.offer(i, &mut rng);
        }
        assert_eq!(r.len(), 5);
        for i in 5..100usize {
            r.offer(i, &mut rng);
        }
        assert_eq!(r.len(), 10);
        assert_eq!(r.seen(), 100);
        let mut items = r.items().to_vec();
        items.sort_unstable();
        items.dedup();
        assert_eq!(items.len(), 10);
    }

    #[test]
    fn reservoir_is_roughly_uniform() {
        // Each of 100 items should land in a 10-slot reservoir ~10% of the
        // time across trials.
        let mut hits = vec![0u32; 100];
        for seed in 0..400 {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut r = Reservoir::new(10);
            for i in 0..100usize {
                r.offer(i, &mut rng);
            }
            for &i in r.items() {
                hits[i] += 1;
            }
        }
        for (i, &h) in hits.iter().enumerate() {
            assert!((10..=90).contains(&h), "item {i} selected {h}/400 times");
        }
    }

    #[test]
    fn reservoir_shrink_preserves_subset() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut r = Reservoir::new(20);
        for i in 0..50usize {
            r.offer(i, &mut rng);
        }
        r.shrink(5, &mut rng);
        assert_eq!(r.len(), 5);
        assert_eq!(r.capacity(), 5);
        for i in 50..200usize {
            r.offer(i, &mut rng);
        }
        assert_eq!(r.len(), 5);
    }

    #[test]
    fn house_snapshot_covers_all_groups_with_exact_sizes() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut m = HouseMaintainer::new(3);
        for row in 0..30usize {
            m.insert(row, &key((row % 5) as i64), &mut rng);
        }
        let s = m.snapshot(&mut rng).unwrap();
        assert_eq!(s.stratum_count(), 5);
        assert_eq!(s.group_sizes(), &[6, 6, 6, 6, 6]);
        assert_eq!(s.total_sampled(), 3);
    }

    #[test]
    fn senate_quota_shrinks_as_groups_arrive() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut m = SenateMaintainer::new(12);
        // 6 groups → quota 2 each.
        for row in 0..600usize {
            m.insert(row, &key((row % 6) as i64), &mut rng);
        }
        let s = m.snapshot(&mut rng).unwrap();
        for rows in s.sampled_rows() {
            assert_eq!(rows.len(), 2);
        }
    }

    #[test]
    fn congress_snapshot_total_respects_budget() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut m = CongressMaintainer::new(1, 50.0);
        for row in 0..2_000usize {
            m.insert(row, &key((row % 4) as i64), &mut rng);
        }
        let s = m.snapshot(&mut rng).unwrap();
        assert_eq!(s.stratum_count(), 4);
        let total = s.total_sampled();
        assert!((45..=55).contains(&total), "total {total}");
    }
}
