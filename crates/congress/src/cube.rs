//! The count data cube of §6: "Given a data cube of the counts of each
//! group in all possible groupings, the target sizes are known, and any of
//! our biased samples can be constructed in one pass."
//!
//! [`CountCube`] materializes, for every grouping `T ⊆ G`, the tuple count
//! of every non-empty group under `T`. It is built in one pass over a
//! relation (or incrementally from an insert stream), answers point
//! lookups (`m_T`, `n_{g(τ,T)}`) in O(1), and can be converted back into a
//! [`GroupCensus`] for the allocation strategies — so a warehouse that
//! already maintains a count cube (most do) never needs a second scan to
//! build congressional samples.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use relation::{ColumnId, GroupKey, Relation};

use crate::census::GroupCensus;
use crate::error::{CongressError, Result};
use crate::lattice::{all_groupings, Grouping};

/// Materialized counts for every grouping in the lattice.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CountCube {
    grouping_columns: Vec<ColumnId>,
    /// Per grouping mask: group key (projected) → tuple count.
    counts: Vec<HashMap<GroupKey, u64>>,
    total: u64,
}

impl CountCube {
    /// Empty cube over `k` grouping attributes (columns recorded for
    /// census conversion).
    pub fn new(grouping_columns: Vec<ColumnId>) -> CountCube {
        let k = grouping_columns.len();
        CountCube {
            grouping_columns,
            counts: vec![HashMap::new(); 1 << k],
            total: 0,
        }
    }

    /// Build the cube in one pass over `rel`.
    pub fn build(rel: &Relation, cols: &[ColumnId]) -> Result<CountCube> {
        for &c in cols {
            rel.schema().field(c)?;
        }
        let mut cube = CountCube::new(cols.to_vec());
        for r in 0..rel.row_count() {
            let key = GroupKey::from_row(rel, r, cols);
            cube.insert(&key);
        }
        Ok(cube)
    }

    /// Fold in one tuple's finest-grouping key (the incremental-maintenance
    /// path: the cube stays current as the warehouse grows).
    pub fn insert(&mut self, key: &GroupKey) {
        debug_assert_eq!(key.len(), self.grouping_columns.len());
        self.total += 1;
        for (ti, t) in all_groupings(self.grouping_columns.len()).enumerate() {
            let proj = key.project(&t.positions());
            *self.counts[ti].entry(proj).or_insert(0) += 1;
        }
    }

    /// Number of grouping attributes `|G|`.
    pub fn attribute_count(&self) -> usize {
        self.grouping_columns.len()
    }

    /// Total tuples folded in.
    pub fn total_rows(&self) -> u64 {
        self.total
    }

    /// `m_T`: the number of non-empty groups under grouping `t`.
    pub fn group_count(&self, t: Grouping) -> usize {
        self.counts[t.0 as usize].len()
    }

    /// `n_h`: the count of the group that `finest_key` belongs to under
    /// grouping `t` (0 if the group is empty).
    pub fn count_of(&self, t: Grouping, finest_key: &GroupKey) -> u64 {
        let proj = finest_key.project(&t.positions());
        self.counts[t.0 as usize].get(&proj).copied().unwrap_or(0)
    }

    /// The cuboid for grouping `t`: every non-empty group and its count.
    pub fn cuboid(&self, t: Grouping) -> &HashMap<GroupKey, u64> {
        &self.counts[t.0 as usize]
    }

    /// Convert the finest cuboid into a [`GroupCensus`] for the allocation
    /// strategies. (The census recomputes coarser cuboids by projection —
    /// identical numbers, verified by tests.)
    pub fn to_census(&self) -> Result<GroupCensus> {
        let finest = &self.counts[self.counts.len() - 1];
        if finest.is_empty() {
            return Err(CongressError::EmptyRelation);
        }
        let mut keys: Vec<GroupKey> = finest.keys().cloned().collect();
        keys.sort();
        let sizes: Vec<u64> = keys.iter().map(|k| finest[k]).collect();
        GroupCensus::from_counts(self.grouping_columns.clone(), keys, sizes)
    }

    /// Consistency check: every cuboid must sum to the total, and coarser
    /// cuboids must equal the projections of the finest one.
    pub fn verify(&self) -> Result<()> {
        let k = self.attribute_count();
        let finest = &self.counts[(1usize << k) - 1];
        for t in all_groupings(k) {
            let cuboid = &self.counts[t.0 as usize];
            let sum: u64 = cuboid.values().sum();
            if sum != self.total {
                return Err(CongressError::CensusMismatch(format!(
                    "cuboid {t:?} sums to {sum}, cube total is {}",
                    self.total
                )));
            }
            let mut reproj: HashMap<GroupKey, u64> = HashMap::new();
            for (key, &n) in finest {
                *reproj.entry(key.project(&t.positions())).or_insert(0) += n;
            }
            if &reproj != cuboid {
                return Err(CongressError::CensusMismatch(format!(
                    "cuboid {t:?} disagrees with the finest cuboid's projection"
                )));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alloc::{AllocationStrategy, Congress};
    use crate::census::test_support::{figure5_census, figure5_relation};
    use relation::Value;

    fn cube() -> CountCube {
        let rel = figure5_relation(10);
        let cols = rel.schema().column_ids(&["A", "B"]).unwrap();
        CountCube::build(&rel, &cols).unwrap()
    }

    #[test]
    fn counts_match_figure5() {
        let c = cube();
        assert_eq!(c.total_rows(), 1000);
        assert_eq!(c.group_count(Grouping::EMPTY), 1);
        assert_eq!(c.group_count(Grouping::from_positions(&[0])), 2); // A
        assert_eq!(c.group_count(Grouping::from_positions(&[1])), 3); // B
        assert_eq!(c.group_count(Grouping::full(2)), 4);
        let a1b3 = GroupKey::new(vec![Value::str("a1"), Value::str("b3")]);
        assert_eq!(c.count_of(Grouping::full(2), &a1b3), 150);
        // Its supergroup under {B} is b3 with 150 + 250.
        assert_eq!(c.count_of(Grouping::from_positions(&[1]), &a1b3), 400);
        // Under ∅ every key maps to the whole relation.
        assert_eq!(c.count_of(Grouping::EMPTY, &a1b3), 1000);
        // Unknown groups count zero.
        let nope = GroupKey::new(vec![Value::str("zz"), Value::str("b3")]);
        assert_eq!(c.count_of(Grouping::full(2), &nope), 0);
    }

    #[test]
    fn verify_accepts_consistent_cube() {
        assert!(cube().verify().is_ok());
    }

    #[test]
    fn verify_rejects_tampering() {
        let mut c = cube();
        // Corrupt one cuboid.
        let t = Grouping::from_positions(&[0]);
        let key = GroupKey::new(vec![Value::str("a1")]);
        *c.counts[t.0 as usize].get_mut(&key).unwrap() += 1;
        assert!(c.verify().is_err());
    }

    #[test]
    fn census_conversion_round_trips() {
        let from_cube = cube().to_census().unwrap();
        let direct = figure5_census(10);
        assert_eq!(from_cube.group_count(), direct.group_count());
        assert_eq!(from_cube.total_rows(), direct.total_rows());
        // Same allocation from either source.
        let a = Congress.allocate(&from_cube, 100.0).unwrap();
        let b = Congress.allocate(&direct, 100.0).unwrap();
        let mut at = a.targets().to_vec();
        let mut bt = b.targets().to_vec();
        at.sort_by(f64::total_cmp);
        bt.sort_by(f64::total_cmp);
        for (x, y) in at.iter().zip(&bt) {
            assert!((x - y).abs() < 1e-9);
        }
    }

    #[test]
    fn incremental_matches_bulk() {
        let rel = figure5_relation(10);
        let cols = rel.schema().column_ids(&["A", "B"]).unwrap();
        let bulk = CountCube::build(&rel, &cols).unwrap();
        let mut inc = CountCube::new(cols.clone());
        for r in 0..rel.row_count() {
            inc.insert(&GroupKey::from_row(&rel, r, &cols));
        }
        assert_eq!(inc.total_rows(), bulk.total_rows());
        for t in all_groupings(2) {
            assert_eq!(inc.cuboid(t), bulk.cuboid(t));
        }
    }

    #[test]
    fn empty_cube_rejects_census() {
        let c = CountCube::new(vec![ColumnId(0)]);
        assert!(c.to_census().is_err());
        assert_eq!(c.total_rows(), 0);
    }
}
