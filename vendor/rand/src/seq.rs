//! Sequence helpers: in-place shuffles and random selection on slices.

use crate::Rng;

/// Randomization methods on slices.
pub trait SliceRandom {
    /// Element type.
    type Item;

    /// Fisher–Yates shuffle of the whole slice.
    fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

    /// Shuffle just enough to uniformly select `amount` distinct elements,
    /// returned as the first slice (the remainder is the second).
    fn partial_shuffle<R: Rng + ?Sized>(
        &mut self,
        rng: &mut R,
        amount: usize,
    ) -> (&mut [Self::Item], &mut [Self::Item]);

    /// Uniformly pick one element, or `None` if empty.
    fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            self.swap(i, (&mut *rng).gen_range(0..=i));
        }
    }

    fn partial_shuffle<R: Rng + ?Sized>(
        &mut self,
        rng: &mut R,
        amount: usize,
    ) -> (&mut [T], &mut [T]) {
        let amount = amount.min(self.len());
        let len = self.len();
        for i in 0..amount {
            self.swap(i, (&mut *rng).gen_range(i..len));
        }
        self.split_at_mut(amount)
    }

    fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            Some(&self[(&mut *rng).gen_range(0..self.len())])
        }
    }
}
