//! Metric registry: name → handle, get-or-create under a lock that is
//! only held for registration and snapshots; the returned handles record
//! through relaxed atomics with no lock at all.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering::Relaxed};
use std::sync::{Arc, PoisonError, RwLock};

use serde::{Deserialize, Serialize};

use crate::histogram::{bucket_bounds, Histogram, HistogramSnapshot};

/// Monotonic counter handle; clones share the same cell.
#[derive(Debug, Clone, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    pub fn new() -> Counter {
        Counter::default()
    }

    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    #[inline]
    pub fn add(&self, n: u64) {
        if crate::ENABLED {
            self.0.fetch_add(n, Relaxed);
        }
    }

    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Relaxed)
    }
}

/// Signed gauge handle; clones share the same cell.
#[derive(Debug, Clone, Default)]
pub struct Gauge(Arc<AtomicI64>);

impl Gauge {
    pub fn new() -> Gauge {
        Gauge::default()
    }

    #[inline]
    pub fn set(&self, v: i64) {
        if crate::ENABLED {
            self.0.store(v, Relaxed);
        }
    }

    #[inline]
    pub fn add(&self, d: i64) {
        if crate::ENABLED {
            self.0.fetch_add(d, Relaxed);
        }
    }

    #[inline]
    pub fn get(&self) -> i64 {
        self.0.load(Relaxed)
    }
}

#[derive(Debug, Clone)]
enum Metric {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

impl Metric {
    fn kind(&self) -> &'static str {
        match self {
            Metric::Counter(_) => "counter",
            Metric::Gauge(_) => "gauge",
            Metric::Histogram(_) => "histogram",
        }
    }
}

/// Named metric store. Handles are registered on first use and cached by
/// the caller; `snapshot` copies every metric's current value.
#[derive(Debug, Default)]
pub struct Registry {
    metrics: RwLock<BTreeMap<String, Metric>>,
}

impl Registry {
    pub fn new() -> Registry {
        Registry::default()
    }

    fn get_or_insert(&self, name: &str, make: impl FnOnce() -> Metric) -> Metric {
        if let Some(m) = self
            .metrics
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .get(name)
        {
            return m.clone();
        }
        let mut map = self.metrics.write().unwrap_or_else(PoisonError::into_inner);
        map.entry(name.to_string()).or_insert_with(make).clone()
    }

    /// Get or register a counter. Panics if `name` is already registered
    /// as a different metric kind (a programming error).
    pub fn counter(&self, name: &str) -> Counter {
        match self.get_or_insert(name, || Metric::Counter(Counter::new())) {
            Metric::Counter(c) => c,
            other => panic!("metric `{name}` already registered as a {}", other.kind()),
        }
    }

    /// Get or register a gauge. Panics on kind mismatch.
    pub fn gauge(&self, name: &str) -> Gauge {
        match self.get_or_insert(name, || Metric::Gauge(Gauge::new())) {
            Metric::Gauge(g) => g,
            other => panic!("metric `{name}` already registered as a {}", other.kind()),
        }
    }

    /// Get or register a histogram. Panics on kind mismatch.
    pub fn histogram(&self, name: &str) -> Histogram {
        match self.get_or_insert(name, || Metric::Histogram(Histogram::new())) {
            Metric::Histogram(h) => h,
            other => panic!("metric `{name}` already registered as a {}", other.kind()),
        }
    }

    /// Copy the current value of every registered metric.
    pub fn snapshot(&self) -> Snapshot {
        let map = self.metrics.read().unwrap_or_else(PoisonError::into_inner);
        let mut snap = Snapshot::default();
        for (name, metric) in map.iter() {
            match metric {
                Metric::Counter(c) => {
                    snap.counters.insert(name.clone(), c.get());
                }
                Metric::Gauge(g) => {
                    snap.gauges.insert(name.clone(), g.get());
                }
                Metric::Histogram(h) => {
                    snap.histograms.insert(name.clone(), h.snapshot());
                }
            }
        }
        snap
    }
}

/// Point-in-time copy of a registry (plus any counters folded in by the
/// caller). Mergeable; renders to JSON or Prometheus exposition text.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Snapshot {
    pub counters: BTreeMap<String, u64>,
    pub gauges: BTreeMap<String, i64>,
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl Snapshot {
    /// Counter value by exact name, 0 if absent.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Gauge value by exact name, 0 if absent.
    pub fn gauge(&self, name: &str) -> i64 {
        self.gauges.get(name).copied().unwrap_or(0)
    }

    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.get(name)
    }

    /// Sum of every counter whose name starts with `prefix` — rollup over
    /// labelled families, e.g. `counter_family("aqua_queries_total")`.
    pub fn counter_family(&self, prefix: &str) -> u64 {
        self.counters
            .range(prefix.to_string()..)
            .take_while(|(k, _)| k.starts_with(prefix))
            .map(|(_, v)| v)
            .sum()
    }

    /// Insert or overwrite a counter (used to fold externally-tracked
    /// counters, e.g. cache hit counts, into a registry snapshot).
    pub fn set_counter(&mut self, name: &str, v: u64) {
        self.counters.insert(name.to_string(), v);
    }

    pub fn set_gauge(&mut self, name: &str, v: i64) {
        self.gauges.insert(name.to_string(), v);
    }

    /// Fold `other` into `self`: counters and gauges add, histograms
    /// merge bucket-wise.
    pub fn merge(&mut self, other: &Snapshot) {
        for (k, v) in &other.counters {
            *self.counters.entry(k.clone()).or_insert(0) += v;
        }
        for (k, v) in &other.gauges {
            *self.gauges.entry(k.clone()).or_insert(0) += v;
        }
        for (k, v) in &other.histograms {
            self.histograms.entry(k.clone()).or_default().merge(v);
        }
    }

    /// Hand-rolled JSON (the vendored serde facade does not serialize).
    /// Histograms are rendered as summary stats plus non-empty buckets.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"counters\": {");
        push_map(
            &mut out,
            self.counters.iter().map(|(k, v)| (k, v.to_string())),
        );
        out.push_str("},\n  \"gauges\": {");
        push_map(
            &mut out,
            self.gauges.iter().map(|(k, v)| (k, v.to_string())),
        );
        out.push_str("},\n  \"histograms\": {");
        push_map(
            &mut out,
            self.histograms.iter().map(|(k, h)| (k, histogram_json(h))),
        );
        out.push_str("}\n}\n");
        out
    }

    /// Prometheus text exposition (v0.0.4): counters and gauges verbatim,
    /// histograms as cumulative `_bucket{le=...}` series plus `_sum` and
    /// `_count`.
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        let mut last_base = String::new();
        for (name, v) in &self.counters {
            prom_type_line(&mut out, name, "counter", &mut last_base);
            out.push_str(&format!("{name} {v}\n"));
        }
        for (name, v) in &self.gauges {
            prom_type_line(&mut out, name, "gauge", &mut last_base);
            out.push_str(&format!("{name} {v}\n"));
        }
        for (name, h) in &self.histograms {
            prom_type_line(&mut out, name, "histogram", &mut last_base);
            let (base, labels) = split_labels(name);
            let mut cum = 0u64;
            for (i, &b) in h.buckets.iter().enumerate() {
                if b == 0 {
                    continue;
                }
                cum += b;
                let le = bucket_bounds(i).1;
                out.push_str(&format!(
                    "{base}_bucket{} {cum}\n",
                    join_labels(labels, &format!("le=\"{le}\""))
                ));
            }
            out.push_str(&format!(
                "{base}_bucket{} {cum}\n",
                join_labels(labels, "le=\"+Inf\"")
            ));
            out.push_str(&format!("{base}_sum{} {}\n", brace(labels), h.sum));
            out.push_str(&format!("{base}_count{} {}\n", brace(labels), h.count));
        }
        out
    }
}

/// `name{a="b"}` → (`name`, `a="b"`); `name` → (`name`, ``).
fn split_labels(name: &str) -> (&str, &str) {
    match name.split_once('{') {
        Some((base, rest)) => (base, rest.trim_end_matches('}')),
        None => (name, ""),
    }
}

fn join_labels(existing: &str, extra: &str) -> String {
    if existing.is_empty() {
        format!("{{{extra}}}")
    } else {
        format!("{{{existing},{extra}}}")
    }
}

fn brace(existing: &str) -> String {
    if existing.is_empty() {
        String::new()
    } else {
        format!("{{{existing}}}")
    }
}

fn prom_type_line(out: &mut String, name: &str, kind: &str, last_base: &mut String) {
    let (base, _) = split_labels(name);
    if base != last_base {
        out.push_str(&format!("# TYPE {base} {kind}\n"));
        *last_base = base.to_string();
    }
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

fn push_map<'a>(out: &mut String, entries: impl Iterator<Item = (&'a String, String)>) {
    let mut first = true;
    for (k, v) in entries {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str(&format!("\n    \"{}\": {v}", json_escape(k)));
    }
    if !first {
        out.push_str("\n  ");
    }
}

fn histogram_json(h: &HistogramSnapshot) -> String {
    let mut buckets = String::from("[");
    let mut first = true;
    for (i, &b) in h.buckets.iter().enumerate() {
        if b == 0 {
            continue;
        }
        if !first {
            buckets.push(',');
        }
        first = false;
        let (lo, hi) = bucket_bounds(i);
        buckets.push_str(&format!("[{lo},{hi},{b}]"));
    }
    buckets.push(']');
    let min = if h.count == 0 { 0 } else { h.min };
    format!(
        "{{\"count\": {}, \"sum\": {}, \"min\": {min}, \"max\": {}, \"mean\": {:.3}, \"p50\": {}, \"p95\": {}, \"p99\": {}, \"buckets\": {buckets}}}",
        h.count,
        h.sum,
        h.max,
        h.mean(),
        h.p50(),
        h.p95(),
        h.p99(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_roundtrip() {
        let r = Registry::new();
        let c = r.counter("c_total");
        c.inc();
        c.add(4);
        let g = r.gauge("g");
        g.set(7);
        g.add(-2);
        let s = r.snapshot();
        if crate::ENABLED {
            assert_eq!(s.counter("c_total"), 5);
            assert_eq!(s.gauge("g"), 5);
        } else {
            assert_eq!(s.counter("c_total"), 0);
            assert_eq!(s.gauge("g"), 0);
        }
        // Re-registering returns the same cell.
        assert_eq!(r.counter("c_total").get(), c.get());
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn kind_mismatch_panics() {
        let r = Registry::new();
        let _ = r.counter("m");
        let _ = r.gauge("m");
    }

    #[test]
    fn counter_family_sums_labelled_names() {
        let r = Registry::new();
        r.counter("q_total{served=\"summary\"}").add(3);
        r.counter("q_total{served=\"scan\"}").add(2);
        r.counter("q_unrelated").add(10);
        let s = r.snapshot();
        if crate::ENABLED {
            assert_eq!(s.counter_family("q_total"), 5);
        } else {
            assert_eq!(s.counter_family("q_total"), 0);
        }
    }

    #[test]
    fn merge_adds_and_merges() {
        let r1 = Registry::new();
        r1.counter("c").add(2);
        r1.histogram("h").record(10);
        let r2 = Registry::new();
        r2.counter("c").add(3);
        r2.histogram("h").record(1000);
        let mut s = r1.snapshot();
        s.merge(&r2.snapshot());
        if crate::ENABLED {
            assert_eq!(s.counter("c"), 5);
            assert_eq!(s.histogram("h").unwrap().count, 2);
            assert_eq!(s.histogram("h").unwrap().sum, 1010);
        }
    }

    #[test]
    fn renderings_are_well_formed() {
        let r = Registry::new();
        r.counter("aqua_queries_total{served=\"summary\"}").add(3);
        r.gauge("aqua_table_rows").set(100);
        r.histogram("aqua_query_latency_us").record(250);
        let s = r.snapshot();
        let json = s.to_json();
        assert!(json.contains("\"counters\""));
        assert!(json.contains("aqua_queries_total"));
        let prom = s.to_prometheus();
        assert!(prom.contains("# TYPE aqua_queries_total counter"));
        assert!(prom.contains("# TYPE aqua_query_latency_us histogram"));
        if crate::ENABLED {
            assert!(prom.contains("aqua_query_latency_us_count 1"));
            assert!(prom.contains("le=\"+Inf\""));
        }
    }
}
