//! Umbrella crate re-exporting the workspace's public API, used by the
//! root-level examples and integration tests.
//!
//! The whole pipeline — data, census, congressional sample, approximate
//! SQL with bounds — in a dozen lines:
//!
//! ```
//! use aqua::{Aqua, AquaConfig, SamplingStrategy};
//! use relation::{parse_csv, CsvOptions};
//!
//! let table = parse_csv(
//!     "state,income\nCA,52000\nCA,53000\nCA,51000\nCA,54000\nWY,48000\nWY,47000\n",
//!     &CsvOptions::default(),
//! ).unwrap();
//! let grouping = table.schema().column_ids(&["state"]).unwrap();
//!
//! let aqua = Aqua::build(table, grouping, AquaConfig {
//!     space: 4,
//!     strategy: SamplingStrategy::Congress,
//!     seed: 1,
//!     ..AquaConfig::default()
//! }).unwrap();
//!
//! let (answer, rewritten_sql) = aqua
//!     .answer_sql("SELECT state, AVG(income) AS a FROM census GROUP BY state")
//!     .unwrap();
//! assert_eq!(answer.result.group_count(), 2); // WY survives the sampling
//! assert!(rewritten_sql.contains("SF"));      // the Figure-8/11 rewrite
//! ```

pub use aqua;
pub use congress;
pub use engine;
pub use relation;
pub use tpcd;
