//! The serving caches never change an answer.
//!
//! Three equivalence claims, each checked bit-for-bit (f64 `to_bits`, not
//! tolerance):
//!
//! 1. **Answer-cache hit ≡ cold parse**: a query spelled differently
//!    (case / whitespace / literal formatting) hits the cache entry of its
//!    first spelling and returns exactly what a cold system parsing that
//!    spelling would have computed — across all four rewrite strategies.
//! 2. **Plan-cache hit ≡ fresh plan**: after an ingest clears the answer
//!    cache (plans survive — they depend only on schema + rewrite), the
//!    re-executed answer equals what the uncached [`Aqua::answer`] path
//!    computes from a freshly parsed query.
//! 3. **Normalization is sound** (proptest): every spelling variant of a
//!    query normalizes to the same key and produces the same answer.

use aqua::{ApproximateAnswer, Aqua, AquaConfig, RewriteChoice, SamplingStrategy};
use proptest::prelude::*;
use relation::{DataType, RelationBuilder, Value};

fn build_system(rewrite: RewriteChoice) -> Aqua {
    let mut b = RelationBuilder::new()
        .column("state", DataType::Str)
        .column("age", DataType::Int)
        .column("income", DataType::Float);
    for i in 0..600i64 {
        let st = match i % 20 {
            0 => "WY",
            1..=5 => "NY",
            6..=9 => "TX",
            _ => "CA",
        };
        b.push_row(&[
            Value::str(st),
            Value::from(18 + (i * 7) % 60),
            Value::from(900.0 + ((i * 37) % 991) as f64),
        ])
        .unwrap();
    }
    let config = AquaConfig {
        space: 160,
        strategy: SamplingStrategy::Congress,
        rewrite,
        ..AquaConfig::default()
    };
    Aqua::build(b.finish(), vec![relation::ColumnId(0)], config).unwrap()
}

/// Bitwise equality: estimates, bounds, confidence, provenance.
fn assert_bit_identical(a: &ApproximateAnswer, b: &ApproximateAnswer, tag: &str) {
    assert_eq!(
        a.result.aggregate_names, b.result.aggregate_names,
        "{tag}: aggregate names"
    );
    assert_eq!(
        a.result.group_count(),
        b.result.group_count(),
        "{tag}: group counts"
    );
    for ((k1, v1), (k2, v2)) in a.result.iter().zip(b.result.iter()) {
        assert_eq!(k1, k2, "{tag}: keys");
        for (x, y) in v1.iter().zip(v2) {
            assert_eq!(x.to_bits(), y.to_bits(), "{tag}: {x} vs {y} at {k1}");
        }
    }
    assert_eq!(a.confidence.to_bits(), b.confidence.to_bits(), "{tag}");
    assert_eq!(a.bounds.len(), b.bounds.len(), "{tag}: bounds len");
    for (ga, gb) in a.bounds.iter().zip(&b.bounds) {
        assert_eq!(ga.key, gb.key, "{tag}: bound keys");
        assert_eq!(ga.bounds.len(), gb.bounds.len());
        for (ba, bb) in ga.bounds.iter().zip(&gb.bounds) {
            match (ba, bb) {
                (None, None) => {}
                (Some(x), Some(y)) => {
                    assert_eq!(
                        x.half_width.to_bits(),
                        y.half_width.to_bits(),
                        "{tag}: half widths at {}",
                        ga.key
                    );
                    assert_eq!(x.confidence.to_bits(), y.confidence.to_bits(), "{tag}");
                    assert_eq!(format!("{:?}", x.kind), format!("{:?}", y.kind), "{tag}");
                }
                _ => panic!("{tag}: bound present on one side only at {}", ga.key),
            }
        }
    }
}

const BASE: &str = "SELECT state, SUM(income) AS rev, AVG(income) AS mean \
                    FROM census WHERE age >= 25 AND state <> 'WY' \
                    GROUP BY state HAVING rev > 10";

/// Respellings of [`BASE`] that must all normalize to the same key: case
/// shuffles, whitespace shuffles, equivalent literal formats, `!=` for
/// `<>`, trailing semicolon.
const VARIANTS: &[&str] = &[
    "select STATE, sum(Income) as REV, avg(income) as MEAN \
     from CENSUS where AGE >= 25 and state != 'WY' \
     group by state having rev > 10;",
    "SELECT  state ,\tSUM( income )\nAS rev,  AVG(income) AS mean \
     FROM census WHERE age >= 25.0 AND state <> 'WY' \
     GROUP BY state HAVING rev > 1e1",
    "Select state, Sum(income) As rev, Avg(income) As mean \
     From census Where age >= 2.5e1 And state != 'WY' \
     Group By state Having rev > 10.00",
];

#[test]
fn cache_hit_equals_cold_parse_across_rewrites() {
    for rewrite in [
        RewriteChoice::Integrated,
        RewriteChoice::NestedIntegrated,
        RewriteChoice::Normalized,
        RewriteChoice::KeyNormalized,
    ] {
        // Two deterministic builds of the same system: bit-identical
        // synopses (pinned by the determinism suite).
        let warm = build_system(rewrite);
        let cold = build_system(rewrite);

        let (base_answer, base_rewritten) = warm.answer_sql(BASE).unwrap();
        for (vi, variant) in VARIANTS.iter().enumerate() {
            // Warm system: this variant hits the answer cache entry the
            // base spelling created.
            let (hit, hit_rewritten) = warm.answer_sql(variant).unwrap();
            // Cold system: the variant is parsed from scratch.
            let (parsed, cold_rewritten) = cold.answer_sql(variant).unwrap();
            let tag = format!("{rewrite:?} variant {vi}");
            assert_bit_identical(&hit, &base_answer, &tag);
            assert_bit_identical(&hit, &parsed, &tag);
            assert_eq!(hit_rewritten, base_rewritten, "{tag}: rewritten SQL");
            assert_eq!(hit_rewritten, cold_rewritten, "{tag}: rewritten SQL");
        }

        let snap = warm.stats();
        // 1 miss (base) + VARIANTS.len() hits on the warm system.
        assert_eq!(
            snap.counter("aqua_answer_cache_hits_total"),
            VARIANTS.len() as u64,
            "{rewrite:?}: all variants must share one answer-cache entry"
        );
        assert_eq!(snap.counter("aqua_answer_cache_misses_total"), 1);
        assert_eq!(snap.gauge("aqua_answer_cache_entries"), 1);
        assert_eq!(snap.counter("aqua_plan_cache_misses_total"), 1);
    }
}

#[test]
fn plan_cache_hit_after_ingest_equals_fresh_plan() {
    let aqua = build_system(RewriteChoice::NestedIntegrated);
    let (_warmup, rewritten_before) = aqua.answer_sql(BASE).unwrap();

    // Ingest clears the answer cache (data changed) but not the plan
    // cache (schema didn't).
    let batch: Vec<Vec<Value>> = (0..50i64)
        .map(|i| {
            vec![
                Value::str(if i % 2 == 0 { "TX" } else { "NY" }),
                Value::from(30 + i % 40),
                Value::from(1200.0 + i as f64),
            ]
        })
        .collect();
    aqua.insert_batch(&batch).unwrap();

    // Served through the cached plan…
    let (via_plan_cache, rewritten_after) = aqua.answer_sql(BASE).unwrap();
    // …must equal the uncached path over a freshly parsed query.
    let query = engine::sql::parse(
        aqua.table_snapshot().schema(),
        &engine::sql::normalize(BASE).unwrap(),
    )
    .unwrap();
    let fresh = aqua.answer(&query).unwrap();
    assert_bit_identical(&via_plan_cache, &fresh, "plan-cache hit vs fresh plan");
    assert_eq!(rewritten_before, rewritten_after);

    let snap = aqua.stats();
    assert_eq!(
        snap.counter("aqua_plan_cache_hits_total"),
        1,
        "post-ingest repeat must hit the plan cache"
    );
    assert_eq!(snap.counter("aqua_plan_cache_misses_total"), 1);
    assert_eq!(snap.counter("aqua_plan_cache_invalidations_total"), 0);
    assert!(
        snap.counter("aqua_answer_cache_invalidations_total") >= 1,
        "ingest must clear the answer cache"
    );
    assert_eq!(snap.gauge("aqua_plan_cache_hit_rate_permille"), 500);
}

// ---------------------------------------------------------------------
// Proptest: random respellings normalize to the same key + same answer
// ---------------------------------------------------------------------

/// The base query as a token template. Each entry is (canonical,
/// case-mutable): identifiers and keywords may be case-shuffled, literals
/// get format variants, symbols pass through.
const TOKENS: &[&str] = &[
    "SELECT", "state", ",", "SUM", "(", "income", ")", "AS", "rev", "FROM", "census", "WHERE",
    "age", ">=", "25", "AND", "state", "<>", "'WY'", "GROUP", "BY", "state", "HAVING", "rev", ">",
    "10",
];

fn respell(token: &str, case_pick: u8, lit_pick: u8, ws: &str) -> String {
    let spelled = match token {
        "25" => ["25", "25.0", "2.5e1", "25.00"][lit_pick as usize % 4].to_string(),
        "10" => ["10", "10.0", "1e1", "0.1e2"][lit_pick as usize % 4].to_string(),
        "<>" => ["<>", "!="][lit_pick as usize % 2].to_string(),
        t if t.starts_with('\'') => t.to_string(), // string literal: case is meaning
        t => match case_pick % 3 {
            0 => t.to_ascii_lowercase(),
            1 => t.to_ascii_uppercase(),
            _ => t
                .chars()
                .enumerate()
                .map(|(i, c)| {
                    if i % 2 == 0 {
                        c.to_ascii_uppercase()
                    } else {
                        c.to_ascii_lowercase()
                    }
                })
                .collect(),
        },
    };
    format!("{spelled}{ws}")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn random_respellings_normalize_and_answer_identically(
        case_picks in proptest::collection::vec(0u8..3, TOKENS.len()),
        lit_picks in proptest::collection::vec(0u8..4, TOKENS.len()),
        ws_picks in proptest::collection::vec(0usize..4, TOKENS.len()),
        trailing_semi in 0u8..2,
    ) {
        let ws = [" ", "  ", "\t", " \n "];
        let mut variant = String::new();
        for (i, tok) in TOKENS.iter().enumerate() {
            variant.push_str(&respell(tok, case_picks[i], lit_picks[i], ws[ws_picks[i]]));
        }
        if trailing_semi == 1 {
            variant.push(';');
        }

        let base_key = engine::sql::normalize(BASE_PROPTEST).unwrap();
        let variant_key = engine::sql::normalize(&variant).unwrap();
        prop_assert_eq!(&base_key, &variant_key, "variant: {}", variant);
    }
}

/// The same query [`TOKENS`] spells, in one canonical string.
const BASE_PROPTEST: &str = "SELECT state, SUM(income) AS rev FROM census \
                             WHERE age >= 25 AND state <> 'WY' \
                             GROUP BY state HAVING rev > 10";

/// And the end-to-end half of the property, run against one shared system
/// on a handful of deterministic respellings (building an Aqua per
/// proptest case would dominate the suite's runtime).
#[test]
fn respelled_queries_share_one_cache_entry_end_to_end() {
    let aqua = build_system(RewriteChoice::Integrated);
    let (base, _) = aqua.answer_sql(BASE_PROPTEST).unwrap();
    for seed in 0u8..12 {
        let ws = [" ", "  ", "\t", " \n "];
        let mut variant = String::new();
        for (i, tok) in TOKENS.iter().enumerate() {
            let r = seed.wrapping_mul(31).wrapping_add(i as u8);
            variant.push_str(&respell(tok, r % 3, r % 4, ws[(r as usize / 3) % 4]));
        }
        let (answer, _) = aqua.answer_sql(&variant).unwrap();
        assert_bit_identical(&answer, &base, &format!("respelling seed {seed}"));
    }
    let snap = aqua.stats();
    assert_eq!(snap.gauge("aqua_answer_cache_entries"), 1);
    assert_eq!(snap.counter("aqua_answer_cache_hits_total"), 12);
}
