//! The §1.1 marketing-analyst scenario end to end: "identify all states
//! with per capita incomes above some value". The answer is only useful if
//! small states' estimates are reliable — so with a HAVING threshold, a
//! House sample misclassifies small groups far more often than Congress.

use aqua::{Aqua, AquaConfig, SamplingStrategy};
use engine::{AggregateSpec, GroupByQuery, Having};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use relation::predicate::CmpOp;
use relation::{ColumnId, DataType, Expr, RelationBuilder, Value};
use std::collections::BTreeSet;

/// States with 100:1 population spread; half are "rich" (income centered
/// above the analyst's threshold), half "poor".
fn census_table() -> relation::Relation {
    let mut rng = StdRng::seed_from_u64(1850);
    let mut b = RelationBuilder::new()
        .column("st", DataType::Str)
        .column("sal", DataType::Float);
    let states: [(&str, usize, f64); 8] = [
        ("CA", 40_000, 62_000.0),
        ("TX", 30_000, 48_000.0),
        ("NY", 20_000, 64_000.0),
        ("FL", 15_000, 47_000.0),
        ("VT", 900, 61_000.0),
        ("AK", 700, 66_000.0),
        ("WY", 500, 46_000.0),
        ("DC", 400, 71_000.0),
    ];
    for (st, pop, mean) in states {
        for _ in 0..pop {
            let sal = mean * rng.gen_range(0.85..1.15);
            b.push_row(&[Value::str(st), Value::from(sal)]).unwrap();
        }
    }
    b.finish()
}

fn rich_states(aqua: &Aqua, query: &GroupByQuery, exact: bool) -> BTreeSet<String> {
    let result = if exact {
        aqua.exact(query).unwrap()
    } else {
        aqua.answer(query).unwrap().result
    };
    result
        .iter()
        .map(|(k, _)| k.values()[0].to_string())
        .collect()
}

#[test]
fn congress_classifies_states_correctly_where_house_errs() {
    let table = census_table();
    let grouping = vec![ColumnId(0)];
    let sal = ColumnId(1);
    // The analyst's threshold sits between the rich and poor clusters.
    let query = GroupByQuery::new(
        grouping.clone(),
        vec![AggregateSpec::avg(Expr::col(sal), "avg_income")],
    )
    .with_having(Having::new("avg_income", CmpOp::Ge, 55_000.0));

    let mut house_mistakes = 0usize;
    let mut congress_mistakes = 0usize;
    let trials = 10u64;
    for seed in 0..trials {
        for (strategy, mistakes) in [
            (SamplingStrategy::House, &mut house_mistakes),
            (SamplingStrategy::Congress, &mut congress_mistakes),
        ] {
            let aqua = Aqua::build(
                table.clone(),
                grouping.clone(),
                AquaConfig {
                    space: 800, // < 1% of ~107K rows
                    strategy,
                    seed,
                    ..AquaConfig::default()
                },
            )
            .unwrap();
            let truth = rich_states(&aqua, &query, true);
            let approx = rich_states(&aqua, &query, false);
            *mistakes += truth.symmetric_difference(&approx).count();
        }
    }
    // Congress must classify at least as reliably as House overall, and
    // get it (almost) always right: the rich/poor gap is ~25%, far wider
    // than Congress's per-state error at this budget.
    assert!(
        congress_mistakes <= house_mistakes,
        "congress {congress_mistakes} vs house {house_mistakes} misclassifications"
    );
    assert!(
        congress_mistakes <= trials as usize,
        "congress misclassified too often: {congress_mistakes}"
    );
}

#[test]
fn having_applies_to_scaled_estimates_not_raw_sample_sums() {
    // A SUM threshold that only the *scaled* estimate can cross: raw
    // sample sums are ~100× smaller. If HAVING ran before scaling, every
    // group would be filtered out.
    let table = census_table();
    let aqua = Aqua::build(
        table,
        vec![ColumnId(0)],
        AquaConfig {
            space: 1_000,
            strategy: SamplingStrategy::Congress,
            seed: 5,
            ..AquaConfig::default()
        },
    )
    .unwrap();
    let q = GroupByQuery::new(vec![ColumnId(0)], vec![AggregateSpec::count("pop")])
        .with_having(Having::new("pop", CmpOp::Ge, 10_000.0));
    let ans = aqua.answer(&q).unwrap();
    // Exactly the four big states should survive the population filter.
    let keep: BTreeSet<String> = ans
        .result
        .iter()
        .map(|(k, _)| k.values()[0].to_string())
        .collect();
    let expect: BTreeSet<String> = ["CA", "TX", "NY", "FL"]
        .iter()
        .map(|s| s.to_string())
        .collect();
    assert_eq!(keep, expect);
}
