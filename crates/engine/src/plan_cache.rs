//! The plan cache: normalized SQL text → parsed + rewritten plan.
//!
//! The serving path pays three text-shaped costs per `answer_sql` call
//! before any data is touched: tokenize + parse the query, then render
//! the rewritten SQL for the active strategy (the paper's Figures 8–11).
//! Dashboard workloads repeat a small set of query strings, so both costs
//! are cacheable. Keys are [`sql::normalize`](crate::sql::normalize)d
//! text — case, whitespace, and literal formatting folded — so `SELECT
//! Sum(x)…` and `select sum(x)…` share one entry.
//!
//! Like [`QueryCache`](crate::QueryCache), the cache is sharded by key
//! hash and interior-mutable: lookups take one shard read lock, inserts
//! one shard write lock, and the owner (Aqua's synopsis) calls
//! [`PlanCache::invalidate`] on ingest/refresh/rebuild. Plans do not
//! actually depend on the sample's *contents* — only on the schema and
//! rewrite strategy, which are fixed per synopsis — but invalidating on
//! the same schedule as the data caches keeps the invalidation matrix
//! uniform and costs one cleared map per mutation.

use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::RwLock;

use serde::{Deserialize, Serialize};

use crate::query::GroupByQuery;

const SHARDS: usize = 8;

fn shard_of(key: &str) -> usize {
    let mut h = DefaultHasher::new();
    key.hash(&mut h);
    (h.finish() as usize) % SHARDS
}

/// A fully planned query: the parse result plus the rewritten SQL text
/// the strategy would hand a back-end DBMS. Immutable and shared —
/// `answer_sql` clones the `Arc`, never the plan.
#[derive(Debug)]
pub struct CachedPlan {
    /// The parsed query (resolved against the base schema).
    pub query: GroupByQuery,
    /// Rewritten SQL for the strategy the plan was cached under.
    pub rewritten: String,
}

/// Sharded map from normalized SQL to [`CachedPlan`], with hit/miss/
/// invalidation counters (relaxed atomics, same discipline as the data
/// caches: counters survive invalidation, entries do not).
#[derive(Debug)]
pub struct PlanCache {
    shards: Vec<RwLock<HashMap<String, Arc<CachedPlan>>>>,
    hits: AtomicU64,
    misses: AtomicU64,
    invalidations: AtomicU64,
}

impl Default for PlanCache {
    fn default() -> Self {
        Self::new()
    }
}

impl PlanCache {
    /// An empty cache.
    pub fn new() -> PlanCache {
        PlanCache {
            shards: (0..SHARDS).map(|_| RwLock::default()).collect(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            invalidations: AtomicU64::new(0),
        }
    }

    /// Look up a plan by normalized key, counting a hit or miss.
    pub fn get(&self, key: &str) -> Option<Arc<CachedPlan>> {
        let found = self.shards[shard_of(key)].read().get(key).cloned();
        match found {
            Some(p) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(p)
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Insert a plan under `key`. First insert wins: under a race the
    /// earlier entry is kept and returned, so every caller holding a plan
    /// for `key` holds *the same* plan (equivalence tests compare plans
    /// by pointer).
    pub fn insert(&self, key: String, plan: CachedPlan) -> Arc<CachedPlan> {
        let mut shard = self.shards[shard_of(&key)].write();
        Arc::clone(shard.entry(key).or_insert_with(|| Arc::new(plan)))
    }

    /// Drop every entry (counters survive). Called on ingest / refresh /
    /// rebuild, mirroring [`QueryCache::invalidate`](crate::QueryCache::invalidate).
    pub fn invalidate(&self) {
        for shard in &self.shards {
            shard.write().clear();
        }
        self.invalidations.fetch_add(1, Ordering::Relaxed);
    }

    /// Number of cached plans.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.read().len()).sum()
    }

    /// `true` when no plans are cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Counter snapshot.
    pub fn stats(&self) -> PlanCacheStats {
        PlanCacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            invalidations: self.invalidations.load(Ordering::Relaxed),
            entries: self.len() as u64,
        }
    }
}

/// Point-in-time [`PlanCache`] counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PlanCacheStats {
    /// Lookups that found a plan.
    pub hits: u64,
    /// Lookups that found nothing.
    pub misses: u64,
    /// Times the cache was cleared.
    pub invalidations: u64,
    /// Plans currently cached.
    pub entries: u64,
}

impl PlanCacheStats {
    /// Hits over lookups, 0.0 when no lookups happened.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aggregate::AggregateSpec;

    fn plan(tag: &str) -> CachedPlan {
        CachedPlan {
            query: GroupByQuery::new(vec![], vec![AggregateSpec::count("count_star")]),
            rewritten: tag.to_string(),
        }
    }

    #[test]
    fn miss_insert_hit_and_invalidate() {
        let c = PlanCache::new();
        assert!(c.get("k").is_none());
        c.insert("k".into(), plan("p1"));
        let got = c.get("k").expect("inserted plan");
        assert_eq!(got.rewritten, "p1");
        assert_eq!(c.len(), 1);

        c.invalidate();
        assert!(c.get("k").is_none());
        let s = c.stats();
        assert_eq!((s.hits, s.misses, s.invalidations, s.entries), (1, 2, 1, 0));
        assert!((s.hit_rate() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn first_insert_wins() {
        let c = PlanCache::new();
        let a = c.insert("k".into(), plan("first"));
        let b = c.insert("k".into(), plan("second"));
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(b.rewritten, "first");
    }

    #[test]
    fn keys_spread_over_shards_independently() {
        let c = PlanCache::new();
        for i in 0..64 {
            c.insert(format!("key-{i}"), plan("x"));
        }
        assert_eq!(c.len(), 64);
        for i in 0..64 {
            assert!(c.get(&format!("key-{i}")).is_some());
        }
        assert_eq!(c.stats().hits, 64);
    }
}
