//! Predicate AST and vectorized evaluation.
//!
//! The paper's workload needs equality and range predicates over single
//! columns (`Q_{g0}`'s `s <= l_id <= s+c`, TPC-D Q1's `l_shipdate <=
//! '01-SEP-98'`) plus boolean combinations. Predicates evaluate to a
//! selection bitmap over a [`Relation`].

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::bitmap::Bitmap;
use crate::column::Column;
use crate::error::Result;
use crate::relation::Relation;
use crate::schema::ColumnId;
use crate::value::Value;

/// Comparison operator for scalar predicates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CmpOp {
    /// `=`
    Eq,
    /// `<>`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl CmpOp {
    fn apply(self, ord: std::cmp::Ordering) -> bool {
        use std::cmp::Ordering::*;
        match self {
            CmpOp::Eq => ord == Equal,
            CmpOp::Ne => ord != Equal,
            CmpOp::Lt => ord == Less,
            CmpOp::Le => ord != Greater,
            CmpOp::Gt => ord == Greater,
            CmpOp::Ge => ord != Less,
        }
    }
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CmpOp::Eq => "=",
            CmpOp::Ne => "<>",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        };
        f.write_str(s)
    }
}

/// A boolean predicate over relation rows.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Predicate {
    /// Always true (no WHERE clause).
    True,
    /// `col <op> literal`
    Cmp {
        /// Column operand.
        col: ColumnId,
        /// Comparison operator.
        op: CmpOp,
        /// Literal operand.
        value: Value,
    },
    /// `lo <= col <= hi` (inclusive on both ends, like SQL BETWEEN).
    Between {
        /// Column operand.
        col: ColumnId,
        /// Inclusive lower bound.
        lo: Value,
        /// Inclusive upper bound.
        hi: Value,
    },
    /// Conjunction.
    And(Box<Predicate>, Box<Predicate>),
    /// Disjunction.
    Or(Box<Predicate>, Box<Predicate>),
    /// Negation.
    Not(Box<Predicate>),
}

impl Predicate {
    /// `col = value`
    pub fn eq(col: ColumnId, value: impl Into<Value>) -> Predicate {
        Predicate::Cmp {
            col,
            op: CmpOp::Eq,
            value: value.into(),
        }
    }

    /// `col <= value`
    pub fn le(col: ColumnId, value: impl Into<Value>) -> Predicate {
        Predicate::Cmp {
            col,
            op: CmpOp::Le,
            value: value.into(),
        }
    }

    /// `col >= value`
    pub fn ge(col: ColumnId, value: impl Into<Value>) -> Predicate {
        Predicate::Cmp {
            col,
            op: CmpOp::Ge,
            value: value.into(),
        }
    }

    /// `lo <= col <= hi`
    pub fn between(col: ColumnId, lo: impl Into<Value>, hi: impl Into<Value>) -> Predicate {
        Predicate::Between {
            col,
            lo: lo.into(),
            hi: hi.into(),
        }
    }

    /// `self AND other`
    pub fn and(self, other: Predicate) -> Predicate {
        Predicate::And(Box::new(self), Box::new(other))
    }

    /// `self OR other`
    pub fn or(self, other: Predicate) -> Predicate {
        Predicate::Or(Box::new(self), Box::new(other))
    }

    /// `NOT self`
    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> Predicate {
        Predicate::Not(Box::new(self))
    }

    /// Evaluate on a single row.
    pub fn eval_row(&self, rel: &Relation, row: usize) -> bool {
        match self {
            Predicate::True => true,
            Predicate::Cmp { col, op, value } => {
                let v = rel.column(*col).value(row);
                cmp_values(&v, value).map(|o| op.apply(o)).unwrap_or(false)
            }
            Predicate::Between { col, lo, hi } => {
                let v = rel.column(*col).value(row);
                matches!(cmp_values(&v, lo), Some(o) if o != std::cmp::Ordering::Less)
                    && matches!(cmp_values(&v, hi), Some(o) if o != std::cmp::Ordering::Greater)
            }
            Predicate::And(a, b) => a.eval_row(rel, row) && b.eval_row(rel, row),
            Predicate::Or(a, b) => a.eval_row(rel, row) || b.eval_row(rel, row),
            Predicate::Not(a) => !a.eval_row(rel, row),
        }
    }

    /// Evaluate over the whole relation into a packed selection bitmap.
    ///
    /// Single-column comparisons take a vectorized fast path over the raw
    /// column storage; boolean combinators combine child bitmaps word-wise.
    pub fn eval(&self, rel: &Relation) -> Bitmap {
        match self {
            Predicate::True => Bitmap::new_true(rel.row_count()),
            Predicate::Cmp { col, op, value } => eval_cmp_vectorized(rel.column(*col), *op, value)
                .unwrap_or_else(|| Bitmap::from_fn(rel.row_count(), |r| self.eval_row(rel, r))),
            Predicate::Between { col, lo, hi } => {
                let a = eval_cmp_vectorized(rel.column(*col), CmpOp::Ge, lo);
                let b = eval_cmp_vectorized(rel.column(*col), CmpOp::Le, hi);
                match (a, b) {
                    (Some(mut a), Some(b)) => {
                        a.and_assign(&b);
                        a
                    }
                    _ => Bitmap::from_fn(rel.row_count(), |r| self.eval_row(rel, r)),
                }
            }
            Predicate::And(a, b) => {
                let mut m = a.eval(rel);
                m.and_assign(&b.eval(rel));
                m
            }
            Predicate::Or(a, b) => {
                let mut m = a.eval(rel);
                m.or_assign(&b.eval(rel));
                m
            }
            Predicate::Not(a) => {
                let mut m = a.eval(rel);
                m.not_assign();
                m
            }
        }
    }

    /// Row indices satisfying the predicate.
    pub fn selected_rows(&self, rel: &Relation) -> Vec<usize> {
        self.eval(rel).ones().collect()
    }

    /// Fraction of rows satisfying the predicate.
    pub fn selectivity(&self, rel: &Relation) -> f64 {
        if rel.row_count() == 0 {
            return 0.0;
        }
        self.eval(rel).count_ones() as f64 / rel.row_count() as f64
    }

    /// All column ids the predicate references (deduplicated, in first-
    /// reference order). `True` references nothing.
    pub fn referenced_columns(&self) -> Vec<ColumnId> {
        fn walk(p: &Predicate, out: &mut Vec<ColumnId>) {
            match p {
                Predicate::True => {}
                Predicate::Cmp { col, .. } | Predicate::Between { col, .. } => {
                    if !out.contains(col) {
                        out.push(*col);
                    }
                }
                Predicate::And(a, b) | Predicate::Or(a, b) => {
                    walk(a, out);
                    walk(b, out);
                }
                Predicate::Not(a) => walk(a, out),
            }
        }
        let mut out = Vec::new();
        walk(self, &mut out);
        out
    }

    /// `true` when every referenced column is in `allowed` (vacuously true
    /// for `True`). Such a predicate is constant within each group of a
    /// grouping over `allowed`, so it can be decided once per group rather
    /// than once per row — the property summary-serving fast paths rely on.
    pub fn references_only(&self, allowed: &[ColumnId]) -> bool {
        self.referenced_columns()
            .iter()
            .all(|c| allowed.contains(c))
    }

    /// Validate that every referenced column exists in the schema.
    pub fn validate(&self, rel: &Relation) -> Result<()> {
        match self {
            Predicate::True => Ok(()),
            Predicate::Cmp { col, .. } | Predicate::Between { col, .. } => {
                rel.schema().field(*col).map(|_| ())
            }
            Predicate::And(a, b) | Predicate::Or(a, b) => {
                a.validate(rel)?;
                b.validate(rel)
            }
            Predicate::Not(a) => a.validate(rel),
        }
    }
}

/// Compare two values of (possibly) mixed numeric types.
fn cmp_values(a: &Value, b: &Value) -> Option<std::cmp::Ordering> {
    match (a, b) {
        (Value::Str(x), Value::Str(y)) => Some(x.cmp(y)),
        (Value::Str(_), _) | (_, Value::Str(_)) => None,
        _ => {
            let (x, y) = (a.as_f64()?, b.as_f64()?);
            Some(x.total_cmp(&y))
        }
    }
}

/// Vectorized comparison over raw column storage, packed straight into a
/// [`Bitmap`]. Returns `None` when the literal's type is incompatible with
/// the column (the caller falls back to the row-at-a-time path, which
/// yields all-false for such predicates).
fn eval_cmp_vectorized(col: &Column, op: CmpOp, value: &Value) -> Option<Bitmap> {
    match (col, value) {
        (Column::Int(v), _) => {
            let lit = value.as_f64()?;
            Some(Bitmap::from_fn(v.len(), |r| {
                op.apply((v[r] as f64).total_cmp(&lit))
            }))
        }
        (Column::Float(v), _) => {
            let lit = value.as_f64()?;
            Some(Bitmap::from_fn(v.len(), |r| op.apply(v[r].total_cmp(&lit))))
        }
        (Column::Date(v), _) => {
            let lit = value.as_f64()?;
            Some(Bitmap::from_fn(v.len(), |r| {
                op.apply((v[r] as f64).total_cmp(&lit))
            }))
        }
        (Column::Str(v), Value::Str(s)) => {
            // Equality on dictionary columns compares codes.
            match op {
                CmpOp::Eq => Some(match v.lookup(s) {
                    Some(c) => {
                        let codes = v.codes();
                        Bitmap::from_fn(v.len(), |r| codes[r] == c)
                    }
                    None => Bitmap::new_false(v.len()),
                }),
                CmpOp::Ne => Some(match v.lookup(s) {
                    Some(c) => {
                        let codes = v.codes();
                        Bitmap::from_fn(v.len(), |r| codes[r] != c)
                    }
                    None => Bitmap::new_true(v.len()),
                }),
                // Order comparisons run in the dictionary domain: one
                // string comparison per *distinct* value, then a table
                // lookup per row via the code vector.
                _ => {
                    let lut: Vec<bool> = v
                        .dict()
                        .iter()
                        .map(|d| op.apply(d.as_ref().cmp(s)))
                        .collect();
                    Some(Bitmap::from_lut(v.codes(), &lut))
                }
            }
        }
        (Column::Str(_), _) => None,
    }
}

impl fmt::Display for Predicate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Predicate::True => write!(f, "TRUE"),
            Predicate::Cmp { col, op, value } => write!(f, "{col} {op} {value}"),
            Predicate::Between { col, lo, hi } => write!(f, "{col} BETWEEN {lo} AND {hi}"),
            Predicate::And(a, b) => write!(f, "({a} AND {b})"),
            Predicate::Or(a, b) => write!(f, "({a} OR {b})"),
            Predicate::Not(a) => write!(f, "NOT ({a})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datatype::DataType;
    use crate::relation::RelationBuilder;

    fn rel() -> Relation {
        let mut b = RelationBuilder::new()
            .column("id", DataType::Int)
            .column("flag", DataType::Str)
            .column("qty", DataType::Float)
            .column("ship", DataType::Date);
        let rows: [(i64, &str, f64, i32); 5] = [
            (1, "A", 10.0, 100),
            (2, "N", 20.0, 200),
            (3, "N", 30.0, 300),
            (4, "R", 40.0, 400),
            (5, "A", 50.0, 500),
        ];
        for (id, fl, q, d) in rows {
            b.push_row(&[
                Value::Int(id),
                Value::str(fl),
                Value::from(q),
                Value::Date(d),
            ])
            .unwrap();
        }
        b.finish()
    }

    #[test]
    fn cmp_int_range() {
        let r = rel();
        let p = Predicate::between(ColumnId(0), 2i64, 4i64);
        assert_eq!(p.eval(&r).to_bools(), vec![false, true, true, true, false]);
        assert_eq!(p.selected_rows(&r), vec![1, 2, 3]);
        assert!((p.selectivity(&r) - 0.6).abs() < 1e-12);
    }

    #[test]
    fn str_equality_uses_dictionary() {
        let r = rel();
        let p = Predicate::eq(ColumnId(1), "N");
        assert_eq!(p.eval(&r).to_bools(), vec![false, true, true, false, false]);
        // Unknown string matches nothing.
        let p = Predicate::eq(ColumnId(1), "ZZZ");
        assert_eq!(p.eval(&r).to_bools(), vec![false; 5]);
        // Ne of unknown string matches everything.
        let p = Predicate::Cmp {
            col: ColumnId(1),
            op: CmpOp::Ne,
            value: Value::str("ZZZ"),
        };
        assert_eq!(p.eval(&r).to_bools(), vec![true; 5]);
    }

    #[test]
    fn str_range_lexicographic() {
        let r = rel();
        let p = Predicate::le(ColumnId(1), "M"); // only "A" <= "M"
        assert_eq!(p.eval(&r).to_bools(), vec![true, false, false, false, true]);
        // All four order operators agree with the row-at-a-time path
        // (the vectorized side evaluates per dictionary code).
        for op in [CmpOp::Lt, CmpOp::Le, CmpOp::Gt, CmpOp::Ge] {
            let p = Predicate::Cmp {
                col: ColumnId(1),
                op,
                value: Value::str("N"),
            };
            let scalar: Vec<bool> = (0..r.row_count()).map(|i| p.eval_row(&r, i)).collect();
            assert_eq!(p.eval(&r).to_bools(), scalar, "{op}");
        }
    }

    #[test]
    fn referenced_columns_walk_the_tree() {
        let p = Predicate::eq(ColumnId(1), "N")
            .and(Predicate::between(ColumnId(0), 1i64, 3i64))
            .or(Predicate::ge(ColumnId(1), "A").not());
        assert_eq!(p.referenced_columns(), vec![ColumnId(1), ColumnId(0)]);
        assert_eq!(Predicate::True.referenced_columns(), Vec::<ColumnId>::new());
    }

    #[test]
    fn references_only_gates_on_allowed_set() {
        let p = Predicate::eq(ColumnId(1), "N").and(Predicate::ge(ColumnId(0), 2i64));
        assert!(p.references_only(&[ColumnId(0), ColumnId(1)]));
        assert!(!p.references_only(&[ColumnId(1)]));
        assert!(!p.references_only(&[]));
        // TRUE references nothing, so any allowed set works — including
        // the empty grouping.
        assert!(Predicate::True.references_only(&[]));
    }

    #[test]
    fn date_le_mirrors_tpcd_q1() {
        let r = rel();
        let p = Predicate::le(ColumnId(3), Value::Date(300));
        assert_eq!(p.selected_rows(&r), vec![0, 1, 2]);
    }

    #[test]
    fn boolean_combinators() {
        let r = rel();
        let p = Predicate::eq(ColumnId(1), "N").and(Predicate::ge(ColumnId(2), 25.0));
        assert_eq!(p.selected_rows(&r), vec![2]);
        let p = Predicate::eq(ColumnId(1), "A").or(Predicate::eq(ColumnId(1), "R"));
        assert_eq!(p.selected_rows(&r), vec![0, 3, 4]);
        let p = Predicate::eq(ColumnId(1), "A").not();
        assert_eq!(p.selected_rows(&r), vec![1, 2, 3]);
    }

    #[test]
    fn true_selects_all() {
        let r = rel();
        assert_eq!(Predicate::True.selected_rows(&r).len(), 5);
        assert_eq!(Predicate::True.selectivity(&r), 1.0);
    }

    #[test]
    fn row_and_vectorized_paths_agree() {
        let r = rel();
        let preds = vec![
            Predicate::between(ColumnId(0), 2i64, 4i64),
            Predicate::eq(ColumnId(1), "N"),
            Predicate::le(ColumnId(3), Value::Date(250)),
            Predicate::ge(ColumnId(2), 30.0).and(Predicate::eq(ColumnId(1), "R").not()),
        ];
        for p in preds {
            let vectorized = p.eval(&r).to_bools();
            let scalar: Vec<bool> = (0..r.row_count()).map(|i| p.eval_row(&r, i)).collect();
            assert_eq!(vectorized, scalar, "mismatch for {p}");
        }
    }

    #[test]
    fn type_incompatible_predicate_is_false() {
        let r = rel();
        // string literal against int column
        let p = Predicate::eq(ColumnId(0), "x");
        assert_eq!(p.eval(&r).to_bools(), vec![false; 5]);
    }

    #[test]
    fn validate_checks_columns() {
        let r = rel();
        assert!(Predicate::eq(ColumnId(0), 1i64).validate(&r).is_ok());
        assert!(Predicate::eq(ColumnId(42), 1i64).validate(&r).is_err());
        assert!(Predicate::eq(ColumnId(42), 1i64)
            .and(Predicate::True)
            .validate(&r)
            .is_err());
    }

    #[test]
    fn empty_relation_selectivity_zero() {
        let r = rel().gather(&[]);
        assert_eq!(Predicate::True.selectivity(&r), 0.0);
    }

    #[test]
    fn display_renders_sql_like() {
        let p = Predicate::between(ColumnId(0), 1i64, 5i64).and(Predicate::eq(ColumnId(1), "A"));
        let s = p.to_string();
        assert!(s.contains("BETWEEN") && s.contains("AND"));
    }
}
