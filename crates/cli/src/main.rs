//! `congress-cli` entry point.

fn main() {
    let args = match congress_cli::args::Args::parse(std::env::args().skip(1)) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}\n\n{}", congress_cli::USAGE);
            std::process::exit(2);
        }
    };
    if args.has("help") {
        println!("{}", congress_cli::USAGE);
        return;
    }
    match congress_cli::commands::run(&args) {
        Ok(output) => print!("{output}"),
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }
}
