//! The [`Aqua`] middleware: stored table + synopsis + query answering.

use parking_lot::RwLock;

use engine::{execute_exact, ExecOptions, ExecTrace, GroupByQuery, QueryResult};
use relation::{ColumnId, Relation, Value};

/// Serializable point-in-time metrics snapshot returned by
/// [`Aqua::stats`] (re-exported from the `obs` crate).
pub use obs::Snapshot as StatsSnapshot;

use crate::answer::{compute_bounds_cached, AnswerProvenance, ApproximateAnswer};
use crate::config::AquaConfig;
use crate::error::{AquaError, Result};
use crate::synopsis::Synopsis;

/// The approximate query answering system of §2, over a single stored
/// relation (the paper reduces multi-table warehouses to this case via
/// join synopses).
///
/// Thread-safe: queries take a read lock; insertions and refreshes take a
/// write lock. The synopsis refreshes lazily — after a batch of warehouse
/// insertions, the next query pays one plan rebuild.
pub struct Aqua {
    inner: RwLock<Inner>,
}

struct Inner {
    /// The stored warehouse table, grown by [`Aqua::insert_batch`].
    table: Relation,
    grouping: Vec<ColumnId>,
    synopsis: Synopsis,
}

impl Aqua {
    /// Build the system over `table`, declaring `grouping` as the
    /// dimensional attributes `G`. The initial synopsis is constructed by
    /// the bulk parallel pipeline (parallel census + seeded per-stratum
    /// draws, on `config.parallelism` threads — identical output at any
    /// thread count); the table is also streamed through the incremental
    /// maintainer so later [`Self::insert_batch`] calls keep the synopsis
    /// maintainable in one pass.
    pub fn build(table: Relation, grouping: Vec<ColumnId>, config: AquaConfig) -> Result<Aqua> {
        config.validate()?;
        for &c in &grouping {
            table.schema().field(c)?;
        }
        if table.is_empty() {
            return Err(AquaError::InvalidConfig(
                "cannot build a synopsis over an empty relation".into(),
            ));
        }
        let mut synopsis = Synopsis::new(config, grouping.clone())?;
        synopsis.ingest(&table, 0)?;
        synopsis.rebuild_bulk(&table)?;
        Ok(Aqua {
            inner: RwLock::new(Inner {
                table,
                grouping,
                synopsis,
            }),
        })
    }

    /// The declared grouping columns.
    pub fn grouping_columns(&self) -> Vec<ColumnId> {
        self.inner.read().grouping.clone()
    }

    /// The active configuration (needed to persist and rebuild the system).
    pub fn config(&self) -> AquaConfig {
        *self.inner.read().synopsis.config()
    }

    /// A snapshot of the stored table (cheap: columns are copied, but
    /// string dictionaries are shared `Arc`s under the hood).
    pub fn table_snapshot(&self) -> Relation {
        self.inner.read().table.clone()
    }

    /// Rows currently stored in the warehouse table.
    pub fn table_rows(&self) -> usize {
        self.inner.read().table.row_count()
    }

    /// Sampled tuples in the active synopsis.
    pub fn synopsis_rows(&self) -> usize {
        self.inner.read().synopsis.sample_rows()
    }

    /// Answer a query approximately from the synopsis, with per-group
    /// error bounds — the full Figure 2 → Figure 4 pipeline.
    ///
    /// Serving runs through the vectorized fast path: the synopsis's
    /// [`engine::QueryCache`] memoizes group indexes / stratum layouts
    /// across queries (invalidated on insert/refresh/rebuild), and chunked
    /// parallel aggregation engages when `config.parallelism` permits more
    /// than one thread. Answers are bit-identical to the cold serial path.
    pub fn answer(&self, query: &GroupByQuery) -> Result<ApproximateAnswer> {
        let timer = obs::Timer::start();
        let trace = ExecTrace::new();
        let result = self.answer_traced(query, if obs::ENABLED { Some(&trace) } else { None });
        if obs::ENABLED {
            self.record_query_span(&timer, &trace, result.is_ok());
        }
        result
    }

    /// The untimed answer pipeline; `trace` (when set) receives the
    /// served-from path and rows touched without affecting the result.
    fn answer_traced(
        &self,
        query: &GroupByQuery,
        trace: Option<&ExecTrace>,
    ) -> Result<ApproximateAnswer> {
        self.refresh_if_stale()?;
        let inner = self.inner.read();
        let plan = inner
            .synopsis
            .plan()
            .expect("refresh_if_stale materialized the plan");
        let cache = inner.synopsis.query_cache();
        let opts = ExecOptions {
            cache: Some(cache),
            parallel: inner.synopsis.config().effective_parallelism() != 1,
            trace,
        };
        let result = plan.execute_opts(query, &opts)?;
        let input = inner
            .synopsis
            .input()
            .expect("refresh_if_stale materialized the input");
        let confidence = inner.synopsis.config().confidence;
        let bounds = compute_bounds_cached(input, query, &result, confidence, Some(cache))?;
        Ok(ApproximateAnswer {
            result,
            bounds,
            confidence,
            provenance: AnswerProvenance::Sampled,
        })
    }

    /// Record one query span into the synopsis registry: per-(rewrite,
    /// served-from) counts, end-to-end latency, and rows touched.
    fn record_query_span(&self, timer: &obs::Timer, trace: &ExecTrace, ok: bool) {
        let inner = self.inner.read();
        let registry = inner.synopsis.registry();
        let rewrite = inner.synopsis.config().rewrite.name();
        if !ok {
            registry.counter("aqua_query_errors_total").inc();
            return;
        }
        let served = trace.served().map_or("unknown", |s| s.label());
        registry
            .counter(&obs::label(
                "aqua_queries_total",
                &[("rewrite", rewrite), ("served", served)],
            ))
            .inc();
        registry
            .histogram(&obs::label(
                "aqua_query_latency_us",
                &[("rewrite", rewrite)],
            ))
            .record(timer.elapsed_us());
        registry
            .counter("aqua_rows_scanned_total")
            .add(trace.rows_scanned());
    }

    /// Point-in-time metrics snapshot: query spans and maintenance
    /// counters from the synopsis registry, plus the query cache's
    /// per-kind / per-shard hit-miss breakdown and current table/sample
    /// size gauges. Under the `obs-off` feature the registry counters are
    /// all zero but the cache counters (pre-existing, always on) remain.
    pub fn stats(&self) -> StatsSnapshot {
        let inner = self.inner.read();
        let mut snap = inner.synopsis.registry().snapshot();
        let detail = inner.synopsis.query_cache().stats_detailed();
        for (name, k) in detail.kinds() {
            snap.set_counter(&format!("aqua_cache_{name}_hits_total"), k.hits);
            snap.set_counter(&format!("aqua_cache_{name}_misses_total"), k.misses);
        }
        for (i, s) in detail.shards.iter().enumerate() {
            let shard = i.to_string();
            snap.set_counter(
                &obs::label("aqua_cache_shard_hits_total", &[("shard", &shard)]),
                s.hits,
            );
            snap.set_counter(
                &obs::label("aqua_cache_shard_misses_total", &[("shard", &shard)]),
                s.misses,
            );
        }
        snap.set_counter("aqua_cache_invalidations_total", detail.invalidations);
        let total = detail.total();
        snap.set_counter("aqua_cache_hits_total", total.hits);
        snap.set_counter("aqua_cache_misses_total", total.misses);
        snap.set_gauge("aqua_table_rows", inner.table.row_count() as i64);
        snap.set_gauge("aqua_synopsis_rows", inner.synopsis.sample_rows() as i64);
        snap
    }

    /// Execute the query exactly against the stored table (what the
    /// warehouse itself would return, used for accuracy comparisons).
    pub fn exact(&self, query: &GroupByQuery) -> Result<QueryResult> {
        let inner = self.inner.read();
        Ok(execute_exact(&inner.table, query)?)
    }

    /// Insert new tuples into the warehouse. The synopsis maintainer sees
    /// each tuple once; the stored table grows; the physical plan is
    /// rebuilt lazily on the next query.
    pub fn insert_batch(&self, rows: &[Vec<Value>]) -> Result<()> {
        if rows.is_empty() {
            return Ok(());
        }
        let mut inner = self.inner.write();
        let mut builder = relation::RelationBuilder::from_schema(inner.table.schema());
        for row in rows {
            builder.push_row(row)?;
        }
        let batch = builder.finish();
        let first = inner.table.row_count();
        inner.synopsis.ingest(&batch, first)?;
        inner.table = Relation::concat(&[&inner.table, &batch])?;
        Ok(())
    }

    /// The Figure 2 pipeline in one call: parse SQL against the stored
    /// table's schema, answer it approximately, and return the answer
    /// along with the rewritten-SQL text the configured strategy would
    /// send to a back-end DBMS (Figures 8–11).
    pub fn answer_sql(&self, sql: &str) -> Result<(ApproximateAnswer, String)> {
        let (query, rewritten) = {
            let inner = self.inner.read();
            let registry = inner.synopsis.registry();
            registry.counter("aqua_sql_queries_total").inc();
            let query = match engine::sql::parse(inner.table.schema(), sql) {
                Ok(q) => q,
                Err(e) => {
                    registry.counter("aqua_sql_parse_errors_total").inc();
                    return Err(e.into());
                }
            };
            let kind = match inner.synopsis.config().rewrite {
                crate::RewriteChoice::Integrated => engine::sql::render::RewriteKind::Integrated,
                crate::RewriteChoice::NestedIntegrated => {
                    engine::sql::render::RewriteKind::NestedIntegrated
                }
                crate::RewriteChoice::Normalized => engine::sql::render::RewriteKind::Normalized,
                crate::RewriteChoice::KeyNormalized => {
                    engine::sql::render::RewriteKind::KeyNormalized
                }
            };
            let rewritten = engine::sql::render_rewritten(
                &query,
                inner.table.schema(),
                kind,
                "samp_rel",
                "aux_rel",
            )?;
            (query, rewritten)
        };
        Ok((self.answer(&query)?, rewritten))
    }

    /// Parse SQL against the stored table's schema and execute it exactly
    /// — the warehouse-side ground truth for [`Self::answer_sql`].
    pub fn exact_sql(&self, sql: &str) -> Result<QueryResult> {
        let inner = self.inner.read();
        let query = engine::sql::parse(inner.table.schema(), sql)?;
        Ok(execute_exact(&inner.table, &query)?)
    }

    /// Export the synopsis as a compact binary snapshot (durable storage,
    /// shipping to another node, etc.).
    pub fn export_synopsis(&self) -> Result<bytes::Bytes> {
        let mut inner = self.inner.write();
        let Inner {
            table, synopsis, ..
        } = &mut *inner;
        synopsis.export(table)
    }

    /// Rebuild a system from a stored table plus an exported snapshot.
    /// The restored synopsis answers queries immediately; subsequent
    /// insertions start a fresh maintainer (snapshots carry the sample,
    /// not the sampler state).
    pub fn build_from_snapshot(
        table: Relation,
        config: AquaConfig,
        snapshot: bytes::Bytes,
    ) -> Result<Aqua> {
        let synopsis = Synopsis::import(config, &table, snapshot)?;
        let grouping = synopsis.grouping().to_vec();
        Ok(Aqua {
            inner: RwLock::new(Inner {
                table,
                grouping,
                synopsis,
            }),
        })
    }

    /// Force a bulk *parallel* reconstruction of the synopsis from the
    /// stored table, on `config.parallelism` threads. Queries block for
    /// the duration (writer lock) and then see the new synopsis whole —
    /// never a partially rebuilt one. The maintainer keeps its stream
    /// state for future incremental refreshes.
    pub fn rebuild(&self) -> Result<()> {
        let mut inner = self.inner.write();
        let Inner {
            table, synopsis, ..
        } = &mut *inner;
        synopsis.rebuild_bulk(table)
    }

    /// Force a synopsis refresh now (normally lazy).
    pub fn refresh(&self) -> Result<()> {
        let mut inner = self.inner.write();
        let Inner {
            table, synopsis, ..
        } = &mut *inner;
        synopsis.refresh(table)
    }

    /// Refresh the synopsis if stale, with double-checked locking: the
    /// staleness probe under the read lock is cheap and concurrent, and
    /// the re-check under the write lock ensures that when many clients
    /// race past a stale probe, only the first refreshes (a refresh
    /// invalidates the query cache, so redundant refreshes would throw
    /// away a freshly warmed cache for nothing).
    fn refresh_if_stale(&self) -> Result<()> {
        if !self.inner.read().synopsis.is_stale() {
            return Ok(());
        }
        let mut inner = self.inner.write();
        if inner.synopsis.is_stale() {
            let Inner {
                table, synopsis, ..
            } = &mut *inner;
            synopsis.refresh(table)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{RewriteChoice, SamplingStrategy};
    use engine::AggregateSpec;
    use relation::{DataType, Expr, GroupKey, RelationBuilder};

    fn table(n: i64) -> Relation {
        let mut b = RelationBuilder::new()
            .column("g", DataType::Str)
            .column("v", DataType::Float);
        for i in 0..n {
            let g = match i % 10 {
                0 => "small",
                _ => "large",
            };
            b.push_row(&[Value::str(g), Value::from(10.0 + (i % 7) as f64)])
                .unwrap();
        }
        b.finish()
    }

    fn config() -> AquaConfig {
        AquaConfig {
            space: 100,
            strategy: SamplingStrategy::Congress,
            rewrite: RewriteChoice::NestedIntegrated,
            confidence: 0.9,
            seed: 4,
            parallelism: 0,
        }
    }

    fn count_query() -> GroupByQuery {
        GroupByQuery::new(vec![ColumnId(0)], vec![AggregateSpec::count("c")])
    }

    #[test]
    fn build_and_answer() {
        let aqua = Aqua::build(table(2000), vec![ColumnId(0)], config()).unwrap();
        assert_eq!(aqua.table_rows(), 2000);
        assert!(aqua.synopsis_rows() > 0);
        let ans = aqua.answer(&count_query()).unwrap();
        assert_eq!(ans.result.group_count(), 2);
        // COUNT estimates should be near 200 / 1800.
        let small = ans
            .result
            .get(&GroupKey::new(vec![Value::str("small")]))
            .unwrap()[0];
        assert!((small - 200.0).abs() < 80.0, "small count {small}");
        assert_eq!(ans.bounds.len(), 2);
    }

    #[test]
    fn answers_track_exact_within_bounds_often() {
        let aqua = Aqua::build(table(5000), vec![ColumnId(0)], config()).unwrap();
        let q = GroupByQuery::new(
            vec![ColumnId(0)],
            vec![AggregateSpec::avg(Expr::col(ColumnId(1)), "a")],
        );
        let approx = aqua.answer(&q).unwrap();
        let exact = aqua.exact(&q).unwrap();
        for (key, vals) in exact.iter() {
            let est = approx.result.get(key).unwrap()[0];
            // AVG of values in [10, 16]: estimate must land in-range and
            // close (bounded variables, decent sample).
            assert!((est - vals[0]).abs() < 2.0, "{key}: {est} vs {}", vals[0]);
        }
    }

    #[test]
    fn insert_batch_maintains_synopsis_lazily() {
        let aqua = Aqua::build(table(1000), vec![ColumnId(0)], config()).unwrap();
        let before = aqua.table_rows();
        // Insert a brand-new group.
        let rows: Vec<Vec<Value>> = (0..50)
            .map(|i| vec![Value::str("new_group"), Value::from(i as f64)])
            .collect();
        aqua.insert_batch(&rows).unwrap();
        assert_eq!(aqua.table_rows(), before + 50);
        // Next answer reflects the new group without an explicit refresh.
        let ans = aqua.answer(&count_query()).unwrap();
        let ng = ans
            .result
            .get(&GroupKey::new(vec![Value::str("new_group")]));
        assert!(ng.is_some(), "new group must appear in the answer");
    }

    #[test]
    fn empty_insert_is_noop() {
        let aqua = Aqua::build(table(100), vec![ColumnId(0)], config()).unwrap();
        aqua.insert_batch(&[]).unwrap();
        assert_eq!(aqua.table_rows(), 100);
    }

    #[test]
    fn build_rejects_bad_inputs() {
        assert!(Aqua::build(table(0).gather(&[]), vec![ColumnId(0)], config()).is_err());
        assert!(Aqua::build(table(10), vec![ColumnId(9)], config()).is_err());
        let mut c = config();
        c.space = 0;
        assert!(Aqua::build(table(10), vec![ColumnId(0)], c).is_err());
    }

    #[test]
    fn answer_sql_runs_figure2_pipeline() {
        let aqua = Aqua::build(table(3000), vec![ColumnId(0)], config()).unwrap();
        let (answer, rewritten) = aqua
            .answer_sql("SELECT g, COUNT(*) AS c FROM t GROUP BY g HAVING c > 100")
            .unwrap();
        assert_eq!(answer.result.group_count(), 2); // both groups exceed 100
                                                    // Rewritten SQL reflects the configured Nested-integrated plan.
        assert!(rewritten.contains("samp_rel"), "{rewritten}");
        assert!(rewritten.contains("SF"), "{rewritten}");
        // Bad SQL propagates a parse error.
        assert!(aqua.answer_sql("SELEKT oops").is_err());
        assert!(aqua
            .answer_sql("SELECT COUNT(*) FROM t WHERE nope = 1")
            .is_err());
    }

    #[test]
    fn exact_matches_engine() {
        let t = table(500);
        let aqua = Aqua::build(t.clone(), vec![ColumnId(0)], config()).unwrap();
        let q = count_query();
        let direct = execute_exact(&t, &q).unwrap();
        assert_eq!(aqua.exact(&q).unwrap(), direct);
    }
}
