//! Integrated rewriting (paper Fig 8): the ScaleFactor is stored as an
//! extra column of the sample relation, and every aggregate input is
//! multiplied by it per tuple.

use relation::{Column, ColumnId, DataType, Field, Relation};

use crate::cache::ExecOptions;
use crate::error::Result;
use crate::query::GroupByQuery;
use crate::result::QueryResult;
use crate::rewrite::{aggregate_weighted_opts, SamplePlan};
use crate::stratified::StratifiedInput;

/// Name of the appended ScaleFactor column.
pub const SF_COLUMN: &str = "__sf";

/// The Integrated physical layout: `SampRel(base columns..., __sf)`.
#[derive(Debug, Clone)]
pub struct Integrated {
    rel: Relation,
    sf_col: ColumnId,
    stratum_of_row: Vec<u32>,
}

impl Integrated {
    /// Materialize the layout from a stratified sample.
    pub fn build(input: &StratifiedInput) -> Result<Integrated> {
        input.validate()?;
        let sf = Column::Float(input.row_scale_factors());
        let rel = input
            .rows
            .with_columns(vec![(Field::new(SF_COLUMN, DataType::Float), sf)])?;
        let sf_col = rel.schema().column_id(SF_COLUMN)?;
        Ok(Integrated {
            rel,
            sf_col,
            stratum_of_row: input.stratum_of_row.clone(),
        })
    }

    /// Id of the ScaleFactor column within [`Self::sample_relation`].
    pub fn sf_column(&self) -> ColumnId {
        self.sf_col
    }
}

impl SamplePlan for Integrated {
    fn name(&self) -> &'static str {
        "Integrated"
    }

    fn execute_opts(&self, query: &GroupByQuery, opts: &ExecOptions) -> Result<QueryResult> {
        // The per-row weights are already materialized as the SF column, so
        // the only cacheable state is the group index itself.
        let weights = self
            .rel
            .column(self.sf_col)
            .as_float()
            .expect("SF column is Float by construction");
        aggregate_weighted_opts(&self.rel, weights, query, opts)
    }

    fn sample_relation(&self) -> &Relation {
        &self.rel
    }

    fn rate_change_cost(&self, stratum: u32) -> usize {
        // Every tuple of the stratum stores its own SF copy.
        self.stratum_of_row
            .iter()
            .filter(|&&s| s == stratum)
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aggregate::AggregateSpec;
    use crate::stratified::test_support::sample;
    use relation::{Expr, GroupKey, Value};

    #[test]
    fn layout_appends_sf_column() {
        let p = Integrated::build(&sample()).unwrap();
        let rel = p.sample_relation();
        assert_eq!(rel.schema().width(), 4); // a, b, v, __sf
        assert_eq!(
            rel.column(p.sf_column()).as_float().unwrap(),
            &[2.0, 2.0, 2.0, 1.0, 1.0]
        );
    }

    #[test]
    fn scaled_sum_per_group() {
        let p = Integrated::build(&sample()).unwrap();
        let q = GroupByQuery::new(
            vec![ColumnId(0), ColumnId(1)],
            vec![AggregateSpec::sum(Expr::col(ColumnId(2)), "s")],
        );
        let r = p.execute(&q).unwrap();
        // ("x",1): sampled v ∈ {1,3} at SF 2 → 8
        let k = GroupKey::new(vec![Value::str("x"), Value::Int(1)]);
        assert_eq!(r.get(&k), Some(&[8.0][..]));
    }

    #[test]
    fn invalid_input_rejected() {
        let mut s = sample();
        s.scale_factors[0] = -1.0;
        assert!(Integrated::build(&s).is_err());
    }
}
