//! A SQL front end for the paper's query class.
//!
//! Aqua is SQL-in, SQL-out middleware: "When the user poses an SQL query
//! to the full database, Aqua rewrites the query to use the Aqua synopsis
//! relations" (§2, Figure 2). This module provides both directions for the
//! single-table aggregate class the paper covers:
//!
//! * [`parse`] — text → [`GroupByQuery`](crate::GroupByQuery), resolving column names against a
//!   schema: `SELECT` lists of grouping columns and
//!   SUM/COUNT/AVG/MIN/MAX aggregates over arithmetic expressions,
//!   `WHERE` with comparisons/BETWEEN/AND/OR/NOT, `GROUP BY`, `HAVING`.
//! * [`render()`] — [`GroupByQuery`](crate::GroupByQuery) → canonical SQL text.
//! * [`render_rewritten`] — the paper's Figures 8–11: the rewritten SQL a
//!   DBMS would execute against the sample relation for each of the four
//!   rewrite strategies.
//! * [`normalize`] — canonical text for plan-cache keying: case,
//!   whitespace, and literal formatting folded so equivalent spellings of
//!   a query share one cache entry.

mod lexer;
mod normalize;
mod parser;
pub mod render;

pub use lexer::{tokenize, Token};
pub use normalize::normalize;
pub use parser::parse;
pub use render::{render, render_rewritten, RewriteKind};

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{execute_exact, GroupByQuery};
    use relation::{DataType, Relation, RelationBuilder, Value};

    fn lineitem() -> Relation {
        let mut b = RelationBuilder::new()
            .column("l_id", DataType::Int)
            .column("l_returnflag", DataType::Str)
            .column("l_linestatus", DataType::Str)
            .column("l_shipdate", DataType::Date)
            .column("l_quantity", DataType::Float)
            .column("l_extendedprice", DataType::Float);
        let rows: [(i64, &str, &str, i32, f64, f64); 6] = [
            (1, "A", "F", 100, 10.0, 1000.0),
            (2, "N", "F", 200, 20.0, 2000.0),
            (3, "N", "O", 300, 30.0, 3000.0),
            (4, "R", "F", 400, 40.0, 4000.0),
            (5, "A", "F", 500, 50.0, 5000.0),
            (6, "N", "O", 150, 60.0, 6000.0),
        ];
        for (id, rf, ls, sd, q, p) in rows {
            b.push_row(&[
                Value::Int(id),
                Value::str(rf),
                Value::str(ls),
                Value::Date(sd),
                Value::from(q),
                Value::from(p),
            ])
            .unwrap();
        }
        b.finish()
    }

    #[test]
    fn parses_tpcd_q1_shape() {
        let rel = lineitem();
        let q = parse(
            rel.schema(),
            "SELECT l_returnflag, l_linestatus, SUM(l_quantity) AS sum_qty \
             FROM lineitem WHERE l_shipdate <= 300 \
             GROUP BY l_returnflag, l_linestatus;",
        )
        .unwrap();
        assert_eq!(q.grouping.len(), 2);
        assert_eq!(q.aggregates.len(), 1);
        assert_eq!(q.aggregates[0].name, "sum_qty");
        let r = execute_exact(&rel, &q).unwrap();
        // shipdate ≤ 300 keeps rows 1,2,3,6: groups (A,F)=10, (N,F)=20, (N,O)=90
        assert_eq!(r.group_count(), 3);
    }

    #[test]
    fn parse_execute_matches_hand_built() {
        use crate::AggregateSpec;
        use relation::{ColumnId, Expr, Predicate};
        let rel = lineitem();
        let text = "select sum(l_quantity), count(*), avg(l_extendedprice) \
                    from lineitem where l_id between 2 and 5 group by l_returnflag";
        let parsed = parse(rel.schema(), text).unwrap();
        let hand = GroupByQuery::new(
            vec![ColumnId(1)],
            vec![
                AggregateSpec::sum(Expr::col(ColumnId(4)), "sum_l_quantity"),
                AggregateSpec::count("count_star"),
                AggregateSpec::avg(Expr::col(ColumnId(5)), "avg_l_extendedprice"),
            ],
        )
        .with_predicate(Predicate::between(ColumnId(0), 2i64, 5i64));
        assert_eq!(
            execute_exact(&rel, &parsed).unwrap().rows(),
            execute_exact(&rel, &hand).unwrap().rows()
        );
    }

    #[test]
    fn parses_expressions_and_having() {
        let rel = lineitem();
        let q = parse(
            rel.schema(),
            "SELECT l_returnflag, SUM(l_extendedprice * (1 - 0.1)) AS rev \
             FROM lineitem GROUP BY l_returnflag HAVING rev > 5000",
        )
        .unwrap();
        assert!(q.having.is_some());
        let r = execute_exact(&rel, &q).unwrap();
        // revenues: A = 5400, N = 9900, R = 3600 → HAVING keeps A and N.
        assert_eq!(r.group_count(), 2);
    }

    #[test]
    fn parses_boolean_predicates() {
        let rel = lineitem();
        let q = parse(
            rel.schema(),
            "SELECT COUNT(*) FROM lineitem \
             WHERE l_returnflag = 'N' AND (l_quantity >= 30 OR NOT l_linestatus = 'O')",
        )
        .unwrap();
        let r = execute_exact(&rel, &q).unwrap();
        // N rows: 2 (q20, F → NOT O true), 3 (q30, O), 6 (q60, O) → all 3.
        assert_eq!(r.scalar(), Some(3.0));
    }

    #[test]
    fn round_trip_through_render() {
        let rel = lineitem();
        let text = "SELECT l_returnflag, AVG(l_quantity) AS aq FROM lineitem \
                    WHERE l_quantity > 15 GROUP BY l_returnflag HAVING aq >= 20";
        let q1 = parse(rel.schema(), text).unwrap();
        let rendered = render(&q1, rel.schema(), "lineitem").unwrap();
        let q2 = parse(rel.schema(), &rendered).unwrap();
        assert_eq!(
            execute_exact(&rel, &q1).unwrap(),
            execute_exact(&rel, &q2).unwrap()
        );
    }

    #[test]
    fn figure2_query_verbatim_with_oracle_date() {
        // The paper's Figure 2(a), character for character (modulo the
        // table's contents): Oracle-style date literal and all.
        let rel = lineitem();
        let q = parse(
            rel.schema(),
            "select l_returnflag, l_linestatus, sum(l_quantity) \
             from lineitem \
             where l_shipdate <= '01-SEP-98' \
             group by l_returnflag, l_linestatus;",
        )
        .unwrap();
        // '01-SEP-98' = day 10470 — far above every shipdate in the
        // fixture, so the answer matches the unfiltered query.
        let all = parse(
            rel.schema(),
            "select l_returnflag, l_linestatus, sum(l_quantity) \
             from lineitem group by l_returnflag, l_linestatus",
        )
        .unwrap();
        assert_eq!(
            execute_exact(&rel, &q).unwrap(),
            execute_exact(&rel, &all).unwrap()
        );
        // And a tight Oracle-style date actually filters everything out.
        let narrow = parse(
            rel.schema(),
            "select count(*) from lineitem where l_shipdate <= '01-JAN-1970'",
        )
        .unwrap();
        assert!(execute_exact(&rel, &narrow).unwrap().is_empty());
    }

    #[test]
    fn errors_are_informative() {
        let rel = lineitem();
        for (text, needle) in [
            ("SELECT FROM lineitem", "expected"),
            ("SELECT SUM(nope) FROM lineitem", "unknown column"),
            ("SELECT l_returnflag FROM lineitem", "GROUP BY"),
            (
                "SELECT l_returnflag FROM lineitem GROUP BY l_returnflag",
                "aggregate",
            ),
            ("SELECT SUM(l_quantity) FROM", "table name"),
            (
                "SELECT SUM(l_quantity) FROM t GROUP BY nope",
                "unknown column",
            ),
            (
                "SELECT l_id, SUM(l_quantity) FROM t GROUP BY l_returnflag",
                "GROUP BY",
            ),
            ("FOO BAR", "SELECT"),
            ("SELECT COUNT(l_id) FROM t", "COUNT"),
        ] {
            let err = parse(rel.schema(), text).unwrap_err().to_string();
            assert!(
                err.to_lowercase().contains(&needle.to_lowercase()),
                "{text:?} → {err:?} (wanted {needle:?})"
            );
        }
    }
}
