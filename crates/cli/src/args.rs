//! Hand-rolled argument parsing: `--flag value` options, `--flag`
//! booleans, and positional arguments, with typed getters.

use std::collections::HashMap;

use crate::{CliError, Result};

/// Flags that take no value.
const BOOLEAN_FLAGS: &[&str] = &["demo", "help", "quiet", "degrade", "prometheus", "json"];

/// Parsed command line: `command [--flag [value]]... [positional]...`.
#[derive(Debug, Clone, Default)]
pub struct Args {
    /// The subcommand (first non-flag token).
    pub command: String,
    flags: HashMap<String, String>,
    positional: Vec<String>,
}

impl Args {
    /// Parse raw arguments (excluding the program name).
    pub fn parse<I: IntoIterator<Item = String>>(raw: I) -> Result<Args> {
        let mut args = Args::default();
        let mut iter = raw.into_iter().peekable();
        while let Some(tok) = iter.next() {
            if let Some(name) = tok.strip_prefix("--") {
                if name.is_empty() {
                    return Err("empty flag `--`".into());
                }
                if BOOLEAN_FLAGS.contains(&name) {
                    args.flags.insert(name.to_string(), "true".to_string());
                } else {
                    let value = iter
                        .next()
                        .ok_or_else(|| CliError::from(format!("flag --{name} requires a value")))?;
                    args.flags.insert(name.to_string(), value);
                }
            } else if args.command.is_empty() {
                args.command = tok;
            } else {
                args.positional.push(tok);
            }
        }
        Ok(args)
    }

    /// String flag.
    pub fn get(&self, name: &str) -> Option<&str> {
        self.flags.get(name).map(String::as_str)
    }

    /// Boolean flag presence.
    pub fn has(&self, name: &str) -> bool {
        self.flags.contains_key(name)
    }

    /// Required string flag.
    pub fn require(&self, name: &str) -> Result<&str> {
        self.get(name)
            .ok_or_else(|| format!("missing required flag --{name}"))
    }

    /// Typed flag with default.
    pub fn get_parsed<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T> {
        match self.get(name) {
            None => Ok(default),
            Some(raw) => raw
                .parse()
                .map_err(|_| format!("flag --{name}: cannot parse `{raw}`")),
        }
    }

    /// Comma-separated list flag.
    pub fn get_list(&self, name: &str) -> Option<Vec<String>> {
        self.get(name).map(|raw| {
            raw.split(',')
                .map(str::trim)
                .filter(|s| !s.is_empty())
                .map(str::to_string)
                .collect()
        })
    }

    /// The positional arguments.
    pub fn positional(&self) -> &[String] {
        &self.positional
    }

    /// Exactly one positional argument (e.g. the SQL text).
    pub fn one_positional(&self, what: &str) -> Result<&str> {
        match self.positional.as_slice() {
            [one] => Ok(one),
            [] => Err(format!("expected {what} as a positional argument")),
            _ => Err(format!(
                "expected exactly one {what}, got {:?}",
                self.positional
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(tokens: &[&str]) -> Args {
        Args::parse(tokens.iter().map(|s| s.to_string())).unwrap()
    }

    #[test]
    fn parses_command_flags_and_positionals() {
        let a = parse(&[
            "query", "--csv", "data.csv", "--space", "5000", "--demo", "SELECT 1",
        ]);
        assert_eq!(a.command, "query");
        assert_eq!(a.get("csv"), Some("data.csv"));
        assert_eq!(a.get_parsed::<usize>("space", 0).unwrap(), 5000);
        assert!(a.has("demo"));
        assert_eq!(a.one_positional("sql").unwrap(), "SELECT 1");
    }

    #[test]
    fn defaults_and_errors() {
        let a = parse(&["plan"]);
        assert_eq!(a.get_parsed::<f64>("skew", 0.86).unwrap(), 0.86);
        assert!(a.require("space").is_err());
        assert!(a.one_positional("sql").is_err());

        assert!(Args::parse(["--space".to_string()]).is_err()); // missing value
        let bad = parse(&["plan", "--space", "abc"]);
        assert!(bad.get_parsed::<usize>("space", 0).is_err());
    }

    #[test]
    fn list_flag() {
        let a = parse(&["inspect", "--group-by", "a, b,,c"]);
        assert_eq!(
            a.get_list("group-by").unwrap(),
            vec!["a".to_string(), "b".to_string(), "c".to_string()]
        );
        assert_eq!(a.get_list("nope"), None);
    }

    #[test]
    fn multiple_positionals_rejected_when_one_expected() {
        let a = parse(&["query", "one", "two"]);
        assert!(a.one_positional("sql").is_err());
        assert_eq!(a.positional().len(), 2);
    }
}
