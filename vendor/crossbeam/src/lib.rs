//! Offline `crossbeam` facade.
//!
//! Only `crossbeam::thread::scope` is used by the workspace; it is mapped
//! onto `std::thread::scope` (stable since 1.63), preserving crossbeam's
//! call shape: the spawned closure receives the scope as an argument and
//! `scope(..)` returns a `Result`.

pub mod thread {
    use std::any::Any;

    /// Error payload from a scoped thread that panicked.
    pub type BoxedPanic = Box<dyn Any + Send + 'static>;

    /// A scope handle passed both to the `scope` closure and to every
    /// spawned closure (crossbeam lets children spawn siblings).
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Clone for Scope<'scope, 'env> {
        fn clone(&self) -> Self {
            *self
        }
    }
    impl<'scope, 'env> Copy for Scope<'scope, 'env> {}

    /// Handle to a spawned scoped thread.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        /// Wait for the thread to finish; `Err` carries its panic payload.
        pub fn join(self) -> Result<T, BoxedPanic> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawn a thread inside the scope. The closure receives the scope
        /// (crossbeam convention) so it can spawn further threads.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            ScopedJoinHandle {
                inner: inner.spawn(move || f(&Scope { inner })),
            }
        }
    }

    /// Run `f` with a thread scope; all spawned threads are joined before
    /// this returns. Matches crossbeam's `Result`-returning signature —
    /// with std scopes a panic in an unjoined child propagates as a panic
    /// rather than an `Err`, which is strictly less forgiving, so callers
    /// written against crossbeam still behave correctly.
    pub fn scope<'env, F, R>(f: F) -> Result<R, BoxedPanic>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn scope_joins_and_returns() {
        let data = vec![1, 2, 3, 4];
        let total: i32 = super::thread::scope(|s| {
            let handles: Vec<_> = data
                .chunks(2)
                .map(|c| s.spawn(move |_| c.iter().sum::<i32>()))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum()
        })
        .unwrap();
        assert_eq!(total, 10);
    }

    #[test]
    fn nested_spawn_from_child() {
        let n = super::thread::scope(|s| {
            s.spawn(|inner| inner.spawn(|_| 7).join().unwrap())
                .join()
                .unwrap()
        })
        .unwrap();
        assert_eq!(n, 7);
    }
}
