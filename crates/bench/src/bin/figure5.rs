//! Figure 5 worked example: expected sample sizes under every strategy for
//! the paper's four-group relation (3000/3000/1500/2500 tuples, X = 100).
//!
//! Run: `cargo run -p bench --release --bin figure5`
//!
//! The printed numbers should match the paper's Figure 5 exactly (up to
//! rounding): House 30/30/15/25; Senate 25 each; Basic Congress
//! 27.3/27.3/22.7/22.7; Congress 23.5/23.5/17.7/35.3.

use congress::alloc::{AllocationStrategy, BasicCongress, Congress, House, Senate};
use congress::lattice::Grouping;
use congress::GroupCensus;
use relation::{ColumnId, GroupKey, Value};

use bench::report::Table;

fn main() {
    let keys: Vec<GroupKey> = [("a1", "b1"), ("a1", "b2"), ("a1", "b3"), ("a2", "b3")]
        .iter()
        .map(|(a, b)| GroupKey::new(vec![Value::str(*a), Value::str(*b)]))
        .collect();
    let census = GroupCensus::from_counts(
        vec![ColumnId(0), ColumnId(1)],
        keys.clone(),
        vec![3000, 3000, 1500, 2500],
    )
    .expect("valid census");
    let x = 100.0;

    let house = House.allocate(&census, x).unwrap();
    let senate = Senate.allocate(&census, x).unwrap();
    let basic = BasicCongress.allocate(&census, x).unwrap();
    let congress = Congress.allocate(&census, x).unwrap();
    let raw_congress = Congress::raw_targets(&census, x);

    // Per-grouping s_{g,T} columns (Eq 4) for T = {A} and T = {B}.
    let s_for = |t: Grouping| -> Vec<f64> {
        let view = census.supergroups(t);
        (0..census.group_count())
            .map(|g| {
                x / view.group_count as f64 * census.sizes()[g] as f64
                    / view.sizes[view.supergroup_of[g] as usize] as f64
            })
            .collect()
    };
    let s_a = s_for(Grouping::from_positions(&[0]));
    let s_b = s_for(Grouping::from_positions(&[1]));

    let mut table = Table::new(
        "Figure 5: expected sample sizes for X = 100",
        &[
            "A",
            "B",
            "House",
            "Senate",
            "BasicCongress",
            "s_g,A",
            "s_g,B",
            "Congress(raw)",
            "Congress",
        ],
    );
    for (g, key) in keys.iter().enumerate() {
        table.row(&[
            key.values()[0].to_string(),
            key.values()[1].to_string(),
            format!("{:.1}", house.targets()[g]),
            format!("{:.1}", senate.targets()[g]),
            format!("{:.1}", basic.targets()[g]),
            format!("{:.1}", s_a[g]),
            format!("{:.1}", s_b[g]),
            format!("{:.1}", raw_congress[g]),
            format!("{:.1}", congress.targets()[g]),
        ]);
    }
    println!("{table}");
    println!(
        "Basic Congress scale-down f = {:.4}   Congress scale-down f = {:.4}",
        basic.scale_down_factor(),
        congress.scale_down_factor()
    );
    println!("(paper: BC before scaling sums to 110; Congress raw sums to ~141.7)");
}
