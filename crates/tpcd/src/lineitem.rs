//! The paper's `lineitem` schema (§7.1.1).
//!
//! | Attribute | Type | Role |
//! |---|---|---|
//! | `l_id` | int (1, 2, …) | primary key (added by the authors for `Q_{g0}`) |
//! | `l_returnflag` | int | grouping |
//! | `l_linestatus` | int | grouping |
//! | `l_shipdate` | date | grouping |
//! | `l_quantity` | float | aggregation |
//! | `l_extendedprice` | float | aggregation |

use relation::{ColumnId, DataType, Field, Relation, Schema};

/// Resolved column ids of the lineitem table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LineitemSchema {
    /// `l_id` — synthetic primary key.
    pub l_id: ColumnId,
    /// `l_returnflag` — grouping.
    pub l_returnflag: ColumnId,
    /// `l_linestatus` — grouping.
    pub l_linestatus: ColumnId,
    /// `l_shipdate` — grouping.
    pub l_shipdate: ColumnId,
    /// `l_quantity` — aggregation.
    pub l_quantity: ColumnId,
    /// `l_extendedprice` — aggregation.
    pub l_extendedprice: ColumnId,
}

impl LineitemSchema {
    /// The schema definition, in declaration order.
    pub fn schema() -> Schema {
        Schema::new(vec![
            Field::new("l_id", DataType::Int),
            Field::new("l_returnflag", DataType::Int),
            Field::new("l_linestatus", DataType::Int),
            Field::new("l_shipdate", DataType::Date),
            Field::new("l_quantity", DataType::Float),
            Field::new("l_extendedprice", DataType::Float),
        ])
        .expect("static schema is valid")
    }

    /// Fixed column ids matching [`Self::schema`].
    pub fn ids() -> LineitemSchema {
        LineitemSchema {
            l_id: ColumnId(0),
            l_returnflag: ColumnId(1),
            l_linestatus: ColumnId(2),
            l_shipdate: ColumnId(3),
            l_quantity: ColumnId(4),
            l_extendedprice: ColumnId(5),
        }
    }

    /// Resolve ids from an existing relation (validates it is lineitem-shaped).
    pub fn resolve(rel: &Relation) -> relation::Result<LineitemSchema> {
        let s = rel.schema();
        Ok(LineitemSchema {
            l_id: s.column_id("l_id")?,
            l_returnflag: s.column_id("l_returnflag")?,
            l_linestatus: s.column_id("l_linestatus")?,
            l_shipdate: s.column_id("l_shipdate")?,
            l_quantity: s.column_id("l_quantity")?,
            l_extendedprice: s.column_id("l_extendedprice")?,
        })
    }

    /// The three grouping columns, in the paper's order.
    pub fn grouping_columns(&self) -> Vec<ColumnId> {
        vec![self.l_returnflag, self.l_linestatus, self.l_shipdate]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schema_shape() {
        let s = LineitemSchema::schema();
        assert_eq!(s.width(), 6);
        assert_eq!(s.fields()[0].name, "l_id");
        assert_eq!(s.fields()[3].data_type, DataType::Date);
        assert_eq!(s.fields()[4].data_type, DataType::Float);
    }

    #[test]
    fn ids_match_schema_order() {
        let ids = LineitemSchema::ids();
        let s = LineitemSchema::schema();
        assert_eq!(s.column_id("l_id").unwrap(), ids.l_id);
        assert_eq!(s.column_id("l_shipdate").unwrap(), ids.l_shipdate);
        assert_eq!(s.column_id("l_extendedprice").unwrap(), ids.l_extendedprice);
        assert_eq!(
            ids.grouping_columns(),
            vec![ids.l_returnflag, ids.l_linestatus, ids.l_shipdate]
        );
    }

    #[test]
    fn resolve_round_trips() {
        let rel = Relation::empty(LineitemSchema::schema());
        let ids = LineitemSchema::resolve(&rel).unwrap();
        assert_eq!(ids, LineitemSchema::ids());
    }
}
