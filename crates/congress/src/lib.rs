#![warn(missing_docs)]

//! Congressional samples: biased sampling for approximate group-by answers.
//!
//! This crate implements the core contribution of *"Congressional Samples
//! for Approximate Answering of Group-By Queries"* (Acharya, Gibbons,
//! Poosala — SIGMOD 2000):
//!
//! * **Census** ([`census::GroupCensus`]) — the per-group counts `n_g` at
//!   the finest grouping `G` and, for every `T ⊆ G`, the super-group
//!   structure (`m_T`, `n_h`) that the allocation formulas need. This is
//!   the "data cube of the counts of each group in all possible groupings"
//!   of §6.
//! * **Allocation strategies** (§4) — [`alloc::House`], [`alloc::Senate`],
//!   [`alloc::BasicCongress`], [`alloc::Congress`], the workload-weighted
//!   variant of §4.7 ([`alloc::WorkloadWeighted`]), and the §8
//!   multi-criteria weight-vector framework ([`alloc::criteria`]).
//! * **Sampling & construction** (§6) — per-group reservoir sampling
//!   ([`build::Reservoir`]), cube-based construction
//!   ([`build::construct_with_census`]), and one-pass incremental
//!   maintainers for House/Senate ([`build::SenateMaintainer`],
//!   [`build::HouseMaintainer`]), Basic Congress
//!   ([`build::BasicCongressMaintainer`], Theorem 6.1) and Congress
//!   ([`build::CongressMaintainer`], the Eq-8 probability scheme).
//! * **Estimation & bounds** — conversion of a sample into the engine's
//!   [`engine::StratifiedInput`] ([`sample::CongressionalSample`]),
//!   plus standard-error / Hoeffding / Chebyshev error bounds
//!   ([`bounds`]) matching Eq 2 and the Aqua error-bound machinery.
//! * **Error metrics** ([`metrics`]) — the ε∞ / εL1 / εL2 group-by error
//!   norms of Definition 3.1, used by every accuracy experiment.
//! * **Parallel construction** — census building
//!   ([`census::GroupCensus::par_build`]), allocation lattice walks, and
//!   per-stratum draws ([`sample::CongressionalSample::draw_par`]) run
//!   across threads, with a deterministic-seeding layer ([`seed::SeedSpec`])
//!   deriving one RNG stream per finest group so the constructed sample is
//!   bit-for-bit identical at any thread count.
//! * **Durable persistence** — a checksummed snapshot encoding
//!   ([`snapshot`], format v2: CRC32C per section plus a whole-file
//!   footer), CRC32C itself ([`checksum`]), and the storage contract the
//!   warehouse recovers through ([`store`]): atomic filesystem writes
//!   ([`store::FsStore`]) and deterministic fault injection
//!   ([`store::FaultyStore`]) so every crash and corruption scenario is
//!   exercised in-tree.

pub mod alloc;
pub mod bounds;
pub mod build;
pub mod census;
pub mod checksum;
pub mod cube;
pub mod error;
pub mod lattice;
pub mod metrics;
pub mod sample;
pub mod seed;
pub mod snapshot;
pub mod store;

pub use alloc::{Allocation, AllocationStrategy, BasicCongress, Congress, House, Senate};
pub use census::GroupCensus;
pub use checksum::{crc32c, Crc32c};
pub use cube::CountCube;
pub use error::{CongressError, Result};
pub use metrics::{compare_results, mac_error, GroupByErrorReport};
pub use sample::CongressionalSample;
pub use seed::SeedSpec;
pub use store::{Fault, FaultyStore, FsStore, MemStore, SnapshotStore, StoreError, StoreResult};
