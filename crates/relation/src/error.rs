//! Error types for the relation layer.

use std::fmt;

use crate::datatype::DataType;

/// Convenience alias used throughout the crate.
pub type Result<T> = std::result::Result<T, RelationError>;

/// Errors produced by schema, column, and relation operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RelationError {
    /// A column name was not found in the schema.
    UnknownColumn(String),
    /// A column id was out of range for the schema.
    ColumnIdOutOfRange {
        /// The offending column index.
        id: usize,
        /// The schema's width.
        width: usize,
    },
    /// A value's type did not match the column's declared type.
    TypeMismatch {
        /// Column name (may be empty when unknown at the error site).
        column: String,
        /// The column's declared type.
        expected: DataType,
        /// The value's actual type.
        actual: DataType,
    },
    /// A row had the wrong number of values for the schema.
    ArityMismatch {
        /// Expected width/length.
        expected: usize,
        /// Actual width/length.
        actual: usize,
    },
    /// Two column names collided while building a schema.
    DuplicateColumn(String),
    /// A row index was out of range for the relation.
    RowOutOfRange {
        /// The offending row index.
        row: usize,
        /// The relation's row count.
        rows: usize,
    },
    /// An expression or predicate referenced a column with an incompatible type.
    InvalidOperandType {
        /// Where the operand appeared.
        context: &'static str,
        /// The operand's actual type.
        actual: DataType,
    },
    /// A binary relation encoding failed validation (torn bytes, hostile
    /// length fields, unknown tags).
    CorruptEncoding(String),
}

impl fmt::Display for RelationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RelationError::UnknownColumn(name) => write!(f, "unknown column `{name}`"),
            RelationError::ColumnIdOutOfRange { id, width } => {
                write!(f, "column id {id} out of range for schema of width {width}")
            }
            RelationError::TypeMismatch {
                column,
                expected,
                actual,
            } => write!(
                f,
                "type mismatch for column `{column}`: expected {expected}, got {actual}"
            ),
            RelationError::ArityMismatch { expected, actual } => {
                write!(
                    f,
                    "row arity mismatch: schema has {expected} columns, row has {actual}"
                )
            }
            RelationError::DuplicateColumn(name) => {
                write!(f, "duplicate column name `{name}`")
            }
            RelationError::RowOutOfRange { row, rows } => {
                write!(
                    f,
                    "row index {row} out of range for relation with {rows} rows"
                )
            }
            RelationError::InvalidOperandType { context, actual } => {
                write!(f, "invalid operand type {actual} in {context}")
            }
            RelationError::CorruptEncoding(m) => write!(f, "corrupt relation encoding: {m}"),
        }
    }
}

impl std::error::Error for RelationError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = RelationError::UnknownColumn("foo".into());
        assert!(e.to_string().contains("foo"));
        let e = RelationError::TypeMismatch {
            column: "bar".into(),
            expected: DataType::Int,
            actual: DataType::Float,
        };
        let msg = e.to_string();
        assert!(msg.contains("bar") && msg.contains("Int") && msg.contains("Float"));
        let e = RelationError::ArityMismatch {
            expected: 3,
            actual: 2,
        };
        assert!(e.to_string().contains('3') && e.to_string().contains('2'));
    }

    #[test]
    fn error_is_std_error() {
        fn takes_err(_e: &dyn std::error::Error) {}
        takes_err(&RelationError::DuplicateColumn("x".into()));
    }
}
