//! Typed group-by query description.

use serde::{Deserialize, Serialize};

use relation::predicate::CmpOp;
use relation::{ColumnId, Predicate, Relation};

use crate::aggregate::AggregateSpec;
use crate::error::{EngineError, Result};

/// A HAVING clause: keep only groups whose aggregate satisfies a
/// comparison. This is the paper's §1.1 motivating query shape — "identify
/// all states with per capita incomes above some value" — evaluated on the
/// *estimated* aggregates when running over a sample.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Having {
    /// Output name of the aggregate being filtered on.
    pub aggregate: String,
    /// Comparison operator.
    pub op: CmpOp,
    /// Literal threshold.
    pub value: f64,
}

impl Having {
    /// `aggregate <op> value`
    pub fn new(aggregate: impl Into<String>, op: CmpOp, value: f64) -> Having {
        Having {
            aggregate: aggregate.into(),
            op,
            value,
        }
    }

    /// Whether a group with aggregate value `v` survives the clause.
    pub fn keeps(&self, v: f64) -> bool {
        let ord = v.total_cmp(&self.value);
        match self.op {
            CmpOp::Eq => ord == std::cmp::Ordering::Equal,
            CmpOp::Ne => ord != std::cmp::Ordering::Equal,
            CmpOp::Lt => ord == std::cmp::Ordering::Less,
            CmpOp::Le => ord != std::cmp::Ordering::Greater,
            CmpOp::Gt => ord == std::cmp::Ordering::Greater,
            CmpOp::Ge => ord != std::cmp::Ordering::Less,
        }
    }
}

/// A single-table aggregate query with optional grouping and predicate —
/// the query class the paper targets (§3.1): `SELECT <grouping>,
/// <aggregates> FROM R WHERE <predicate> GROUP BY <grouping>`.
///
/// An empty `grouping` is the no-group-by query returning a single group.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GroupByQuery {
    /// Grouping columns (possibly empty).
    pub grouping: Vec<ColumnId>,
    /// Aggregates in the SELECT list (at least one).
    pub aggregates: Vec<AggregateSpec>,
    /// WHERE-clause predicate.
    pub predicate: Predicate,
    /// Optional HAVING clause, applied after aggregation.
    pub having: Option<Having>,
}

impl GroupByQuery {
    /// Query with no predicate.
    pub fn new(grouping: Vec<ColumnId>, aggregates: Vec<AggregateSpec>) -> Self {
        GroupByQuery {
            grouping,
            aggregates,
            predicate: Predicate::True,
            having: None,
        }
    }

    /// Attach a predicate (chainable).
    pub fn with_predicate(mut self, p: Predicate) -> Self {
        self.predicate = p;
        self
    }

    /// Attach a HAVING clause (chainable).
    pub fn with_having(mut self, having: Having) -> Self {
        self.having = Some(having);
        self
    }

    /// Apply the HAVING clause (if any) to a computed result.
    pub fn apply_having(&self, result: crate::QueryResult) -> Result<crate::QueryResult> {
        let Some(having) = &self.having else {
            return Ok(result);
        };
        let idx =
            result
                .aggregate_index(&having.aggregate)
                .ok_or(EngineError::MalformedAggregate(
                    "HAVING references an aggregate not in the SELECT list",
                ))?;
        let names = result.aggregate_names.clone();
        let rows = result
            .rows()
            .iter()
            .filter(|(_, vals)| having.keeps(vals[idx]))
            .cloned()
            .collect();
        Ok(crate::QueryResult::new(names, rows))
    }

    /// Whether this is a no-group-by aggregate query.
    pub fn is_scalar(&self) -> bool {
        self.grouping.is_empty()
    }

    /// Validate the query against a relation's schema.
    pub fn validate(&self, rel: &Relation) -> Result<()> {
        if self.aggregates.is_empty() {
            return Err(EngineError::NoAggregates);
        }
        for &c in &self.grouping {
            rel.schema().field(c)?;
        }
        for a in &self.aggregates {
            match (&a.expr, a.func.needs_expr()) {
                (None, true) => {
                    return Err(EngineError::MalformedAggregate(
                        "aggregate requires an expression",
                    ))
                }
                (Some(_), false) => {
                    return Err(EngineError::MalformedAggregate(
                        "COUNT(*) takes no expression",
                    ))
                }
                (Some(e), true) => e.validate(rel)?,
                (None, false) => {}
            }
        }
        self.predicate.validate(rel)?;
        if let Some(h) = &self.having {
            if !self.aggregates.iter().any(|a| a.name == h.aggregate) {
                return Err(EngineError::MalformedAggregate(
                    "HAVING references an aggregate not in the SELECT list",
                ));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aggregate::AggregateSpec;
    use relation::{DataType, Expr, RelationBuilder, Value};

    fn rel() -> Relation {
        let mut b = RelationBuilder::new()
            .column("g", DataType::Str)
            .column("v", DataType::Float);
        b.push_row(&[Value::str("a"), Value::from(1.0)]).unwrap();
        b.finish()
    }

    #[test]
    fn valid_query_passes() {
        let r = rel();
        let q = GroupByQuery::new(
            vec![ColumnId(0)],
            vec![
                AggregateSpec::sum(Expr::col(ColumnId(1)), "s"),
                AggregateSpec::count("c"),
            ],
        );
        assert!(q.validate(&r).is_ok());
        assert!(!q.is_scalar());
    }

    #[test]
    fn scalar_query() {
        let q = GroupByQuery::new(vec![], vec![AggregateSpec::count("c")]);
        assert!(q.is_scalar());
        assert!(q.validate(&rel()).is_ok());
    }

    #[test]
    fn rejects_empty_aggregates() {
        let q = GroupByQuery::new(vec![], vec![]);
        assert_eq!(q.validate(&rel()), Err(EngineError::NoAggregates));
    }

    #[test]
    fn rejects_malformed_aggregates() {
        let r = rel();
        let mut q = GroupByQuery::new(
            vec![],
            vec![AggregateSpec {
                func: crate::AggregateFn::Sum,
                expr: None,
                name: "s".into(),
            }],
        );
        assert!(matches!(
            q.validate(&r),
            Err(EngineError::MalformedAggregate(_))
        ));
        q.aggregates[0] = AggregateSpec {
            func: crate::AggregateFn::Count,
            expr: Some(Expr::lit(1.0)),
            name: "c".into(),
        };
        assert!(matches!(
            q.validate(&r),
            Err(EngineError::MalformedAggregate(_))
        ));
    }

    #[test]
    fn having_keeps_semantics() {
        let h = Having::new("s", CmpOp::Gt, 10.0);
        assert!(h.keeps(11.0));
        assert!(!h.keeps(10.0));
        assert!(Having::new("s", CmpOp::Le, 10.0).keeps(10.0));
        assert!(Having::new("s", CmpOp::Eq, 10.0).keeps(10.0));
        assert!(Having::new("s", CmpOp::Ne, 10.0).keeps(9.0));
        assert!(Having::new("s", CmpOp::Lt, 10.0).keeps(9.0));
        assert!(Having::new("s", CmpOp::Ge, 10.0).keeps(10.0));
    }

    #[test]
    fn having_validated_against_select_list() {
        let r = rel();
        let q = GroupByQuery::new(
            vec![ColumnId(0)],
            vec![AggregateSpec::sum(Expr::col(ColumnId(1)), "s")],
        )
        .with_having(Having::new("nope", CmpOp::Gt, 0.0));
        assert!(matches!(
            q.validate(&r),
            Err(EngineError::MalformedAggregate(_))
        ));
        let ok = GroupByQuery::new(
            vec![ColumnId(0)],
            vec![AggregateSpec::sum(Expr::col(ColumnId(1)), "s")],
        )
        .with_having(Having::new("s", CmpOp::Gt, 0.0));
        assert!(ok.validate(&r).is_ok());
    }

    #[test]
    fn apply_having_filters_groups() {
        use crate::QueryResult;
        use relation::GroupKey;
        let result = QueryResult::new(
            vec!["s".into()],
            vec![
                (GroupKey::new(vec![Value::str("hi")]), vec![100.0]),
                (GroupKey::new(vec![Value::str("lo")]), vec![1.0]),
            ],
        );
        let q = GroupByQuery::new(
            vec![ColumnId(0)],
            vec![AggregateSpec::sum(Expr::col(ColumnId(1)), "s")],
        )
        .with_having(Having::new("s", CmpOp::Ge, 50.0));
        let filtered = q.apply_having(result.clone()).unwrap();
        assert_eq!(filtered.group_count(), 1);
        assert_eq!(filtered.rows()[0].0, GroupKey::new(vec![Value::str("hi")]));
        // No clause → pass-through.
        let plain = GroupByQuery::new(vec![], vec![AggregateSpec::count("c")]);
        assert_eq!(plain.apply_having(result.clone()).unwrap(), result);
    }

    #[test]
    fn rejects_bad_columns() {
        let r = rel();
        let q = GroupByQuery::new(vec![ColumnId(7)], vec![AggregateSpec::count("c")]);
        assert!(q.validate(&r).is_err());
        // sum over string column
        let q = GroupByQuery::new(
            vec![],
            vec![AggregateSpec::sum(Expr::col(ColumnId(0)), "s")],
        );
        assert!(q.validate(&r).is_err());
        // predicate over unknown column
        let q = GroupByQuery::new(vec![], vec![AggregateSpec::count("c")])
            .with_predicate(Predicate::eq(ColumnId(9), 1i64));
        assert!(q.validate(&r).is_err());
    }
}
