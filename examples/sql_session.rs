//! The full Figure-2 experience: SQL in, rewritten SQL + approximate
//! answer with bounds out.
//!
//! A canned analyst session runs TPC-D-flavoured SQL against a 2%
//! congressional synopsis; each step prints the original SQL, the
//! rewritten SQL the middleware would hand the back-end DBMS (Figures
//! 8–11), the approximate answer with 90% bounds, and the exact answer
//! for comparison.
//!
//! Run: `cargo run --release --example sql_session`
//! Pipe your own queries: `echo "SELECT ..." | cargo run --release --example sql_session -- -`

use std::io::BufRead;

use aqua::{Aqua, AquaConfig, SamplingStrategy};
use tpcd::{GeneratorConfig, TpcdDataset};

fn main() {
    let ds = TpcdDataset::generate(GeneratorConfig {
        table_size: 300_000,
        num_groups: 27,
        group_skew: 1.0,
        agg_skew: 0.86,
        seed: 2000,
    });
    let aqua = Aqua::build(
        ds.relation.clone(),
        ds.grouping_columns(),
        AquaConfig {
            space: 6_000,
            strategy: SamplingStrategy::Congress,
            seed: 14,
            ..AquaConfig::default()
        },
    )
    .expect("aqua builds");
    println!(
        "lineitem: {} rows; synopsis: {} tuples (Congress, Nested-integrated)\n",
        aqua.table_rows(),
        aqua.synopsis_rows()
    );

    let canned = [
        "SELECT l_returnflag, l_linestatus, SUM(l_quantity) AS sum_qty \
         FROM lineitem GROUP BY l_returnflag, l_linestatus;",
        "SELECT l_returnflag, AVG(l_extendedprice * (1 - 0.05)) AS avg_discounted \
         FROM lineitem WHERE l_quantity >= 10 GROUP BY l_returnflag;",
        "SELECT COUNT(*) AS n FROM lineitem WHERE l_id BETWEEN 1000 AND 22000;",
        "SELECT l_returnflag, SUM(l_quantity) AS s FROM lineitem \
         GROUP BY l_returnflag HAVING s > 1000000;",
    ];

    let from_stdin = std::env::args().any(|a| a == "-");
    let queries: Vec<String> = if from_stdin {
        std::io::stdin()
            .lock()
            .lines()
            .map_while(std::io::Result::ok)
            .filter(|l| !l.trim().is_empty())
            .collect()
    } else {
        canned.iter().map(|s| s.to_string()).collect()
    };

    for sql in queries {
        println!("── SQL ──────────────────────────────────────────────");
        println!("{sql}");
        match aqua.answer_sql(&sql) {
            Ok((answer, rewritten)) => {
                println!("── rewritten for the synopsis (Figure 8–11 style) ──");
                println!("{rewritten}");
                println!("── approximate answer ──");
                print!("{answer}");
                match engine::sql::parse(ds.relation.schema(), &sql)
                    .map_err(aqua::AquaError::from)
                    .and_then(|q| aqua.exact(&q))
                {
                    Ok(exact) => {
                        println!("── exact answer ──");
                        print!("{exact}");
                    }
                    Err(e) => println!("(exact execution failed: {e})"),
                }
            }
            Err(e) => println!("error: {e}"),
        }
        println!();
    }
}
