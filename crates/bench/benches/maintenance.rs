//! Criterion bench for §6 incremental maintenance: per-tuple insert
//! throughput of the four maintainers. The paper flags Congress's
//! Θ(2^|G|) per-insert bookkeeping — visible here.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rand::rngs::StdRng;
use rand::SeedableRng;

use congress::build::{
    BasicCongressMaintainer, CongressMaintainer, HouseMaintainer, IncrementalMaintainer,
    SenateMaintainer,
};
use relation::{GroupKey, Value};

/// A pre-materialized insert stream: 20K tuples over 100 (a, b) groups.
fn stream() -> Vec<(usize, GroupKey)> {
    (0..20_000usize)
        .map(|r| {
            let a = (r * 7919) % 10;
            let b = (r * 104_729) % 10;
            (
                r,
                GroupKey::new(vec![Value::Int(a as i64), Value::Int(b as i64)]),
            )
        })
        .collect()
}

fn bench_maintenance(c: &mut Criterion) {
    let items = stream();
    let n = items.len() as u64;
    let mut group = c.benchmark_group("maintainer_insert");
    group.sample_size(10);
    group.throughput(Throughput::Elements(n));

    group.bench_function(BenchmarkId::from_parameter("House"), |b| {
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(5);
            let mut m = HouseMaintainer::new(1000);
            for (r, k) in &items {
                m.insert(*r, k, &mut rng);
            }
            m.sample_len()
        })
    });
    group.bench_function(BenchmarkId::from_parameter("Senate"), |b| {
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(5);
            let mut m = SenateMaintainer::new(1000);
            for (r, k) in &items {
                m.insert(*r, k, &mut rng);
            }
            m.sample_len()
        })
    });
    group.bench_function(BenchmarkId::from_parameter("BasicCongress"), |b| {
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(5);
            let mut m = BasicCongressMaintainer::new(1000);
            for (r, k) in &items {
                m.insert(*r, k, &mut rng);
            }
            m.sample_len()
        })
    });
    group.bench_function(BenchmarkId::from_parameter("Congress"), |b| {
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(5);
            let mut m = CongressMaintainer::new(2, 1000.0);
            for (r, k) in &items {
                m.insert(*r, k, &mut rng);
            }
            m.sample_len()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_maintenance);
criterion_main!(benches);
