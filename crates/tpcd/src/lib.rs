#![warn(missing_docs)]

//! TPC-D-style test data and queries, as modified by the paper (§7.1.1).
//!
//! The paper evaluates on the TPC-D `lineitem` table after replacing its
//! near-uniform group structure with controlled skew: group sizes follow a
//! Zipf distribution with parameter `z ∈ [0, 1.5]` over the groups at the
//! finest grouping `{l_returnflag, l_linestatus, l_shipdate}`, aggregate
//! columns follow Zipf(0.86) (the classic 90-10 rule), the number of
//! groups varies from 10 to 200K with `NG^(1/3)` distinct values per
//! grouping column, and `l_id` is a uniformly-shuffled key so that range
//! predicates on it select uniformly across groups (query set `Q_{g0}`).
//!
//! This crate regenerates that data deterministically ([`gen`]) and builds
//! the three query shapes of Table 2 ([`queries`]).

pub mod gen;
pub mod lineitem;
pub mod queries;
pub mod star;
pub mod zipf;

pub use gen::{GeneratorConfig, TpcdDataset};
pub use lineitem::LineitemSchema;
pub use queries::{q_g0, q_g0_set, q_g2, q_g3};
pub use star::{StarConfig, StarSchema};
pub use zipf::{zipf_sizes, Zipf};
