//! Deterministic generator for the paper's modified TPC-D data (§7.1.1,
//! Table 1).

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

use relation::{Column, Relation};

use crate::lineitem::LineitemSchema;
use crate::zipf::{zipf_sizes, Zipf};

/// Table 1's experiment parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GeneratorConfig {
    /// Table size `T` (100K – 6M in the paper; default 1M).
    pub table_size: usize,
    /// Requested number of groups `NG` (10 – 200K; default 1000). Each
    /// grouping column gets `⌈NG^(1/3)⌉` distinct values, so the actual
    /// group count is the cube of that (the paper's construction).
    pub num_groups: usize,
    /// Group-size skew `z` (0 – 1.5; default 0.86).
    pub group_skew: f64,
    /// Aggregate-column skew (fixed at 0.86 in the paper).
    pub agg_skew: f64,
    /// RNG seed for reproducible datasets.
    pub seed: u64,
}

impl Default for GeneratorConfig {
    fn default() -> Self {
        GeneratorConfig {
            table_size: 1_000_000,
            num_groups: 1000,
            group_skew: 0.86,
            agg_skew: 0.86,
            seed: 0x5151_AC00,
        }
    }
}

impl GeneratorConfig {
    /// Distinct values per grouping column: `⌈NG^(1/3)⌉`, at least 1.
    pub fn values_per_column(&self) -> usize {
        ((self.num_groups as f64).powf(1.0 / 3.0).round() as usize).max(1)
    }

    /// Actual group count (`values_per_column³`).
    pub fn actual_groups(&self) -> usize {
        let d = self.values_per_column();
        d * d * d
    }
}

/// A generated lineitem table plus its resolved schema and configuration.
#[derive(Debug, Clone)]
pub struct TpcdDataset {
    /// The generated relation, in randomly shuffled physical order.
    pub relation: Relation,
    /// Resolved column ids.
    pub ids: LineitemSchema,
    /// The configuration that produced it.
    pub config: GeneratorConfig,
    /// Group sizes actually materialized (indexed by internal group number).
    group_sizes: Vec<u64>,
}

impl TpcdDataset {
    /// Generate the dataset. Deterministic in `config.seed`.
    pub fn generate(config: GeneratorConfig) -> TpcdDataset {
        assert!(
            config.table_size >= config.actual_groups(),
            "table must hold at least one tuple per group"
        );
        let mut rng = StdRng::seed_from_u64(config.seed);
        let d = config.values_per_column();
        let groups = config.actual_groups();
        let t = config.table_size;

        // Zipf group sizes, assigned to groups in random order so that size
        // does not correlate with key structure.
        let mut sizes = zipf_sizes(groups, t as u64, config.group_skew);
        sizes.shuffle(&mut rng);

        // Distinct grouping values: small ints for returnflag/linestatus,
        // spread-out day numbers for shipdate (as in six years of dates).
        let shipdate_values: Vec<i32> = (0..d)
            .map(|i| 9_500 + (i as i32) * (2_190 / d.max(1) as i32 + 1))
            .collect();

        // Aggregate-value distributions (Zipf over realistic domains).
        let qty_dist = Zipf::new(50, config.agg_skew);
        let price_dist = Zipf::new(1000, config.agg_skew);

        // Materialize per-group rows, then shuffle physical order and
        // assign l_id sequentially so that an l_id range is a uniformly
        // random subset of groups (the paper's Q_{g0} workload needs this).
        let mut returnflag = Vec::with_capacity(t);
        let mut linestatus = Vec::with_capacity(t);
        let mut shipdate = Vec::with_capacity(t);
        let mut quantity = Vec::with_capacity(t);
        let mut price = Vec::with_capacity(t);
        for (g, &n) in sizes.iter().enumerate() {
            let rf = (g / (d * d)) as i64;
            let ls = ((g / d) % d) as i64;
            let sd = shipdate_values[g % d];
            for _ in 0..n {
                returnflag.push(rf);
                linestatus.push(ls);
                shipdate.push(sd);
                quantity.push(qty_dist.sample(&mut rng) as f64);
                price.push(price_dist.sample(&mut rng) as f64 * 100.0);
            }
        }
        let mut perm: Vec<usize> = (0..t).collect();
        perm.shuffle(&mut rng);

        let apply_i64 = |v: &[i64]| -> Vec<i64> { perm.iter().map(|&p| v[p]).collect() };
        let apply_i32 = |v: &[i32]| -> Vec<i32> { perm.iter().map(|&p| v[p]).collect() };
        let apply_f64 = |v: &[f64]| -> Vec<f64> { perm.iter().map(|&p| v[p]).collect() };

        let l_id: Vec<i64> = (1..=t as i64).collect();
        let relation = Relation::new(
            LineitemSchema::schema(),
            vec![
                Column::Int(l_id),
                Column::Int(apply_i64(&returnflag)),
                Column::Int(apply_i64(&linestatus)),
                Column::Date(apply_i32(&shipdate)),
                Column::Float(apply_f64(&quantity)),
                Column::Float(apply_f64(&price)),
            ],
        )
        .expect("generated columns match the lineitem schema");

        TpcdDataset {
            relation,
            ids: LineitemSchema::ids(),
            config,
            group_sizes: sizes,
        }
    }

    /// The grouping columns `G = {l_returnflag, l_linestatus, l_shipdate}`.
    pub fn grouping_columns(&self) -> Vec<relation::ColumnId> {
        self.ids.grouping_columns()
    }

    /// Group sizes as generated (before shuffling into physical order).
    pub fn group_sizes(&self) -> &[u64] {
        &self.group_sizes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use engine::GroupIndex;

    fn small() -> GeneratorConfig {
        GeneratorConfig {
            table_size: 20_000,
            num_groups: 27,
            group_skew: 1.0,
            agg_skew: 0.86,
            seed: 42,
        }
    }

    #[test]
    fn config_group_math() {
        let c = GeneratorConfig {
            num_groups: 1000,
            ..GeneratorConfig::default()
        };
        assert_eq!(c.values_per_column(), 10);
        assert_eq!(c.actual_groups(), 1000);
        let c = GeneratorConfig {
            num_groups: 10,
            ..GeneratorConfig::default()
        };
        assert_eq!(c.values_per_column(), 2);
        assert_eq!(c.actual_groups(), 8);
    }

    #[test]
    fn generates_requested_shape() {
        let ds = TpcdDataset::generate(small());
        assert_eq!(ds.relation.row_count(), 20_000);
        assert_eq!(ds.relation.schema().width(), 6);
        assert_eq!(ds.group_sizes().len(), 27);
        assert_eq!(ds.group_sizes().iter().sum::<u64>(), 20_000);
    }

    #[test]
    fn grouping_columns_form_expected_groups() {
        let ds = TpcdDataset::generate(small());
        let ix = GroupIndex::build(&ds.relation, &ds.grouping_columns());
        assert_eq!(ix.group_count(), 27);
        let mut observed: Vec<u64> = ix.group_sizes().into_iter().map(|s| s as u64).collect();
        observed.sort_unstable();
        let mut expected = ds.group_sizes().to_vec();
        expected.sort_unstable();
        assert_eq!(observed, expected);
    }

    #[test]
    fn lid_is_sequential_primary_key() {
        let ds = TpcdDataset::generate(small());
        let ids = ds.relation.column(ds.ids.l_id).as_int().unwrap();
        assert_eq!(ids[0], 1);
        assert_eq!(ids[19_999], 20_000);
        assert!(ids.windows(2).all(|w| w[1] == w[0] + 1));
    }

    #[test]
    fn lid_ranges_are_group_uniform() {
        // A contiguous l_id range should hit groups roughly in proportion
        // to their sizes — the property Q_{g0} depends on.
        let ds = TpcdDataset::generate(GeneratorConfig {
            table_size: 50_000,
            num_groups: 8,
            group_skew: 1.0,
            ..small()
        });
        let ix = GroupIndex::build(&ds.relation, &ds.grouping_columns());
        let sizes = ix.group_sizes();
        // first 10% of physical rows
        let mut in_range = vec![0usize; ix.group_count()];
        for r in 0..5_000 {
            in_range[ix.group_of(r) as usize] += 1;
        }
        for g in 0..ix.group_count() {
            let expect = sizes[g] as f64 * 0.1;
            assert!(
                (in_range[g] as f64 - expect).abs() < expect * 0.25 + 10.0,
                "group {g}: {} vs {expect}",
                in_range[g]
            );
        }
    }

    #[test]
    fn skew_shows_up_in_group_sizes() {
        let skewed = TpcdDataset::generate(GeneratorConfig {
            group_skew: 1.5,
            ..small()
        });
        let flat = TpcdDataset::generate(GeneratorConfig {
            group_skew: 0.0,
            ..small()
        });
        let max_skew = *skewed.group_sizes().iter().max().unwrap();
        let max_flat = *flat.group_sizes().iter().max().unwrap();
        assert!(max_skew > max_flat * 3);
    }

    #[test]
    fn deterministic_per_seed() {
        let a = TpcdDataset::generate(small());
        let b = TpcdDataset::generate(small());
        let qa = a.relation.column(a.ids.l_quantity).as_float().unwrap();
        let qb = b.relation.column(b.ids.l_quantity).as_float().unwrap();
        assert_eq!(qa, qb);
        let c = TpcdDataset::generate(GeneratorConfig {
            seed: 43,
            ..small()
        });
        let qc = c.relation.column(c.ids.l_quantity).as_float().unwrap();
        assert_ne!(qa, qc);
    }

    #[test]
    fn aggregate_values_in_domain() {
        let ds = TpcdDataset::generate(small());
        let q = ds.relation.column(ds.ids.l_quantity).as_float().unwrap();
        assert!(q.iter().all(|&v| (1.0..=50.0).contains(&v)));
        let p = ds
            .relation
            .column(ds.ids.l_extendedprice)
            .as_float()
            .unwrap();
        assert!(p.iter().all(|&v| (100.0..=100_000.0).contains(&v)));
    }

    #[test]
    #[should_panic(expected = "at least one tuple per group")]
    fn rejects_infeasible_config() {
        let _ = TpcdDataset::generate(GeneratorConfig {
            table_size: 10,
            num_groups: 1000,
            ..small()
        });
    }
}
