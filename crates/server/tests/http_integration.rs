//! End-to-end tests through real sockets: an ephemeral-port server,
//! plain `std::net::TcpStream` clients, and assertions on status codes,
//! bodies, metrics, keep-alive, coalescing, and load shedding.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread;
use std::time::Duration;

use aqua::{AnswerProvenance, ApproximateAnswer, Aqua, AquaConfig, SamplingStrategy, ServedAnswer};
use engine::QueryResult;
use relation::{DataType, RelationBuilder, Value};
use server::{BackendError, QueryBackend, Server, ServerConfig};

// -----------------------------------------------------------------
// Minimal blocking HTTP client
// -----------------------------------------------------------------

struct Client {
    stream: TcpStream,
}

struct Response {
    status: u16,
    body: String,
    keep_alive: bool,
}

impl Client {
    fn connect(addr: SocketAddr) -> Client {
        let stream = TcpStream::connect(addr).expect("connect");
        stream
            .set_read_timeout(Some(Duration::from_secs(30)))
            .unwrap();
        Client { stream }
    }

    fn send_raw(&mut self, raw: &[u8]) {
        self.stream.write_all(raw).expect("write request");
    }

    fn request(&mut self, method: &str, path: &str, body: Option<&str>) -> Response {
        let body = body.unwrap_or("");
        let raw = format!(
            "{method} {path} HTTP/1.1\r\nHost: test\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        );
        self.send_raw(raw.as_bytes());
        self.read_response()
    }

    /// Read exactly one response (head + `Content-Length` body).
    fn read_response(&mut self) -> Response {
        let mut buf = Vec::new();
        let mut chunk = [0u8; 4096];
        let head_end = loop {
            if let Some(i) = buf.windows(4).position(|w| w == b"\r\n\r\n") {
                break i;
            }
            let n = self.stream.read(&mut chunk).expect("read response head");
            assert!(n > 0, "connection closed mid-response: {buf:?}");
            buf.extend_from_slice(&chunk[..n]);
        };
        let head = String::from_utf8(buf[..head_end].to_vec()).unwrap();
        let status: u16 = head
            .split_whitespace()
            .nth(1)
            .expect("status code")
            .parse()
            .expect("numeric status");
        let mut content_length = 0usize;
        let mut keep_alive = true;
        for line in head.split("\r\n").skip(1) {
            let Some((name, value)) = line.split_once(':') else {
                continue;
            };
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value.trim().parse().unwrap();
            } else if name.eq_ignore_ascii_case("connection") {
                keep_alive = !value.trim().eq_ignore_ascii_case("close");
            }
        }
        let mut body = buf[head_end + 4..].to_vec();
        while body.len() < content_length {
            let n = self.stream.read(&mut chunk).expect("read response body");
            assert!(n > 0, "connection closed mid-body");
            body.extend_from_slice(&chunk[..n]);
        }
        body.truncate(content_length);
        Response {
            status,
            body: String::from_utf8(body).unwrap(),
            keep_alive,
        }
    }
}

fn query_once(addr: SocketAddr, sql: &str) -> Response {
    let mut c = Client::connect(addr);
    c.request(
        "POST",
        "/query",
        Some(&format!("{{\"sql\": \"{}\"}}", sql.replace('"', "\\\""))),
    )
}

// -----------------------------------------------------------------
// Backends
// -----------------------------------------------------------------

fn census_aqua() -> Arc<Aqua> {
    let mut b = RelationBuilder::new()
        .column("state", DataType::Str)
        .column("income", DataType::Float);
    for i in 0..400i64 {
        let st = match i % 10 {
            0 => "WY",
            1..=3 => "NY",
            _ => "CA",
        };
        b.push_row(&[Value::str(st), Value::from(1000.0 + i as f64)])
            .unwrap();
    }
    let config = AquaConfig {
        space: 120,
        strategy: SamplingStrategy::Congress,
        ..AquaConfig::default()
    };
    let grouping = vec![relation::ColumnId(0)];
    Arc::new(Aqua::build(b.finish(), grouping, config).unwrap())
}

/// A backend that parks every `/query` until `release()` — makes queue
/// overflow deterministic instead of a timing race.
struct BlockingBackend {
    entered: AtomicUsize,
    gate: Mutex<bool>,
    cv: Condvar,
}

impl BlockingBackend {
    fn new() -> Arc<BlockingBackend> {
        Arc::new(BlockingBackend {
            entered: AtomicUsize::new(0),
            gate: Mutex::new(false),
            cv: Condvar::new(),
        })
    }

    fn release(&self) {
        *self.gate.lock().unwrap() = true;
        self.cv.notify_all();
    }

    fn wait_entered(&self, n: usize) {
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        while self.entered.load(Ordering::SeqCst) < n {
            assert!(
                std::time::Instant::now() < deadline,
                "backend never saw {n} queries"
            );
            thread::sleep(Duration::from_millis(5));
        }
    }
}

impl QueryBackend for BlockingBackend {
    fn answer_sql(
        &self,
        _relation: Option<&str>,
        sql: &str,
    ) -> Result<Arc<ServedAnswer>, BackendError> {
        self.entered.fetch_add(1, Ordering::SeqCst);
        let mut released = self.gate.lock().unwrap();
        while !*released {
            released = self.cv.wait(released).unwrap();
        }
        drop(released);
        Ok(Arc::new(ServedAnswer {
            answer: ApproximateAnswer {
                result: QueryResult::new(vec![sql.to_string()], Vec::new()),
                bounds: Vec::new(),
                confidence: 0.95,
                provenance: AnswerProvenance::Sampled,
            },
            rewritten: String::new(),
        }))
    }

    fn stats(&self) -> obs::Snapshot {
        obs::Registry::new().snapshot()
    }
}

// -----------------------------------------------------------------
// Tests
// -----------------------------------------------------------------

#[test]
fn happy_path_and_keep_alive() {
    let server = Server::bind(ServerConfig::default(), census_aqua()).unwrap();
    let addr = server.local_addr();

    let mut c = Client::connect(addr);
    let r = c.request("GET", "/healthz", None);
    assert_eq!((r.status, r.body.as_str()), (200, "ok\n"));
    assert!(r.keep_alive);

    // Same connection serves a query next — keep-alive works.
    let r = c.request(
        "POST",
        "/query",
        Some(r#"{"sql": "SELECT state, AVG(income) AS a FROM census GROUP BY state"}"#),
    );
    assert_eq!(r.status, 200, "body: {}", r.body);
    assert!(r.body.contains("\"provenance\":\"sampled\""));
    assert!(r.body.contains("\"aggregates\":[\"a\"]"));
    assert!(r.body.contains("\"rewritten\":\"SELECT"));
    assert!(r.body.contains("CA") && r.body.contains("NY") && r.body.contains("WY"));
    assert!(r.body.contains("\"bounds\":["));

    // Raw SQL body (no JSON wrapper) works too.
    let r = c.request(
        "POST",
        "/query",
        Some("SELECT state, COUNT(*) AS c FROM census GROUP BY state"),
    );
    assert_eq!(r.status, 200, "body: {}", r.body);

    server.shutdown();
}

#[test]
fn concurrent_clients_agree() {
    let server = Server::bind(ServerConfig::default(), census_aqua()).unwrap();
    let addr = server.local_addr();
    let sql = "SELECT state, SUM(income) AS s FROM census GROUP BY state";

    let baseline = query_once(addr, sql);
    assert_eq!(baseline.status, 200);

    let handles: Vec<_> = (0..8)
        .map(|i| {
            thread::spawn(move || {
                let mut results = Vec::new();
                for _ in 0..10 {
                    // Vary spelling: equivalent queries must coalesce to
                    // identical answers through normalization.
                    let spelled = if i % 2 == 0 {
                        sql.to_string()
                    } else {
                        sql.to_lowercase().replace("sum", "SUM")
                    };
                    results.push(query_once(addr, &spelled));
                }
                results
            })
        })
        .collect();
    for h in handles {
        for r in h.join().unwrap() {
            assert_eq!(r.status, 200, "body: {}", r.body);
            assert_eq!(r.body, baseline.body, "answers must be bit-identical");
        }
    }
    server.shutdown();
}

#[test]
fn malformed_sql_and_bad_requests() {
    let server = Server::bind(ServerConfig::default(), census_aqua()).unwrap();
    let addr = server.local_addr();

    let r = query_once(addr, "SELEKT nope");
    assert_eq!(r.status, 400);
    assert!(r.body.contains("\"error\":"), "body: {}", r.body);

    let r = query_once(addr, "SELECT bogus_col FROM census GROUP BY bogus_col");
    assert_eq!(r.status, 400);
    assert!(r.body.contains("\"error\":"));

    let mut c = Client::connect(addr);
    let r = c.request("POST", "/query", Some(r#"{"relation": "census"}"#));
    assert_eq!(r.status, 400);
    assert!(r.body.contains("missing \\\"sql\\\"") || r.body.contains("missing"));

    let mut c = Client::connect(addr);
    let r = c.request("GET", "/nope", None);
    assert_eq!(r.status, 404);
    let r = c.request("GET", "/query", None);
    assert_eq!(r.status, 405);

    // Malformed HTTP gets an error response and a closed connection.
    let mut c = Client::connect(addr);
    c.send_raw(b"NOT AN HTTP REQUEST AT ALL\r\n\r\n");
    let r = c.read_response();
    assert_eq!(r.status, 400);
    assert!(!r.keep_alive);

    server.shutdown();
}

#[test]
fn load_shedding_returns_503_and_coalescing_bypasses_it() {
    let backend = BlockingBackend::new();
    let config = ServerConfig {
        workers: 1,
        queue_depth: 1,
        ..ServerConfig::default()
    };
    let server = Server::bind(config, Arc::clone(&backend) as Arc<dyn QueryBackend>).unwrap();
    let addr = server.local_addr();

    // First query: dequeued by the single worker, which parks in the
    // backend. Queue is now empty.
    let first = thread::spawn(move || query_once(addr, "SELECT a"));
    backend.wait_entered(1);

    // Second (distinct) query fills the depth-1 queue.
    let second = thread::spawn(move || query_once(addr, "SELECT b"));
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    while server.snapshot().gauge("server_queue_depth") < 1 {
        assert!(std::time::Instant::now() < deadline, "job never queued");
        thread::sleep(Duration::from_millis(5));
    }

    // Third distinct query: queue full, shed immediately with 503.
    let shed = query_once(addr, "SELECT c");
    assert_eq!(shed.status, 503);
    assert!(shed.body.contains("overloaded"));

    // An *identical* in-flight query coalesces instead of shedding.
    let coalesced = thread::spawn(move || query_once(addr, "SELECT a"));
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    while server.snapshot().counter("server_coalesced_total") < 1 {
        assert!(std::time::Instant::now() < deadline, "never coalesced");
        thread::sleep(Duration::from_millis(5));
    }

    backend.release();
    let r1 = first.join().unwrap();
    let r2 = second.join().unwrap();
    let r3 = coalesced.join().unwrap();
    assert_eq!((r1.status, r2.status, r3.status), (200, 200, 200));
    // The coalesced answer is the same execution's output.
    assert_eq!(r1.body, r3.body);
    // The worker ran exactly twice: "SELECT a" (shared) and "SELECT b".
    assert_eq!(backend.entered.load(Ordering::SeqCst), 2);

    let snap = server.snapshot();
    assert_eq!(snap.counter("server_shed_total"), 1);
    assert_eq!(snap.counter("server_coalesced_total"), 1);
    server.shutdown();
}

#[test]
fn stats_and_metrics_endpoints() {
    let server = Server::bind(ServerConfig::default(), census_aqua()).unwrap();
    let addr = server.local_addr();

    // Three good queries (two identical) and one malformed.
    let sql = "SELECT state, COUNT(*) AS c FROM census GROUP BY state";
    assert_eq!(query_once(addr, sql).status, 200);
    assert_eq!(query_once(addr, sql).status, 200);
    assert_eq!(
        query_once(
            addr,
            "SELECT state, SUM(income) AS s FROM census GROUP BY state"
        )
        .status,
        200
    );
    assert_eq!(query_once(addr, "SELEKT").status, 400);

    let mut c = Client::connect(addr);
    let stats = c.request("GET", "/stats", None);
    assert_eq!(stats.status, 200);
    assert!(stats.body.contains("\"counters\""));
    // Inside the JSON body the label quotes are escaped. Per-endpoint
    // request counters ride the obs registry, so they only exist when
    // metrics are compiled in.
    if obs::ENABLED {
        assert!(
            stats
                .body
                .contains("server_requests_total{endpoint=\\\"/query\\\",status=\\\"200\\\"}"),
            "stats body missing per-endpoint counter: {}",
            stats.body
        );
    }
    // The backend's plan/answer-cache counters surface through /stats.
    assert!(stats.body.contains("aqua_plan_cache_hits_total"));
    assert!(stats.body.contains("aqua_answer_cache_hits_total"));

    let metrics = c.request("GET", "/metrics", None);
    assert_eq!(metrics.status, 200);

    // Prometheus exposition parses: every non-comment line is
    // `name{labels} value` or `name value` with a numeric value.
    let mut seen = std::collections::HashMap::new();
    for line in metrics.body.lines() {
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (name, value) = line.rsplit_once(' ').expect("name value");
        assert!(
            value.parse::<f64>().is_ok(),
            "non-numeric metric value: {line}"
        );
        seen.insert(name.to_string(), value.to_string());
    }
    if obs::ENABLED {
        assert_eq!(
            seen.get("server_requests_total{endpoint=\"/query\",status=\"200\"}")
                .map(String::as_str),
            Some("3"),
            "per-endpoint success counter"
        );
        assert_eq!(
            seen.get("server_requests_total{endpoint=\"/query\",status=\"400\"}")
                .map(String::as_str),
            Some("1"),
            "per-endpoint error counter"
        );
    }
    // The always-on serving signals are present on both feature legs.
    assert_eq!(seen.get("server_shed_total").map(String::as_str), Some("0"));
    // Two identical queries → the second hit the answer cache.
    assert!(seen.contains_key("aqua_answer_cache_hits_total"));
    assert_eq!(seen["aqua_answer_cache_hits_total"], "1");

    server.shutdown();
}

#[test]
fn connection_close_is_honored() {
    let server = Server::bind(ServerConfig::default(), census_aqua()).unwrap();
    let addr = server.local_addr();

    let mut c = Client::connect(addr);
    c.send_raw(b"GET /healthz HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n");
    let r = c.read_response();
    assert_eq!(r.status, 200);
    assert!(!r.keep_alive);
    // Server closes: next read returns EOF.
    let mut buf = [0u8; 16];
    assert_eq!(c.stream.read(&mut buf).unwrap_or(0), 0);

    server.shutdown();
}
