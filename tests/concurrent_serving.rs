//! Concurrency stress: N reader threads hammer `answer_sql` while a
//! writer ingests — no torn answers, generation-consistent caches,
//! counters that add up.
//!
//! The correctness claim under test is the serving path's locking
//! discipline: a reader holds the synopsis read lock across freshness
//! check, cache lookup, execution, AND cache insert, so every response is
//! computed entirely against one synopsis generation. With one writer
//! performing two ingests there are exactly three generations, each with
//! a well-defined ground truth — any response that matches none of them
//! is torn (e.g. estimated from generation-1 data but scaled by
//! generation-2 populations, or a stale cached answer surviving an
//! invalidation).

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Barrier};
use std::thread;

use aqua::{ApproximateAnswer, Aqua, AquaConfig, RewriteChoice, SamplingStrategy};
use relation::{DataType, RelationBuilder, Value};

const QUERIES: &[&str] = &[
    "SELECT state, SUM(income) AS s FROM census GROUP BY state",
    "SELECT state, AVG(income) AS a FROM census GROUP BY state",
    "SELECT state, COUNT(*) AS c FROM census WHERE age >= 30 GROUP BY state",
    "select STATE, sum(income) as S from census group by state", // respelling of [0]
];

fn build_system() -> Aqua {
    let mut b = RelationBuilder::new()
        .column("state", DataType::Str)
        .column("age", DataType::Int)
        .column("income", DataType::Float);
    for i in 0..800i64 {
        let st = match i % 16 {
            0 => "WY",
            1..=4 => "NY",
            5..=7 => "TX",
            _ => "CA",
        };
        b.push_row(&[
            Value::str(st),
            Value::from(18 + (i * 11) % 60),
            Value::from(800.0 + ((i * 53) % 1499) as f64),
        ])
        .unwrap();
    }
    let config = AquaConfig {
        space: 200,
        strategy: SamplingStrategy::Congress,
        rewrite: RewriteChoice::NestedIntegrated,
        seed: 42,
        ..AquaConfig::default()
    };
    Aqua::build(b.finish(), vec![relation::ColumnId(0)], config).unwrap()
}

fn batch(gen: i64, n: i64) -> Vec<Vec<Value>> {
    (0..n)
        .map(|i| {
            vec![
                Value::str(if i % 3 == 0 { "TX" } else { "NY" }),
                Value::from(25 + (gen * 7 + i) % 50),
                Value::from(1000.0 + (gen * 100 + i) as f64),
            ]
        })
        .collect()
}

fn answers_equal(a: &ApproximateAnswer, b: &ApproximateAnswer) -> bool {
    if a.result.aggregate_names != b.result.aggregate_names
        || a.result.group_count() != b.result.group_count()
        || a.confidence.to_bits() != b.confidence.to_bits()
        || a.bounds.len() != b.bounds.len()
    {
        return false;
    }
    for ((k1, v1), (k2, v2)) in a.result.iter().zip(b.result.iter()) {
        if k1 != k2 || v1.len() != v2.len() {
            return false;
        }
        if v1.iter().zip(v2).any(|(x, y)| x.to_bits() != y.to_bits()) {
            return false;
        }
    }
    for (ga, gb) in a.bounds.iter().zip(&b.bounds) {
        if ga.key != gb.key || ga.bounds.len() != gb.bounds.len() {
            return false;
        }
        for (ba, bb) in ga.bounds.iter().zip(&gb.bounds) {
            match (ba, bb) {
                (None, None) => {}
                (Some(x), Some(y)) => {
                    if x.half_width.to_bits() != y.half_width.to_bits() {
                        return false;
                    }
                }
                _ => return false,
            }
        }
    }
    true
}

fn ground_truth(aqua: &Aqua) -> Vec<ApproximateAnswer> {
    QUERIES
        .iter()
        .map(|q| aqua.answer_sql(q).unwrap().0)
        .collect()
}

#[test]
fn readers_race_one_writer_without_torn_answers() {
    const READERS: usize = 4;
    const ITERS: usize = 60;

    let aqua = Arc::new(build_system());

    // Generation 0 ground truth (also warms the caches, so the race
    // includes cached → invalidated → recomputed transitions).
    let gt0 = ground_truth(&aqua);

    let counters_before = {
        let s = aqua.stats();
        (
            s.counter("aqua_answer_cache_invalidations_total"),
            s.counter("aqua_cache_invalidations_total"),
        )
    };

    let barrier = Arc::new(Barrier::new(READERS + 1));
    let writer_done = Arc::new(AtomicBool::new(false));

    // The writer: two ingests, with the intermediate generation's ground
    // truth computed between them (it is the only writer, so the answers
    // it records for generation 1 are well-defined).
    let writer = {
        let aqua = Arc::clone(&aqua);
        let barrier = Arc::clone(&barrier);
        let writer_done = Arc::clone(&writer_done);
        thread::spawn(move || {
            barrier.wait();
            aqua.insert_batch(&batch(1, 40)).unwrap();
            let gt1 = ground_truth(&aqua);
            aqua.insert_batch(&batch(2, 40)).unwrap();
            writer_done.store(true, Ordering::SeqCst);
            gt1
        })
    };

    let readers: Vec<_> = (0..READERS)
        .map(|r| {
            let aqua = Arc::clone(&aqua);
            let barrier = Arc::clone(&barrier);
            thread::spawn(move || {
                barrier.wait();
                let mut seen: Vec<(usize, ApproximateAnswer)> = Vec::new();
                for i in 0..ITERS {
                    let qi = (r + i) % QUERIES.len();
                    let (answer, _) = aqua.answer_sql(QUERIES[qi]).unwrap();
                    seen.push((qi, answer));
                }
                seen
            })
        })
        .collect();

    let gt1 = writer.join().unwrap();
    assert!(writer_done.load(Ordering::SeqCst));
    // Generation 2 ground truth, after every thread is done mutating.
    let reader_answers: Vec<_> = readers.into_iter().map(|h| h.join().unwrap()).collect();
    let gt2 = ground_truth(&aqua);

    // Respellings share ground truth with their canonical spelling.
    let canonical = |qi: usize| if qi == 3 { 0 } else { qi };
    let mut matched = [0usize; 3];
    for seen in &reader_answers {
        for (qi, answer) in seen {
            let c = canonical(*qi);
            let generation = [&gt0[c], &gt1[c], &gt2[c]]
                .iter()
                .position(|gt| answers_equal(answer, gt));
            match generation {
                Some(g) => matched[g] += 1,
                None => panic!(
                    "torn answer for `{}`: matches no generation's ground truth",
                    QUERIES[*qi]
                ),
            }
        }
    }
    let total: usize = matched.iter().sum();
    assert_eq!(total, READERS * ITERS, "every response accounted for");
    // The final generation must have been observed (readers outlive the
    // writer's last ingest only if scheduling allows, but gt2 is computed
    // from the same system state the last reader answers came from).
    assert!(matched[0] + matched[1] + matched[2] > 0);

    // Invalidation counters moved: 2 ingests + their lazy refreshes each
    // clear the generation-scoped caches.
    let s = aqua.stats();
    let inv_answer = s.counter("aqua_answer_cache_invalidations_total") - counters_before.0;
    let inv_query = s.counter("aqua_cache_invalidations_total") - counters_before.1;
    assert!(
        (2..=4).contains(&inv_answer),
        "expected 2 ingests (+ up to 2 lazy refreshes) of answer-cache invalidation, got {inv_answer}"
    );
    assert!(
        inv_query >= 2,
        "query-cache invalidations must move with ingest, got {inv_query}"
    );
    // Plans survive ingest: every post-warmup query either hit the answer
    // cache or reused a cached plan — ingest must not reset those entries.
    assert_eq!(s.counter("aqua_plan_cache_invalidations_total"), 0);
    assert_eq!(
        s.gauge("aqua_plan_cache_entries"),
        3,
        "three distinct normalized keys stay planned across generations"
    );
    assert!(
        s.counter("aqua_plan_cache_hits_total") > 0,
        "post-ingest repeats must hit the plan cache"
    );
}

#[test]
fn deterministic_ground_truth_under_fixed_seed() {
    // Two runs of the whole build + ingest + query sequence agree bitwise
    // — pinning that the race assertions above compare against stable
    // ground truth rather than luck.
    let run = || {
        let aqua = build_system();
        let mut all = ground_truth(&aqua);
        aqua.insert_batch(&batch(1, 40)).unwrap();
        all.extend(ground_truth(&aqua));
        aqua.insert_batch(&batch(2, 40)).unwrap();
        all.extend(ground_truth(&aqua));
        all
    };
    let a = run();
    let b = run();
    for (x, y) in a.iter().zip(&b) {
        assert!(answers_equal(x, y), "fixed-seed runs must agree bitwise");
    }
}

#[test]
fn concurrent_identical_queries_share_the_cached_answer() {
    let aqua = Arc::new(build_system());
    let barrier = Arc::new(Barrier::new(6));
    let handles: Vec<_> = (0..6)
        .map(|_| {
            let aqua = Arc::clone(&aqua);
            let barrier = Arc::clone(&barrier);
            thread::spawn(move || {
                barrier.wait();
                aqua.answer_sql_shared(QUERIES[0]).unwrap()
            })
        })
        .collect();
    let answers: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
    // First insert wins: every thread ends up holding the same Arc.
    for a in &answers[1..] {
        assert!(Arc::ptr_eq(a, &answers[0]), "all threads share one entry");
        assert!(answers_equal(&a.answer, &answers[0].answer));
    }
    let s = aqua.stats();
    assert_eq!(s.gauge("aqua_answer_cache_entries"), 1);
    assert_eq!(
        s.counter("aqua_answer_cache_hits_total") + s.counter("aqua_answer_cache_misses_total"),
        6
    );
}
