//! Compact binary persistence for congressional samples.
//!
//! Aqua stores its synopses durably ("stored as regular relations in the
//! DBMS", §2) so they survive restarts and can be shipped between the
//! warehouse and the middleware. This module provides an equivalent for
//! this workspace: a versioned, length-prefixed binary encoding of a
//! [`CongressionalSample`] built on [`bytes`]. The encoding stores row
//! *indices* (not tuples), so a snapshot is small — the base relation is
//! re-joined at load time by [`CongressionalSample::to_stratified_input`].

use bytes::{Buf, BufMut, Bytes, BytesMut};

use relation::{ColumnId, GroupKey, Value};

use crate::error::{CongressError, Result};
use crate::sample::CongressionalSample;

/// Format magic: `b"CGRS"`.
const MAGIC: u32 = 0x4347_5253;
/// Current format version.
const VERSION: u16 = 1;

/// Value type tags.
const TAG_INT: u8 = 0;
const TAG_FLOAT: u8 = 1;
const TAG_STR: u8 = 2;
const TAG_DATE: u8 = 3;

fn put_value(buf: &mut BytesMut, v: &Value) {
    match v {
        Value::Int(x) => {
            buf.put_u8(TAG_INT);
            buf.put_i64(*x);
        }
        Value::Float(x) => {
            buf.put_u8(TAG_FLOAT);
            buf.put_f64(x.get());
        }
        Value::Str(s) => {
            buf.put_u8(TAG_STR);
            let b = s.as_bytes();
            buf.put_u32(b.len() as u32);
            buf.put_slice(b);
        }
        Value::Date(d) => {
            buf.put_u8(TAG_DATE);
            buf.put_i32(*d);
        }
    }
}

fn get_value(buf: &mut Bytes) -> Result<Value> {
    let corrupt = |what: &str| CongressError::InvalidSpec(format!("corrupt snapshot: {what}"));
    if buf.remaining() < 1 {
        return Err(corrupt("truncated value tag"));
    }
    match buf.get_u8() {
        TAG_INT => {
            if buf.remaining() < 8 {
                return Err(corrupt("truncated int"));
            }
            Ok(Value::Int(buf.get_i64()))
        }
        TAG_FLOAT => {
            if buf.remaining() < 8 {
                return Err(corrupt("truncated float"));
            }
            Ok(Value::from(buf.get_f64()))
        }
        TAG_STR => {
            if buf.remaining() < 4 {
                return Err(corrupt("truncated string length"));
            }
            let len = buf.get_u32() as usize;
            if buf.remaining() < len {
                return Err(corrupt("truncated string body"));
            }
            let bytes = buf.copy_to_bytes(len);
            let s = std::str::from_utf8(&bytes).map_err(|_| corrupt("invalid utf-8"))?;
            Ok(Value::str(s))
        }
        TAG_DATE => {
            if buf.remaining() < 4 {
                return Err(corrupt("truncated date"));
            }
            Ok(Value::Date(buf.get_i32()))
        }
        t => Err(corrupt(&format!("unknown value tag {t}"))),
    }
}

/// Serialize a sample to its binary snapshot form.
pub fn encode(sample: &CongressionalSample) -> Bytes {
    let mut buf = BytesMut::with_capacity(64 + sample.total_sampled() * 8);
    buf.put_u32(MAGIC);
    buf.put_u16(VERSION);

    let name = sample.strategy_name().as_bytes();
    buf.put_u16(name.len() as u16);
    buf.put_slice(name);

    buf.put_u16(sample.grouping_columns().len() as u16);
    for c in sample.grouping_columns() {
        buf.put_u32(c.index() as u32);
    }

    buf.put_u32(sample.stratum_count() as u32);
    for g in 0..sample.stratum_count() {
        let key = &sample.strata_keys()[g];
        buf.put_u16(key.len() as u16);
        for v in key.values() {
            put_value(&mut buf, v);
        }
        buf.put_u64(sample.group_sizes()[g]);
        let rows = &sample.sampled_rows()[g];
        buf.put_u32(rows.len() as u32);
        for &r in rows {
            buf.put_u64(r as u64);
        }
    }
    buf.freeze()
}

/// Deserialize a snapshot produced by [`encode`].
pub fn decode(mut buf: Bytes) -> Result<CongressionalSample> {
    let corrupt = |what: &str| CongressError::InvalidSpec(format!("corrupt snapshot: {what}"));
    if buf.remaining() < 6 {
        return Err(corrupt("header too short"));
    }
    if buf.get_u32() != MAGIC {
        return Err(corrupt("bad magic"));
    }
    let version = buf.get_u16();
    if version != VERSION {
        return Err(CongressError::InvalidSpec(format!(
            "unsupported snapshot version {version} (expected {VERSION})"
        )));
    }

    if buf.remaining() < 2 {
        return Err(corrupt("truncated strategy name"));
    }
    let name_len = buf.get_u16() as usize;
    if buf.remaining() < name_len {
        return Err(corrupt("truncated strategy name body"));
    }
    let name_bytes = buf.copy_to_bytes(name_len);
    let name = std::str::from_utf8(&name_bytes)
        .map_err(|_| corrupt("strategy name not utf-8"))?
        .to_string();

    if buf.remaining() < 2 {
        return Err(corrupt("truncated grouping column count"));
    }
    let ncols = buf.get_u16() as usize;
    let mut cols = Vec::with_capacity(ncols);
    for _ in 0..ncols {
        if buf.remaining() < 4 {
            return Err(corrupt("truncated grouping column"));
        }
        cols.push(ColumnId(buf.get_u32() as usize));
    }

    if buf.remaining() < 4 {
        return Err(corrupt("truncated stratum count"));
    }
    let strata = buf.get_u32() as usize;
    let mut keys = Vec::with_capacity(strata);
    let mut sizes = Vec::with_capacity(strata);
    let mut rows = Vec::with_capacity(strata);
    for _ in 0..strata {
        if buf.remaining() < 2 {
            return Err(corrupt("truncated key arity"));
        }
        let arity = buf.get_u16() as usize;
        let mut vals = Vec::with_capacity(arity);
        for _ in 0..arity {
            vals.push(get_value(&mut buf)?);
        }
        keys.push(GroupKey::new(vals));
        if buf.remaining() < 12 {
            return Err(corrupt("truncated stratum header"));
        }
        sizes.push(buf.get_u64());
        let n = buf.get_u32() as usize;
        if buf.remaining() < n * 8 {
            return Err(corrupt("truncated row list"));
        }
        let mut rs = Vec::with_capacity(n);
        for _ in 0..n {
            rs.push(buf.get_u64() as usize);
        }
        rows.push(rs);
    }
    if buf.has_remaining() {
        return Err(corrupt("trailing bytes"));
    }
    CongressionalSample::from_parts(cols, keys, sizes, rows, name)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alloc::Congress;
    use crate::census::test_support::{figure5_census, figure5_relation};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn sample() -> CongressionalSample {
        let rel = figure5_relation(10);
        let census = figure5_census(10);
        let mut rng = StdRng::seed_from_u64(12);
        CongressionalSample::draw(&rel, &census, &Congress, 80.0, &mut rng).unwrap()
    }

    #[test]
    fn round_trip_preserves_everything() {
        let s = sample();
        let bytes = encode(&s);
        let back = decode(bytes).unwrap();
        assert_eq!(back.strategy_name(), s.strategy_name());
        assert_eq!(back.grouping_columns(), s.grouping_columns());
        assert_eq!(back.strata_keys(), s.strata_keys());
        assert_eq!(back.group_sizes(), s.group_sizes());
        assert_eq!(back.sampled_rows(), s.sampled_rows());
    }

    #[test]
    fn round_trip_through_stratified_input() {
        let rel = figure5_relation(10);
        let s = sample();
        let back = decode(encode(&s)).unwrap();
        let a = s.to_stratified_input(&rel).unwrap();
        let b = back.to_stratified_input(&rel).unwrap();
        assert_eq!(a.scale_factors, b.scale_factors);
        assert_eq!(a.stratum_of_row, b.stratum_of_row);
        assert_eq!(a.rows.row_count(), b.rows.row_count());
    }

    #[test]
    fn snapshot_is_compact() {
        let s = sample();
        let bytes = encode(&s);
        // ~8 bytes per sampled row id + key/header overhead; far below
        // materializing the tuples themselves.
        assert!(bytes.len() < 64 + s.total_sampled() * 8 + s.stratum_count() * 64);
    }

    #[test]
    fn rejects_bad_magic_and_version() {
        let s = sample();
        let mut raw = encode(&s).to_vec();
        raw[0] ^= 0xFF;
        assert!(decode(Bytes::from(raw.clone())).is_err());
        let mut raw = encode(&s).to_vec();
        raw[5] = 99; // version
        assert!(decode(Bytes::from(raw)).is_err());
    }

    #[test]
    fn rejects_truncation_anywhere() {
        let s = sample();
        let full = encode(&s);
        for cut in [0, 3, 6, 10, full.len() / 2, full.len() - 1] {
            let truncated = full.slice(0..cut);
            assert!(decode(truncated).is_err(), "cut at {cut} must fail");
        }
    }

    #[test]
    fn rejects_trailing_garbage() {
        let s = sample();
        let mut raw = encode(&s).to_vec();
        raw.push(0);
        assert!(decode(Bytes::from(raw)).is_err());
    }

    #[test]
    fn all_value_types_round_trip() {
        let mut buf = BytesMut::new();
        let vals = [
            Value::Int(-42),
            Value::from(1.5),
            Value::str("héllo"),
            Value::Date(12345),
        ];
        for v in &vals {
            put_value(&mut buf, v);
        }
        let mut bytes = buf.freeze();
        for v in &vals {
            assert_eq!(&get_value(&mut bytes).unwrap(), v);
        }
        assert!(!bytes.has_remaining());
    }
}
