//! Adversarial-input sweep over the snapshot codec: a decoder fed torn,
//! bit-rotted, or arbitrary bytes must return an error — never panic,
//! never attempt a huge allocation.

use congress::snapshot;
use congress::{Congress, GroupCensus};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use relation::{DataType, Relation, RelationBuilder, Value};

fn skewed_relation() -> Relation {
    let mut b = RelationBuilder::new()
        .column("a", DataType::Str)
        .column("b", DataType::Str)
        .column("q", DataType::Float);
    let groups: [(&str, &str, usize); 4] = [
        ("a1", "b1", 300),
        ("a1", "b2", 300),
        ("a1", "b3", 150),
        ("a2", "b3", 250),
    ];
    let mut i = 0u64;
    for (a, bb, n) in groups {
        for _ in 0..n {
            b.push_row(&[Value::str(a), Value::str(bb), Value::from((i % 97) as f64)])
                .unwrap();
            i += 1;
        }
    }
    b.finish()
}

fn valid_snapshot() -> bytes::Bytes {
    let rel = skewed_relation();
    let cols = rel.schema().column_ids(&["a", "b"]).unwrap();
    let census = GroupCensus::build(&rel, &cols).unwrap();
    let mut rng = StdRng::seed_from_u64(12);
    let sample =
        congress::CongressionalSample::draw(&rel, &census, &Congress, 80.0, &mut rng).unwrap();
    snapshot::encode(&sample)
}

/// Torn-write sweep: truncating a valid snapshot at *every* byte offset
/// must yield a clean error.
#[test]
fn truncation_at_every_offset_errors_cleanly() {
    let full = valid_snapshot();
    assert!(
        snapshot::decode(full.clone()).is_ok(),
        "fixture must decode"
    );
    for cut in 0..full.len() {
        let torn = full.slice(0..cut);
        assert!(
            snapshot::decode(torn).is_err(),
            "truncation to {cut}/{} bytes decoded successfully",
            full.len()
        );
    }
}

/// Bit-rot sweep: flipping any single bit anywhere in the snapshot is
/// detected by a checksum (section CRC, footer CRC, or both).
#[test]
fn bit_flip_at_every_byte_is_detected() {
    let full = valid_snapshot().to_vec();
    for (i, bit) in (0..full.len()).map(|i| (i, i % 8)) {
        let mut bad = full.clone();
        bad[i] ^= 1 << bit;
        assert!(
            snapshot::decode(bytes::Bytes::from(bad)).is_err(),
            "flipping bit {bit} of byte {i} went undetected"
        );
    }
}

proptest! {
    /// Arbitrary bytes never decode (the magic + CRCs make an accidental
    /// valid snapshot astronomically unlikely) and, more importantly,
    /// never panic or over-allocate.
    #[test]
    fn arbitrary_bytes_never_decode(data in proptest::collection::vec(0u8..=255, 0..4096)) {
        prop_assert!(snapshot::decode(bytes::Bytes::from(data)).is_err());
    }

    /// Arbitrary mutations of a valid prefix keep the decoder total, too.
    #[test]
    fn mutated_valid_snapshot_never_panics(
        idx in 0usize..1000,
        byte in 0u8..=255,
    ) {
        let mut bytes = valid_snapshot().to_vec();
        let i = idx % bytes.len();
        bytes[i] = byte;
        // Writing the byte already stored can leave the snapshot valid;
        // everything else must error. Either way: no panic.
        let _ = snapshot::decode(bytes::Bytes::from(bytes));
    }
}
