//! Subcommand implementations. Each returns the text to print, so the
//! commands are directly testable without spawning processes.

mod inspect;
mod plan;
mod query;
mod sample;
mod serve;
mod stats;
mod warehouse;

pub use inspect::inspect;
pub use plan::plan;
pub use query::query;
pub use sample::sample;
pub use serve::serve;
pub use stats::stats;
pub use warehouse::warehouse;

use crate::args::Args;
use crate::Result;

/// Dispatch a parsed command line to its implementation.
pub fn run(args: &Args) -> Result<String> {
    match args.command.as_str() {
        "inspect" => inspect(args),
        "plan" => plan(args),
        "query" => query(args),
        "sample" => sample(args),
        "serve" => serve(args),
        "stats" => stats(args),
        "warehouse" => warehouse(args),
        "" | "help" => Ok(crate::USAGE.to_string()),
        other => Err(format!(
            "unknown command `{other}` (inspect|plan|query|sample|serve|stats|warehouse)\n\n{}",
            crate::USAGE
        )),
    }
}

#[cfg(test)]
pub(crate) mod test_support {
    use crate::args::Args;

    pub fn args(tokens: &[&str]) -> Args {
        Args::parse(tokens.iter().map(|s| s.to_string())).unwrap()
    }
}

#[cfg(test)]
mod tests {
    use super::test_support::args;
    use super::*;

    #[test]
    fn help_and_unknown_commands() {
        let out = run(&args(&["help"])).unwrap();
        assert!(out.contains("congress-cli"));
        let err = run(&args(&["frobnicate"])).unwrap_err();
        assert!(err.contains("unknown command"));
    }

    #[test]
    fn end_to_end_demo_pipeline() {
        // inspect → plan → query against the demo generator.
        let out = run(&args(&[
            "inspect", "--demo", "--rows", "5000", "--groups", "27",
        ]))
        .unwrap();
        assert!(out.contains("27 non-empty groups"), "{out}");

        let out = run(&args(&[
            "plan", "--demo", "--rows", "5000", "--groups", "27", "--space", "270",
        ]))
        .unwrap();
        assert!(out.contains("scale-down factor"), "{out}");

        let out = run(&args(&[
            "query",
            "--demo",
            "--rows",
            "5000",
            "--groups",
            "27",
            "--space",
            "500",
            "SELECT l_returnflag, SUM(l_quantity) AS s FROM lineitem GROUP BY l_returnflag",
        ]))
        .unwrap();
        assert!(out.contains("approximate answer"), "{out}");
        assert!(out.contains("exact answer"), "{out}");
        assert!(out.contains("mean error"), "{out}");
    }
}
