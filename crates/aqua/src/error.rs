//! Error type for the Aqua middleware.

use std::fmt;

/// Convenience alias used throughout the crate.
pub type Result<T> = std::result::Result<T, AquaError>;

/// Errors surfaced by the middleware.
#[derive(Debug, Clone, PartialEq)]
pub enum AquaError {
    /// Storage/schema error.
    Relation(relation::RelationError),
    /// Query engine error.
    Engine(engine::EngineError),
    /// Sampling layer error.
    Congress(congress::CongressError),
    /// Configuration rejected.
    InvalidConfig(String),
    /// Durable storage failure (snapshot store I/O, manifest corruption,
    /// failed recovery).
    Storage(String),
}

impl fmt::Display for AquaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AquaError::Relation(e) => write!(f, "relation error: {e}"),
            AquaError::Engine(e) => write!(f, "engine error: {e}"),
            AquaError::Congress(e) => write!(f, "sampling error: {e}"),
            AquaError::InvalidConfig(m) => write!(f, "invalid configuration: {m}"),
            AquaError::Storage(m) => write!(f, "storage error: {m}"),
        }
    }
}

impl std::error::Error for AquaError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            AquaError::Relation(e) => Some(e),
            AquaError::Engine(e) => Some(e),
            AquaError::Congress(e) => Some(e),
            AquaError::InvalidConfig(_) | AquaError::Storage(_) => None,
        }
    }
}

impl From<congress::StoreError> for AquaError {
    fn from(e: congress::StoreError) -> Self {
        AquaError::Storage(e.to_string())
    }
}

impl From<relation::RelationError> for AquaError {
    fn from(e: relation::RelationError) -> Self {
        AquaError::Relation(e)
    }
}
impl From<engine::EngineError> for AquaError {
    fn from(e: engine::EngineError) -> Self {
        AquaError::Engine(e)
    }
}
impl From<congress::CongressError> for AquaError {
    fn from(e: congress::CongressError) -> Self {
        AquaError::Congress(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_chain_sources() {
        let e: AquaError = engine::EngineError::NoAggregates.into();
        assert!(std::error::Error::source(&e).is_some());
        assert!(e.to_string().contains("engine"));
        let e: AquaError = congress::CongressError::EmptyRelation.into();
        assert!(e.to_string().contains("sampling"));
        let e = AquaError::InvalidConfig("space".into());
        assert!(std::error::Error::source(&e).is_none());
    }
}
