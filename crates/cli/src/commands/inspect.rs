//! `inspect`: census statistics for the chosen grouping.

use std::fmt::Write as _;

use congress::lattice::all_groupings;
use congress::GroupCensus;

use crate::args::Args;
use crate::data::load;
use crate::{err, Result};

/// Take the census and describe the group structure.
pub fn inspect(args: &Args) -> Result<String> {
    let source = load(args)?;
    let top = args.get_parsed("top", 20usize)?;
    let census = GroupCensus::build(&source.relation, &source.grouping).map_err(err)?;

    let mut sizes: Vec<u64> = census.sizes().to_vec();
    sizes.sort_unstable();
    let n = sizes.len();
    let total = census.total_rows();
    let min = sizes[0];
    let max = sizes[n - 1];
    let median = sizes[n / 2];

    let mut out = String::new();
    let _ = writeln!(
        out,
        "table `{}`: {} rows, {} grouping column(s)",
        source.name,
        total,
        source.grouping.len()
    );
    let _ = writeln!(
        out,
        "finest grouping: {n} non-empty groups — sizes min {min}, median {median}, max {max} \
         (spread {:.1}x)",
        max as f64 / min.max(1) as f64
    );

    // The grouping lattice: m_T per subset (what Congress maximizes over).
    let _ = writeln!(out, "\ngrouping lattice (m_T per subset of G):");
    for t in all_groupings(census.attribute_count()) {
        let cols: Vec<String> = t
            .positions()
            .iter()
            .map(|&p| {
                source.relation.schema().fields()[source.grouping[p].index()]
                    .name
                    .clone()
            })
            .collect();
        let label = if cols.is_empty() {
            "∅".to_string()
        } else {
            cols.join(", ")
        };
        let _ = writeln!(
            out,
            "  {{{label}}}: {} group(s)",
            census.supergroups(t).group_count
        );
    }

    // Largest and smallest groups — the House-vs-Senate tension at a glance.
    let mut by_size: Vec<(usize, u64)> = census.sizes().iter().copied().enumerate().collect();
    by_size.sort_by_key(|&(_, s)| std::cmp::Reverse(s));
    let _ = writeln!(out, "\nlargest groups:");
    for &(g, s) in by_size.iter().take(top.min(5)) {
        let _ = writeln!(
            out,
            "  {} — {s} rows ({:.2}%)",
            census.keys()[g],
            s as f64 / total as f64 * 100.0
        );
    }
    let _ = writeln!(out, "smallest groups:");
    for &(g, s) in by_size.iter().rev().take(top.min(5)) {
        let _ = writeln!(
            out,
            "  {} — {s} rows ({:.4}%)",
            census.keys()[g],
            s as f64 / total as f64 * 100.0
        );
    }
    let _ = writeln!(
        out,
        "\na uniform sample needs ≈ {:.0} tuples for 10 expected tuples in the \
         smallest group;\na Congress sample guarantees every group a within-f share \
         (run `plan` to see it).",
        10.0 * total as f64 / min.max(1) as f64
    );
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::commands::test_support::args;

    #[test]
    fn inspect_reports_lattice_and_extremes() {
        let out = inspect(&args(&[
            "inspect", "--demo", "--rows", "8000", "--groups", "27", "--skew", "1.2",
        ]))
        .unwrap();
        assert!(out.contains("27 non-empty groups"), "{out}");
        assert!(out.contains("grouping lattice"), "{out}");
        assert!(out.contains("largest groups"), "{out}");
        assert!(out.contains("{∅}: 1 group(s)"), "{out}");
    }
}
