//! Exact query execution via hash aggregation.

use relation::Relation;

use crate::error::Result;
use crate::grouping::GroupIndex;
use crate::query::GroupByQuery;
use crate::result::QueryResult;
use crate::rewrite::{accumulate, finish_rows, masked_exprs};

/// Execute `query` exactly over `rel` with a single hash-aggregation pass.
///
/// This produces the ground truth that the paper's error metrics (Def 3.1)
/// compare approximate answers against. Groups with no qualifying rows do
/// not appear in the output (matching SQL GROUP BY semantics); a scalar
/// query over zero qualifying rows yields an empty result rather than a
/// NULL row.
///
/// ```
/// use engine::{execute_exact, AggregateSpec, GroupByQuery};
/// use relation::{ColumnId, DataType, Expr, RelationBuilder, Value};
///
/// let mut b = RelationBuilder::new()
///     .column("g", DataType::Str)
///     .column("v", DataType::Float);
/// b.push_row(&[Value::str("a"), Value::from(1.0)]).unwrap();
/// b.push_row(&[Value::str("a"), Value::from(2.0)]).unwrap();
/// b.push_row(&[Value::str("b"), Value::from(5.0)]).unwrap();
/// let rel = b.finish();
///
/// let q = GroupByQuery::new(
///     vec![ColumnId(0)],
///     vec![AggregateSpec::sum(Expr::col(ColumnId(1)), "s")],
/// );
/// let result = execute_exact(&rel, &q).unwrap();
/// assert_eq!(result.group_count(), 2);
/// ```
pub fn execute_exact(rel: &Relation, query: &GroupByQuery) -> Result<QueryResult> {
    query.validate(rel)?;

    let mask = query.predicate.eval(rel);
    // Exact execution runs over the (potentially large) base table, so the
    // group index stays predicate-filtered — selective queries then hash
    // only qualifying rows — and aggregate inputs are evaluated only for
    // the rows the selection bitmap keeps.
    let index = GroupIndex::build_filtered(rel, &query.grouping, Some(&mask));
    let exprs = masked_exprs(rel, query, &mask)?;
    let accs = accumulate(&index, &mask, &exprs, None, query, false);
    finish_rows(&index, accs, query)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aggregate::AggregateSpec;
    use relation::{ColumnId, DataType, Expr, GroupKey, Predicate, RelationBuilder, Value};

    fn rel() -> Relation {
        let mut b = RelationBuilder::new()
            .column("g", DataType::Str)
            .column("h", DataType::Int)
            .column("v", DataType::Float);
        let rows: [(&str, i64, f64); 6] = [
            ("a", 1, 10.0),
            ("a", 1, 20.0),
            ("a", 2, 30.0),
            ("b", 1, 40.0),
            ("b", 2, 50.0),
            ("b", 2, 60.0),
        ];
        for (g, h, v) in rows {
            b.push_row(&[Value::str(g), Value::Int(h), Value::from(v)])
                .unwrap();
        }
        b.finish()
    }

    fn gkey(g: &str) -> GroupKey {
        GroupKey::new(vec![Value::str(g)])
    }

    #[test]
    fn sum_count_avg_by_one_column() {
        let r = rel();
        let q = GroupByQuery::new(
            vec![ColumnId(0)],
            vec![
                AggregateSpec::sum(Expr::col(ColumnId(2)), "s"),
                AggregateSpec::count("c"),
                AggregateSpec::avg(Expr::col(ColumnId(2)), "a"),
            ],
        );
        let res = execute_exact(&r, &q).unwrap();
        assert_eq!(res.group_count(), 2);
        assert_eq!(res.get(&gkey("a")), Some(&[60.0, 3.0, 20.0][..]));
        assert_eq!(res.get(&gkey("b")), Some(&[150.0, 3.0, 50.0][..]));
    }

    #[test]
    fn scalar_aggregate() {
        let r = rel();
        let q = GroupByQuery::new(
            vec![],
            vec![AggregateSpec::sum(Expr::col(ColumnId(2)), "s")],
        );
        let res = execute_exact(&r, &q).unwrap();
        assert_eq!(res.scalar(), Some(210.0));
    }

    #[test]
    fn predicate_filters_groups_entirely() {
        let r = rel();
        // only rows with v >= 40 qualify -> group "a" disappears
        let q = GroupByQuery::new(vec![ColumnId(0)], vec![AggregateSpec::count("c")])
            .with_predicate(Predicate::ge(ColumnId(2), 40.0));
        let res = execute_exact(&r, &q).unwrap();
        assert_eq!(res.group_count(), 1);
        assert_eq!(res.get(&gkey("b")), Some(&[3.0][..]));
    }

    #[test]
    fn empty_selection_gives_empty_result() {
        let r = rel();
        let q = GroupByQuery::new(vec![], vec![AggregateSpec::count("c")])
            .with_predicate(Predicate::ge(ColumnId(2), 1e9));
        let res = execute_exact(&r, &q).unwrap();
        assert!(res.is_empty());
    }

    #[test]
    fn min_max_exact() {
        let r = rel();
        let q = GroupByQuery::new(
            vec![ColumnId(1)],
            vec![
                AggregateSpec::min(Expr::col(ColumnId(2)), "mn"),
                AggregateSpec::max(Expr::col(ColumnId(2)), "mx"),
            ],
        );
        let res = execute_exact(&r, &q).unwrap();
        let k1 = GroupKey::new(vec![Value::Int(1)]);
        let k2 = GroupKey::new(vec![Value::Int(2)]);
        assert_eq!(res.get(&k1), Some(&[10.0, 40.0][..]));
        assert_eq!(res.get(&k2), Some(&[30.0, 60.0][..]));
    }

    #[test]
    fn two_column_grouping_finest() {
        let r = rel();
        let q = GroupByQuery::new(
            vec![ColumnId(0), ColumnId(1)],
            vec![AggregateSpec::sum(Expr::col(ColumnId(2)), "s")],
        );
        let res = execute_exact(&r, &q).unwrap();
        assert_eq!(res.group_count(), 4);
        let k = GroupKey::new(vec![Value::str("a"), Value::Int(1)]);
        assert_eq!(res.get(&k), Some(&[30.0][..]));
    }

    #[test]
    fn aggregate_over_expression() {
        let r = rel();
        let q = GroupByQuery::new(
            vec![],
            vec![AggregateSpec::sum(
                Expr::col(ColumnId(2)).mul(Expr::lit(2.0)),
                "s2",
            )],
        );
        let res = execute_exact(&r, &q).unwrap();
        assert_eq!(res.scalar(), Some(420.0));
    }

    #[test]
    fn having_filters_exact_results() {
        use crate::query::Having;
        use relation::predicate::CmpOp;
        let r = rel();
        // Per-group sums: a → 60, b → 150; HAVING s > 100 keeps only b.
        let q = GroupByQuery::new(
            vec![ColumnId(0)],
            vec![AggregateSpec::sum(Expr::col(ColumnId(2)), "s")],
        )
        .with_having(Having::new("s", CmpOp::Gt, 100.0));
        let res = execute_exact(&r, &q).unwrap();
        assert_eq!(res.group_count(), 1);
        assert_eq!(res.get(&gkey("b")), Some(&[150.0][..]));
    }

    #[test]
    fn invalid_query_is_error() {
        let r = rel();
        let q = GroupByQuery::new(vec![], vec![]);
        assert!(execute_exact(&r, &q).is_err());
    }
}
