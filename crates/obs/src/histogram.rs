//! Fixed-bucket log-scale histogram: power-of-two buckets so
//! `bucket_index` is a single `leading_zeros`, recording is two relaxed
//! atomic adds, and snapshots from independent recorders merge exactly
//! (bucket-wise addition — no rebinning error).

use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::sync::Arc;

use serde::{Deserialize, Serialize};

/// Number of buckets: bucket 0 holds the value 0, bucket `i >= 1` holds
/// values in `[2^(i-1), 2^i - 1]` (the last bucket caps at `u64::MAX`).
pub const BUCKETS: usize = 65;

/// Bucket index for a recorded value — `0` for 0, else `64 - leading_zeros(v)`.
#[inline]
pub fn bucket_index(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        (64 - v.leading_zeros()) as usize
    }
}

/// Inclusive `(lo, hi)` bounds of bucket `i`.
pub fn bucket_bounds(i: usize) -> (u64, u64) {
    if i == 0 {
        (0, 0)
    } else if i >= BUCKETS - 1 {
        (1u64 << 63, u64::MAX)
    } else {
        (1u64 << (i - 1), (1u64 << i) - 1)
    }
}

#[derive(Debug)]
struct Core {
    buckets: [AtomicU64; BUCKETS],
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Core {
    fn new() -> Core {
        Core {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }
}

/// Shared handle to a histogram; cloning shares the same underlying
/// buckets, recording is wait-free.
#[derive(Debug, Clone)]
pub struct Histogram(Arc<Core>);

impl Default for Histogram {
    fn default() -> Self {
        Histogram(Arc::new(Core::new()))
    }
}

impl Histogram {
    pub fn new() -> Histogram {
        Histogram::default()
    }

    /// Record one observation. No-op under `obs-off`.
    #[inline]
    pub fn record(&self, v: u64) {
        if !crate::ENABLED {
            return;
        }
        let c = &*self.0;
        c.buckets[bucket_index(v)].fetch_add(1, Relaxed);
        c.sum.fetch_add(v, Relaxed);
        c.min.fetch_min(v, Relaxed);
        c.max.fetch_max(v, Relaxed);
    }

    /// Take a consistent-by-construction snapshot: `count` is derived
    /// from the bucket array itself, so quantiles over the snapshot are
    /// always well defined even while recorders are running.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let c = &*self.0;
        let buckets: Vec<u64> = c.buckets.iter().map(|b| b.load(Relaxed)).collect();
        let count = buckets.iter().sum();
        HistogramSnapshot {
            buckets,
            count,
            sum: c.sum.load(Relaxed),
            min: c.min.load(Relaxed),
            max: c.max.load(Relaxed),
        }
    }
}

/// Immutable copy of a histogram's state. `min` is `u64::MAX` when the
/// histogram is empty (`count == 0`).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct HistogramSnapshot {
    pub buckets: Vec<u64>,
    pub count: u64,
    pub sum: u64,
    pub min: u64,
    pub max: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        HistogramSnapshot {
            buckets: vec![0; BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }
}

impl HistogramSnapshot {
    /// Fold `other` into `self`: bucket-wise addition, so merging the
    /// snapshots of N independent recorders equals one recorder that saw
    /// every observation.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        if self.buckets.len() < other.buckets.len() {
            self.buckets.resize(other.buckets.len(), 0);
        }
        for (s, o) in self.buckets.iter_mut().zip(&other.buckets) {
            *s += o;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Quantile estimate: upper bound of the bucket holding the rank-`q`
    /// observation, clamped to the observed max. Monotone in `q`;
    /// returns 0 on an empty histogram.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &b) in self.buckets.iter().enumerate() {
            seen += b;
            if seen >= rank {
                return bucket_bounds(i).1.min(self.max);
            }
        }
        self.max
    }

    /// Mean of recorded values, 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    pub fn p95(&self) -> u64 {
        self.quantile(0.95)
    }

    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_matches_bounds() {
        for v in [0u64, 1, 2, 3, 4, 7, 8, 1023, 1024, u64::MAX] {
            let i = bucket_index(v);
            let (lo, hi) = bucket_bounds(i);
            assert!(lo <= v && v <= hi, "v={v} i={i} lo={lo} hi={hi}");
        }
    }

    #[test]
    fn buckets_partition_the_domain() {
        // Consecutive buckets tile [0, u64::MAX] with no gap or overlap.
        let mut expect_lo = 0u64;
        for i in 0..BUCKETS {
            let (lo, hi) = bucket_bounds(i);
            assert_eq!(lo, expect_lo, "bucket {i}");
            assert!(hi >= lo);
            if i + 1 < BUCKETS {
                expect_lo = hi + 1;
            } else {
                assert_eq!(hi, u64::MAX);
            }
        }
    }

    #[test]
    fn record_and_quantile() {
        let h = Histogram::new();
        for v in [1u64, 2, 3, 100, 200, 1000] {
            h.record(v);
        }
        let s = h.snapshot();
        if crate::ENABLED {
            assert_eq!(s.count, 6);
            assert_eq!(s.sum, 1306);
            assert_eq!(s.min, 1);
            assert_eq!(s.max, 1000);
            assert!(s.quantile(0.0) <= s.quantile(0.5));
            assert!(s.quantile(0.5) <= s.quantile(1.0));
            assert_eq!(s.quantile(1.0), 1000);
        } else {
            assert_eq!(s.count, 0);
            assert_eq!(s.quantile(0.5), 0);
        }
    }

    #[test]
    fn empty_snapshot_is_all_zero() {
        let s = Histogram::new().snapshot();
        assert_eq!(s.count, 0);
        assert_eq!(s.quantile(0.99), 0);
        assert_eq!(s.mean(), 0.0);
    }

    #[test]
    fn merge_equals_single_recorder() {
        let a = Histogram::new();
        let b = Histogram::new();
        let all = Histogram::new();
        for v in 0..100u64 {
            if v % 2 == 0 {
                a.record(v * 17);
            } else {
                b.record(v * 17);
            }
            all.record(v * 17);
        }
        let mut merged = a.snapshot();
        merged.merge(&b.snapshot());
        assert_eq!(merged, all.snapshot());
    }
}
