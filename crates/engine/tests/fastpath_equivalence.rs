//! Fast-path equivalence: every rewrite strategy must produce *bit-identical*
//! [`QueryResult`]s across {serial, parallel} × {cold, warm cache}.
//!
//! The fixture is deliberately larger than both the parallel-aggregation
//! threshold (`PAR_MIN_ROWS`) and the chunk size (`CHUNK_ROWS` = 16·1024),
//! so the parallel legs genuinely fan out and the chunk-merge path is
//! exercised rather than short-circuited.

use engine::{
    AggregateSpec, ExecOptions, GroupByQuery, Having, Integrated, KeyNormalized, NestedIntegrated,
    Normalized, QueryCache, SamplePlan, StratifiedInput,
};
use relation::predicate::CmpOp;
use relation::{ColumnId, DataType, Expr, GroupKey, Predicate, RelationBuilder, Value};

/// Deterministic pseudo-random stratified sample: `rows` tuples over
/// `strata` strata (stratified on column `g`), with mixed scale factors.
fn big_sample(rows: usize, strata: usize) -> StratifiedInput {
    let mut b = RelationBuilder::new()
        .column("g", DataType::Int)
        .column("h", DataType::Int)
        .column("v", DataType::Float);
    let mut stratum_of_row = Vec::with_capacity(rows);
    let mut state = 0x9E37_79B9_7F4A_7C15u64;
    for _ in 0..rows {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let g = ((state >> 33) as usize) % strata;
        let h = ((state >> 17) as usize) % 7;
        let v = ((state >> 11) % 10_000) as f64 / 100.0;
        b.push_row(&[Value::Int(g as i64), Value::Int(h as i64), Value::from(v)])
            .unwrap();
        stratum_of_row.push(g as u32);
    }
    StratifiedInput {
        rows: b.finish(),
        stratum_of_row,
        scale_factors: (0..strata).map(|s| 1.0 + (s % 9) as f64 * 0.5).collect(),
        strata_keys: (0..strata)
            .map(|s| GroupKey::new(vec![Value::Int(s as i64)]))
            .collect(),
        grouping_columns: vec![ColumnId(0)],
    }
}

fn plans(s: &StratifiedInput) -> Vec<Box<dyn SamplePlan>> {
    vec![
        Box::new(Integrated::build(s).unwrap()),
        Box::new(NestedIntegrated::build(s).unwrap()),
        Box::new(Normalized::build(s).unwrap()),
        Box::new(KeyNormalized::build(s).unwrap()),
    ]
}

fn queries() -> Vec<GroupByQuery> {
    let v = Expr::col(ColumnId(2));
    vec![
        GroupByQuery::new(
            vec![ColumnId(0)],
            vec![
                AggregateSpec::sum(v.clone(), "s"),
                AggregateSpec::count("c"),
                AggregateSpec::avg(v.clone(), "a"),
            ],
        ),
        // Selective predicate: exercises masked evaluation + bitmap ops.
        GroupByQuery::new(
            vec![ColumnId(0), ColumnId(1)],
            vec![AggregateSpec::sum(v.clone(), "s")],
        )
        .with_predicate(Predicate::ge(ColumnId(2), 75.0)),
        GroupByQuery::new(
            vec![ColumnId(1)],
            vec![
                AggregateSpec::avg(v.clone(), "a"),
                AggregateSpec::min(v.clone(), "mn"),
                AggregateSpec::max(v.clone(), "mx"),
            ],
        ),
        // Scalar (no grouping).
        GroupByQuery::new(
            vec![],
            vec![
                AggregateSpec::sum(v.clone(), "s"),
                AggregateSpec::count("c"),
            ],
        ),
        // Group-only predicate: referenced columns ⊆ grouping columns, so
        // the cached-summary fast path may serve this without a row scan.
        GroupByQuery::new(
            vec![ColumnId(0)],
            vec![
                AggregateSpec::sum(v.clone(), "s"),
                AggregateSpec::count("c"),
                AggregateSpec::avg(v.clone(), "a"),
                AggregateSpec::min(v.clone(), "mn"),
                AggregateSpec::max(v.clone(), "mx"),
            ],
        )
        .with_predicate(Predicate::le(ColumnId(0), 11i64)),
        // Compound group-only predicate over both grouping columns.
        GroupByQuery::new(
            vec![ColumnId(0), ColumnId(1)],
            vec![
                AggregateSpec::sum(v.clone(), "s"),
                AggregateSpec::count("c"),
            ],
        )
        .with_predicate(
            Predicate::ge(ColumnId(0), 4i64)
                .and(Predicate::le(ColumnId(1), 5i64).or(Predicate::eq(ColumnId(0), 17i64))),
        ),
        // Group-only predicate selecting nothing: the fast path must agree
        // with the scan path on the empty result too.
        GroupByQuery::new(vec![ColumnId(0)], vec![AggregateSpec::count("c")])
            .with_predicate(Predicate::ge(ColumnId(0), 1_000_000i64)),
        // Group-only predicate combined with HAVING on an estimated sum.
        GroupByQuery::new(
            vec![ColumnId(0)],
            vec![AggregateSpec::sum(v, "s"), AggregateSpec::count("c")],
        )
        .with_predicate(Predicate::le(ColumnId(0), 15i64))
        .with_having(Having::new("s", CmpOp::Gt, 0.0)),
    ]
}

#[test]
fn strategies_bit_identical_across_modes_and_cache_states() {
    let s = big_sample(40_000, 20);
    for plan in plans(&s) {
        let cache = QueryCache::new();
        for (qi, q) in queries().into_iter().enumerate() {
            let cold_serial = plan.execute_opts(&q, &ExecOptions::default()).unwrap();
            let cold_parallel = plan
                .execute_opts(
                    &q,
                    &ExecOptions {
                        cache: None,
                        parallel: true,
                        trace: None,
                    },
                )
                .unwrap();
            // First cached execution populates the cache (cold-with-cache),
            // second hits it (warm).
            let warm_serial = plan
                .execute_opts(
                    &q,
                    &ExecOptions {
                        cache: Some(&cache),
                        parallel: false,
                        trace: None,
                    },
                )
                .unwrap();
            let warm_parallel = plan
                .execute_opts(
                    &q,
                    &ExecOptions {
                        cache: Some(&cache),
                        parallel: true,
                        trace: None,
                    },
                )
                .unwrap();
            // Query 6 selects no groups on purpose (predicate matches no
            // stratum); every other fixture query must produce rows.
            if qi == 6 {
                assert!(cold_serial.is_empty(), "{}: expected empty", plan.name());
            } else {
                assert!(
                    !cold_serial.is_empty(),
                    "{}: fixture query {qi} empty",
                    plan.name()
                );
            }
            assert_eq!(
                cold_serial,
                cold_parallel,
                "{}: serial vs parallel",
                plan.name()
            );
            assert_eq!(cold_serial, warm_serial, "{}: cold vs warm", plan.name());
            assert_eq!(
                cold_serial,
                warm_parallel,
                "{}: cold vs warm parallel",
                plan.name()
            );
        }
        let stats = cache.stats();
        assert!(
            stats.hits > 0,
            "{}: cache never hit (hits={}, misses={})",
            plan.name(),
            stats.hits,
            stats.misses
        );
    }
}

#[test]
fn warm_cache_results_survive_repeated_execution() {
    // Repeated warm executions must be stable (no accumulation of state in
    // the cache that could drift results).
    let s = big_sample(20_000, 8);
    let plan = Integrated::build(&s).unwrap();
    let cache = QueryCache::new();
    let q = GroupByQuery::new(
        vec![ColumnId(0)],
        vec![AggregateSpec::avg(Expr::col(ColumnId(2)), "a")],
    );
    let opts = ExecOptions {
        cache: Some(&cache),
        parallel: true,
        trace: None,
    };
    let first = plan.execute_opts(&q, &opts).unwrap();
    for _ in 0..5 {
        assert_eq!(first, plan.execute_opts(&q, &opts).unwrap());
    }
}
