//! The §8 multi-criteria weight-vector framework (paper Figure 19).
//!
//! A *weight vector* assigns each finest group a relative share of the
//! space under one allocation criterion (House and Senate each contribute
//! one; per-group variance contributes another). The final allocation is
//! the per-group maximum over all weight vectors, scaled down to the
//! budget — exactly the construction of Figure 5 generalized to arbitrary
//! criteria.

use relation::{Expr, Relation};

use crate::alloc::{check_space, scale_to_budget, Allocation, AllocationStrategy};
use crate::census::GroupCensus;
use crate::error::{CongressError, Result};
use crate::lattice::all_groupings;

/// One named allocation criterion: a relative weight per finest group.
/// Weights are normalized internally, so only ratios matter.
#[derive(Debug, Clone)]
pub struct WeightVector {
    /// Criterion label (for reports).
    pub name: String,
    /// Relative weight per finest group (length = census group count).
    pub weights: Vec<f64>,
}

impl WeightVector {
    /// Construct, validating weights.
    pub fn new(name: impl Into<String>, weights: Vec<f64>) -> Result<Self> {
        if weights.is_empty() {
            return Err(CongressError::InvalidSpec("empty weight vector".into()));
        }
        if weights.iter().any(|w| !w.is_finite() || *w < 0.0) {
            return Err(CongressError::InvalidSpec(
                "weights must be finite and non-negative".into(),
            ));
        }
        if weights.iter().sum::<f64>() <= 0.0 {
            return Err(CongressError::InvalidSpec(
                "weight vector must have positive total".into(),
            ));
        }
        Ok(WeightVector {
            name: name.into(),
            weights,
        })
    }

    /// The House criterion: weight ∝ group size.
    pub fn house(census: &GroupCensus) -> WeightVector {
        WeightVector {
            name: "House".into(),
            weights: census.sizes().iter().map(|&n| n as f64).collect(),
        }
    }

    /// The Senate criterion: equal weight per group.
    pub fn senate(census: &GroupCensus) -> WeightVector {
        WeightVector {
            name: "Senate".into(),
            weights: vec![1.0; census.group_count()],
        }
    }

    /// Every `s_{g,T}` column of the Congress table (Eq 4), one vector per
    /// grouping `T ⊆ G`. Combining all of these via [`MultiCriteria`]
    /// reproduces the Congress allocation.
    pub fn congress_lattice(census: &GroupCensus) -> Vec<WeightVector> {
        all_groupings(census.attribute_count())
            .map(|t| {
                let view = census.supergroups(t);
                let weights = view
                    .supergroup_of
                    .iter()
                    .enumerate()
                    .map(|(g, &h)| {
                        census.sizes()[g] as f64
                            / (view.group_count as f64 * view.sizes[h as usize] as f64)
                    })
                    .collect();
                WeightVector {
                    name: format!("s_g,T(mask={})", t.0),
                    weights,
                }
            })
            .collect()
    }

    /// The §8 variance criterion: weight ∝ `n_g · S_g` where `S_g` is the
    /// per-group standard deviation of `expr` — Neyman-style allocation, so
    /// groups with wider spreads get more of the sample.
    pub fn variance(census: &GroupCensus, rel: &Relation, expr: &Expr) -> Result<WeightVector> {
        let gor = census.group_of_row().ok_or_else(|| {
            CongressError::CensusMismatch(
                "variance criterion requires a relation-built census".into(),
            )
        })?;
        if gor.len() != rel.row_count() {
            return Err(CongressError::CensusMismatch(format!(
                "census covers {} rows, relation has {}",
                gor.len(),
                rel.row_count()
            )));
        }
        let values = expr.eval(rel)?;
        let g = census.group_count();
        let mut sum = vec![0.0f64; g];
        let mut sumsq = vec![0.0f64; g];
        for (row, &gid) in gor.iter().enumerate() {
            let v = values[row];
            sum[gid as usize] += v;
            sumsq[gid as usize] += v * v;
        }
        let weights = (0..g)
            .map(|i| {
                let n = census.sizes()[i] as f64;
                let mean = sum[i] / n;
                let var = (sumsq[i] / n - mean * mean).max(0.0);
                n * var.sqrt()
            })
            .collect();
        WeightVector::new("Variance", weights)
    }
}

/// Allocation by per-group maximum over several weight vectors, scaled to
/// the budget (Figure 19's "aggregate the space allocated by each of the
/// weight vectors").
#[derive(Debug, Clone)]
pub struct MultiCriteria {
    vectors: Vec<WeightVector>,
}

impl MultiCriteria {
    /// Build from at least one criterion; all vectors must have the same
    /// length.
    pub fn new(vectors: Vec<WeightVector>) -> Result<Self> {
        if vectors.is_empty() {
            return Err(CongressError::InvalidSpec(
                "multi-criteria allocation needs at least one weight vector".into(),
            ));
        }
        let len = vectors[0].weights.len();
        if vectors.iter().any(|v| v.weights.len() != len) {
            return Err(CongressError::InvalidSpec(
                "all weight vectors must have the same length".into(),
            ));
        }
        Ok(MultiCriteria { vectors })
    }

    /// The criteria in use.
    pub fn vectors(&self) -> &[WeightVector] {
        &self.vectors
    }
}

impl AllocationStrategy for MultiCriteria {
    fn name(&self) -> &'static str {
        "Multi-criteria"
    }

    fn allocate(&self, census: &GroupCensus, space: f64) -> Result<Allocation> {
        check_space(space)?;
        let g = census.group_count();
        if self.vectors[0].weights.len() != g {
            return Err(CongressError::CensusMismatch(format!(
                "weight vectors cover {} groups, census has {g}",
                self.vectors[0].weights.len()
            )));
        }
        let mut raw = vec![0.0f64; g];
        for v in &self.vectors {
            let total: f64 = v.weights.iter().sum();
            for (r, &w) in raw.iter_mut().zip(&v.weights) {
                let share = space * w / total;
                if share > *r {
                    *r = share;
                }
            }
        }
        Ok(scale_to_budget(raw, space))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alloc::{BasicCongress, Congress};
    use crate::census::test_support::{figure5_census, figure5_relation};
    use relation::ColumnId;

    #[test]
    fn house_plus_senate_reproduces_basic_congress() {
        let c = figure5_census(1);
        let mc =
            MultiCriteria::new(vec![WeightVector::house(&c), WeightVector::senate(&c)]).unwrap();
        let a = mc.allocate(&c, 100.0).unwrap();
        let b = BasicCongress.allocate(&c, 100.0).unwrap();
        for (x, y) in a.targets().iter().zip(b.targets()) {
            assert!((x - y).abs() < 1e-9);
        }
    }

    #[test]
    fn lattice_vectors_reproduce_congress() {
        let c = figure5_census(1);
        let mc = MultiCriteria::new(WeightVector::congress_lattice(&c)).unwrap();
        let a = mc.allocate(&c, 100.0).unwrap();
        let b = Congress.allocate(&c, 100.0).unwrap();
        for (x, y) in a.targets().iter().zip(b.targets()) {
            assert!((x - y).abs() < 1e-9, "{x} vs {y}");
        }
        assert!((a.scale_down_factor() - b.scale_down_factor()).abs() < 1e-12);
    }

    #[test]
    fn variance_criterion_prefers_wide_groups() {
        // Figure-5 relation where the (a2,b3) group's q values are spread
        // out: give it a synthetic high-variance aggregate by construction.
        let rel = figure5_relation(10);
        let cols = rel.schema().column_ids(&["A", "B"]).unwrap();
        let census = GroupCensus::build(&rel, &cols).unwrap();
        let q = rel.schema().column_id("q").unwrap();
        let v = WeightVector::variance(&census, &rel, &Expr::col(q)).unwrap();
        assert_eq!(v.weights.len(), census.group_count());
        assert!(v.weights.iter().all(|&w| w >= 0.0));
        // q is a global running counter, so all groups have nonzero spread.
        assert!(v.weights.iter().sum::<f64>() > 0.0);
    }

    #[test]
    fn variance_requires_row_mapping() {
        use relation::{GroupKey, Value};
        let keys = vec![GroupKey::new(vec![Value::Int(0)])];
        let c = GroupCensus::from_counts(vec![ColumnId(0)], keys, vec![10]).unwrap();
        let rel = figure5_relation(10);
        let q = rel.schema().column_id("q").unwrap();
        assert!(WeightVector::variance(&c, &rel, &Expr::col(q)).is_err());
    }

    #[test]
    fn constructor_validation() {
        assert!(WeightVector::new("w", vec![]).is_err());
        assert!(WeightVector::new("w", vec![-1.0, 2.0]).is_err());
        assert!(WeightVector::new("w", vec![0.0, 0.0]).is_err());
        assert!(MultiCriteria::new(vec![]).is_err());
        let a = WeightVector::new("a", vec![1.0, 1.0]).unwrap();
        let b = WeightVector::new("b", vec![1.0]).unwrap();
        assert!(MultiCriteria::new(vec![a, b]).is_err());
    }

    #[test]
    fn mismatched_census_rejected_at_allocate() {
        let c = figure5_census(1); // 4 groups
        let v = WeightVector::new("w", vec![1.0, 1.0]).unwrap(); // 2 groups
        let mc = MultiCriteria::new(vec![v]).unwrap();
        assert!(mc.allocate(&c, 100.0).is_err());
    }
}
