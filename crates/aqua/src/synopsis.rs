//! The synopsis: a maintained biased sample plus its physical query plan.

use std::sync::Arc;

use rand::rngs::StdRng;
use rand::SeedableRng;

use congress::build::{
    BasicCongressMaintainer, CongressMaintainer, HouseMaintainer, IncrementalMaintainer,
    SenateMaintainer,
};
use congress::{AllocationStrategy, CongressionalSample, GroupCensus, SeedSpec};
use engine::rewrite::{Integrated, KeyNormalized, NestedIntegrated, Normalized, SamplePlan};
use engine::{PlanCache, QueryCache, StratifiedInput};
use relation::{ColumnId, GroupKey, Relation};

use crate::config::{AquaConfig, RewriteChoice, SamplingStrategy};
use crate::error::Result;
use crate::serve_cache::AnswerCache;

/// Maintainer dispatch over the four strategies.
#[derive(Debug, Clone)]
enum Maintainer {
    House(HouseMaintainer),
    Senate(SenateMaintainer),
    Basic(BasicCongressMaintainer),
    Congress(CongressMaintainer),
}

impl Maintainer {
    fn new(strategy: SamplingStrategy, space: usize, attrs: usize) -> Maintainer {
        match strategy {
            SamplingStrategy::House => Maintainer::House(HouseMaintainer::new(space)),
            SamplingStrategy::Senate => Maintainer::Senate(SenateMaintainer::new(space)),
            SamplingStrategy::BasicCongress => {
                Maintainer::Basic(BasicCongressMaintainer::new(space))
            }
            SamplingStrategy::Congress => {
                Maintainer::Congress(CongressMaintainer::new(attrs, space as f64))
            }
        }
    }

    fn insert(&mut self, row: usize, key: &GroupKey, rng: &mut StdRng) {
        match self {
            Maintainer::House(m) => m.insert(row, key, rng),
            Maintainer::Senate(m) => m.insert(row, key, rng),
            Maintainer::Basic(m) => m.insert(row, key, rng),
            Maintainer::Congress(m) => m.insert(row, key, rng),
        }
    }

    fn snapshot(&self, space: usize, rng: &mut StdRng) -> Result<CongressionalSample> {
        Ok(match self {
            Maintainer::House(m) => m.snapshot(rng)?,
            Maintainer::Senate(m) => m.snapshot(rng)?,
            Maintainer::Basic(m) => m.snapshot(rng)?,
            Maintainer::Congress(m) => m.snapshot_with_budget(Some(space as f64), rng)?,
        })
    }

    fn sample_len(&self) -> usize {
        match self {
            Maintainer::House(m) => m.sample_len(),
            Maintainer::Senate(m) => m.sample_len(),
            Maintainer::Basic(m) => m.sample_len(),
            Maintainer::Congress(m) => m.sample_len(),
        }
    }
}

/// A maintained synopsis of one relation: the incremental sampler, the
/// latest materialized sample, and the physical plan answering queries.
pub struct Synopsis {
    config: AquaConfig,
    grouping: Vec<ColumnId>,
    maintainer: Maintainer,
    rng: StdRng,
    /// Plan rebuilt lazily after insertions.
    plan: Option<Box<dyn SamplePlan + Send + Sync>>,
    /// The stratified input backing `plan` (needed for error bounds).
    input: Option<StratifiedInput>,
    /// The materialized sample backing `plan` — whichever path built it
    /// (incremental refresh or bulk parallel rebuild), so export always
    /// ships exactly what the plan answers from.
    sample: Option<CongressionalSample>,
    sample_rows: usize,
    stale: bool,
    /// Memoized query-serving state (group indexes, stratum layout, per-row
    /// weights) for the *current* plan generation. Invalidated whenever the
    /// backing sample changes.
    cache: QueryCache,
    /// Normalized SQL → parsed + rewritten plan, so repeated dashboard
    /// queries skip tokenize/parse/render entirely. Schema-scoped, not
    /// generation-scoped: plans survive ingest/refresh (see
    /// [`Self::invalidate_caches`] for why that is sound).
    plan_cache: PlanCache,
    /// Normalized SQL → complete served answer for the current synopsis
    /// generation. Invalidated on the same schedule as `cache`.
    answer_cache: AnswerCache,
    /// Per-synopsis metric registry: maintenance counters and build-phase
    /// timings live here; the owning [`Aqua`](crate::Aqua) records its
    /// query spans into the same registry.
    registry: Arc<obs::Registry>,
}

impl std::fmt::Debug for Synopsis {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Synopsis")
            .field("strategy", &self.config.strategy.name())
            .field("rewrite", &self.config.rewrite.name())
            .field("sample_rows", &self.sample_rows)
            .field("stale", &self.stale)
            .finish()
    }
}

impl Synopsis {
    /// Create an empty synopsis; feed it the relation via [`Self::ingest`].
    pub fn new(config: AquaConfig, grouping: Vec<ColumnId>) -> Result<Synopsis> {
        config.validate()?;
        Ok(Synopsis {
            maintainer: Maintainer::new(config.strategy, config.space, grouping.len()),
            rng: StdRng::seed_from_u64(config.seed),
            config,
            grouping,
            plan: None,
            input: None,
            sample: None,
            sample_rows: 0,
            stale: true,
            cache: QueryCache::new(),
            plan_cache: PlanCache::new(),
            answer_cache: AnswerCache::new(),
            registry: Arc::new(obs::Registry::new()),
        })
    }

    /// Build the configured physical rewrite plan over `input`.
    fn build_plan(
        rewrite: RewriteChoice,
        input: &StratifiedInput,
    ) -> Result<Box<dyn SamplePlan + Send + Sync>> {
        Ok(match rewrite {
            RewriteChoice::Integrated => Box::new(Integrated::build(input)?),
            RewriteChoice::NestedIntegrated => Box::new(NestedIntegrated::build(input)?),
            RewriteChoice::Normalized => Box::new(Normalized::build(input)?),
            RewriteChoice::KeyNormalized => Box::new(KeyNormalized::build(input)?),
        })
    }

    /// Stream rows `[first_row, first_row + rel rows)` of the warehouse
    /// table through the maintainer. Row ids must be global (offsets into
    /// the full stored table), so insertions keep extending the id space.
    pub fn ingest(&mut self, rel: &Relation, first_row: usize) -> Result<()> {
        for r in 0..rel.row_count() {
            let key = GroupKey::from_row(rel, r, &self.grouping);
            self.maintainer.insert(first_row + r, &key, &mut self.rng);
        }
        self.stale = true;
        self.invalidate_caches();
        self.registry.counter("synopsis_ingests_total").inc();
        self.registry
            .counter("synopsis_ingested_rows_total")
            .add(rel.row_count() as u64);
        Ok(())
    }

    /// Rebuild the physical plan from the maintainer's current sample.
    /// `table` must be the full stored relation (all ingested segments).
    pub fn refresh(&mut self, table: &Relation) -> Result<()> {
        let timer = obs::Timer::start();
        let mut sample = self.maintainer.snapshot(self.config.space, &mut self.rng)?;
        sample.set_grouping_columns(self.grouping.clone());
        let input = match self.config.strategy {
            // House is scaled as a plain uniform sample (Figure 2's 100×),
            // not post-stratified.
            SamplingStrategy::House => sample.to_stratified_input_uniform(table)?,
            _ => sample.to_stratified_input(table)?,
        };
        let plan = Self::build_plan(self.config.rewrite, &input)?;
        self.sample_rows = input.rows.row_count();
        self.plan = Some(plan);
        self.input = Some(input);
        self.sample = Some(sample);
        self.stale = false;
        self.invalidate_caches();
        self.registry.counter("synopsis_refreshes_total").inc();
        self.registry
            .histogram("synopsis_refresh_us")
            .record(timer.elapsed_us());
        self.registry
            .gauge("synopsis_sample_rows")
            .set(self.sample_rows as i64);
        Ok(())
    }

    /// Rebuild the synopsis *in bulk* from the full stored table: parallel
    /// census ([`GroupCensus::par_build`]), allocation, and per-stratum
    /// draws ([`CongressionalSample::draw_par`]), all seeded from
    /// `config.seed` via [`SeedSpec`]. Runs on `config.parallelism`
    /// threads and produces the identical synopsis for *any* thread count
    /// — per-group RNG streams depend only on (seed, group key).
    ///
    /// Unlike [`Self::refresh`], which materializes the incremental
    /// maintainer's reservoir state, this recomputes the sample from
    /// scratch; the maintainer keeps tracking the stream for future
    /// incremental refreshes.
    pub fn rebuild_bulk(&mut self, table: &Relation) -> Result<()> {
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(self.config.effective_parallelism())
            .build()
            .expect("thread pool construction is infallible in this facade");
        let total = obs::Timer::start();
        let registry = Arc::clone(&self.registry);
        let (sample, input) = pool.install(|| -> Result<_> {
            // The three build phases are timed separately; the sequence
            // `allocate` → `draw_with_allocation_par` is exactly what
            // `CongressionalSample::draw_par` runs, so the sample is
            // unchanged by the instrumentation split.
            let timer = obs::Timer::start();
            let census = GroupCensus::par_build(table, &self.grouping)?;
            registry
                .histogram("synopsis_build_census_us")
                .record(timer.elapsed_us());
            let spec = SeedSpec::new(self.config.seed);
            let strategy: &dyn AllocationStrategy = match self.config.strategy {
                SamplingStrategy::House => &congress::alloc::House,
                SamplingStrategy::Senate => &congress::alloc::Senate,
                SamplingStrategy::BasicCongress => &congress::alloc::BasicCongress,
                SamplingStrategy::Congress => &congress::alloc::Congress,
            };
            let timer = obs::Timer::start();
            let allocation = strategy.allocate(&census, self.config.space as f64)?;
            registry
                .histogram("synopsis_build_alloc_us")
                .record(timer.elapsed_us());
            let timer = obs::Timer::start();
            let sample = CongressionalSample::draw_with_allocation_par(
                table,
                &census,
                &allocation,
                strategy.name(),
                &spec,
            )?;
            let input = match self.config.strategy {
                SamplingStrategy::House => sample.to_stratified_input_uniform(table)?,
                _ => sample.to_stratified_input(table)?,
            };
            registry
                .histogram("synopsis_build_draw_us")
                .record(timer.elapsed_us());
            Ok((sample, input))
        })?;
        let plan = Self::build_plan(self.config.rewrite, &input)?;
        self.sample_rows = input.rows.row_count();
        self.plan = Some(plan);
        self.input = Some(input);
        self.sample = Some(sample);
        self.stale = false;
        self.invalidate_caches();
        self.registry.counter("synopsis_rebuilds_total").inc();
        self.registry
            .histogram("synopsis_rebuild_us")
            .record(total.elapsed_us());
        self.registry
            .gauge("synopsis_sample_rows")
            .set(self.sample_rows as i64);
        Ok(())
    }

    /// Invalidate the generation-scoped serving caches in one breath —
    /// query cache and answer cache. Runs on each mutation of the backing
    /// sample (`ingest`, `refresh`, `rebuild_bulk`), always under the
    /// owning system's write lock, so readers holding the read lock never
    /// observe a half-invalidated state.
    ///
    /// The **plan cache deliberately survives**: a cached plan is a pure
    /// function of the table schema, the rewrite choice, and the
    /// normalized SQL — all fixed for the lifetime of a built system —
    /// while the data a generation change affects is only consulted at
    /// execution time. Keeping plans across ingest is exactly where the
    /// cache earns its keep: in a write-heavy workload every repeat query
    /// after every batch still skips tokenize/parse/render and pays only
    /// the execution it genuinely owes.
    fn invalidate_caches(&self) {
        self.cache.invalidate();
        self.answer_cache.invalidate();
    }

    /// Whether [`Self::refresh`] must run before answering.
    pub fn is_stale(&self) -> bool {
        self.stale
    }

    /// The active physical plan (after a refresh).
    pub fn plan(&self) -> Option<&(dyn SamplePlan + Send + Sync)> {
        self.plan.as_deref()
    }

    /// The stratified input backing the plan (after a refresh).
    pub fn input(&self) -> Option<&StratifiedInput> {
        self.input.as_ref()
    }

    /// The memoized query-serving cache for the current plan generation:
    /// group indexes, per-group measure summaries and per-(group, stratum)
    /// moment cells (the O(groups) answer path), stratum layout, and
    /// per-row weights. Every mutation of the backing sample — [`Self::
    /// ingest`], [`Self::refresh`], [`Self::rebuild_bulk`] — invalidates
    /// the whole cache, so summary-served answers can never outlive the
    /// sample generation they were folded from.
    pub fn query_cache(&self) -> &QueryCache {
        &self.cache
    }

    /// The plan cache (normalized SQL → parsed + rewritten plan) for the
    /// current synopsis generation; invalidated with [`Self::query_cache`].
    pub fn plan_cache(&self) -> &PlanCache {
        &self.plan_cache
    }

    /// The answer cache (normalized SQL → complete served answer) for the
    /// current synopsis generation; invalidated with [`Self::query_cache`].
    pub fn answer_cache(&self) -> &AnswerCache {
        &self.answer_cache
    }

    /// The metric registry shared by this synopsis and its owning system:
    /// maintenance counters (`synopsis_*`) accumulate here alongside the
    /// query-span metrics recorded by [`Aqua`](crate::Aqua).
    pub fn registry(&self) -> &Arc<obs::Registry> {
        &self.registry
    }

    /// Sampled tuples in the materialized synopsis.
    pub fn sample_rows(&self) -> usize {
        self.sample_rows
    }

    /// Tuples currently tracked by the maintainer (pre-materialization).
    pub fn live_sample_len(&self) -> usize {
        self.maintainer.sample_len()
    }

    /// The configuration in force.
    pub fn config(&self) -> &AquaConfig {
        &self.config
    }

    /// The grouping columns this synopsis stratifies on.
    pub fn grouping(&self) -> &[ColumnId] {
        &self.grouping
    }

    /// The materialized sample backing the plan (after a refresh or bulk
    /// rebuild).
    pub fn sample(&self) -> Option<&CongressionalSample> {
        self.sample.as_ref()
    }

    /// Export the current materialized sample in the compact binary
    /// snapshot format (synopses are durable in Aqua — "stored as regular
    /// relations in the DBMS"). Encodes exactly the sample the active plan
    /// answers from, refreshing first if stale.
    pub fn export(&mut self, table: &Relation) -> Result<bytes::Bytes> {
        if self.stale || self.sample.is_none() {
            self.refresh(table)?;
        }
        let sample = self.sample.as_ref().expect("refresh stored the sample");
        Ok(congress::snapshot::encode(sample))
    }

    /// Rebuild a synopsis from an exported snapshot. The result answers
    /// queries but is *static*: the maintainer state cannot be recovered
    /// from a snapshot, so subsequent `ingest` calls start a fresh sample.
    pub fn import(
        config: AquaConfig,
        table: &Relation,
        snapshot: bytes::Bytes,
    ) -> Result<Synopsis> {
        config.validate()?;
        let sample = congress::snapshot::decode(snapshot)?;
        let grouping = sample.grouping_columns().to_vec();
        let input = match config.strategy {
            SamplingStrategy::House => sample.to_stratified_input_uniform(table)?,
            _ => sample.to_stratified_input(table)?,
        };
        let plan = Self::build_plan(config.rewrite, &input)?;
        let syn = Synopsis {
            maintainer: Maintainer::new(config.strategy, config.space, grouping.len()),
            rng: StdRng::seed_from_u64(config.seed),
            config,
            grouping,
            sample_rows: input.rows.row_count(),
            plan: Some(plan),
            input: Some(input),
            sample: Some(sample),
            stale: false,
            cache: QueryCache::new(),
            plan_cache: PlanCache::new(),
            answer_cache: AnswerCache::new(),
            registry: Arc::new(obs::Registry::new()),
        };
        syn.registry.counter("synopsis_imports_total").inc();
        syn.registry
            .gauge("synopsis_sample_rows")
            .set(syn.sample_rows as i64);
        Ok(syn)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use relation::{DataType, RelationBuilder, Value};

    fn table(n: i64) -> Relation {
        let mut b = RelationBuilder::new()
            .column("g", DataType::Str)
            .column("v", DataType::Float);
        for i in 0..n {
            let g = if i % 5 == 0 { "rare" } else { "common" };
            b.push_row(&[Value::str(g), Value::from(i as f64)]).unwrap();
        }
        b.finish()
    }

    fn config(strategy: SamplingStrategy) -> AquaConfig {
        AquaConfig {
            space: 50,
            strategy,
            rewrite: RewriteChoice::Integrated,
            confidence: 0.9,
            seed: 99,
            parallelism: 0,
        }
    }

    #[test]
    fn ingest_refresh_cycle() {
        let t = table(1000);
        let grouping = vec![ColumnId(0)];
        for strategy in SamplingStrategy::all() {
            let mut s = Synopsis::new(config(strategy), grouping.clone()).unwrap();
            assert!(s.is_stale());
            s.ingest(&t, 0).unwrap();
            s.refresh(&t).unwrap();
            assert!(!s.is_stale());
            assert!(s.plan().is_some());
            assert!(s.input().is_some());
            assert!(
                s.sample_rows() > 0 && s.sample_rows() <= 80,
                "{}: {}",
                strategy.name(),
                s.sample_rows()
            );
        }
    }

    #[test]
    fn incremental_ingest_extends_row_space() {
        let t = table(1000);
        let head = t.gather(&(0..600).collect::<Vec<_>>());
        let tail = t.gather(&(600..1000).collect::<Vec<_>>());
        let mut s = Synopsis::new(config(SamplingStrategy::Congress), vec![ColumnId(0)]).unwrap();
        s.ingest(&head, 0).unwrap();
        s.ingest(&tail, 600).unwrap();
        s.refresh(&t).unwrap();
        // All sampled row ids must be addressable in the full table.
        assert!(s.sample_rows() > 0);
        assert!(!s.is_stale());
    }

    #[test]
    fn rewrite_choices_all_build() {
        let t = table(500);
        for rewrite in RewriteChoice::all() {
            let mut c = config(SamplingStrategy::Senate);
            c.rewrite = rewrite;
            let mut s = Synopsis::new(c, vec![ColumnId(0)]).unwrap();
            s.ingest(&t, 0).unwrap();
            s.refresh(&t).unwrap();
            assert_eq!(s.plan().unwrap().name(), rewrite.name());
        }
    }

    #[test]
    fn export_import_round_trip_answers_identically() {
        use engine::{AggregateSpec, GroupByQuery};
        let t = table(800);
        let mut s = Synopsis::new(config(SamplingStrategy::Congress), vec![ColumnId(0)]).unwrap();
        s.ingest(&t, 0).unwrap();
        s.refresh(&t).unwrap();
        let snapshot = s.export(&t).unwrap();
        assert!(!snapshot.is_empty());

        let restored = Synopsis::import(config(SamplingStrategy::Congress), &t, snapshot).unwrap();
        assert!(!restored.is_stale());
        let q = GroupByQuery::new(vec![ColumnId(0)], vec![AggregateSpec::count("c")]);
        let a = s.plan().unwrap().execute(&q).unwrap();
        let b = restored.plan().unwrap().execute(&q).unwrap();
        // Export encodes exactly the sample backing the active plan, so
        // the restored synopsis answers from the same strata.
        assert_eq!(a.group_count(), b.group_count());
        assert_eq!(a, b);
    }

    #[test]
    fn bulk_rebuild_is_parallelism_invariant() {
        let t = table(5000);
        let grouping = vec![ColumnId(0)];
        let mut samples = Vec::new();
        for parallelism in [1usize, 2, 8] {
            let cfg = AquaConfig {
                parallelism,
                ..config(SamplingStrategy::Congress)
            };
            let mut s = Synopsis::new(cfg, grouping.clone()).unwrap();
            s.rebuild_bulk(&t).unwrap();
            assert!(!s.is_stale());
            assert!(s.plan().is_some());
            samples.push(s.sample().unwrap().clone());
        }
        for s in &samples[1..] {
            assert_eq!(samples[0].sampled_rows(), s.sampled_rows());
            assert_eq!(samples[0].strata_keys(), s.strata_keys());
            assert_eq!(samples[0].group_sizes(), s.group_sizes());
        }
    }

    #[test]
    fn bulk_rebuild_export_round_trips() {
        let t = table(2000);
        let mut s = Synopsis::new(config(SamplingStrategy::Senate), vec![ColumnId(0)]).unwrap();
        s.ingest(&t, 0).unwrap();
        s.rebuild_bulk(&t).unwrap();
        let snapshot = s.export(&t).unwrap();
        let restored = Synopsis::import(config(SamplingStrategy::Senate), &t, snapshot).unwrap();
        assert_eq!(restored.sample_rows(), s.sample_rows());
    }

    #[test]
    fn import_rejects_garbage() {
        let t = table(100);
        let r = Synopsis::import(
            config(SamplingStrategy::Congress),
            &t,
            bytes::Bytes::from_static(b"not a snapshot"),
        );
        assert!(r.is_err());
    }

    #[test]
    fn debug_format_mentions_strategy() {
        let s = Synopsis::new(config(SamplingStrategy::House), vec![ColumnId(0)]).unwrap();
        let d = format!("{s:?}");
        assert!(d.contains("House"));
    }
}
