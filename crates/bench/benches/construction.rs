//! Criterion bench for §6 construction: census-based draw vs the one-pass
//! maintainer route, for every strategy.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;

use congress::alloc::{BasicCongress, Congress, House, Senate};
use congress::build::{construct_one_pass, OnePassStrategy};
use congress::{CongressionalSample, GroupCensus};
use tpcd::{GeneratorConfig, TpcdDataset};

fn bench_construction(c: &mut Criterion) {
    let ds = TpcdDataset::generate(GeneratorConfig {
        table_size: 100_000,
        num_groups: 1000,
        group_skew: 0.86,
        agg_skew: 0.86,
        seed: 2,
    });
    let cols = ds.grouping_columns();
    let census = GroupCensus::build(&ds.relation, &cols).unwrap();
    let space = 7_000usize;

    let mut group = c.benchmark_group("construct_census");
    group.sample_size(10);
    group.bench_function("House", |b| {
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(3);
            CongressionalSample::draw(&ds.relation, &census, &House, space as f64, &mut rng)
                .unwrap()
        })
    });
    group.bench_function("Senate", |b| {
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(3);
            CongressionalSample::draw(&ds.relation, &census, &Senate, space as f64, &mut rng)
                .unwrap()
        })
    });
    group.bench_function("BasicCongress", |b| {
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(3);
            CongressionalSample::draw(
                &ds.relation,
                &census,
                &BasicCongress,
                space as f64,
                &mut rng,
            )
            .unwrap()
        })
    });
    group.bench_function("Congress", |b| {
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(3);
            CongressionalSample::draw(&ds.relation, &census, &Congress, space as f64, &mut rng)
                .unwrap()
        })
    });
    group.finish();

    let mut group = c.benchmark_group("construct_one_pass");
    group.sample_size(10);
    for (name, strat) in [
        ("House", OnePassStrategy::House),
        ("Senate", OnePassStrategy::Senate),
        ("BasicCongress", OnePassStrategy::BasicCongress),
        ("Congress", OnePassStrategy::Congress),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(name), &strat, |b, &strat| {
            b.iter(|| {
                let mut rng = StdRng::seed_from_u64(3);
                construct_one_pass(&ds.relation, &cols, strat, space, &mut rng).unwrap()
            })
        });
    }
    group.finish();

    c.bench_function("census_build_100k", |b| {
        b.iter(|| GroupCensus::build(&ds.relation, &cols).unwrap())
    });

    // Parallel pipeline (parallel census + seeded per-stratum draws) vs the
    // strictly sequential run of the same pipeline. Identical output at
    // every thread count — per-group RNG streams come from the seed — so
    // the comparison isolates the scheduling cost alone.
    let mut group = c.benchmark_group("construct_parallel");
    group.sample_size(10);
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut threads: Vec<usize> = [1usize, 2, 4, 8]
        .into_iter()
        .filter(|&t| t <= cores)
        .collect();
    if !threads.contains(&cores) {
        threads.push(cores);
    }
    for t in threads {
        group.bench_with_input(
            BenchmarkId::new("Congress", format!("{t}_threads")),
            &t,
            |b, &t| {
                b.iter(|| {
                    bench::construct_parallel(&ds.relation, &cols, &Congress, space as f64, 3, t)
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_construction);
criterion_main!(benches);
