//! Scalar values and a totally-ordered `f64` wrapper.

use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

use serde::{Deserialize, Serialize};

use crate::datatype::DataType;

/// An `f64` with total order, `Eq`, and `Hash`.
///
/// Group keys and dictionary entries must be hashable; IEEE floats are not.
/// `F64` normalizes all NaNs to a single canonical bit pattern and orders via
/// [`f64::total_cmp`], so `F64(NaN) == F64(NaN)` and negative zero compares
/// below positive zero — a deterministic order suitable for grouping.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct F64(f64);

impl F64 {
    /// Wrap a float, canonicalizing NaN.
    pub fn new(v: f64) -> Self {
        if v.is_nan() {
            F64(f64::NAN)
        } else {
            F64(v)
        }
    }

    /// The wrapped float.
    pub fn get(self) -> f64 {
        self.0
    }
}

impl PartialEq for F64 {
    fn eq(&self, other: &Self) -> bool {
        self.0.to_bits() == other.0.to_bits()
    }
}
impl Eq for F64 {}

impl PartialOrd for F64 {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for F64 {
    fn cmp(&self, other: &Self) -> Ordering {
        self.0.total_cmp(&other.0)
    }
}

impl Hash for F64 {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.0.to_bits().hash(state);
    }
}

impl From<f64> for F64 {
    fn from(v: f64) -> Self {
        F64::new(v)
    }
}

impl fmt::Display for F64 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// A scalar value of one of the supported [`DataType`]s.
///
/// `Str` holds an `Arc<str>` so that cloning values out of a dictionary (as
/// group keys do, potentially millions of times per query) is a refcount
/// bump, not an allocation.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Value {
    /// 64-bit signed integer.
    Int(i64),
    /// Totally-ordered 64-bit float.
    Float(F64),
    /// Shared UTF-8 string.
    Str(Arc<str>),
    /// Days since the Unix epoch.
    Date(i32),
}

impl Value {
    /// Construct a string value.
    pub fn str(s: impl Into<Arc<str>>) -> Self {
        Value::Str(s.into())
    }

    /// The value's data type.
    pub fn data_type(&self) -> DataType {
        match self {
            Value::Int(_) => DataType::Int,
            Value::Float(_) => DataType::Float,
            Value::Str(_) => DataType::Str,
            Value::Date(_) => DataType::Date,
        }
    }

    /// Numeric view of the value, if it has one. Dates convert to their
    /// day number so they can participate in MIN/MAX aggregates.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(v) => Some(*v as f64),
            Value::Float(v) => Some(v.get()),
            Value::Date(v) => Some(*v as f64),
            Value::Str(_) => None,
        }
    }

    /// Integer view, if the value is an `Int`.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(v) => Some(*v),
            _ => None,
        }
    }

    /// String view, if the value is a `Str`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Date view, if the value is a `Date`.
    pub fn as_date(&self) -> Option<i32> {
        match self {
            Value::Date(d) => Some(*d),
            _ => None,
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(F64::new(v))
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(Arc::from(v))
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(v) => write!(f, "{v}"),
            Value::Float(v) => write!(f, "{v}"),
            Value::Str(s) => write!(f, "{s}"),
            Value::Date(d) => write!(f, "d{d}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::hash_map::DefaultHasher;

    fn hash_of<T: Hash>(v: &T) -> u64 {
        let mut h = DefaultHasher::new();
        v.hash(&mut h);
        h.finish()
    }

    #[test]
    fn f64_nan_is_canonical() {
        let a = F64::new(f64::NAN);
        let b = F64::new(-f64::NAN);
        assert_eq!(a, b);
        assert_eq!(hash_of(&a), hash_of(&b));
    }

    #[test]
    fn f64_total_order() {
        let mut v = [
            F64::new(1.0),
            F64::new(-1.0),
            F64::new(0.0),
            F64::new(f64::INFINITY),
            F64::new(f64::NEG_INFINITY),
        ];
        v.sort();
        assert_eq!(
            v.iter().map(|x| x.get()).collect::<Vec<_>>(),
            vec![f64::NEG_INFINITY, -1.0, 0.0, 1.0, f64::INFINITY]
        );
    }

    #[test]
    fn value_type_and_views() {
        assert_eq!(Value::Int(7).data_type(), DataType::Int);
        assert_eq!(Value::Int(7).as_f64(), Some(7.0));
        assert_eq!(Value::from(2.5).as_f64(), Some(2.5));
        assert_eq!(Value::Date(10).as_f64(), Some(10.0));
        assert_eq!(Value::str("ab").as_f64(), None);
        assert_eq!(Value::str("ab").as_str(), Some("ab"));
        assert_eq!(Value::Date(3).as_date(), Some(3));
        assert_eq!(Value::Int(3).as_date(), None);
    }

    #[test]
    fn value_equality_and_hash_consistency() {
        let a = Value::str("hello");
        let b = Value::str(String::from("hello"));
        assert_eq!(a, b);
        assert_eq!(hash_of(&a), hash_of(&b));
        assert_ne!(Value::Int(1), Value::Date(1));
    }

    #[test]
    fn string_clone_is_shared() {
        let a = Value::str("shared");
        let b = a.clone();
        if let (Value::Str(x), Value::Str(y)) = (&a, &b) {
            assert!(Arc::ptr_eq(x, y));
        } else {
            unreachable!()
        }
    }

    #[test]
    fn display_forms() {
        assert_eq!(Value::Int(-4).to_string(), "-4");
        assert_eq!(Value::from(1.5).to_string(), "1.5");
        assert_eq!(Value::str("x").to_string(), "x");
        assert_eq!(Value::Date(9).to_string(), "d9");
    }
}
