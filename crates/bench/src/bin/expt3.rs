//! Experiment 3 (§7.3.1, Table 3): execution time of the four rewriting
//! strategies on `Q_{g2}` as the sample percentage grows (NG = 1000).
//!
//! Run: `cargo run -p bench --release --bin expt3 [-- --quick]`
//!
//! Paper-expected shape: Integrated-family ≫ Normalized-family; the
//! Normalized times grow steeply with sample size (join cost); running on
//! the full table is the slow baseline ("actual query time = 40 sec" on
//! the paper's hardware).

use std::time::{Duration, Instant};

use aqua::{RewriteChoice, SamplingStrategy};
use bench::harness::{build_plan, ExperimentSetup};
use bench::report::{secs, Table};
use engine::execute_exact;
use tpcd::GeneratorConfig;

/// Paper methodology: run five times, report the mean of the last four.
fn time_runs(mut f: impl FnMut()) -> Duration {
    let mut times = Vec::with_capacity(5);
    for _ in 0..5 {
        let t0 = Instant::now();
        f();
        times.push(t0.elapsed());
    }
    times[1..].iter().sum::<Duration>() / 4
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let config = GeneratorConfig {
        table_size: if quick { 200_000 } else { 1_000_000 },
        num_groups: 1000,
        group_skew: 0.86,
        agg_skew: 0.86,
        seed: 20000516,
    };
    eprintln!("generating lineitem: T={} ...", config.table_size);
    let setup = ExperimentSetup::new(config);

    let exact_time = time_runs(|| {
        let _ = execute_exact(&setup.dataset.relation, &setup.qg2).unwrap();
    });
    println!("\nactual (full-table) query time: {} s", secs(exact_time));

    let mut table = Table::new(
        "Table 3: Qg2 execution time (s) by rewrite strategy vs sample % \
         [expect: Integrated-family fastest; Normalized-family grows steeply]",
        &["technique", "1%", "5%", "10%"],
    );
    for rewrite in RewriteChoice::all() {
        let mut cells = vec![rewrite.name().to_string()];
        for f in [0.01, 0.05, 0.10] {
            let plan = build_plan(&setup, SamplingStrategy::Congress, rewrite, f, 3_000);
            let d = time_runs(|| {
                let _ = plan.execute(&setup.qg2).unwrap();
            });
            cells.push(secs(d));
        }
        table.row(&cells);
        eprintln!("  {}: done", rewrite.name());
    }
    println!("{table}");
}
