//! Rendering queries back to SQL, including the paper's Figures 8–11:
//! the rewritten SQL each physical strategy would hand the back-end DBMS.

use relation::predicate::CmpOp;
use relation::{Expr, Predicate, Schema, Value};

use crate::aggregate::{AggregateFn, AggregateSpec};
use crate::error::{EngineError, Result};
use crate::query::GroupByQuery;

fn col_name(schema: &Schema, id: relation::ColumnId) -> Result<&str> {
    Ok(&schema.field(id)?.name)
}

fn render_expr(e: &Expr, schema: &Schema) -> Result<String> {
    Ok(match e {
        Expr::Column(id) => col_name(schema, *id)?.to_string(),
        Expr::Literal(v) => format!("{v}"),
        Expr::Binary { op, lhs, rhs } => format!(
            "({} {} {})",
            render_expr(lhs, schema)?,
            op,
            render_expr(rhs, schema)?
        ),
    })
}

fn render_value(v: &Value) -> String {
    match v {
        Value::Str(s) => format!("'{}'", s.replace('\'', "''")),
        Value::Date(d) => format!("{d}"),
        other => format!("{other}"),
    }
}

fn render_cmp(op: CmpOp) -> &'static str {
    match op {
        CmpOp::Eq => "=",
        CmpOp::Ne => "<>",
        CmpOp::Lt => "<",
        CmpOp::Le => "<=",
        CmpOp::Gt => ">",
        CmpOp::Ge => ">=",
    }
}

fn render_pred(p: &Predicate, schema: &Schema) -> Result<String> {
    Ok(match p {
        Predicate::True => "1 = 1".to_string(),
        Predicate::Cmp { col, op, value } => format!(
            "{} {} {}",
            col_name(schema, *col)?,
            render_cmp(*op),
            render_value(value)
        ),
        Predicate::Between { col, lo, hi } => format!(
            "{} BETWEEN {} AND {}",
            col_name(schema, *col)?,
            render_value(lo),
            render_value(hi)
        ),
        Predicate::And(a, b) => format!(
            "({} AND {})",
            render_pred(a, schema)?,
            render_pred(b, schema)?
        ),
        Predicate::Or(a, b) => format!(
            "({} OR {})",
            render_pred(a, schema)?,
            render_pred(b, schema)?
        ),
        Predicate::Not(a) => format!("NOT ({})", render_pred(a, schema)?),
    })
}

fn render_agg(a: &AggregateSpec, schema: &Schema) -> Result<String> {
    let body = match (&a.expr, a.func) {
        (None, AggregateFn::Count) => "COUNT(*)".to_string(),
        (Some(e), f) => format!("{f}({})", render_expr(e, schema)?),
        _ => return Err(EngineError::MalformedAggregate("render")),
    };
    Ok(format!("{body} AS {}", a.name))
}

/// Canonical SQL text for a query against `table` (parseable back by
/// [`super::parse`]).
pub fn render(query: &GroupByQuery, schema: &Schema, table: &str) -> Result<String> {
    let mut select: Vec<String> = Vec::new();
    for &g in &query.grouping {
        select.push(col_name(schema, g)?.to_string());
    }
    for a in &query.aggregates {
        select.push(render_agg(a, schema)?);
    }
    let mut sql = format!("SELECT {} FROM {table}", select.join(", "));
    if query.predicate != Predicate::True {
        sql += &format!(" WHERE {}", render_pred(&query.predicate, schema)?);
    }
    if !query.grouping.is_empty() {
        let cols: Vec<&str> = query
            .grouping
            .iter()
            .map(|&g| col_name(schema, g))
            .collect::<Result<_>>()?;
        sql += &format!(" GROUP BY {}", cols.join(", "));
    }
    if let Some(h) = &query.having {
        sql += &format!(" HAVING {} {} {}", h.aggregate, render_cmp(h.op), h.value);
    }
    sql.push(';');
    Ok(sql)
}

/// Which Figure 8–11 rewrite to render.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RewriteKind {
    /// Figure 8: per-tuple `SF` column.
    Integrated,
    /// Figure 11: nested plan grouping on `(cols, SF)`.
    NestedIntegrated,
    /// Figure 9: join with AuxRel on the grouping columns.
    Normalized,
    /// Figure 10: join with AuxRel on `GID`.
    KeyNormalized,
}

/// The rewritten SQL the middleware would send to the DBMS for `query`
/// against sample relation `samp` (and auxiliary relation `aux` for the
/// normalized family) — the paper's Figures 8–11, generalized to any query
/// in the class. Only SUM/COUNT/AVG rewrites exist (§5.1); MIN/MAX pass
/// through unscaled.
pub fn render_rewritten(
    query: &GroupByQuery,
    schema: &Schema,
    kind: RewriteKind,
    samp: &str,
    aux: &str,
) -> Result<String> {
    let group_cols: Vec<String> = query
        .grouping
        .iter()
        .map(|&g| col_name(schema, g).map(str::to_string))
        .collect::<Result<_>>()?;
    let group_list = group_cols.join(", ");

    // Scaled aggregate per Figure 8/9/10 conventions.
    let scaled = |a: &AggregateSpec, sf: &str| -> Result<String> {
        Ok(match (a.func, &a.expr) {
            (AggregateFn::Sum, Some(e)) => {
                format!("SUM({} * {sf}) AS {}", render_expr(e, schema)?, a.name)
            }
            (AggregateFn::Count, _) => format!("SUM({sf}) AS {}", a.name),
            (AggregateFn::Avg, Some(e)) => {
                let x = render_expr(e, schema)?;
                format!("SUM({x} * {sf}) / SUM({sf}) AS {}", a.name)
            }
            (f, Some(e)) => format!("{f}({}) AS {}", render_expr(e, schema)?, a.name),
            _ => return Err(EngineError::MalformedAggregate("render_rewritten")),
        })
    };

    let where_clause = if query.predicate != Predicate::True {
        format!(" WHERE {}", render_pred(&query.predicate, schema)?)
    } else {
        String::new()
    };
    let group_by = if group_cols.is_empty() {
        String::new()
    } else {
        format!(" GROUP BY {group_list}")
    };
    let select_prefix = if group_cols.is_empty() {
        String::new()
    } else {
        format!("{group_list}, ")
    };

    let sql = match kind {
        RewriteKind::Integrated => {
            let aggs: Vec<String> = query
                .aggregates
                .iter()
                .map(|a| scaled(a, "SF"))
                .collect::<Result<_>>()?;
            format!(
                "SELECT {select_prefix}{} FROM {samp}{where_clause}{group_by};",
                aggs.join(", ")
            )
        }
        RewriteKind::NestedIntegrated => {
            // Figure 11: inner raw aggregation per (cols, SF), outer scale.
            // Figure 13's shape for AVG: the inner block emits both the
            // raw SUM (sq) and the raw COUNT (sn) so the outer block can
            // compute SUM(sq·SF)/SUM(sn·SF).
            let mut inner_aggs: Vec<String> = Vec::new();
            for (i, a) in query.aggregates.iter().enumerate() {
                match (a.func, &a.expr) {
                    (AggregateFn::Count, _) => inner_aggs.push(format!("COUNT(*) AS sn{i}")),
                    (AggregateFn::Avg, Some(e)) => {
                        inner_aggs.push(format!("SUM({}) AS sq{i}", render_expr(e, schema)?));
                        inner_aggs.push(format!("COUNT(*) AS sn{i}"));
                    }
                    (f, Some(e)) => {
                        inner_aggs.push(format!("{f}({}) AS sq{i}", render_expr(e, schema)?))
                    }
                    _ => return Err(EngineError::MalformedAggregate("render")),
                }
            }
            let outer_aggs: Vec<String> = query
                .aggregates
                .iter()
                .enumerate()
                .map(|(i, a)| match a.func {
                    AggregateFn::Sum => format!("SUM(sq{i} * SF) AS {}", a.name),
                    AggregateFn::Count => format!("SUM(sn{i} * SF) AS {}", a.name),
                    AggregateFn::Avg => {
                        format!("SUM(sq{i} * SF) / SUM(sn{i} * SF) AS {}", a.name)
                    }
                    AggregateFn::Min => format!("MIN(sq{i}) AS {}", a.name),
                    AggregateFn::Max => format!("MAX(sq{i}) AS {}", a.name),
                })
                .collect();
            let inner_group = if group_cols.is_empty() {
                " GROUP BY SF".to_string()
            } else {
                format!(" GROUP BY {group_list}, SF")
            };
            format!(
                "SELECT {select_prefix}{} FROM (SELECT {select_prefix}SF, {} FROM {samp}{where_clause}{inner_group}){group_by};",
                outer_aggs.join(", "),
                inner_aggs.join(", "),
            )
        }
        RewriteKind::Normalized => {
            // Figure 9: join on every stratification column of AuxRel.
            let aggs: Vec<String> = query
                .aggregates
                .iter()
                .map(|a| scaled(a, &format!("{aux}.SF")))
                .collect::<Result<_>>()?;
            format!(
                "SELECT {select_prefix}{} FROM {samp}, {aux} WHERE <{samp} strata columns> = <{aux} key columns>{}{group_by};",
                aggs.join(", "),
                if where_clause.is_empty() {
                    String::new()
                } else {
                    format!(" AND {}", &where_clause[7..])
                },
            )
        }
        RewriteKind::KeyNormalized => {
            let aggs: Vec<String> = query
                .aggregates
                .iter()
                .map(|a| scaled(a, &format!("{aux}.SF")))
                .collect::<Result<_>>()?;
            format!(
                "SELECT {select_prefix}{} FROM {samp}, {aux} WHERE {samp}.GID = {aux}.GID{}{group_by};",
                aggs.join(", "),
                if where_clause.is_empty() {
                    String::new()
                } else {
                    format!(" AND {}", &where_clause[7..])
                },
            )
        }
    };
    Ok(sql)
}

#[cfg(test)]
mod tests {
    use super::*;
    use relation::{ColumnId, DataType, Field};

    fn schema() -> Schema {
        Schema::new(vec![
            Field::new("a", DataType::Str),
            Field::new("b", DataType::Int),
            Field::new("q", DataType::Float),
        ])
        .unwrap()
    }

    fn query() -> GroupByQuery {
        GroupByQuery::new(
            vec![ColumnId(0), ColumnId(1)],
            vec![AggregateSpec::sum(Expr::col(ColumnId(2)), "sq")],
        )
        .with_predicate(Predicate::le(ColumnId(1), 10i64))
    }

    #[test]
    fn render_basic() {
        let sql = render(&query(), &schema(), "rel").unwrap();
        assert_eq!(
            sql,
            "SELECT a, b, SUM(q) AS sq FROM rel WHERE b <= 10 GROUP BY a, b;"
        );
    }

    #[test]
    fn figure8_integrated_shape() {
        let sql = render_rewritten(
            &query(),
            &schema(),
            RewriteKind::Integrated,
            "samp_rel",
            "aux",
        )
        .unwrap();
        assert_eq!(
            sql,
            "SELECT a, b, SUM(q * SF) AS sq FROM samp_rel WHERE b <= 10 GROUP BY a, b;"
        );
    }

    #[test]
    fn figure11_nested_shape() {
        let sql = render_rewritten(
            &query(),
            &schema(),
            RewriteKind::NestedIntegrated,
            "samp_rel",
            "aux",
        )
        .unwrap();
        // Inner groups by (a, b, SF) with raw SUM; outer multiplies once.
        assert!(sql.contains("GROUP BY a, b, SF"), "{sql}");
        assert!(sql.contains("SUM(sq0 * SF) AS sq"), "{sql}");
        assert!(sql.starts_with("SELECT a, b, "), "{sql}");
    }

    #[test]
    fn figure10_keynormalized_shape() {
        let sql = render_rewritten(
            &query(),
            &schema(),
            RewriteKind::KeyNormalized,
            "samp_rel",
            "aux_rel",
        )
        .unwrap();
        assert!(sql.contains("samp_rel.GID = aux_rel.GID"), "{sql}");
        assert!(sql.contains("SUM(q * aux_rel.SF) AS sq"), "{sql}");
        assert!(sql.contains("AND b <= 10"), "{sql}");
    }

    #[test]
    fn avg_and_count_rewrites() {
        let q = GroupByQuery::new(
            vec![ColumnId(0)],
            vec![
                AggregateSpec::avg(Expr::col(ColumnId(2)), "aq"),
                AggregateSpec::count("c"),
            ],
        );
        let sql = render_rewritten(&q, &schema(), RewriteKind::Integrated, "s", "x").unwrap();
        // §5.2: avg → sum(Q*SF)/sum(SF); count → sum(SF).
        assert!(sql.contains("SUM(q * SF) / SUM(SF) AS aq"), "{sql}");
        assert!(sql.contains("SUM(SF) AS c"), "{sql}");
    }

    #[test]
    fn render_handles_having_and_no_grouping() {
        use crate::query::Having;
        let q = GroupByQuery::new(vec![], vec![AggregateSpec::count("c")])
            .with_having(Having::new("c", CmpOp::Gt, 5.0));
        let sql = render(&q, &schema(), "rel").unwrap();
        assert_eq!(sql, "SELECT COUNT(*) AS c FROM rel HAVING c > 5;");
    }

    #[test]
    fn string_literals_escaped() {
        let q = GroupByQuery::new(vec![], vec![AggregateSpec::count("c")])
            .with_predicate(Predicate::eq(ColumnId(0), "it's"));
        let sql = render(&q, &schema(), "rel").unwrap();
        assert!(sql.contains("a = 'it''s'"), "{sql}");
    }
}
