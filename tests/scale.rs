//! Table-1 top-end scale tests (T = 6M, NG = 200K). Ignored by default —
//! run with `cargo test --release --test scale -- --ignored` (several GiB
//! of RAM and a few minutes).

use aqua::{Aqua, AquaConfig, SamplingStrategy};
use congress::alloc::Congress;
use congress::{compare_results, CongressionalSample, GroupCensus};
use engine::execute_exact;
use engine::rewrite::{Integrated, SamplePlan};
use rand::rngs::StdRng;
use rand::SeedableRng;
use tpcd::{q_g2, GeneratorConfig, TpcdDataset};

#[test]
#[ignore = "T = 6M rows; run explicitly with --ignored in release mode"]
fn six_million_rows_full_pipeline() {
    let ds = TpcdDataset::generate(GeneratorConfig {
        table_size: 6_000_000,
        num_groups: 1000,
        group_skew: 0.86,
        agg_skew: 0.86,
        seed: 6_000_000,
    });
    let census = GroupCensus::build(&ds.relation, &ds.grouping_columns()).unwrap();
    assert_eq!(census.total_rows(), 6_000_000);
    let mut rng = StdRng::seed_from_u64(1);
    let sample = CongressionalSample::draw(
        &ds.relation,
        &census,
        &Congress,
        420_000.0, // 7%
        &mut rng,
    )
    .unwrap();
    let input = sample.to_stratified_input(&ds.relation).unwrap();
    let plan = Integrated::build(&input).unwrap();
    let q = q_g2(&ds.ids);
    let exact = execute_exact(&ds.relation, &q).unwrap();
    let approx = plan.execute(&q).unwrap();
    let report = compare_results(&exact, &approx, 0, 100.0);
    assert_eq!(report.missing_groups, 0);
    assert!(
        report.l1() < 5.0,
        "mean error {}% at 7% of 6M rows",
        report.l1()
    );
}

#[test]
#[ignore = "NG = 200K groups; run explicitly with --ignored in release mode"]
fn two_hundred_thousand_groups_end_to_end() {
    let ds = TpcdDataset::generate(GeneratorConfig {
        table_size: 1_000_000,
        num_groups: 200_000,
        group_skew: 0.86,
        agg_skew: 0.86,
        seed: 200_000,
    });
    let aqua = Aqua::build(
        ds.relation.clone(),
        ds.grouping_columns(),
        AquaConfig {
            space: 300_000,
            strategy: SamplingStrategy::Congress,
            seed: 2,
            ..AquaConfig::default()
        },
    )
    .unwrap();
    let q = q_g2(&ds.ids);
    let ans = aqua.answer(&q).unwrap();
    let exact = aqua.exact(&q).unwrap();
    // Qg2 groups = (NG^(1/3))² ≈ 3364 — every one must be answered.
    assert_eq!(ans.result.group_count(), exact.group_count());
    let report = compare_results(&exact, &ans.result, 0, 100.0);
    assert_eq!(report.missing_groups, 0);
    assert!(report.l1() < 25.0, "mean error {}%", report.l1());
}
