//! Reproducibility of parallel construction: the synopsis is a pure
//! function of (data, configuration, root seed). Thread count and
//! scheduling never leak into the sample — per-group RNG streams are
//! derived from the seed and the group key alone.

use aqua::{Aqua, AquaConfig, SamplingStrategy};
use congress::snapshot;
use tpcd::{GeneratorConfig, TpcdDataset};

/// A Zipf-skewed lineitem table: many small groups, a few huge ones —
/// the shape where parallel stratum fills interleave most aggressively.
fn dataset() -> TpcdDataset {
    TpcdDataset::generate(GeneratorConfig {
        table_size: 20_000,
        num_groups: 100,
        group_skew: 0.86,
        agg_skew: 0.5,
        seed: 42,
    })
}

fn config(strategy: SamplingStrategy, seed: u64, parallelism: usize) -> AquaConfig {
    AquaConfig {
        space: 2_000,
        strategy,
        seed,
        parallelism,
        ..AquaConfig::default()
    }
}

/// The tentpole determinism contract: building at parallelism 1, 2, and 8
/// from one root seed yields identical strata tuple-for-tuple and
/// identical scale factors.
#[test]
fn synopsis_identical_across_parallelism() {
    let ds = dataset();
    for strategy in [SamplingStrategy::Senate, SamplingStrategy::Congress] {
        let mut exports = Vec::new();
        for parallelism in [1usize, 2, 8] {
            let aqua = Aqua::build(
                ds.relation.clone(),
                ds.grouping_columns(),
                config(strategy, 7, parallelism),
            )
            .unwrap();
            exports.push(aqua.export_synopsis().unwrap());
        }

        let a = snapshot::decode(exports[0].clone()).unwrap();
        for bytes in &exports[1..] {
            let b = snapshot::decode(bytes.clone()).unwrap();
            // Identical strata, tuple for tuple.
            assert_eq!(a.strata_keys(), b.strata_keys());
            assert_eq!(
                a.sampled_rows(),
                b.sampled_rows(),
                "{}: strata differ across thread counts",
                strategy.name()
            );
            // Identical exact group sizes, hence identical scale factors.
            assert_eq!(a.group_sizes(), b.group_sizes());
            for g in 0..a.stratum_count() {
                assert_eq!(a.scale_factor(g), b.scale_factor(g));
            }
        }
        // The exported snapshots are byte-for-byte identical.
        for bytes in &exports[1..] {
            assert_eq!(&exports[0], bytes);
        }
    }
}

/// Guard against the seed being silently ignored: a different root seed
/// must actually move the sample.
#[test]
fn different_seeds_draw_different_samples() {
    let ds = dataset();
    let a = Aqua::build(
        ds.relation.clone(),
        ds.grouping_columns(),
        config(SamplingStrategy::Congress, 7, 0),
    )
    .unwrap()
    .export_synopsis()
    .unwrap();
    let b = Aqua::build(
        ds.relation.clone(),
        ds.grouping_columns(),
        config(SamplingStrategy::Congress, 8, 0),
    )
    .unwrap()
    .export_synopsis()
    .unwrap();
    assert_ne!(a, b, "root seed must drive the sampling decisions");
}

/// Determinism must survive a round of warehouse insertions followed by a
/// bulk rebuild — the rebuild draws fresh from the grown table, and two
/// systems that took the same path agree exactly.
#[test]
fn rebuild_after_inserts_is_deterministic() {
    let ds = dataset();
    let build = |parallelism: usize| {
        let aqua = Aqua::build(
            ds.relation.clone(),
            ds.grouping_columns(),
            config(SamplingStrategy::Congress, 13, parallelism),
        )
        .unwrap();
        let row = ds.relation.row(0).unwrap();
        let rows: Vec<_> = (0..500).map(|_| row.clone()).collect();
        aqua.insert_batch(&rows).unwrap();
        aqua.rebuild().unwrap();
        aqua.export_synopsis().unwrap()
    };
    assert_eq!(build(1), build(4));
}
