//! Statistical validation of the sampling theory the paper builds on:
//! the Eq-2 standard error is empirically correct for our samplers, and
//! estimator variance scales as the theory predicts.

use congress::alloc::Senate;
use congress::bounds::standard_error_of_mean;
use congress::{CongressionalSample, GroupCensus};
use engine::rewrite::{Integrated, SamplePlan};
use engine::{execute_exact, AggregateSpec, GroupByQuery};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use relation::{ColumnId, DataType, Expr, RelationBuilder, Value};

/// One group of `n` values with a known spread; we sample it repeatedly
/// and compare the empirical standard error of the mean estimator against
/// Eq 2's prediction.
fn one_group_relation(n: usize, seed: u64) -> (relation::Relation, f64) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = RelationBuilder::new()
        .column("g", DataType::Int)
        .column("v", DataType::Float);
    let mut values = Vec::with_capacity(n);
    for _ in 0..n {
        let v: f64 = rng.gen_range(0.0..100.0);
        values.push(v);
        b.push_row(&[Value::Int(0), Value::from(v)]).unwrap();
    }
    // Population S (the n−1 denominator form Eq 2 uses).
    let mean = values.iter().sum::<f64>() / n as f64;
    let ss: f64 = values.iter().map(|v| (v - mean) * (v - mean)).sum();
    let s = (ss / (n as f64 - 1.0)).sqrt();
    (b.finish(), s)
}

#[test]
fn empirical_standard_error_matches_eq2() {
    let n = 2_000usize;
    let (rel, s) = one_group_relation(n, 42);
    let census = GroupCensus::build(&rel, &[ColumnId(0)]).unwrap();
    let q = GroupByQuery::new(
        vec![],
        vec![AggregateSpec::avg(Expr::col(ColumnId(1)), "a")],
    );
    let exact_mean = execute_exact(&rel, &q).unwrap().scalar().unwrap();

    for sample_size in [50usize, 200, 800] {
        let trials = 400u64;
        let mut sq_err = 0.0;
        for t in 0..trials {
            let mut rng = StdRng::seed_from_u64(10_000 + t);
            let sample =
                CongressionalSample::draw(&rel, &census, &Senate, sample_size as f64, &mut rng)
                    .unwrap();
            let input = sample.to_stratified_input(&rel).unwrap();
            let plan = Integrated::build(&input).unwrap();
            let est = plan.execute(&q).unwrap().scalar().unwrap();
            sq_err += (est - exact_mean) * (est - exact_mean) / trials as f64;
        }
        let empirical_se = sq_err.sqrt();
        let predicted = standard_error_of_mean(s, sample_size as u64, n as u64);
        let ratio = empirical_se / predicted;
        assert!(
            (0.8..=1.25).contains(&ratio),
            "n={sample_size}: empirical SE {empirical_se:.4} vs Eq-2 {predicted:.4} (ratio {ratio:.3})"
        );
    }
}

#[test]
fn error_scales_inverse_sqrt_n() {
    // Quadrupling the sample should halve the error — the 1/√n law that
    // motivates "maximize the number of sample tuples" (§4.1).
    let (rel, _) = one_group_relation(4_000, 7);
    let census = GroupCensus::build(&rel, &[ColumnId(0)]).unwrap();
    let q = GroupByQuery::new(
        vec![],
        vec![AggregateSpec::avg(Expr::col(ColumnId(1)), "a")],
    );
    let exact_mean = execute_exact(&rel, &q).unwrap().scalar().unwrap();

    let se_at = |sample_size: usize| -> f64 {
        let trials = 300u64;
        let mut sq = 0.0;
        for t in 0..trials {
            let mut rng = StdRng::seed_from_u64(20_000 + t + sample_size as u64 * 1_000);
            let sample =
                CongressionalSample::draw(&rel, &census, &Senate, sample_size as f64, &mut rng)
                    .unwrap();
            let input = sample.to_stratified_input(&rel).unwrap();
            let plan = Integrated::build(&input).unwrap();
            let est = plan.execute(&q).unwrap().scalar().unwrap();
            sq += (est - exact_mean) * (est - exact_mean) / trials as f64;
        }
        sq.sqrt()
    };
    let se_small = se_at(100);
    let se_large = se_at(400);
    let ratio = se_small / se_large;
    assert!(
        (1.5..=2.8).contains(&ratio),
        "SE(100)/SE(400) = {ratio:.3}, expected ≈ 2 (slightly above, from the fpc)"
    );
}

#[test]
fn fully_sampled_relation_has_zero_error() {
    // The finite-population correction at n = N: sampling everything is
    // exact, every time.
    let (rel, _) = one_group_relation(500, 9);
    let census = GroupCensus::build(&rel, &[ColumnId(0)]).unwrap();
    let q = GroupByQuery::new(
        vec![],
        vec![
            AggregateSpec::sum(Expr::col(ColumnId(1)), "s"),
            AggregateSpec::avg(Expr::col(ColumnId(1)), "a"),
        ],
    );
    let exact = execute_exact(&rel, &q).unwrap();
    for seed in 0..5 {
        let mut rng = StdRng::seed_from_u64(seed);
        let sample = CongressionalSample::draw(&rel, &census, &Senate, 500.0, &mut rng).unwrap();
        let input = sample.to_stratified_input(&rel).unwrap();
        let plan = Integrated::build(&input).unwrap();
        let approx = plan.execute(&q).unwrap();
        for ((_, e), (_, a)) in exact.rows().iter().zip(approx.rows()) {
            for (x, y) in e.iter().zip(a) {
                assert!((x - y).abs() < 1e-9 * (1.0 + x.abs()));
            }
        }
    }
}
