//! Probabilistic error bounds for sample-based estimates.
//!
//! Aqua supplements approximate answers with error bounds "based on the
//! Hoeffding and Chebyshev formulas" (§2), at a configurable confidence
//! level (90% in Figure 4). This module provides:
//!
//! * the finite-population **standard error** of a sample mean (Eq 2),
//! * **Hoeffding** bounds for means of bounded variables,
//! * **Chebyshev** bounds from the sample variance, and
//! * per-group bound computation for SUM/COUNT/AVG over a stratum.

use serde::{Deserialize, Serialize};

/// Running moments of the values observed in one stratum of one group —
/// enough to produce every bound below.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct Moments {
    /// Number of sampled values.
    pub n: u64,
    /// Σ v
    pub sum: f64,
    /// Σ v²
    pub sum_sq: f64,
    /// min v
    pub min: f64,
    /// max v
    pub max: f64,
}

impl Moments {
    /// Empty moments.
    pub fn new() -> Moments {
        Moments {
            n: 0,
            sum: 0.0,
            sum_sq: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Fold in one value.
    pub fn push(&mut self, v: f64) {
        self.n += 1;
        self.sum += v;
        self.sum_sq += v * v;
        if v < self.min {
            self.min = v;
        }
        if v > self.max {
            self.max = v;
        }
    }

    /// Sample mean.
    pub fn mean(&self) -> f64 {
        self.sum / self.n as f64
    }

    /// Unbiased sample variance (n−1 denominator); 0 for n < 2.
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            return 0.0;
        }
        let n = self.n as f64;
        ((self.sum_sq - self.sum * self.sum / n) / (n - 1.0)).max(0.0)
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }
}

/// The footnote-7 space lower bound: to guarantee (in expectation) that
/// every one of `groups` non-empty groups contributes at least
/// `min_tuples` sampled tuples to any query of per-group selectivity
/// ≥ `selectivity`, the sample needs at least `groups · min_tuples /
/// selectivity` tuples — "this places a lower bound on the space allocated
/// for samples, as a function of the number of groups and the target
/// selectivity threshold."
pub fn minimum_space(groups: usize, min_tuples: u64, selectivity: f64) -> f64 {
    assert!(
        selectivity > 0.0 && selectivity <= 1.0,
        "selectivity must be in (0, 1]"
    );
    groups as f64 * min_tuples as f64 / selectivity
}

/// Eq 2: the standard error of a sample mean of `n` values drawn from a
/// population of `population` values with standard deviation `s`,
/// including the finite-population correction `√(1 − n/N)`.
pub fn standard_error_of_mean(s: f64, n: u64, population: u64) -> f64 {
    if n == 0 || population == 0 {
        return f64::INFINITY;
    }
    let n_f = n as f64;
    let fpc = (1.0 - n_f / population as f64).max(0.0);
    s / n_f.sqrt() * fpc.sqrt()
}

/// Hoeffding bound on a sample mean: with probability ≥ `confidence`, the
/// true mean is within the returned ε of the sample mean, given that every
/// value lies in `[lo, hi]`. `ε = (hi − lo) · √(ln(2/δ) / 2n)`.
pub fn hoeffding_mean_bound(lo: f64, hi: f64, n: u64, confidence: f64) -> f64 {
    if n == 0 {
        return f64::INFINITY;
    }
    let delta = (1.0 - confidence).clamp(1e-12, 1.0);
    (hi - lo) * ((2.0 / delta).ln() / (2.0 * n as f64)).sqrt()
}

/// Chebyshev bound on a sample mean at the given confidence: the true mean
/// is within `k · SE` of the sample mean with probability ≥ 1 − 1/k², so
/// `k = 1/√δ` and the bound is `SE/√δ`.
pub fn chebyshev_mean_bound(std_error: f64, confidence: f64) -> f64 {
    let delta = (1.0 - confidence).clamp(1e-12, 1.0);
    std_error / delta.sqrt()
}

/// Which formula produced a bound.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BoundKind {
    /// Distribution-free, needs value range.
    Hoeffding,
    /// Variance-based.
    Chebyshev,
}

/// An absolute ± error bound on an estimate at some confidence level.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ErrorBound {
    /// Half-width of the confidence interval, in the estimate's units.
    pub half_width: f64,
    /// Confidence level (e.g. 0.9).
    pub confidence: f64,
    /// The formula used.
    pub kind: BoundKind,
}

/// Per-group bounds for the three scalable aggregates, computed from the
/// moments of the sampled values in each contributing stratum.
///
/// For a group assembled from strata `(moments_i, scale factor sf_i,
/// stratum population N_i)`, the SUM estimator is `Σ_i sf_i · sum_i` and
/// its Chebyshev-bounded variance is `Σ_i N_i² (1−n_i/N_i) S_i²/n_i`
/// (classic stratified-sampling variance, \[Coc77\]).
pub fn stratified_sum_bound(strata: &[(Moments, f64, u64)], confidence: f64) -> ErrorBound {
    let mut variance = 0.0;
    for (m, _sf, pop) in strata {
        if m.n == 0 {
            continue;
        }
        let n = m.n as f64;
        let big_n = *pop as f64;
        let fpc = (1.0 - n / big_n).max(0.0);
        variance += big_n * big_n * fpc * m.variance() / n;
    }
    ErrorBound {
        half_width: chebyshev_mean_bound(variance.sqrt(), confidence),
        confidence,
        kind: BoundKind::Chebyshev,
    }
}

/// Hoeffding-based bound for an AVG over a single uniform stratum (the
/// form the paper's `avg_error` functions encapsulate).
pub fn avg_bound_hoeffding(m: &Moments, confidence: f64) -> ErrorBound {
    let half = if m.n == 0 || m.min > m.max {
        f64::INFINITY
    } else {
        hoeffding_mean_bound(m.min, m.max, m.n, confidence)
    };
    ErrorBound {
        half_width: half,
        confidence,
        kind: BoundKind::Hoeffding,
    }
}

/// Chebyshev-based bound for an AVG over strata: conservative combination
/// using the stratified mean's standard error with stratum weights
/// `W_i = N_i / N`.
pub fn stratified_avg_bound(strata: &[(Moments, f64, u64)], confidence: f64) -> ErrorBound {
    let total_pop: u64 = strata.iter().map(|(_, _, p)| *p).sum();
    let mut variance = 0.0;
    if total_pop > 0 {
        for (m, _sf, pop) in strata {
            if m.n == 0 {
                continue;
            }
            let w = *pop as f64 / total_pop as f64;
            let n = m.n as f64;
            let fpc = (1.0 - n / *pop as f64).max(0.0);
            variance += w * w * fpc * m.variance() / n;
        }
    }
    ErrorBound {
        half_width: chebyshev_mean_bound(variance.sqrt(), confidence),
        confidence,
        kind: BoundKind::Chebyshev,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn moments_of(values: &[f64]) -> Moments {
        let mut m = Moments::new();
        for &v in values {
            m.push(v);
        }
        m
    }

    #[test]
    fn moments_basic_stats() {
        let m = moments_of(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(m.n, 4);
        assert_eq!(m.mean(), 2.5);
        assert!((m.variance() - 5.0 / 3.0).abs() < 1e-12);
        assert_eq!(m.min, 1.0);
        assert_eq!(m.max, 4.0);
    }

    #[test]
    fn variance_degenerate_cases() {
        assert_eq!(moments_of(&[5.0]).variance(), 0.0);
        assert_eq!(moments_of(&[2.0, 2.0, 2.0]).variance(), 0.0);
        assert_eq!(Moments::new().n, 0);
    }

    #[test]
    fn minimum_space_footnote7() {
        // 1000 groups, ≥ 10 tuples each, 7% selectivity → ~142.9K tuples.
        let x = minimum_space(1000, 10, 0.07);
        assert!((x - 1000.0 * 10.0 / 0.07).abs() < 1e-9);
        // Full selectivity needs exactly groups × min.
        assert_eq!(minimum_space(50, 2, 1.0), 100.0);
    }

    #[test]
    #[should_panic(expected = "selectivity")]
    fn minimum_space_rejects_zero_selectivity() {
        let _ = minimum_space(10, 1, 0.0);
    }

    #[test]
    fn standard_error_matches_eq2() {
        // S/√n · √(1 − n/N)
        let se = standard_error_of_mean(10.0, 25, 100);
        assert!((se - 10.0 / 5.0 * (0.75f64).sqrt()).abs() < 1e-12);
        // Sampling the entire population has zero error.
        assert_eq!(standard_error_of_mean(10.0, 100, 100), 0.0);
        assert_eq!(standard_error_of_mean(10.0, 0, 100), f64::INFINITY);
    }

    #[test]
    fn bounds_shrink_with_sample_size() {
        let b1 = hoeffding_mean_bound(0.0, 1.0, 100, 0.9);
        let b2 = hoeffding_mean_bound(0.0, 1.0, 400, 0.9);
        assert!((b1 / b2 - 2.0).abs() < 1e-9); // ∝ 1/√n
        let c1 = chebyshev_mean_bound(1.0, 0.9);
        let c2 = chebyshev_mean_bound(0.5, 0.9);
        assert!((c1 / c2 - 2.0).abs() < 1e-9);
    }

    #[test]
    fn bounds_grow_with_confidence() {
        assert!(
            hoeffding_mean_bound(0.0, 1.0, 100, 0.99) > hoeffding_mean_bound(0.0, 1.0, 100, 0.9)
        );
        assert!(chebyshev_mean_bound(1.0, 0.99) > chebyshev_mean_bound(1.0, 0.9));
    }

    #[test]
    fn chebyshev_90_is_se_over_sqrt_point1() {
        let b = chebyshev_mean_bound(2.0, 0.9);
        assert!((b - 2.0 / 0.1f64.sqrt()).abs() < 1e-9);
    }

    #[test]
    fn stratified_sum_bound_zero_when_fully_sampled() {
        let m = moments_of(&[1.0, 5.0, 9.0]);
        let b = stratified_sum_bound(&[(m, 1.0, 3)], 0.9);
        assert_eq!(b.half_width, 0.0);
        assert_eq!(b.kind, BoundKind::Chebyshev);
    }

    #[test]
    fn stratified_sum_bound_positive_under_subsampling() {
        let m = moments_of(&[1.0, 5.0, 9.0]);
        let b = stratified_sum_bound(&[(m, 10.0, 30)], 0.9);
        assert!(b.half_width > 0.0);
        // More strata add variance.
        let b2 = stratified_sum_bound(&[(m, 10.0, 30), (m, 10.0, 30)], 0.9);
        assert!(b2.half_width > b.half_width);
    }

    #[test]
    fn avg_bounds() {
        let m = moments_of(&[0.0, 10.0, 5.0, 5.0]);
        let h = avg_bound_hoeffding(&m, 0.9);
        assert!(h.half_width > 0.0 && h.half_width.is_finite());
        assert_eq!(h.kind, BoundKind::Hoeffding);
        let empty = avg_bound_hoeffding(&Moments::new(), 0.9);
        assert_eq!(empty.half_width, f64::INFINITY);

        let s = stratified_avg_bound(&[(m, 5.0, 20)], 0.9);
        assert!(s.half_width > 0.0 && s.half_width.is_finite());
        let full = stratified_avg_bound(&[(m, 1.0, 4)], 0.9);
        assert_eq!(full.half_width, 0.0);
    }

    #[test]
    fn empty_strata_are_skipped() {
        let b = stratified_sum_bound(&[(Moments::new(), 1.0, 10)], 0.9);
        assert_eq!(b.half_width, 0.0);
    }
}
