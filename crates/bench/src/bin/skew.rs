//! Skew ablation (§7.2.1's premise): "when all the groups are of the same
//! size (z = 0), all the techniques result in the same allocation" — the
//! strategies only diverge as group-size skew grows.
//!
//! Run: `cargo run -p bench --release --bin skew [-- --quick]`
//!
//! Expected: at z = 0 all four error curves coincide (within sampling
//! noise); the House–Senate gap on `Q_{g3}` widens monotonically with z,
//! and Congress tracks the winner at every skew level.

use aqua::SamplingStrategy;
use bench::harness::{accuracy_for_strategy, ExperimentSetup, QuerySet};
use bench::report::{pct, Table};
use tpcd::GeneratorConfig;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let zs: &[f64] = if quick {
        &[0.0, 0.86, 1.5]
    } else {
        &[0.0, 0.5, 0.86, 1.2, 1.5]
    };
    let trials = if quick { 2 } else { 4 };

    let mut table = Table::new(
        "Skew ablation: Qg3 mean error % vs group-size skew z (SP=7%) \
         [expect: all equal at z=0; House degrades with z; Senate/Congress stay low]",
        &["z", "House", "Senate", "Basic Congress", "Congress"],
    );
    for &z in zs {
        let setup = ExperimentSetup::new(GeneratorConfig {
            table_size: if quick { 100_000 } else { 500_000 },
            num_groups: 1000,
            group_skew: z,
            agg_skew: 0.86,
            seed: 20000519,
        });
        let mut cells = vec![format!("{z:.2}")];
        for strategy in SamplingStrategy::all() {
            let acc = accuracy_for_strategy(&setup, strategy, QuerySet::Qg3, 0.07, trials, 19_000);
            cells.push(pct(acc.mean_error_pct));
        }
        table.row(&cells);
        eprintln!("  z={z}: done");
    }
    println!("{table}");
}
