//! The instrumentation contract: which event moves which metric.
//!
//! Mirrors the `summary_equivalence` invalidation matrix, but instead of
//! checking answer *values* it pins the *counter movement* every serving
//! and maintenance event must produce:
//!
//! 1. Per rewrite strategy, an unfiltered group-by is labelled
//!    `served="summary"` and a non-grouping predicate `served="cached_scan"`,
//!    with latency histograms and rows-scanned accounting to match.
//! 2. Cache hit/miss counters move by exact, repeatable deltas: a warm
//!    repeat of a query adds hits only, and after every invalidation
//!    trigger (ingest, refresh, rebuild, WAL insert, warehouse reopen)
//!    the cold miss pattern recurs before the cache re-warms.
//! 3. Warehouse durability counters track saves, recoveries, and WAL
//!    replays.
//!
//! Registry-backed metrics compile out under `--features obs-off`; those
//! assertions are gated on [`obs::ENABLED`]. The query-cache counters
//! predate the observability layer and stay live on both legs.

use aqua::{Aqua, AquaConfig, RewriteChoice, SamplingStrategy, StatsSnapshot, Warehouse};
use congress::MemStore;
use engine::{AggregateSpec, GroupByQuery};
use relation::{ColumnId, DataType, Expr, Predicate, Relation, RelationBuilder, Value};

fn sales(n: i64) -> Relation {
    let mut b = RelationBuilder::new()
        .column("region", DataType::Str)
        .column("amount", DataType::Float);
    for i in 0..n {
        let region = match i % 10 {
            0 => "east",
            1 | 2 => "south",
            _ => "west",
        };
        b.push_row(&[Value::str(region), Value::from((i % 50) as f64)])
            .unwrap();
    }
    b.finish()
}

fn config(rewrite: RewriteChoice) -> AquaConfig {
    AquaConfig {
        space: 150,
        strategy: SamplingStrategy::Congress,
        rewrite,
        confidence: 0.9,
        seed: 7,
        parallelism: 1,
    }
}

/// Unfiltered → summary-served; predicate over the *aggregation* column
/// (not a grouping column) → must fall back to the sample scan.
fn summary_query() -> GroupByQuery {
    GroupByQuery::new(
        vec![ColumnId(0)],
        vec![
            AggregateSpec::sum(Expr::col(ColumnId(1)), "s"),
            AggregateSpec::count("c"),
        ],
    )
}

fn scan_query() -> GroupByQuery {
    GroupByQuery::new(vec![ColumnId(0)], vec![AggregateSpec::count("c")])
        .with_predicate(Predicate::ge(ColumnId(1), 10.0))
}

/// (hits, misses, invalidations) pulled from a stats snapshot.
fn cache_counters(s: &StatsSnapshot) -> (u64, u64, u64) {
    (
        s.counter("aqua_cache_hits_total"),
        s.counter("aqua_cache_misses_total"),
        s.counter("aqua_cache_invalidations_total"),
    )
}

#[test]
fn served_from_labels_and_latency_per_strategy() {
    for rewrite in RewriteChoice::all() {
        let aqua = Aqua::build(sales(2_000), vec![ColumnId(0)], config(rewrite)).unwrap();
        let name = rewrite.name();

        aqua.answer(&summary_query()).unwrap();
        aqua.answer(&summary_query()).unwrap();
        aqua.answer(&scan_query()).unwrap();
        let s = aqua.stats();

        if !obs::ENABLED {
            // Compiled out: metric names may register, but nothing records.
            assert_eq!(s.counter_family("aqua_queries_total"), 0);
            assert_eq!(s.counter_family("synopsis_"), 0);
            assert!(
                s.histograms.values().all(|h| h.count == 0),
                "obs-off must record nothing"
            );
            continue;
        }

        let summary_label = obs::label(
            "aqua_queries_total",
            &[("rewrite", name), ("served", "summary")],
        );
        let scan_label = obs::label(
            "aqua_queries_total",
            &[("rewrite", name), ("served", "cached_scan")],
        );
        assert_eq!(s.counter(&summary_label), 2, "{name}: {summary_label}");
        assert_eq!(s.counter(&scan_label), 1, "{name}: {scan_label}");
        assert_eq!(
            s.counter_family("aqua_queries_total"),
            3,
            "{name}: no other served-from label may appear: {:?}",
            s.counters
        );
        assert_eq!(s.counter("aqua_query_errors_total"), 0);

        // Summary-served queries touch no sample rows; the predicate scan
        // reads the whole synopsis once per answer.
        assert_eq!(
            s.counter("aqua_rows_scanned_total"),
            aqua.synopsis_rows() as u64,
            "{name}: rows scanned must count only the predicate scan"
        );

        let hist = s
            .histogram(&obs::label("aqua_query_latency_us", &[("rewrite", name)]))
            .unwrap_or_else(|| panic!("{name}: latency histogram missing"));
        assert_eq!(hist.count, 3, "{name}: one latency sample per query");
        assert!(hist.p50() <= hist.p95() && hist.p95() <= hist.p99());
        assert!(hist.sum >= hist.min.saturating_mul(3));
    }
}

#[test]
fn sql_and_error_counters() {
    let aqua = Aqua::build(
        sales(1_000),
        vec![ColumnId(0)],
        config(RewriteChoice::Integrated),
    )
    .unwrap();
    aqua.answer_sql("SELECT region, COUNT(*) AS c FROM sales GROUP BY region")
        .unwrap();
    aqua.answer_sql("SELEKT nope").unwrap_err();
    let s = aqua.stats();
    if obs::ENABLED {
        assert_eq!(s.counter("aqua_sql_queries_total"), 2);
        assert_eq!(s.counter("aqua_sql_parse_errors_total"), 1);
        // Parse failures never reach the answer pipeline.
        assert_eq!(s.counter_family("aqua_queries_total"), 1);
        assert_eq!(s.counter("aqua_query_errors_total"), 0);
    }
}

/// The cold→warm→invalidate→cold cache-counter cycle, pinned exactly,
/// for every invalidation trigger `Aqua` itself exposes.
#[test]
fn cache_counters_move_exactly_across_invalidation_triggers() {
    let aqua = Aqua::build(
        sales(2_000),
        vec![ColumnId(0)],
        config(RewriteChoice::Integrated),
    )
    .unwrap();
    let q = summary_query();

    // Cold: first-touch lookups miss. (A cold answer can still *hit* —
    // the group index is probed once by the executor and again by the
    // bound computation — so the pinned contract is the full
    // (hits, misses) pattern, not hits == 0.)
    let s0 = cache_counters(&aqua.stats());
    aqua.answer(&q).unwrap();
    let s1 = cache_counters(&aqua.stats());
    let cold_misses = s1.1 - s0.1;
    let cold_hits = s1.0 - s0.0;
    assert!(cold_misses > 0, "cold answer must populate the cache");

    // Warm: the same query is all hits, zero misses, and the lookup count
    // matches the cold pass (same plan → same cache probes).
    aqua.answer(&q).unwrap();
    let s2 = cache_counters(&aqua.stats());
    assert_eq!(s2.1, s1.1, "warm repeat must not miss");
    let warm_hits = s2.0 - s1.0;
    assert!(warm_hits > 0, "warm repeat must hit");

    // Each trigger: invalidations counter moves, the cold miss pattern
    // recurs, and a subsequent repeat is warm again.
    type Trigger = (&'static str, Box<dyn Fn(&Aqua)>);
    let mut prev = s2;
    let triggers: Vec<Trigger> = vec![
        (
            "insert_batch",
            Box::new(|a: &Aqua| {
                let rows: Vec<Vec<Value>> = (0..120)
                    .map(|i| vec![Value::str("north"), Value::from(i as f64)])
                    .collect();
                a.insert_batch(&rows).unwrap();
            }),
        ),
        ("refresh", Box::new(|a: &Aqua| a.refresh().unwrap())),
        ("rebuild", Box::new(|a: &Aqua| a.rebuild().unwrap())),
    ];
    for (name, fire) in triggers {
        fire(&aqua);
        let after_fire = cache_counters(&aqua.stats());
        assert!(
            after_fire.2 > prev.2,
            "{name}: invalidations counter must move ({} -> {})",
            prev.2,
            after_fire.2
        );

        aqua.answer(&q).unwrap();
        let after_cold = cache_counters(&aqua.stats());
        assert_eq!(
            after_cold.1 - after_fire.1,
            cold_misses,
            "{name}: post-invalidation answer must repeat the cold miss pattern"
        );
        assert_eq!(
            after_cold.0 - after_fire.0,
            cold_hits,
            "{name}: post-invalidation answer must repeat the cold hit pattern"
        );

        aqua.answer(&q).unwrap();
        let after_warm = cache_counters(&aqua.stats());
        assert_eq!(
            after_warm.1, after_cold.1,
            "{name}: re-warmed repeat must not miss"
        );
        assert_eq!(
            after_warm.0 - after_cold.0,
            warm_hits,
            "{name}: warm hit pattern must match the original"
        );
        prev = after_warm;
    }

    // Per-kind and per-shard breakdowns must sum to the aggregate.
    let s = aqua.stats();
    let kind_hits: u64 = ["index", "summary", "stratum_summary", "layout", "weights"]
        .iter()
        .map(|k| s.counter(&format!("aqua_cache_{k}_hits_total")))
        .sum();
    assert_eq!(kind_hits, s.counter("aqua_cache_hits_total"));
    let shard_hits = s.counter_family("aqua_cache_shard_hits_total{");
    assert!(
        shard_hits <= s.counter("aqua_cache_hits_total"),
        "sharded lookups cannot exceed total hits"
    );
}

#[test]
fn warehouse_triggers_and_durability_counters() {
    let store = MemStore::new();
    let w = Warehouse::new();
    let t = sales(1_800);
    let grouping = t.schema().column_ids(&["region"]).unwrap();
    w.register("sales", t, grouping, config(RewriteChoice::Integrated))
        .unwrap();
    w.save_all(&store).unwrap();
    let q = summary_query();

    // Cold then warm through the warehouse; record both patterns.
    let s0 = cache_counters(&w.stats());
    w.answer("sales", &q).unwrap();
    let s1 = cache_counters(&w.stats());
    let cold_hits = s1.0 - s0.0;
    let cold_misses = s1.1 - s0.1;
    w.answer("sales", &q).unwrap();
    let s2 = cache_counters(&w.stats());
    assert_eq!(s2.1, s1.1, "warehouse warm repeat must not miss");
    let warm_hits = s2.0 - s1.0;

    // WAL insert invalidates like a direct ingest.
    let rows: Vec<Vec<Value>> = (0..120)
        .map(|i| vec![Value::str("north"), Value::from(i as f64)])
        .collect();
    w.insert_logged(&store, "sales", &rows).unwrap();
    let after_fire = cache_counters(&w.stats());
    assert!(
        after_fire.2 > s2.2,
        "insert_logged must invalidate the query cache"
    );
    w.answer("sales", &q).unwrap();
    let after_cold = cache_counters(&w.stats());
    assert!(after_cold.1 > after_fire.1, "post-WAL answer must re-miss");
    w.answer("sales", &q).unwrap();
    let after_warm = cache_counters(&w.stats());
    assert_eq!(after_warm.1, after_cold.1);
    assert_eq!(after_warm.0 - after_cold.0, warm_hits);

    if obs::ENABLED {
        let s = w.stats();
        assert_eq!(s.counter("warehouse_saves_total"), 1);
        assert_eq!(s.counter("warehouse_wal_appends_total"), 1);
        assert!(s.counter("warehouse_wal_appended_bytes_total") > 0);
        assert_eq!(s.counter("warehouse_degraded_answers_total"), 0);
        assert!(s.histogram("warehouse_save_us").is_some());
    }

    // Reopen: a recovered warehouse starts from a scratch cache, so the
    // cold pattern must match a fresh system's exactly — and the recovery
    // counters must say what happened.
    w.save_all(&store).unwrap();
    let (w2, report) = Warehouse::open(&store, aqua::RecoveryPolicy::Rebuild).unwrap();
    assert!(report.fully_healthy(), "{report:?}");
    let r0 = cache_counters(&w2.stats());
    assert_eq!(r0.0, 0, "reopened warehouse must start with zero hits");
    assert_eq!(r0.1, 0, "reopened warehouse must start with zero misses");
    w2.answer("sales", &q).unwrap();
    let r1 = cache_counters(&w2.stats());
    assert_eq!(
        (r1.0, r1.1),
        (cold_hits, cold_misses),
        "reopened cold pattern must match a fresh system's"
    );
    w2.answer("sales", &q).unwrap();
    let r2 = cache_counters(&w2.stats());
    assert_eq!(r2.1, r1.1, "reopened warm repeat must not miss");
    assert_eq!(r2.0 - r1.0, warm_hits, "reopened warm pattern must match");

    if obs::ENABLED {
        let s = w2.stats();
        assert_eq!(s.counter("warehouse_opens_total"), 1);
        assert_eq!(
            s.counter(&obs::label(
                "warehouse_recovered_relations_total",
                &[("status", "healthy")],
            )),
            1
        );
        // Clean shutdown: nothing to replay or truncate.
        assert_eq!(s.counter("warehouse_wal_replayed_records_total"), 0);
        assert_eq!(s.counter("warehouse_wal_truncations_total"), 0);
        assert_eq!(s.gauge("warehouse_relations"), 1);
    }
}

#[test]
fn synopsis_maintenance_counters() {
    let aqua = Aqua::build(
        sales(2_000),
        vec![ColumnId(0)],
        config(RewriteChoice::Integrated),
    )
    .unwrap();
    if !obs::ENABLED {
        assert!(aqua.stats().counters.is_empty() || aqua.stats().counter_family("synopsis_") == 0);
        return;
    }
    let s = aqua.stats();
    // Aqua::build streams the table through the maintainer once, then
    // bulk-rebuilds; each build phase is timed exactly once.
    assert_eq!(s.counter("synopsis_ingests_total"), 1);
    assert_eq!(s.counter("synopsis_ingested_rows_total"), 2_000);
    assert_eq!(s.counter("synopsis_rebuilds_total"), 1);
    for phase in ["census", "alloc", "draw"] {
        let h = s
            .histogram(&format!("synopsis_build_{phase}_us"))
            .unwrap_or_else(|| panic!("missing build phase timer: {phase}"));
        assert_eq!(h.count, 1, "{phase} timed once per rebuild");
    }
    assert_eq!(s.gauge("aqua_synopsis_rows"), aqua.synopsis_rows() as i64);
    assert_eq!(s.gauge("aqua_table_rows"), 2_000);

    aqua.refresh().unwrap();
    aqua.rebuild().unwrap();
    let s = aqua.stats();
    assert_eq!(s.counter("synopsis_refreshes_total"), 1);
    assert_eq!(s.counter("synopsis_rebuilds_total"), 2);
}
