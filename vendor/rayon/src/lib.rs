//! Offline rayon facade.
//!
//! Provides the data-parallel surface this workspace uses — `par_iter` /
//! `into_par_iter` with `map`, `filter_map`, `enumerate`, `for_each`,
//! `collect`, `sum`, `reduce` — plus `join`, `current_num_threads`, and a
//! `ThreadPoolBuilder` whose `install` scopes the thread count for the
//! duration of a closure.
//!
//! Execution model (different from real rayon, same observable results):
//! parallel stages are **eager**. Each adapter that does real work splits
//! its items into one ordered chunk per thread, runs the chunks on scoped
//! `std::thread` workers, and reassembles results in input order. There
//! is no work stealing, but ordering is deterministic by construction —
//! which is exactly the property the deterministic-seeding layer on top
//! relies on.
//!
//! Thread count resolution order: `ThreadPoolBuilder::install` override
//! (thread-local) → `RAYON_NUM_THREADS` env var → available parallelism.

use std::cell::Cell;
use std::sync::OnceLock;

pub mod iter;

pub mod prelude {
    //! The usual glob import.
    pub use crate::iter::{
        IntoParallelIterator, IntoParallelRefIterator, IntoParallelRefMutIterator,
    };
}

thread_local! {
    static THREAD_OVERRIDE: Cell<Option<usize>> = const { Cell::new(None) };
}

fn env_threads() -> Option<usize> {
    static ENV: OnceLock<Option<usize>> = OnceLock::new();
    *ENV.get_or_init(|| {
        std::env::var("RAYON_NUM_THREADS")
            .ok()
            .and_then(|s| s.parse::<usize>().ok())
            .filter(|&n| n > 0)
    })
}

/// Number of worker threads parallel operations will use right now.
pub fn current_num_threads() -> usize {
    if let Some(n) = THREAD_OVERRIDE.with(|o| o.get()) {
        return n;
    }
    if let Some(n) = env_threads() {
        return n;
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Run `a` and `b`, potentially in parallel, returning both results.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    if current_num_threads() <= 1 {
        let ra = a();
        let rb = b();
        (ra, rb)
    } else {
        std::thread::scope(|s| {
            let ha = s.spawn(a);
            let rb = b();
            (ha.join().expect("rayon::join closure panicked"), rb)
        })
    }
}

/// Error building a thread pool (never produced by this facade).
#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("thread pool build error")
    }
}
impl std::error::Error for ThreadPoolBuildError {}

/// Builder for a scoped-thread-count "pool".
#[derive(Default, Debug)]
pub struct ThreadPoolBuilder {
    num_threads: Option<usize>,
}

impl ThreadPoolBuilder {
    pub fn new() -> Self {
        Self::default()
    }

    /// `0` means "use the default" (rayon convention).
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = if n == 0 { None } else { Some(n) };
        self
    }

    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        Ok(ThreadPool {
            num_threads: self.num_threads,
        })
    }
}

/// A handle that scopes the effective thread count; workers are spawned
/// per operation rather than held persistently.
#[derive(Debug)]
pub struct ThreadPool {
    num_threads: Option<usize>,
}

impl ThreadPool {
    /// Threads operations inside [`install`](Self::install) will use.
    pub fn current_num_threads(&self) -> usize {
        self.num_threads.unwrap_or_else(current_num_threads)
    }

    /// Run `op` with this pool's thread count in effect (on the calling
    /// thread — parallel ops inside pick up the override).
    pub fn install<R>(&self, op: impl FnOnce() -> R) -> R {
        let effective = self.current_num_threads();
        let prev = THREAD_OVERRIDE.with(|o| o.replace(Some(effective)));
        struct Restore(Option<usize>);
        impl Drop for Restore {
            fn drop(&mut self) {
                THREAD_OVERRIDE.with(|o| o.set(self.0));
            }
        }
        let _restore = Restore(prev);
        op()
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn map_preserves_order() {
        let v: Vec<usize> = (0..10_000).collect();
        let doubled: Vec<usize> = v.par_iter().map(|&x| x * 2).collect();
        assert_eq!(doubled, (0..10_000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn into_par_iter_and_sum() {
        let total: usize = (0..1000usize).collect::<Vec<_>>().into_par_iter().sum();
        assert_eq!(total, 499_500);
    }

    #[test]
    fn install_scopes_thread_count() {
        let pool = ThreadPoolBuilder::new().num_threads(3).build().unwrap();
        assert_eq!(pool.install(current_num_threads), 3);
        // Override is gone after install returns.
        let outside = current_num_threads();
        assert!(outside >= 1);
        let single = ThreadPoolBuilder::new().num_threads(1).build().unwrap();
        let v: Vec<u32> = single.install(|| (0..100u32).into_par_iter().map(|x| x + 1).collect());
        assert_eq!(v[99], 100);
    }

    #[test]
    fn filter_map_enumerate_reduce() {
        let v: Vec<usize> = (0..100).collect();
        let odd_doubles: Vec<usize> = v
            .par_iter()
            .filter_map(|&x| if x % 2 == 1 { Some(x * 2) } else { None })
            .collect();
        assert_eq!(odd_doubles.len(), 50);
        let max = v
            .clone()
            .into_par_iter()
            .enumerate()
            .map(|(i, x)| i + x)
            .reduce(|| 0, usize::max);
        assert_eq!(max, 198);
    }

    #[test]
    fn join_runs_both() {
        let (a, b) = join(|| 2 + 2, || "ok");
        assert_eq!(a, 4);
        assert_eq!(b, "ok");
    }

    #[test]
    fn results_identical_across_thread_counts() {
        let v: Vec<u64> = (0..5000).collect();
        let mut outputs = Vec::new();
        for threads in [1usize, 2, 8] {
            let pool = ThreadPoolBuilder::new()
                .num_threads(threads)
                .build()
                .unwrap();
            let out: Vec<u64> =
                pool.install(|| v.par_iter().map(|&x| x.wrapping_mul(2654435761)).collect());
            outputs.push(out);
        }
        assert_eq!(outputs[0], outputs[1]);
        assert_eq!(outputs[0], outputs[2]);
    }
}
