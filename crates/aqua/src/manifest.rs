//! The warehouse manifest: a small, checksummed text file that is the
//! single commit point for [`crate::Warehouse::save_all`].
//!
//! The manifest lists, per relation, the store keys of the base-table
//! encoding, the synopsis snapshot, and the pending-insert write-ahead
//! log, together with the expected length and CRC32C of each blob and the
//! full synopsis configuration. Because the manifest itself is written
//! with an atomic `put`, a crash during a save leaves the previous
//! manifest (and its generation's files, which are only deleted *after*
//! the new manifest lands) fully intact: recovery always sees a complete
//! generation, old or new.
//!
//! Format (line-oriented text, `\n`-terminated, trailing checksum line):
//!
//! ```text
//! aqua-warehouse v1
//! generation=3
//! begin-relation
//! name=<percent-escaped relation name>
//! dir=<store key prefix>
//! grouping=0,2
//! config=space=...;strategy=...;...
//! table=<key>|<len>|<crc32c hex>
//! snapshot=<key>|<len>|<crc32c hex>        (or `snapshot=-` if degraded)
//! wal=<key>
//! end-relation
//! checksum=<crc32c hex of every preceding byte>
//! ```

use congress::crc32c;

use crate::config::AquaConfig;
use crate::error::{AquaError, Result};

/// Store key of the warehouse manifest.
pub const MANIFEST_KEY: &str = "MANIFEST";

/// Store key prefix corrupt blobs are renamed under.
pub const QUARANTINE_PREFIX: &str = "quarantine";

const HEADER: &str = "aqua-warehouse v1";

/// A reference to one immutable blob in the store, with its expected size
/// and checksum.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FileRef {
    /// Store key.
    pub key: String,
    /// Expected length in bytes.
    pub len: u64,
    /// Expected CRC32C of the full contents.
    pub crc: u32,
}

/// One relation's persistent state.
#[derive(Debug, Clone, PartialEq)]
pub struct ManifestEntry {
    /// Relation name as registered (arbitrary UTF-8).
    pub name: String,
    /// Store key prefix all of this relation's blobs live under.
    pub dir: String,
    /// Grouping column indices declared at registration.
    pub grouping: Vec<usize>,
    /// Synopsis configuration.
    pub config: AquaConfig,
    /// Binary base-table encoding.
    pub table: FileRef,
    /// Synopsis snapshot; `None` when the relation was saved in degraded
    /// mode (no synopsis existed).
    pub snapshot: Option<FileRef>,
    /// Write-ahead-log key for inserts after this save (the blob may not
    /// exist yet; it is created on first logged insert).
    pub wal: String,
}

/// The parsed manifest: a generation number plus one entry per relation.
#[derive(Debug, Clone, PartialEq)]
pub struct Manifest {
    /// Save generation this manifest commits (monotonically increasing).
    pub generation: u64,
    /// Per-relation state, in saved order (sorted by name).
    pub entries: Vec<ManifestEntry>,
}

fn corrupt(m: impl Into<String>) -> AquaError {
    AquaError::Storage(format!("corrupt manifest: {}", m.into()))
}

/// Percent-escape a relation name so it survives the line-oriented format
/// (`%`, control characters, and anything non-ASCII-printable).
fn escape_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len());
    for b in name.bytes() {
        if (b' '..=b'~').contains(&b) && b != b'%' {
            out.push(b as char);
        } else {
            out.push_str(&format!("%{b:02x}"));
        }
    }
    out
}

fn unescape_name(escaped: &str) -> Result<String> {
    let mut bytes = Vec::with_capacity(escaped.len());
    let mut it = escaped.bytes();
    while let Some(b) = it.next() {
        if b == b'%' {
            let hi = it.next().ok_or_else(|| corrupt("truncated name escape"))?;
            let lo = it.next().ok_or_else(|| corrupt("truncated name escape"))?;
            let hex = [hi, lo];
            let hex = std::str::from_utf8(&hex).map_err(|_| corrupt("bad name escape"))?;
            bytes.push(u8::from_str_radix(hex, 16).map_err(|_| corrupt("bad name escape"))?);
        } else {
            bytes.push(b);
        }
    }
    String::from_utf8(bytes).map_err(|_| corrupt("name is not UTF-8"))
}

fn encode_fileref(f: &FileRef) -> String {
    format!("{}|{}|{:08x}", f.key, f.len, f.crc)
}

fn parse_fileref(s: &str) -> Result<FileRef> {
    let mut parts = s.rsplitn(3, '|');
    let crc = parts.next().ok_or_else(|| corrupt("bad file ref"))?;
    let len = parts.next().ok_or_else(|| corrupt("bad file ref"))?;
    let key = parts.next().ok_or_else(|| corrupt("bad file ref"))?;
    Ok(FileRef {
        key: key.to_string(),
        len: len.parse().map_err(|_| corrupt("bad file length"))?,
        crc: u32::from_str_radix(crc, 16).map_err(|_| corrupt("bad file crc"))?,
    })
}

impl Manifest {
    /// Render the manifest, ending with its own checksum line.
    pub fn encode(&self) -> String {
        let mut body = String::new();
        body.push_str(HEADER);
        body.push('\n');
        body.push_str(&format!("generation={}\n", self.generation));
        for e in &self.entries {
            body.push_str("begin-relation\n");
            body.push_str(&format!("name={}\n", escape_name(&e.name)));
            body.push_str(&format!("dir={}\n", e.dir));
            let grouping: Vec<String> = e.grouping.iter().map(|g| g.to_string()).collect();
            body.push_str(&format!("grouping={}\n", grouping.join(",")));
            body.push_str(&format!("config={}\n", e.config.to_manifest_line()));
            body.push_str(&format!("table={}\n", encode_fileref(&e.table)));
            match &e.snapshot {
                Some(s) => body.push_str(&format!("snapshot={}\n", encode_fileref(s))),
                None => body.push_str("snapshot=-\n"),
            }
            body.push_str(&format!("wal={}\n", e.wal));
            body.push_str("end-relation\n");
        }
        let crc = crc32c(body.as_bytes());
        body.push_str(&format!("checksum={crc:08x}\n"));
        body
    }

    /// Parse and checksum-verify a manifest. Any deviation — bad UTF-8,
    /// checksum mismatch, unknown or missing fields — is an error, never a
    /// partial result.
    pub fn parse(bytes: &[u8]) -> Result<Manifest> {
        let text = std::str::from_utf8(bytes).map_err(|_| corrupt("not UTF-8"))?;
        let idx = text
            .rfind("checksum=")
            .ok_or_else(|| corrupt("missing checksum line"))?;
        if idx != 0 && text.as_bytes()[idx - 1] != b'\n' {
            return Err(corrupt("misplaced checksum line"));
        }
        let (body, tail) = text.split_at(idx);
        let hex = tail
            .strip_prefix("checksum=")
            .and_then(|s| s.strip_suffix('\n'))
            .ok_or_else(|| corrupt("malformed checksum line"))?;
        let expect = u32::from_str_radix(hex, 16).map_err(|_| corrupt("bad checksum value"))?;
        let actual = crc32c(body.as_bytes());
        if actual != expect {
            return Err(corrupt(format!(
                "checksum mismatch: stored {expect:08x}, computed {actual:08x}"
            )));
        }

        let mut lines = body.lines();
        if lines.next() != Some(HEADER) {
            return Err(corrupt("bad header"));
        }
        let gen_line = lines.next().ok_or_else(|| corrupt("missing generation"))?;
        let generation = gen_line
            .strip_prefix("generation=")
            .and_then(|v| v.parse().ok())
            .ok_or_else(|| corrupt("bad generation line"))?;

        let mut entries = Vec::new();
        while let Some(line) = lines.next() {
            if line != "begin-relation" {
                return Err(corrupt(format!("expected begin-relation, got `{line}`")));
            }
            let mut field = |prefix: &str| -> Result<String> {
                let line = lines
                    .next()
                    .ok_or_else(|| corrupt("truncated relation block"))?;
                line.strip_prefix(prefix)
                    .map(str::to_string)
                    .ok_or_else(|| corrupt(format!("expected `{prefix}...`, got `{line}`")))
            };
            let name = unescape_name(&field("name=")?)?;
            let dir = field("dir=")?;
            let grouping_raw = field("grouping=")?;
            let grouping = if grouping_raw.is_empty() {
                Vec::new()
            } else {
                grouping_raw
                    .split(',')
                    .map(|g| g.parse().map_err(|_| corrupt("bad grouping index")))
                    .collect::<Result<Vec<usize>>>()?
            };
            let config = AquaConfig::from_manifest_line(&field("config=")?)?;
            let table = parse_fileref(&field("table=")?)?;
            let snapshot_raw = field("snapshot=")?;
            let snapshot = if snapshot_raw == "-" {
                None
            } else {
                Some(parse_fileref(&snapshot_raw)?)
            };
            let wal = field("wal=")?;
            if lines.next() != Some("end-relation") {
                return Err(corrupt("missing end-relation"));
            }
            entries.push(ManifestEntry {
                name,
                dir,
                grouping,
                config,
                table,
                snapshot,
                wal,
            });
        }
        Ok(Manifest {
            generation,
            entries,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Manifest {
        Manifest {
            generation: 7,
            entries: vec![
                ManifestEntry {
                    name: "sales 2024\n%odd".into(),
                    dir: "rel-sales_2024-deadbeef".into(),
                    grouping: vec![0, 2],
                    config: AquaConfig::default(),
                    table: FileRef {
                        key: "rel-sales/table.g7.bin".into(),
                        len: 1234,
                        crc: 0xDEAD_BEEF,
                    },
                    snapshot: Some(FileRef {
                        key: "rel-sales/synopsis.g7.bin".into(),
                        len: 99,
                        crc: 1,
                    }),
                    wal: "rel-sales/wal.g7.log".into(),
                },
                ManifestEntry {
                    name: "tiny".into(),
                    dir: "rel-tiny-0".into(),
                    grouping: vec![],
                    config: AquaConfig {
                        space: 5,
                        ..AquaConfig::default()
                    },
                    table: FileRef {
                        key: "rel-tiny/table.g7.bin".into(),
                        len: 0,
                        crc: 0,
                    },
                    snapshot: None,
                    wal: "rel-tiny/wal.g7.log".into(),
                },
            ],
        }
    }

    #[test]
    fn round_trips_exactly() {
        let m = sample();
        let text = m.encode();
        assert_eq!(Manifest::parse(text.as_bytes()).unwrap(), m);
    }

    #[test]
    fn any_single_bit_flip_is_detected() {
        let text = sample().encode().into_bytes();
        for i in 0..text.len() {
            let mut bad = text.clone();
            bad[i] ^= 1;
            assert!(
                Manifest::parse(&bad).is_err(),
                "bit flip at byte {i} went undetected"
            );
        }
    }

    #[test]
    fn truncation_at_every_offset_is_detected() {
        let text = sample().encode().into_bytes();
        for i in 0..text.len() {
            assert!(
                Manifest::parse(&text[..i]).is_err(),
                "truncation to {i} bytes went undetected"
            );
        }
    }

    #[test]
    fn name_escaping_survives_hostile_names() {
        for name in ["a\nb", "x%20y", "naïve", "", "end-relation"] {
            assert_eq!(unescape_name(&escape_name(name)).unwrap(), name);
        }
    }
}
