//! Property tests over the §6 incremental maintainers: for arbitrary
//! insert streams, every maintainer upholds its structural invariants at
//! every snapshot.

use congress::build::{
    BasicCongressMaintainer, CongressMaintainer, HouseMaintainer, IncrementalMaintainer,
    SenateMaintainer,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use relation::{GroupKey, Value};

/// A random stream: group ids (small domain, so groups repeat) in arrival
/// order. Row ids are the positions.
fn stream_strategy() -> impl Strategy<Value = Vec<u8>> {
    proptest::collection::vec(0u8..12, 1..400)
}

fn key(g: u8) -> GroupKey {
    GroupKey::new(vec![Value::Int(g as i64)])
}

/// Structural invariants every snapshot must satisfy, regardless of
/// strategy: exact group sizes, no duplicate rows, no over-sampling, row
/// ids from the stream, and strata keyed by every observed group.
fn check_snapshot(
    sample: &congress::CongressionalSample,
    stream: &[u8],
) -> Result<(), TestCaseError> {
    use std::collections::HashMap;
    let mut true_sizes: HashMap<GroupKey, u64> = HashMap::new();
    for &g in stream {
        *true_sizes.entry(key(g)).or_insert(0) += 1;
    }
    prop_assert_eq!(sample.stratum_count(), true_sizes.len());
    for (g, k) in sample.strata_keys().iter().enumerate() {
        prop_assert_eq!(sample.group_sizes()[g], true_sizes[k]);
        let rows = &sample.sampled_rows()[g];
        // No duplicates, never more than the group holds, and every row
        // actually belongs to this group.
        let mut sorted = rows.clone();
        sorted.sort_unstable();
        sorted.dedup();
        prop_assert_eq!(sorted.len(), rows.len());
        prop_assert!(rows.len() as u64 <= true_sizes[k]);
        for &r in rows {
            prop_assert!(r < stream.len());
            prop_assert_eq!(&key(stream[r]), k);
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn house_maintainer_invariants(stream in stream_strategy(), space in 1usize..80, seed in 0u64..100) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut m = HouseMaintainer::new(space);
        for (r, &g) in stream.iter().enumerate() {
            m.insert(r, &key(g), &mut rng);
        }
        prop_assert_eq!(m.seen(), stream.len() as u64);
        prop_assert_eq!(m.sample_len(), space.min(stream.len()));
        let s = m.snapshot(&mut rng).unwrap();
        prop_assert_eq!(s.total_sampled(), space.min(stream.len()));
        check_snapshot(&s, &stream)?;
    }

    #[test]
    fn senate_maintainer_invariants(stream in stream_strategy(), space in 1usize..80, seed in 0u64..100) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut m = SenateMaintainer::new(space);
        for (r, &g) in stream.iter().enumerate() {
            m.insert(r, &key(g), &mut rng);
        }
        let s = m.snapshot(&mut rng).unwrap();
        check_snapshot(&s, &stream)?;
        // Per-group quota: at most ⌈X/m⌉... but at least 1 per group.
        let m_groups = s.stratum_count();
        let cap = (space / m_groups).max(1);
        for rows in s.sampled_rows() {
            prop_assert!(rows.len() <= cap.max(1));
        }
    }

    #[test]
    fn basic_congress_maintainer_invariants(stream in stream_strategy(), y in 4usize..80, seed in 0u64..100) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut m = BasicCongressMaintainer::new(y);
        for (r, &g) in stream.iter().enumerate() {
            m.insert(r, &key(g), &mut rng);
        }
        let s = m.snapshot(&mut rng).unwrap();
        check_snapshot(&s, &stream)?;
        // Every group is represented (min(quota, n_g) ≥ 1 tuple) and no
        // group exceeds reservoir-share + quota.
        let quota = (y as f64 / s.stratum_count() as f64).ceil() as usize;
        for (g, rows) in s.sampled_rows().iter().enumerate() {
            prop_assert!(!rows.is_empty(), "group {} unrepresented", g);
            // Reservoir share can exceed quota for huge groups; bound by
            // the whole reservoir plus the delta quota.
            prop_assert!(rows.len() <= y + quota);
        }
    }

    #[test]
    fn congress_maintainer_invariants(stream in stream_strategy(), y in 4u32..80, seed in 0u64..100) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut m = CongressMaintainer::new(1, y as f64);
        for (r, &g) in stream.iter().enumerate() {
            m.insert(r, &key(g), &mut rng);
        }
        let s = m.snapshot(&mut rng).unwrap();
        check_snapshot(&s, &stream)?;
        // Budgeted snapshot stays within the structural bounds too. (The
        // two snapshots use independent randomness, so their sizes are not
        // directly comparable — only the invariants are.)
        let b = m.snapshot_with_budget(Some(y as f64), &mut rng).unwrap();
        check_snapshot(&b, &stream)?;
    }

    /// Maintainers are resumable: snapshotting mid-stream then continuing
    /// must not corrupt later snapshots.
    #[test]
    fn mid_stream_snapshot_is_safe(stream in stream_strategy(), seed in 0u64..50) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut m = SenateMaintainer::new(20);
        let half = stream.len() / 2;
        for (r, &g) in stream[..half].iter().enumerate() {
            m.insert(r, &key(g), &mut rng);
        }
        let _ = m.snapshot(&mut rng).unwrap();
        for (r, &g) in stream[half..].iter().enumerate() {
            m.insert(half + r, &key(g), &mut rng);
        }
        let s = m.snapshot(&mut rng).unwrap();
        check_snapshot(&s, &stream)?;
    }
}
