//! Per-synopsis memoization for the query-serving fast path.
//!
//! The paper's premise (§5) is that the synopsis is small and precomputed
//! so queries are cheap — but a naive executor still rebuilds a
//! [`GroupIndex`] over the sample and re-derives per-row ScaleFactors on
//! *every* query. The sample only changes on insert/refresh/rebuild, so
//! both are pure functions of synopsis state and can be memoized:
//!
//! * **Group indexes**, keyed by the query's grouping columns `T`. The
//!   cached index is always *unfiltered* (predicates are applied during
//!   accumulation from the selection bitmap), so one index serves every
//!   predicate over the same grouping.
//! * **The stratum layout**: a stable permutation of sample rows sorted by
//!   stratum id, with one contiguous run per stratum. Expanding per-stratum
//!   ScaleFactors to per-row weights becomes a sequential scan over runs
//!   instead of a hash probe per row.
//! * **Per-row weights** derived from that layout (for the Normalized
//!   family, whose layouts do not store a per-tuple SF column).
//!
//! The owner ([`Synopsis`](../../aqua) in the aqua crate) must call
//! [`QueryCache::invalidate`] whenever the backing sample changes;
//! everything here is interior-mutable and `Sync` because answering holds
//! only a read lock on the synopsis.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use relation::{ColumnId, Relation};

use crate::grouping::{GroupIndex, PAR_MIN_ROWS};

/// Execution options threaded through
/// [`SamplePlan::execute_opts`](crate::rewrite::SamplePlan::execute_opts):
/// which cache to consult (if any) and whether chunked parallel
/// aggregation may be used. Results are bit-identical for every
/// combination of these flags.
#[derive(Clone, Copy, Default)]
pub struct ExecOptions<'a> {
    /// Memoized indexes/layouts for the relation being queried. `None`
    /// recomputes everything per query (the cold path).
    pub cache: Option<&'a QueryCache>,
    /// Allow chunked parallel aggregation on the current rayon pool.
    /// Only engages above [`PAR_MIN_ROWS`] rows and >1 thread.
    pub parallel: bool,
}

/// Hit/miss counters for a [`QueryCache`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups served from the cache.
    pub hits: u64,
    /// Lookups that had to compute and insert.
    pub misses: u64,
}

/// Sample rows permuted into per-stratum contiguous runs.
///
/// Built once per synopsis generation with a stable counting sort, so run
/// order (by stratum id) and within-run order (by row index) are
/// deterministic.
#[derive(Debug, Clone)]
pub struct StratumLayout {
    /// Row indices sorted by stratum; each stratum is one contiguous run.
    perm: Vec<u32>,
    /// `run_offsets[s]..run_offsets[s + 1]` bounds stratum `s` in `perm`.
    run_offsets: Vec<u32>,
}

impl StratumLayout {
    /// Counting-sort `stratum_of_row` into per-stratum runs.
    pub fn build(stratum_of_row: &[u32], stratum_count: usize) -> StratumLayout {
        let mut counts = vec![0u32; stratum_count];
        for &s in stratum_of_row {
            counts[s as usize] += 1;
        }
        let mut run_offsets = Vec::with_capacity(stratum_count + 1);
        let mut acc = 0u32;
        run_offsets.push(0);
        for &c in &counts {
            acc += c;
            run_offsets.push(acc);
        }
        let mut cursors: Vec<u32> = run_offsets[..stratum_count].to_vec();
        let mut perm = vec![0u32; stratum_of_row.len()];
        for (row, &s) in stratum_of_row.iter().enumerate() {
            let c = &mut cursors[s as usize];
            perm[*c as usize] = row as u32;
            *c += 1;
        }
        StratumLayout { perm, run_offsets }
    }

    /// Number of strata.
    pub fn stratum_count(&self) -> usize {
        self.run_offsets.len() - 1
    }

    /// Row indices of stratum `s`, ascending.
    pub fn rows_of(&self, s: usize) -> &[u32] {
        let lo = self.run_offsets[s] as usize;
        let hi = self.run_offsets[s + 1] as usize;
        &self.perm[lo..hi]
    }

    /// Expand per-stratum ScaleFactors into per-row weights by scanning
    /// each contiguous run once — no per-row hash or stratum-id lookup.
    /// The produced weights are exactly `scale_factors[stratum_of_row[r]]`
    /// for every row `r`, so downstream estimates are unchanged.
    pub fn expand(&self, scale_factors: &[f64]) -> Vec<f64> {
        debug_assert_eq!(scale_factors.len(), self.stratum_count());
        let mut out = vec![0.0; self.perm.len()];
        for (s, &sf) in scale_factors.iter().enumerate() {
            for &row in self.rows_of(s) {
                out[row as usize] = sf;
            }
        }
        out
    }
}

/// Memoized query-serving state for one immutable sample generation.
///
/// Thread-safe with interior mutability: lookups take short mutex-guarded
/// map probes and the heavy computation happens outside the lock (a rare
/// duplicated build on a cold race is benign — both racers compute the
/// identical value and the first insert wins).
#[derive(Default)]
pub struct QueryCache {
    indexes: Mutex<HashMap<Vec<ColumnId>, Arc<GroupIndex>>>,
    layout: Mutex<Option<Arc<StratumLayout>>>,
    weights: Mutex<Option<Arc<Vec<f64>>>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl std::fmt::Debug for QueryCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let stats = self.stats();
        f.debug_struct("QueryCache")
            .field("cached_groupings", &self.lock_indexes().len())
            .field("hits", &stats.hits)
            .field("misses", &stats.misses)
            .finish()
    }
}

impl QueryCache {
    /// Fresh, empty cache.
    pub fn new() -> QueryCache {
        QueryCache::default()
    }

    fn lock_indexes(&self) -> std::sync::MutexGuard<'_, HashMap<Vec<ColumnId>, Arc<GroupIndex>>> {
        self.indexes.lock().expect("query cache poisoned")
    }

    /// The *unfiltered* group index of `rel` under `cols`, memoized.
    /// `parallel` only affects how a missing index is built (the sharded
    /// build produces an identical index at any thread count).
    pub fn index_for(&self, rel: &Relation, cols: &[ColumnId], parallel: bool) -> Arc<GroupIndex> {
        if let Some(ix) = self.lock_indexes().get(cols) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Arc::clone(ix);
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let built = Arc::new(if parallel && rel.row_count() >= PAR_MIN_ROWS {
            GroupIndex::par_build(rel, cols)
        } else {
            GroupIndex::build(rel, cols)
        });
        Arc::clone(self.lock_indexes().entry(cols.to_vec()).or_insert(built))
    }

    /// The memoized stratum layout, building it via `build` on a miss.
    pub fn layout_for(&self, build: impl FnOnce() -> StratumLayout) -> Arc<StratumLayout> {
        let mut guard = self.layout.lock().expect("query cache poisoned");
        match &*guard {
            Some(l) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Arc::clone(l)
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                let l = Arc::new(build());
                *guard = Some(Arc::clone(&l));
                l
            }
        }
    }

    /// Memoized per-row weights, building them via `build` on a miss.
    pub fn weights_for(
        &self,
        build: impl FnOnce() -> crate::error::Result<Vec<f64>>,
    ) -> crate::error::Result<Arc<Vec<f64>>> {
        let mut guard = self.weights.lock().expect("query cache poisoned");
        match &*guard {
            Some(w) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Ok(Arc::clone(w))
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                let w = Arc::new(build()?);
                *guard = Some(Arc::clone(&w));
                Ok(w)
            }
        }
    }

    /// Drop every memoized value. Must be called whenever the backing
    /// sample changes (insert/refresh/rebuild/import); counters survive so
    /// long-running systems keep meaningful hit rates.
    pub fn invalidate(&self) {
        self.lock_indexes().clear();
        *self.layout.lock().expect("query cache poisoned") = None;
        *self.weights.lock().expect("query cache poisoned") = None;
    }

    /// Lifetime hit/miss counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use relation::{DataType, RelationBuilder, Value};

    fn rel(n: usize) -> Relation {
        let mut b = RelationBuilder::new()
            .column("g", DataType::Int)
            .column("v", DataType::Float);
        for i in 0..n {
            b.push_row(&[Value::Int((i % 7) as i64), Value::from(i as f64)])
                .unwrap();
        }
        b.finish()
    }

    #[test]
    fn layout_partitions_rows_by_stratum() {
        let strata = vec![2u32, 0, 1, 0, 2, 2, 1];
        let layout = StratumLayout::build(&strata, 3);
        assert_eq!(layout.stratum_count(), 3);
        assert_eq!(layout.rows_of(0), &[1, 3]);
        assert_eq!(layout.rows_of(1), &[2, 6]);
        assert_eq!(layout.rows_of(2), &[0, 4, 5]);
    }

    #[test]
    fn layout_expand_equals_per_row_lookup() {
        let strata: Vec<u32> = (0..1000).map(|i| (i * 13) % 5).collect();
        let sfs = [8.0, 2.5, 1.0, 4.0, 16.0];
        let layout = StratumLayout::build(&strata, 5);
        let expanded = layout.expand(&sfs);
        let naive: Vec<f64> = strata.iter().map(|&s| sfs[s as usize]).collect();
        assert_eq!(expanded, naive);
    }

    #[test]
    fn layout_handles_empty_strata() {
        let strata = vec![0u32, 2, 2];
        let layout = StratumLayout::build(&strata, 4);
        assert_eq!(layout.rows_of(1), &[] as &[u32]);
        assert_eq!(layout.rows_of(3), &[] as &[u32]);
        assert_eq!(layout.expand(&[1.0, 9.0, 3.0, 9.0]), vec![1.0, 3.0, 3.0]);
    }

    #[test]
    fn index_cache_hits_on_same_grouping() {
        let r = rel(100);
        let cache = QueryCache::new();
        let a = cache.index_for(&r, &[ColumnId(0)], false);
        let b = cache.index_for(&r, &[ColumnId(0)], false);
        assert!(Arc::ptr_eq(&a, &b));
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses), (1, 1));
        // A different grouping is a separate entry.
        let c = cache.index_for(&r, &[ColumnId(0), ColumnId(1)], false);
        assert!(!Arc::ptr_eq(&a, &c));
        assert_eq!(cache.stats().misses, 2);
    }

    #[test]
    fn invalidate_drops_entries_but_keeps_counters() {
        let r = rel(50);
        let cache = QueryCache::new();
        cache.index_for(&r, &[ColumnId(0)], false);
        let _ = cache.layout_for(|| StratumLayout::build(&[0, 0, 1], 2));
        let _ = cache.weights_for(|| Ok(vec![1.0; 3])).unwrap();
        cache.invalidate();
        let before = cache.stats();
        let a = cache.index_for(&r, &[ColumnId(0)], false);
        assert_eq!(cache.stats().misses, before.misses + 1);
        // Re-built after invalidation, not resurrected.
        let b = cache.index_for(&r, &[ColumnId(0)], false);
        assert!(Arc::ptr_eq(&a, &b));
        assert!(format!("{cache:?}").contains("cached_groupings"));
    }

    #[test]
    fn parallel_index_build_is_identical() {
        let r = rel(10_000);
        let cold = QueryCache::new();
        let seq = cold.index_for(&r, &[ColumnId(0)], false);
        let warm = QueryCache::new();
        let par = warm.index_for(&r, &[ColumnId(0)], true);
        assert_eq!(seq.group_ids(), par.group_ids());
        assert_eq!(seq.keys(), par.keys());
    }
}
