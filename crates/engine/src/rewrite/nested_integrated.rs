//! Nested-integrated rewriting (paper Fig 11): same physical layout as
//! Integrated, but the plan first aggregates *raw* values per
//! (query-grouping × ScaleFactor) inner group, then applies one multiply
//! per inner group — "fewer multiplications with the scalefactor ... (one
//! per group)" (§7.3.1).

use relation::{Column, ColumnId, DataType, Field, GroupKey, Relation};

use crate::aggregate::{Accumulator, AggregateFn};
use crate::cache::{ExecOptions, ServedFrom};
use crate::error::Result;
use crate::grouping::GroupIndex;
use crate::query::GroupByQuery;
use crate::result::QueryResult;
use crate::rewrite::{accumulate, grouping_index, masked_exprs, summary_accumulators, SamplePlan};
use crate::stratified::StratifiedInput;

/// The Nested-integrated physical layout (identical storage to
/// [`crate::rewrite::Integrated`]; the difference is the query plan).
#[derive(Debug, Clone)]
pub struct NestedIntegrated {
    rel: Relation,
    sf_col: ColumnId,
    stratum_of_row: Vec<u32>,
}

/// Outer-level accumulator combining inner per-SF partial aggregates.
#[derive(Debug, Clone, Copy)]
struct OuterAcc {
    func: AggregateFn,
    scaled_sum: f64,
    scaled_weight: f64,
    min: f64,
    max: f64,
    rows: u64,
}

impl OuterAcc {
    fn new(func: AggregateFn) -> Self {
        OuterAcc {
            func,
            scaled_sum: 0.0,
            scaled_weight: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            rows: 0,
        }
    }

    /// Fold in one inner group's raw accumulator with its ScaleFactor —
    /// the single multiply per (group × SF) the strategy is about.
    fn fold(&mut self, inner: &Accumulator, sf: f64) {
        self.scaled_sum += inner.weighted_sum() * sf;
        self.scaled_weight += inner.total_weight() * sf;
        self.min = self.min.min(inner.min_value());
        self.max = self.max.max(inner.max_value());
        self.rows += inner.rows();
    }

    fn finish(&self) -> f64 {
        match self.func {
            AggregateFn::Sum => self.scaled_sum,
            AggregateFn::Count => self.scaled_weight,
            AggregateFn::Avg => self.scaled_sum / self.scaled_weight,
            AggregateFn::Min => self.min,
            AggregateFn::Max => self.max,
        }
    }
}

impl NestedIntegrated {
    /// Materialize the layout from a stratified sample.
    pub fn build(input: &StratifiedInput) -> Result<NestedIntegrated> {
        input.validate()?;
        let sf = Column::Float(input.row_scale_factors());
        let rel = input.rows.with_columns(vec![(
            Field::new(super::integrated::SF_COLUMN, DataType::Float),
            sf,
        )])?;
        let sf_col = rel.schema().column_id(super::integrated::SF_COLUMN)?;
        Ok(NestedIntegrated {
            rel,
            sf_col,
            stratum_of_row: input.stratum_of_row.clone(),
        })
    }
}

impl SamplePlan for NestedIntegrated {
    fn name(&self) -> &'static str {
        "Nested-integrated"
    }

    fn execute_opts(&self, query: &GroupByQuery, opts: &ExecOptions) -> Result<QueryResult> {
        query.validate(&self.rel)?;
        let rel = &self.rel;

        // Inner grouping: (query grouping columns, SF). The unfiltered
        // inner index depends only on the grouping, so the cache can serve
        // it to every predicate over the same grouping.
        let mut inner_cols = query.grouping.clone();
        inner_cols.push(self.sf_col);

        // O(groups) fast path: a predicate over the grouping columns is
        // also constant within each *inner* group (the inner grouping
        // refines the query grouping), so cached unweighted partials
        // replace pass 1 entirely.
        if let Some(cache) = opts.cache {
            if rel.row_count() > 0 && query.predicate.references_only(&query.grouping) {
                if let Some(trace) = opts.trace {
                    trace.record(ServedFrom::Summary, 0);
                }
                let inner = cache.index_for(rel, &inner_cols, opts.parallel);
                let inner_accs = summary_accumulators(rel, &inner, None, query, opts, cache)?;
                return self.fold_outer(&inner, inner_accs, query);
            }
        }

        if let Some(trace) = opts.trace {
            let served = if opts.cache.is_some() {
                ServedFrom::CachedScan
            } else {
                ServedFrom::ColdScan
            };
            trace.record(served, rel.row_count() as u64);
        }
        let mask = query.predicate.eval(rel);
        let inner = grouping_index(rel, &inner_cols, opts);
        let exprs = masked_exprs(rel, query, &mask)?;

        // Pass 1: raw (unscaled) aggregation per inner group.
        let inner_accs = accumulate(&inner, &mask, &exprs, None, query, opts.parallel);
        self.fold_outer(&inner, inner_accs, query)
    }

    fn sample_relation(&self) -> &Relation {
        &self.rel
    }

    fn rate_change_cost(&self, stratum: u32) -> usize {
        // Same physical layout as Integrated: per-tuple SF copies.
        self.stratum_of_row
            .iter()
            .filter(|&&s| s == stratum)
            .count()
    }
}

impl NestedIntegrated {
    /// Pass 2: scale each inner group once and merge into the outer group
    /// obtained by dropping the trailing SF key value.
    fn fold_outer(
        &self,
        inner: &GroupIndex,
        inner_accs: Vec<Vec<Accumulator>>,
        query: &GroupByQuery,
    ) -> Result<QueryResult> {
        let outer_positions: Vec<usize> = (0..query.grouping.len()).collect();
        let mut outer: std::collections::HashMap<GroupKey, Vec<OuterAcc>> =
            std::collections::HashMap::new();
        for (gid, inner_group) in inner_accs.iter().enumerate() {
            if inner_group.first().is_none_or(|a| a.rows() == 0) {
                continue;
            }
            let inner_key = inner.key(gid as u32);
            let sf = inner_key.values()[query.grouping.len()]
                .as_f64()
                .expect("SF key value is numeric");
            let outer_key = inner_key.project(&outer_positions);
            let accs = outer.entry(outer_key).or_insert_with(|| {
                query
                    .aggregates
                    .iter()
                    .map(|a| OuterAcc::new(a.func))
                    .collect()
            });
            for (acc, raw) in accs.iter_mut().zip(inner_group) {
                acc.fold(raw, sf);
            }
        }

        let names = query.aggregates.iter().map(|a| a.name.clone()).collect();
        let rows = outer
            .into_iter()
            .map(|(k, accs)| (k, accs.iter().map(OuterAcc::finish).collect()))
            .collect();
        query.apply_having(QueryResult::new(names, rows))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aggregate::AggregateSpec;
    use crate::stratified::test_support::sample;
    use relation::{Expr, Value};

    #[test]
    fn avg_matches_figure_13_formula() {
        // Outer AVG must be Σ(SQ·SF) / Σ(SN·SF), not an average of means.
        let p = NestedIntegrated::build(&sample()).unwrap();
        let q = GroupByQuery::new(
            vec![ColumnId(0)],
            vec![AggregateSpec::avg(Expr::col(ColumnId(2)), "a")],
        );
        let r = p.execute(&q).unwrap();
        // group "x": strata SF=2 with values {1,3} and SF=2 with {10}
        // → (1+3+10)·2 / 3·2 = 28/6
        let k = GroupKey::new(vec![Value::str("x")]);
        let got = r.get(&k).unwrap()[0];
        assert!((got - 28.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn coarse_grouping_merges_multiple_sfs() {
        // Group by b: b=1 unions stratum ("x",1) @SF=2 and ("y",1) @SF=1.
        let p = NestedIntegrated::build(&sample()).unwrap();
        let q = GroupByQuery::new(vec![ColumnId(1)], vec![AggregateSpec::count("c")]);
        let r = p.execute(&q).unwrap();
        let k1 = GroupKey::new(vec![Value::Int(1)]);
        // 2 rows @SF2 + 2 rows @SF1 = 6
        assert_eq!(r.get(&k1), Some(&[6.0][..]));
    }

    #[test]
    fn min_max_pass_through_unscaled() {
        let p = NestedIntegrated::build(&sample()).unwrap();
        let q = GroupByQuery::new(
            vec![],
            vec![
                AggregateSpec::min(Expr::col(ColumnId(2)), "mn"),
                AggregateSpec::max(Expr::col(ColumnId(2)), "mx"),
            ],
        );
        let r = p.execute(&q).unwrap();
        let row = &r.rows()[0].1;
        assert_eq!(row[0], 1.0);
        assert_eq!(row[1], 200.0);
    }
}
