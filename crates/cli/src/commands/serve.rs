//! `serve`: put the concurrent HTTP/JSON front end in front of a
//! synopsis (or a saved warehouse) and answer queries until interrupted.

use std::sync::Arc;

use aqua::{Aqua, AquaConfig, RecoveryPolicy, Warehouse};
use congress::FsStore;
use server::{QueryBackend, Server, ServerConfig};

use crate::args::Args;
use crate::data::{load, rewrite, strategy};
use crate::{err, Result};

/// Serve `POST /query`, `GET /stats`, `GET /metrics`, and `GET /healthz`
/// over HTTP.
///
/// With `--csv`/`--demo` the backend is a single [`Aqua`] system (queries
/// may omit `relation`); with `--dir` it is a recovered [`Warehouse`] and
/// every query body must name its `relation`. The process serves until
/// killed — use `--addr 127.0.0.1:0` to bind an ephemeral port (printed
/// on startup).
pub fn serve(args: &Args) -> Result<String> {
    let backend: Arc<dyn QueryBackend> = if let Some(dir) = args.get("dir") {
        let store = FsStore::open(dir).map_err(err)?;
        let policy = if args.has("degrade") {
            RecoveryPolicy::Degrade
        } else {
            RecoveryPolicy::Rebuild
        };
        let (warehouse, report) = Warehouse::open(&store, policy).map_err(err)?;
        println!(
            "warehouse: generation {}, relations: {}",
            report.generation,
            warehouse.relation_names().join(", ")
        );
        Arc::new(warehouse)
    } else {
        let source = load(args)?;
        let space: usize = args.get_parsed("space", 0usize)?;
        if space == 0 {
            return Err("serve requires --space <tuples> (or --dir <DIR>)".into());
        }
        let config = AquaConfig {
            space,
            strategy: strategy(args)?,
            rewrite: rewrite(args)?,
            confidence: args.get_parsed("confidence", 0.9f64)?,
            seed: args.get_parsed("seed", 0u64)?,
            parallelism: args.get_parsed("parallelism", 0usize)?,
        };
        let table_rows = source.relation.row_count();
        let aqua = Aqua::build(source.relation, source.grouping, config).map_err(err)?;
        println!(
            "synopsis: {} of {} rows, strategy {}, rewrite {} (table `{}`)",
            aqua.synopsis_rows(),
            table_rows,
            config.strategy.name(),
            config.rewrite.name(),
            source.name
        );
        Arc::new(aqua)
    };

    let config = ServerConfig {
        addr: args.get("addr").unwrap_or("127.0.0.1:8600").to_string(),
        workers: args.get_parsed("workers", 0usize)?,
        queue_depth: args.get_parsed("queue-depth", 64usize)?,
    };
    let server = Server::bind(config, backend).map_err(|e| format!("cannot bind: {e}"))?;
    let addr = server.local_addr();
    println!("listening on http://{addr}");
    println!("try: curl -s http://{addr}/query -d 'SELECT l_returnflag, SUM(l_quantity) AS q FROM lineitem GROUP BY l_returnflag'");
    use std::io::Write as _;
    let _ = std::io::stdout().flush();

    // Serve forever; the Server owns its reactor and worker threads.
    loop {
        std::thread::park();
    }
}
