//! The `Strategy` trait and combinators.

use rand::distributions::uniform::SampleRange;
use rand::Rng;
use std::ops::{Range, RangeInclusive};

/// RNG used to generate test cases.
pub type TestRng = rand::rngs::StdRng;

/// A recipe for producing values of `Self::Value`.
///
/// Unlike real proptest there is no value tree / shrinking: a strategy is
/// just a deterministic function of an RNG.
pub trait Strategy {
    /// Type of value produced.
    type Value;

    /// Draw one value.
    fn new_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform produced values.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Produce a value, then build a second strategy from it.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    /// Keep only values for which `f` returns `Some`, retrying otherwise.
    fn prop_filter_map<O, F>(self, reason: &'static str, f: F) -> FilterMap<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> Option<O>,
    {
        FilterMap {
            inner: self,
            reason,
            f,
        }
    }

    /// Keep only values passing the predicate, retrying otherwise.
    fn prop_filter<F>(self, reason: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            reason,
            f,
        }
    }
}

/// How many rejected draws a filtering strategy tolerates before giving
/// up — generous because retries are cheap without shrinking.
const MAX_FILTER_RETRIES: usize = 10_000;

/// Strategy producing a fixed value.
#[derive(Clone, Copy, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn new_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

impl<T> Strategy for Range<T>
where
    T: Copy,
    Range<T>: SampleRange<T>,
{
    type Value = T;
    fn new_value(&self, rng: &mut TestRng) -> T {
        rng.gen_range(self.clone())
    }
}

impl<T> Strategy for RangeInclusive<T>
where
    T: Copy,
    RangeInclusive<T>: SampleRange<T>,
{
    type Value = T;
    fn new_value(&self, rng: &mut TestRng) -> T {
        rng.gen_range(self.clone())
    }
}

/// See [`Strategy::prop_map`].
#[derive(Clone, Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn new_value(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.new_value(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Clone, Debug)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;
    fn new_value(&self, rng: &mut TestRng) -> Self::Value {
        (self.f)(self.inner.new_value(rng)).new_value(rng)
    }
}

/// See [`Strategy::prop_filter_map`].
#[derive(Clone, Debug)]
pub struct FilterMap<S, F> {
    inner: S,
    reason: &'static str,
    f: F,
}

impl<S, O, F> Strategy for FilterMap<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> Option<O>,
{
    type Value = O;
    fn new_value(&self, rng: &mut TestRng) -> O {
        for _ in 0..MAX_FILTER_RETRIES {
            if let Some(v) = (self.f)(self.inner.new_value(rng)) {
                return v;
            }
        }
        panic!("prop_filter_map rejected every draw: {}", self.reason);
    }
}

/// See [`Strategy::prop_filter`].
#[derive(Clone, Debug)]
pub struct Filter<S, F> {
    inner: S,
    reason: &'static str,
    f: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;
    fn new_value(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..MAX_FILTER_RETRIES {
            let v = self.inner.new_value(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!("prop_filter rejected every draw: {}", self.reason);
    }
}

/// Uniform choice between same-typed strategies (backs `prop_oneof!`).
#[derive(Clone, Debug)]
pub struct Union<S> {
    choices: Vec<S>,
}

impl<S: Strategy> Union<S> {
    /// Build from a non-empty list of alternatives.
    pub fn new(choices: Vec<S>) -> Self {
        assert!(!choices.is_empty(), "prop_oneof! needs at least one arm");
        Union { choices }
    }
}

impl<S: Strategy> Strategy for Union<S> {
    type Value = S::Value;
    fn new_value(&self, rng: &mut TestRng) -> S::Value {
        let i = rng.gen_range(0..self.choices.len());
        self.choices[i].new_value(rng)
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident $idx:tt),+);)*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.new_value(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A 0);
    (A 0, B 1);
    (A 0, B 1, C 2);
    (A 0, B 1, C 2, D 3);
    (A 0, B 1, C 2, D 3, E 4);
    (A 0, B 1, C 2, D 3, E 4, F 5);
    (A 0, B 1, C 2, D 3, E 4, F 5, G 6);
    (A 0, B 1, C 2, D 3, E 4, F 5, G 6, H 7);
}
