#![warn(missing_docs)]

//! Aqua-style approximate query answering middleware (§2 of the paper).
//!
//! [`Aqua`] sits on top of a stored relation the way the original system
//! sat on top of Oracle: at setup time it builds a biased sample synopsis
//! (any §4 strategy, via the one-pass §6 maintainers), and at query time it
//! "rewrites" group-by queries against the synopsis — here, executes them
//! through one of the §5 physical plans — returning scaled estimates
//! *with probabilistic error bounds* at a configurable confidence level
//! (the `error1` column of Figure 4).
//!
//! Warehouse insertions stream through the same maintainer, keeping the
//! synopsis current **without accessing the stored relation** — the
//! property §6 is about.
//!
//! ```
//! use aqua::{Aqua, AquaConfig, SamplingStrategy};
//! use relation::{DataType, RelationBuilder, Value};
//! use engine::{AggregateSpec, GroupByQuery};
//! use relation::Expr;
//!
//! let mut b = RelationBuilder::new()
//!     .column("state", DataType::Str)
//!     .column("income", DataType::Float);
//! for i in 0..100i64 {
//!     let st = if i % 10 == 0 { "WY" } else { "CA" };
//!     b.push_row(&[Value::str(st), Value::from(1000.0 + i as f64)]).unwrap();
//! }
//! let rel = b.finish();
//! let grouping = rel.schema().column_ids(&["state"]).unwrap();
//!
//! let config = AquaConfig {
//!     space: 40,
//!     strategy: SamplingStrategy::Congress,
//!     ..AquaConfig::default()
//! };
//! let aqua = Aqua::build(rel, grouping, config).unwrap();
//! let q = GroupByQuery::new(
//!     aqua.grouping_columns().to_vec(),
//!     vec![AggregateSpec::avg(Expr::col(relation::ColumnId(1)), "avg_income")],
//! );
//! let answer = aqua.answer(&q).unwrap();
//! assert_eq!(answer.result.group_count(), 2); // both states present
//! ```

pub mod answer;
pub mod config;
pub mod error;
pub mod manifest;
pub mod serve_cache;
pub mod synopsis;
pub mod system;
pub mod warehouse;

pub use answer::{AnswerProvenance, ApproximateAnswer, GroupBounds};
pub use config::{AquaConfig, RewriteChoice, SamplingStrategy};
pub use error::{AquaError, Result};
pub use manifest::{Manifest, ManifestEntry};
pub use serve_cache::{AnswerCache, AnswerCacheStats, ServedAnswer};
pub use synopsis::Synopsis;
pub use system::{Aqua, StatsSnapshot};
pub use warehouse::{
    OpenReport, RecoveryPolicy, RelationReport, RelationStatus, SaveReport, VerifyReport, Warehouse,
};
