//! Sample-space allocation strategies (§4 of the paper).
//!
//! Every strategy maps a [`GroupCensus`] and a space budget `X` (in tuples)
//! to an [`Allocation`]: a fractional target sample size for each group at
//! the finest grouping `G`. Targets are then capped at group sizes and
//! rounded to integers by [`Allocation::integer_counts`] before actual rows
//! are drawn.
//!
//! | Strategy | Optimizes for | Paper §
//! |---|---|---|
//! | [`House`] | no-group-by queries (uniform sample) | 4.3 |
//! | [`Senate`] | the finest grouping (equal per group) | 4.4 |
//! | [`BasicCongress`] | `{∅, G}` | 4.5 |
//! | [`Congress`] | every `T ⊆ G` | 4.6 |
//! | [`WorkloadWeighted`] | known group preferences | 4.7 |
//! | [`criteria::MultiCriteria`] | arbitrary weight vectors (e.g. variance) | 8 |

mod basic_congress;
mod congress_strategy;
pub mod criteria;
mod house;
pub mod ranges;
mod senate;
mod subset;
mod workload;

pub use basic_congress::BasicCongress;
pub use congress_strategy::{per_tuple_probabilities, Congress};
pub use criteria::MultiCriteria;
pub use house::House;
pub use ranges::RangeBias;
pub use senate::Senate;
pub use subset::SubsetCongress;
pub use workload::{GroupingPreference, WorkloadWeighted};

use serde::{Deserialize, Serialize};

use crate::census::GroupCensus;
use crate::error::{CongressError, Result};

/// The outcome of an allocation strategy: fractional expected sample sizes
/// per finest group, plus the scale-down factor `f` (Eq 6) that was applied
/// to fit the budget (`1.0` for strategies that fit by construction).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Allocation {
    targets: Vec<f64>,
    scale_down_factor: f64,
}

impl Allocation {
    /// Assemble an allocation (crate-internal; strategies construct these).
    pub(crate) fn new(targets: Vec<f64>, scale_down_factor: f64) -> Self {
        Allocation {
            targets,
            scale_down_factor,
        }
    }

    /// Fractional target sample size per finest group.
    pub fn targets(&self) -> &[f64] {
        &self.targets
    }

    /// Sum of targets (≈ the space budget).
    pub fn total(&self) -> f64 {
        self.targets.iter().sum()
    }

    /// The scale-down factor `f` of Eq 6: the ratio by which every group's
    /// ideal (pre-scaling) allocation was shrunk to fit the budget.
    pub fn scale_down_factor(&self) -> f64 {
        self.scale_down_factor
    }

    /// Convert fractional targets to integer per-group sample counts:
    /// cap each target at its group size (footnote 12 — one cannot sample
    /// more tuples than a group has), redistribute the excess to uncapped
    /// groups proportionally, then round by largest remainder.
    pub fn integer_counts(&self, sizes: &[u64]) -> Vec<usize> {
        assert_eq!(self.targets.len(), sizes.len());
        let mut t: Vec<f64> = self.targets.clone();

        // Cap-and-redistribute until feasible (terminates: each round caps
        // at least one more group or finds no overflow).
        loop {
            let mut overflow = 0.0;
            for (x, &n) in t.iter_mut().zip(sizes) {
                let cap = n as f64;
                if *x > cap {
                    overflow += *x - cap;
                    *x = cap;
                }
            }
            if overflow <= 1e-9 {
                break;
            }
            let headroom: f64 = t
                .iter()
                .zip(sizes)
                .map(|(&x, &n)| (n as f64 - x).max(0.0))
                .sum();
            if headroom <= 1e-9 {
                break; // every group saturated; budget exceeds |R|
            }
            // Distribute overflow proportionally to remaining headroom.
            let scale = (overflow / headroom).min(1.0);
            for (x, &n) in t.iter_mut().zip(sizes) {
                let head = (n as f64 - *x).max(0.0);
                *x += head * scale;
            }
        }

        // Largest-remainder rounding, never exceeding caps.
        let total: f64 = t.iter().sum();
        let want = total.round() as usize;
        let mut counts: Vec<usize> = t.iter().map(|&x| x.floor() as usize).collect();
        // floor can exceed cap only by fp error; clamp defensively
        for (c, &n) in counts.iter_mut().zip(sizes) {
            *c = (*c).min(n as usize);
        }
        let mut have: usize = counts.iter().sum();
        if have < want {
            let mut rema: Vec<(usize, f64)> = t
                .iter()
                .enumerate()
                .filter(|&(g, _)| counts[g] < sizes[g] as usize)
                .map(|(g, &x)| (g, x - x.floor()))
                .collect();
            rema.sort_by(|a, b| b.1.total_cmp(&a.1));
            let mut i = 0;
            while have < want && !rema.is_empty() {
                let (g, _) = rema[i % rema.len()];
                if counts[g] < sizes[g] as usize {
                    counts[g] += 1;
                    have += 1;
                }
                i += 1;
                if i > rema.len() * 2 {
                    // all remaining groups at cap
                    rema.retain(|&(g, _)| counts[g] < sizes[g] as usize);
                    i = 0;
                }
            }
        }
        counts
    }

    /// Per-group sampling rate implied by the integer counts.
    pub fn sampling_rates(&self, sizes: &[u64]) -> Vec<f64> {
        self.integer_counts(sizes)
            .iter()
            .zip(sizes)
            .map(|(&c, &n)| c as f64 / n as f64)
            .collect()
    }
}

/// A strategy for dividing sample space among the finest groups.
pub trait AllocationStrategy {
    /// Strategy name as used in the paper's figures.
    fn name(&self) -> &'static str;

    /// Compute fractional targets for a budget of `space` tuples.
    fn allocate(&self, census: &GroupCensus, space: f64) -> Result<Allocation>;
}

/// Shared validation for all strategies.
pub(crate) fn check_space(space: f64) -> Result<()> {
    if space.is_nan() || space <= 0.0 || !space.is_finite() {
        return Err(CongressError::InvalidSpace(space));
    }
    Ok(())
}

/// Scale raw (pre-scaling) per-group allocations down to `space`, returning
/// the allocation and the scale-down factor `f = X / Σ raw` (Eq 6). When
/// `Σ raw ≤ X` no scaling is applied and `f = 1`.
pub(crate) fn scale_to_budget(raw: Vec<f64>, space: f64) -> Allocation {
    let total: f64 = raw.iter().sum();
    if total <= space || total == 0.0 {
        return Allocation::new(raw, 1.0);
    }
    let f = space / total;
    let targets = raw.into_iter().map(|x| x * f).collect();
    Allocation::new(targets, f)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn integer_counts_conserve_total() {
        let a = Allocation::new(vec![2.4, 2.4, 2.2], 1.0);
        let counts = a.integer_counts(&[100, 100, 100]);
        assert_eq!(counts.iter().sum::<usize>(), 7);
        // Largest remainders get the extra units.
        assert_eq!(counts, vec![3, 2, 2]);
    }

    #[test]
    fn integer_counts_cap_at_group_size() {
        // Target 50 for a group of 10: excess flows to the other group.
        let a = Allocation::new(vec![50.0, 50.0], 1.0);
        let counts = a.integer_counts(&[10, 1000]);
        assert_eq!(counts[0], 10);
        assert_eq!(counts.iter().sum::<usize>(), 100);
    }

    #[test]
    fn integer_counts_budget_exceeds_relation() {
        let a = Allocation::new(vec![500.0, 500.0], 1.0);
        let counts = a.integer_counts(&[10, 20]);
        assert_eq!(counts, vec![10, 20]);
    }

    #[test]
    fn cascading_caps_redistribute() {
        // Overflow larger than one group's headroom spills across rounds.
        let a = Allocation::new(vec![90.0, 8.0, 2.0], 1.0);
        let counts = a.integer_counts(&[10, 12, 1000]);
        assert_eq!(counts[0], 10);
        assert!(counts[1] <= 12);
        assert_eq!(counts.iter().sum::<usize>(), 100);
        // Extreme case: overflow saturates every small group.
        let a = Allocation::new(vec![100.0, 0.0, 0.0], 1.0);
        let counts = a.integer_counts(&[10, 20, 60]);
        assert_eq!(counts, vec![10, 20, 60]);
    }

    #[test]
    fn scale_to_budget_computes_f() {
        let a = scale_to_budget(vec![60.0, 60.0], 100.0);
        assert!((a.scale_down_factor() - 100.0 / 120.0).abs() < 1e-12);
        assert!((a.total() - 100.0).abs() < 1e-9);
        let b = scale_to_budget(vec![40.0, 40.0], 100.0);
        assert_eq!(b.scale_down_factor(), 1.0);
        assert_eq!(b.total(), 80.0);
    }

    #[test]
    fn sampling_rates_are_fractions() {
        let a = Allocation::new(vec![5.0, 10.0], 1.0);
        let rates = a.sampling_rates(&[10, 100]);
        assert_eq!(rates, vec![0.5, 0.1]);
    }

    #[test]
    fn check_space_rejects_bad_values() {
        assert!(check_space(-1.0).is_err());
        assert!(check_space(0.0).is_err());
        assert!(check_space(f64::NAN).is_err());
        assert!(check_space(f64::INFINITY).is_err());
        assert!(check_space(10.0).is_ok());
    }
}
