//! Query-serving throughput bench for the vectorized fast path.
//!
//! Drives a mixed group-by workload (`Q_{g2}`, `Q_{g3}`, and a slice of
//! the `Q_{g0}` range-query set) against a congressional sample of the
//! 1M-row TPC-D `lineitem` table and reports p50/p99 latency and
//! queries/sec for:
//!
//! * `legacy` — a faithful replica of the pre-fast-path executor
//!   (per-query filtered group index, full-table expression evaluation,
//!   row-at-a-time `Vec<bool>` selection scan);
//! * `cold` serial/parallel — the vectorized path with no query cache;
//! * `warm` serial/parallel — the vectorized path with a per-synopsis
//!   [`QueryCache`] shared across the workload.
//!
//! Results land in `BENCH_query.json` (override with `--out <path>`).
//! `--quick` shrinks the table for CI smoke runs.
//!
//! Run: `cargo run -p bench --release --bin qps [-- --quick] [--out f.json]`

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

use aqua::{Aqua, AquaConfig, RewriteChoice, SamplingStrategy};
use bench::harness::{build_plan, ExperimentSetup};
use engine::aggregate::Accumulator;
use engine::{
    ExecOptions, ExecTrace, GroupByQuery, GroupIndex, Integrated, QueryCache, QueryResult,
    SamplePlan,
};
use relation::{Bitmap, Relation};
use tpcd::GeneratorConfig;

/// The pre-fast-path executor, preserved verbatim for baseline numbers:
/// boolean-vector selection, a *filtered* group index rebuilt per query,
/// aggregate inputs evaluated over every row, and a row-at-a-time scan.
fn legacy_execute(rel: &Relation, weights: &[f64], query: &GroupByQuery) -> QueryResult {
    query.validate(rel).unwrap();
    let mask: Vec<bool> = query.predicate.eval(rel).to_bools();
    let bm = Bitmap::from_bools(&mask);
    let index = GroupIndex::build_filtered(rel, &query.grouping, Some(&bm));

    let exprs: Vec<Option<Vec<f64>>> = query
        .aggregates
        .iter()
        .map(|a| a.expr.as_ref().map(|e| e.eval(rel).unwrap()))
        .collect();

    let mut accs: Vec<Vec<Accumulator>> = (0..index.group_count())
        .map(|_| {
            query
                .aggregates
                .iter()
                .map(|a| Accumulator::new(a.func))
                .collect()
        })
        .collect();
    for (row, &sel) in mask.iter().enumerate() {
        if !sel {
            continue;
        }
        let gid = index.group_of(row);
        if gid == u32::MAX {
            continue;
        }
        let w = weights[row];
        for (ai, acc) in accs[gid as usize].iter_mut().enumerate() {
            let v = exprs[ai].as_ref().map_or(0.0, |vals| vals[row]);
            acc.add(v, w);
        }
    }
    let names = query.aggregates.iter().map(|a| a.name.clone()).collect();
    let rows = accs
        .into_iter()
        .enumerate()
        .filter(|(_, a)| a.first().is_some_and(|x| x.rows() > 0))
        .map(|(gid, a)| {
            (
                index.key(gid as u32).clone(),
                a.iter().map(Accumulator::finish).collect(),
            )
        })
        .collect();
    query.apply_having(QueryResult::new(names, rows)).unwrap()
}

#[derive(Debug)]
struct LegResult {
    name: String,
    rewrite: &'static str,
    p50_us: f64,
    p99_us: f64,
    qps: f64,
}

fn percentile(sorted_us: &[f64], p: f64) -> f64 {
    if sorted_us.is_empty() {
        return 0.0;
    }
    let idx = ((sorted_us.len() - 1) as f64 * p / 100.0).round() as usize;
    sorted_us[idx]
}

/// Run `rounds` passes of the workload through `run_query`, timing each
/// query individually.
fn measure(
    name: &str,
    rewrite: &'static str,
    workload: &[&GroupByQuery],
    rounds: usize,
    mut run_query: impl FnMut(&GroupByQuery),
) -> LegResult {
    let mut lat_us: Vec<f64> = Vec::with_capacity(workload.len() * rounds);
    let wall = Instant::now();
    for _ in 0..rounds {
        for q in workload {
            let t0 = Instant::now();
            run_query(q);
            lat_us.push(t0.elapsed().as_secs_f64() * 1e6);
        }
    }
    let total: Duration = wall.elapsed();
    lat_us.sort_by(f64::total_cmp);
    let leg = LegResult {
        name: name.to_string(),
        rewrite,
        p50_us: percentile(&lat_us, 50.0),
        p99_us: percentile(&lat_us, 99.0),
        qps: lat_us.len() as f64 / total.as_secs_f64(),
    };
    eprintln!(
        "  {:<28} p50 {:>9.1} µs  p99 {:>9.1} µs  {:>10.1} q/s",
        format!("{} ({})", leg.name, leg.rewrite),
        leg.p50_us,
        leg.p99_us,
        leg.qps
    );
    leg
}

/// Run `clients` threads against one shared [`Aqua`], each replaying the
/// workload `rounds` times (staggered start offsets so clients don't march
/// in lockstep). The leg's qps is *aggregate* throughput: total queries
/// answered across all clients divided by wall time.
fn measure_multi(
    name: &str,
    aqua: &Aqua,
    workload: &[&GroupByQuery],
    rounds: usize,
    clients: usize,
) -> LegResult {
    let mut lat_us: Vec<f64> = Vec::with_capacity(workload.len() * rounds * clients);
    let wall = Instant::now();
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|c| {
                scope.spawn(move || {
                    let mut lat = Vec::with_capacity(workload.len() * rounds);
                    for r in 0..rounds {
                        for i in 0..workload.len() {
                            let q = workload[(i + c + r) % workload.len()];
                            let t0 = Instant::now();
                            let a = aqua.answer(q).unwrap();
                            std::hint::black_box(a);
                            lat.push(t0.elapsed().as_secs_f64() * 1e6);
                        }
                    }
                    lat
                })
            })
            .collect();
        for h in handles {
            lat_us.extend(h.join().unwrap());
        }
    });
    let total: Duration = wall.elapsed();
    lat_us.sort_by(f64::total_cmp);
    let leg = LegResult {
        name: name.to_string(),
        rewrite: "Integrated",
        p50_us: percentile(&lat_us, 50.0),
        p99_us: percentile(&lat_us, 99.0),
        qps: lat_us.len() as f64 / total.as_secs_f64(),
    };
    eprintln!(
        "  {:<28} p50 {:>9.1} µs  p99 {:>9.1} µs  {:>10.1} q/s (aggregate)",
        format!("{} ({})", leg.name, leg.rewrite),
        leg.p50_us,
        leg.p99_us,
        leg.qps
    );
    leg
}

/// Like [`measure_multi`], but through the full serving path: SQL text in,
/// normalization + plan cache + answer cache, answer out. This is the path
/// `serve` exposes over HTTP, minus the network.
fn measure_multi_served(
    name: &str,
    aqua: &Aqua,
    sqls: &[String],
    rounds: usize,
    clients: usize,
) -> LegResult {
    let mut lat_us: Vec<f64> = Vec::with_capacity(sqls.len() * rounds * clients);
    let wall = Instant::now();
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|c| {
                scope.spawn(move || {
                    let mut lat = Vec::with_capacity(sqls.len() * rounds);
                    for r in 0..rounds {
                        for i in 0..sqls.len() {
                            let sql = &sqls[(i + c + r) % sqls.len()];
                            let t0 = Instant::now();
                            let a = aqua.answer_sql_shared(sql).unwrap();
                            std::hint::black_box(a);
                            lat.push(t0.elapsed().as_secs_f64() * 1e6);
                        }
                    }
                    lat
                })
            })
            .collect();
        for h in handles {
            lat_us.extend(h.join().unwrap());
        }
    });
    let total: Duration = wall.elapsed();
    lat_us.sort_by(f64::total_cmp);
    let leg = LegResult {
        name: name.to_string(),
        rewrite: "Integrated",
        p50_us: percentile(&lat_us, 50.0),
        p99_us: percentile(&lat_us, 99.0),
        qps: lat_us.len() as f64 / total.as_secs_f64(),
    };
    eprintln!(
        "  {:<28} p50 {:>9.1} µs  p99 {:>9.1} µs  {:>10.1} q/s (aggregate)",
        format!("{} ({})", leg.name, leg.rewrite),
        leg.p50_us,
        leg.p99_us,
        leg.qps
    );
    leg
}

/// One keep-alive HTTP round trip: POST the SQL, read the full response,
/// return the status code.
fn http_roundtrip(stream: &mut TcpStream, sql: &str) -> std::io::Result<u16> {
    let req = format!(
        "POST /query HTTP/1.1\r\nHost: bench\r\nContent-Length: {}\r\n\r\n{}",
        sql.len(),
        sql
    );
    stream.write_all(req.as_bytes())?;
    let mut buf: Vec<u8> = Vec::with_capacity(4096);
    let mut tmp = [0u8; 8192];
    let (head_end, content_length, status) = loop {
        let n = stream.read(&mut tmp)?;
        if n == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed mid-response",
            ));
        }
        buf.extend_from_slice(&tmp[..n]);
        if let Some(pos) = buf.windows(4).position(|w| w == b"\r\n\r\n") {
            let head = std::str::from_utf8(&buf[..pos]).expect("ASCII head");
            let status: u16 = head
                .split(' ')
                .nth(1)
                .and_then(|s| s.parse().ok())
                .expect("status code");
            let content_length: usize = head
                .lines()
                .find_map(|l| {
                    let (k, v) = l.split_once(':')?;
                    if k.eq_ignore_ascii_case("content-length") {
                        v.trim().parse().ok()
                    } else {
                        None
                    }
                })
                .unwrap_or(0);
            break (pos + 4, content_length, status);
        }
    };
    while buf.len() < head_end + content_length {
        let n = stream.read(&mut tmp)?;
        if n == 0 {
            break;
        }
        buf.extend_from_slice(&tmp[..n]);
    }
    Ok(status)
}

/// N persistent HTTP connections replay the workload against a live
/// [`server::Server`]. Aggregate qps, real sockets and JSON rendering
/// included.
fn measure_http(
    name: &str,
    addr: std::net::SocketAddr,
    sqls: &[String],
    rounds: usize,
    clients: usize,
) -> LegResult {
    let mut lat_us: Vec<f64> = Vec::with_capacity(sqls.len() * rounds * clients);
    let wall = Instant::now();
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|c| {
                scope.spawn(move || {
                    let mut stream = TcpStream::connect(addr).expect("connect to bench server");
                    stream.set_nodelay(true).ok();
                    let mut lat = Vec::with_capacity(sqls.len() * rounds);
                    for r in 0..rounds {
                        for i in 0..sqls.len() {
                            let sql = &sqls[(i + c + r) % sqls.len()];
                            let t0 = Instant::now();
                            let status = http_roundtrip(&mut stream, sql).expect("round trip");
                            assert_eq!(status, 200, "bench query failed: {sql}");
                            lat.push(t0.elapsed().as_secs_f64() * 1e6);
                        }
                    }
                    lat
                })
            })
            .collect();
        for h in handles {
            lat_us.extend(h.join().unwrap());
        }
    });
    let total: Duration = wall.elapsed();
    lat_us.sort_by(f64::total_cmp);
    let leg = LegResult {
        name: name.to_string(),
        rewrite: "Integrated",
        p50_us: percentile(&lat_us, 50.0),
        p99_us: percentile(&lat_us, 99.0),
        qps: lat_us.len() as f64 / total.as_secs_f64(),
    };
    eprintln!(
        "  {:<28} p50 {:>9.1} µs  p99 {:>9.1} µs  {:>10.1} q/s (aggregate)",
        format!("{} ({})", leg.name, leg.rewrite),
        leg.p50_us,
        leg.p99_us,
        leg.qps
    );
    leg
}

/// Pull the `qps` value of the named leg out of a bench JSON blob. The
/// format is our own hand-rolled output, so a line-free substring scan is
/// enough — no JSON parser needed.
fn scrape_qps(json: &str, name: &str) -> Option<f64> {
    let pos = json.find(&format!("\"name\":\"{name}\""))?;
    let rest = &json[pos..];
    let qpos = rest.find("\"qps\":")?;
    let tail = &rest[qpos + "\"qps\":".len()..];
    let end = tail.find(['}', ','])?;
    tail[..end].trim().parse().ok()
}

fn json_leg(l: &LegResult) -> String {
    format!(
        "{{\"name\":\"{}\",\"rewrite\":\"{}\",\"p50_us\":{:.2},\"p99_us\":{:.2},\"qps\":{:.2}}}",
        l.name, l.rewrite, l.p50_us, l.p99_us, l.qps
    )
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .map_or("BENCH_query.json", |s| s.as_str());
    // `--check <baseline.json>`: after the run, compare warm-serial qps
    // against the committed baseline and exit nonzero on a >20% regression.
    let check_path = args
        .iter()
        .position(|a| a == "--check")
        .and_then(|i| args.get(i + 1))
        .map(|s| s.as_str());

    let config = GeneratorConfig {
        table_size: if quick { 50_000 } else { 1_000_000 },
        num_groups: 1000,
        group_skew: 0.86,
        agg_skew: 0.86,
        seed: 20000516,
    };
    let sample_fraction = 0.05;
    let rounds = if quick { 5 } else { 30 };

    eprintln!("generating lineitem: T={} ...", config.table_size);
    let setup = ExperimentSetup::new(config);

    // Mixed workload: both group-by shapes plus six of the range queries.
    let mut workload: Vec<&GroupByQuery> = vec![&setup.qg2, &setup.qg3];
    workload.extend(setup.qg0.iter().take(6));
    eprintln!(
        "workload: {} queries, {} rounds/leg",
        workload.len(),
        rounds
    );

    let plan = build_plan(
        &setup,
        SamplingStrategy::Congress,
        RewriteChoice::Integrated,
        sample_fraction,
        3_000,
    );
    let sample_rows = plan.sample_relation().row_count();
    eprintln!(
        "sample: {} rows ({}% of {})",
        sample_rows,
        sample_fraction * 100.0,
        config.table_size
    );

    // The Integrated layout again, concretely typed so the legacy executor
    // can read the SF column as per-row weights.
    let integrated = {
        let space = sample_fraction * setup.dataset.relation.row_count() as f64;
        let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(3_000);
        let sample = congress::CongressionalSample::draw(
            &setup.dataset.relation,
            &setup.census,
            &congress::alloc::Congress,
            space,
            &mut rng,
        )
        .expect("sampling succeeds");
        let input = sample
            .to_stratified_input(&setup.dataset.relation)
            .expect("consistent sample");
        Integrated::build(&input).expect("valid input")
    };
    let legacy_rel = integrated.sample_relation().clone();
    let legacy_weights: Vec<f64> = legacy_rel
        .column(integrated.sf_column())
        .as_float()
        .expect("SF column is Float")
        .to_vec();

    let mut legs: Vec<LegResult> = Vec::new();

    // Baseline: the pre-fast-path executor.
    legs.push(measure("legacy", "Integrated", &workload, rounds, |q| {
        let r = legacy_execute(&legacy_rel, &legacy_weights, q);
        std::hint::black_box(r);
    }));

    // Vectorized path, cold (no cache), serial and parallel.
    for parallel in [false, true] {
        let name = if parallel {
            "cold-parallel"
        } else {
            "cold-serial"
        };
        legs.push(measure(name, "Integrated", &workload, rounds, |q| {
            let opts = ExecOptions {
                cache: None,
                parallel,
                trace: None,
            };
            let r = plan.execute_opts(q, &opts).unwrap();
            std::hint::black_box(r);
        }));
    }

    // Vectorized path, warm (shared cache), serial and parallel. One
    // untimed pass populates the cache, as a synopsis's steady state would.
    for parallel in [false, true] {
        let name = if parallel {
            "warm-parallel"
        } else {
            "warm-serial"
        };
        let cache = QueryCache::new();
        for q in &workload {
            let opts = ExecOptions {
                cache: Some(&cache),
                parallel,
                trace: None,
            };
            let _ = plan.execute_opts(q, &opts).unwrap();
        }
        legs.push(measure(name, "Integrated", &workload, rounds, |q| {
            let opts = ExecOptions {
                cache: Some(&cache),
                parallel,
                trace: None,
            };
            let r = plan.execute_opts(q, &opts).unwrap();
            std::hint::black_box(r);
        }));
        let stats = cache.stats();
        eprintln!("    cache: {} hits / {} misses", stats.hits, stats.misses);
    }

    // Warm-serial again with full per-query observability: a span timer,
    // an [`ExecTrace`], and registry recording per query — exactly what
    // `Aqua::answer` adds on top of plan execution. Compared against the
    // plain warm-serial leg below to price the instrumentation; under
    // `--features obs-off` the registry calls compile to no-ops and the
    // two legs should be indistinguishable.
    let registry = obs::Registry::new();
    {
        let cache = QueryCache::new();
        for q in &workload {
            let opts = ExecOptions {
                cache: Some(&cache),
                parallel: false,
                trace: None,
            };
            let _ = plan.execute_opts(q, &opts).unwrap();
        }
        legs.push(measure(
            "warm-serial-instrumented",
            "Integrated",
            &workload,
            rounds,
            |q| {
                let timer = obs::Timer::start();
                let trace = ExecTrace::new();
                let opts = ExecOptions {
                    cache: Some(&cache),
                    parallel: false,
                    trace: if obs::ENABLED { Some(&trace) } else { None },
                };
                let r = plan.execute_opts(q, &opts).unwrap();
                std::hint::black_box(r);
                let served = trace.served().map_or("unknown", |s| s.label());
                registry
                    .counter(&obs::label(
                        "bench_queries_total",
                        &[("rewrite", "Integrated"), ("served", served)],
                    ))
                    .inc();
                registry
                    .histogram("bench_query_latency_us")
                    .record(timer.elapsed_us());
                registry
                    .counter("bench_rows_scanned_total")
                    .add(trace.rows_scanned());
            },
        ));
    }

    // Unfiltered group-bys only, warm + serial: this isolates the
    // O(groups) cached-summary path (no predicate → no bitmap scan), the
    // ISSUE 4 headline number.
    {
        let unfiltered: Vec<&GroupByQuery> = vec![&setup.qg2, &setup.qg3];
        let cache = QueryCache::new();
        let opts = ExecOptions {
            cache: Some(&cache),
            parallel: false,
            trace: None,
        };
        for q in &unfiltered {
            let _ = plan.execute_opts(q, &opts).unwrap();
        }
        legs.push(measure(
            "warm-serial-unfiltered",
            "Integrated",
            &unfiltered,
            rounds,
            |q| {
                let r = plan.execute_opts(q, &opts).unwrap();
                std::hint::black_box(r);
            },
        ));
    }

    // Multi-client legs: N threads hammer one shared `Aqua` system (its
    // synopsis cache behind sharded RwLocks), reporting aggregate qps.
    let aqua = Arc::new(
        Aqua::build(
            setup.dataset.relation.clone(),
            setup.qg3.grouping.clone(),
            AquaConfig {
                space: (sample_fraction * config.table_size as f64) as usize,
                strategy: SamplingStrategy::Congress,
                rewrite: RewriteChoice::Integrated,
                confidence: 0.9,
                seed: 3_000,
                parallelism: 1,
            },
        )
        .expect("aqua builds"),
    );
    // One untimed pass warms every summary table.
    for q in &workload {
        let _ = aqua.answer(q).unwrap();
    }
    for clients in [1usize, 4, 16] {
        legs.push(measure_multi(
            &format!("multi-client-{clients}"),
            &aqua,
            &workload,
            rounds,
            clients,
        ));
    }

    // The workload rendered back to SQL text, for the serving path: the
    // queries arrive over the wire as strings, exactly as `serve` sees them.
    let workload_sql: Vec<String> = {
        let schema = aqua.table_snapshot().schema().clone();
        workload
            .iter()
            .map(|q| engine::sql::render(q, &schema, "lineitem").expect("workload renders"))
            .collect()
    };

    // Served multi-client legs: the same threads, but entering through
    // `answer_sql` — SQL normalization, the plan cache, and the answer
    // cache all in the path. Steady state is an answer-cache hit: one
    // normalization + one hash probe + an Arc clone, no per-query plan.
    for q in &workload_sql {
        let _ = aqua.answer_sql(q).unwrap();
    }
    for clients in [1usize, 4, 16] {
        legs.push(measure_multi_served(
            &format!("served-multi-client-{clients}"),
            &aqua,
            &workload_sql,
            rounds,
            clients,
        ));
    }
    // An ingest clears the answer cache (data changed) but not the plan
    // cache (schema didn't): the replay after it is the plan-cache hit
    // path — parse and rewrite skipped, execution redone against the new
    // generation. This is where the plan cache earns its keep.
    {
        let batch: Vec<Vec<relation::Value>> = (0..64)
            .map(|i| setup.dataset.relation.row(i).expect("row exists"))
            .collect();
        aqua.insert_batch(&batch).expect("ingest succeeds");
        legs.push(measure_multi_served(
            "served-post-ingest-4",
            &aqua,
            &workload_sql,
            rounds,
            4,
        ));
    }
    let aqua_stats = aqua.stats();
    let plan_hit_permille = aqua_stats.gauge("aqua_plan_cache_hit_rate_permille");
    let answer_hits = aqua_stats.counter("aqua_answer_cache_hits_total");
    let answer_misses = aqua_stats.counter("aqua_answer_cache_misses_total");
    let answer_hit_rate = answer_hits as f64 / (answer_hits + answer_misses).max(1) as f64;
    eprintln!(
        "    serving caches: plan hit rate {:.1}%, answer hit rate {:.1}% ({answer_hits} hits)",
        plan_hit_permille as f64 / 10.0,
        answer_hit_rate * 100.0
    );

    // HTTP legs: a live `server::Server` on a loopback ephemeral port, N
    // persistent connections POSTing the SQL workload. Prices the full
    // stack — sockets, HTTP parsing, JSON rendering — on top of the
    // served path above.
    {
        let http = server::Server::bind(
            server::ServerConfig {
                addr: "127.0.0.1:0".to_string(),
                workers: 0,
                queue_depth: 256,
            },
            Arc::clone(&aqua) as Arc<dyn server::QueryBackend>,
        )
        .expect("bench server binds");
        let addr = http.local_addr();
        for clients in [1usize, 4] {
            legs.push(measure_http(
                &format!("http-multi-{clients}"),
                addr,
                &workload_sql,
                rounds,
                clients,
            ));
        }
        http.shutdown();
    }

    // Warm-parallel coverage for the other three rewrite strategies.
    for rewrite in [
        RewriteChoice::NestedIntegrated,
        RewriteChoice::Normalized,
        RewriteChoice::KeyNormalized,
    ] {
        let p = build_plan(
            &setup,
            SamplingStrategy::Congress,
            rewrite,
            sample_fraction,
            3_000,
        );
        let cache = QueryCache::new();
        for q in &workload {
            let opts = ExecOptions {
                cache: Some(&cache),
                parallel: true,
                trace: None,
            };
            let _ = p.execute_opts(q, &opts).unwrap();
        }
        legs.push(measure(
            "warm-parallel",
            rewrite.name(),
            &workload,
            rounds,
            |q| {
                let opts = ExecOptions {
                    cache: Some(&cache),
                    parallel: true,
                    trace: None,
                };
                let r = p.execute_opts(q, &opts).unwrap();
                std::hint::black_box(r);
            },
        ));
    }

    let legacy_qps = legs[0].qps;
    let warm_parallel_qps = legs
        .iter()
        .find(|l| l.name == "warm-parallel" && l.rewrite == "Integrated")
        .map_or(0.0, |l| l.qps);
    let speedup = warm_parallel_qps / legacy_qps;
    println!("\nlegacy: {legacy_qps:.1} q/s; warm-parallel: {warm_parallel_qps:.1} q/s; speedup: {speedup:.2}x");

    let leg_qps = |name: &str| legs.iter().find(|l| l.name == name).map_or(0.0, |l| l.qps);
    let scaling_16_vs_1 =
        leg_qps("multi-client-16") / leg_qps("multi-client-1").max(f64::MIN_POSITIVE);
    // Fractional qps lost to per-query metric recording (negative = noise
    // in the instrumented leg's favor).
    let warm_serial_qps = leg_qps("warm-serial");
    let obs_overhead_frac =
        1.0 - leg_qps("warm-serial-instrumented") / warm_serial_qps.max(f64::MIN_POSITIVE);
    println!(
        "observability: {} — instrumented warm-serial {:.1} q/s vs plain {warm_serial_qps:.1} q/s \
         (overhead {:.1}%)",
        if obs::ENABLED {
            "enabled"
        } else {
            "compiled out (obs-off)"
        },
        leg_qps("warm-serial-instrumented"),
        obs_overhead_frac * 100.0
    );
    let unfiltered_p50 = legs
        .iter()
        .find(|l| l.name == "warm-serial-unfiltered")
        .map_or(0.0, |l| l.p50_us);
    println!(
        "warm-serial-unfiltered p50: {unfiltered_p50:.1} µs; 16-client vs 1-client aggregate: {scaling_16_vs_1:.2}x ({} cpus)",
        std::thread::available_parallelism().map_or(1, |n| n.get())
    );
    println!(
        "serving path: served-multi-4 {:.1} q/s vs structured multi-4 {:.1} q/s; \
         http-multi-4 {:.1} q/s; plan-cache hit rate {:.1}%, answer-cache hit rate {:.1}%",
        leg_qps("served-multi-client-4"),
        leg_qps("multi-client-4"),
        leg_qps("http-multi-4"),
        plan_hit_permille as f64 / 10.0,
        answer_hit_rate * 100.0
    );

    let legs_json: Vec<String> = legs.iter().map(json_leg).collect();
    let json = format!(
        "{{\n  \"bench\": \"query_fastpath_qps\",\n  \"table_size\": {},\n  \"sample_fraction\": {},\n  \"sample_rows\": {},\n  \"workload_queries\": {},\n  \"rounds\": {},\n  \"quick\": {},\n  \"cpus\": {},\n  \"obs_enabled\": {},\n  \"obs_overhead_frac\": {:.4},\n  \"legs\": [\n    {}\n  ],\n  \"speedup_warm_parallel_vs_legacy\": {:.3},\n  \"warm_serial_unfiltered_p50_us\": {:.2},\n  \"multi_client_scaling_16_vs_1\": {:.3},\n  \"served_vs_structured_multi_4\": {:.3},\n  \"plan_cache_hit_rate\": {:.4},\n  \"answer_cache_hit_rate\": {:.4}\n}}\n",
        config.table_size,
        sample_fraction,
        sample_rows,
        workload.len(),
        rounds,
        quick,
        std::thread::available_parallelism().map_or(1, |n| n.get()),
        obs::ENABLED,
        obs_overhead_frac,
        legs_json.join(",\n    "),
        speedup,
        unfiltered_p50,
        scaling_16_vs_1,
        leg_qps("served-multi-client-4") / leg_qps("multi-client-4").max(f64::MIN_POSITIVE),
        plan_hit_permille as f64 / 1000.0,
        answer_hit_rate
    );
    std::fs::write(out_path, &json).expect("write bench JSON");
    eprintln!("wrote {out_path}");

    // Prometheus exposition of the instrumented leg's registry, next to
    // the JSON — what a scrape endpoint would serve.
    let prom_path = format!("{out_path}.prom");
    std::fs::write(&prom_path, registry.snapshot().to_prometheus())
        .expect("write Prometheus exposition");
    eprintln!("wrote {prom_path}");

    // Regression gate for CI: warm-serial throughput must stay within 20%
    // of the committed baseline (same hardware class — CI compares runs on
    // the same runner, not across machines).
    if let Some(baseline_path) = check_path {
        let baseline = std::fs::read_to_string(baseline_path).expect("read baseline JSON");
        let base_qps = scrape_qps(&baseline, "warm-serial").expect("baseline has warm-serial leg");
        let cur_qps = leg_qps("warm-serial");
        let floor = 0.8 * base_qps;
        eprintln!(
            "check: warm-serial {cur_qps:.1} q/s vs baseline {base_qps:.1} q/s (floor {floor:.1})"
        );
        if cur_qps < floor {
            eprintln!("FAIL: warm-serial qps regressed more than 20% below baseline");
            std::process::exit(1);
        }
        // Metrics must stay cheap: the fully-instrumented leg may not cost
        // more than 5% of plain warm-serial throughput.
        let instr_qps = leg_qps("warm-serial-instrumented");
        let instr_floor = 0.95 * cur_qps;
        eprintln!(
            "check: warm-serial-instrumented {instr_qps:.1} q/s vs plain {cur_qps:.1} q/s \
             (floor {instr_floor:.1})"
        );
        if instr_qps < instr_floor {
            eprintln!("FAIL: metrics overhead pushed warm-serial qps down more than 5%");
            std::process::exit(1);
        }
        // Serving path: the answer-cache steady state must hold up under
        // concurrency — 4 served clients within 20% of the baseline run.
        if let Some(base_served) = scrape_qps(&baseline, "served-multi-client-4") {
            let cur_served = leg_qps("served-multi-client-4");
            let served_floor = 0.8 * base_served;
            eprintln!(
                "check: served-multi-client-4 {cur_served:.1} q/s vs baseline {base_served:.1} q/s \
                 (floor {served_floor:.1})"
            );
            if cur_served < served_floor {
                eprintln!("FAIL: served multi-client qps regressed more than 20% below baseline");
                std::process::exit(1);
            }
        }
        // The HTTP stack rides on sockets and scheduler behavior, so its
        // gate is looser: half the baseline throughput.
        if let Some(base_http) = scrape_qps(&baseline, "http-multi-4") {
            let cur_http = leg_qps("http-multi-4");
            let http_floor = 0.5 * base_http;
            eprintln!(
                "check: http-multi-4 {cur_http:.1} q/s vs baseline {base_http:.1} q/s \
                 (floor {http_floor:.1})"
            );
            if cur_http < http_floor {
                eprintln!("FAIL: http multi-connection qps regressed more than 50% below baseline");
                std::process::exit(1);
            }
        }
    }
}
