//! `sample`: draw a biased sample and persist its binary snapshot.

use std::fmt::Write as _;

use congress::alloc::{AllocationStrategy, BasicCongress, Congress, House, Senate};
use congress::{snapshot, CongressionalSample, GroupCensus, SeedSpec};

use crate::args::Args;
use crate::data::{load, strategy};
use crate::{err, Result};

/// Draw a sample per the chosen strategy and write the snapshot to
/// `--out` (the durable synopsis format).
///
/// Construction runs on `--parallelism` threads (`0` = all cores, the
/// default) with per-stratum RNG streams derived from `--seed`, so the
/// written snapshot is identical for any thread count.
pub fn sample(args: &Args) -> Result<String> {
    let source = load(args)?;
    let space: f64 = args.get_parsed("space", 0.0f64)?;
    if space <= 0.0 {
        return Err("sample requires --space <tuples>".into());
    }
    let out_path = args.require("out")?.to_string();
    let spec = SeedSpec::new(args.get_parsed("seed", 0u64)?);
    let parallelism: usize = args.get_parsed("parallelism", 0usize)?;

    let chosen = strategy(args)?;
    let boxed: Box<dyn AllocationStrategy> = match chosen {
        aqua::SamplingStrategy::House => Box::new(House),
        aqua::SamplingStrategy::Senate => Box::new(Senate),
        aqua::SamplingStrategy::BasicCongress => Box::new(BasicCongress),
        aqua::SamplingStrategy::Congress => Box::new(Congress),
    };
    let pool = rayon::ThreadPoolBuilder::new()
        .num_threads(parallelism)
        .build()
        .expect("thread pool");
    let sample = pool
        .install(|| -> congress::Result<CongressionalSample> {
            let census = GroupCensus::par_build(&source.relation, &source.grouping)?;
            let allocation = boxed.allocate(&census, space)?;
            CongressionalSample::draw_with_allocation_par(
                &source.relation,
                &census,
                &allocation,
                boxed.name(),
                &spec,
            )
        })
        .map_err(err)?;
    let bytes = snapshot::encode(&sample);
    // Crash-safe write: temp file + fsync + rename via the snapshot store,
    // so a kill mid-write can never leave a torn snapshot at --out.
    let path = std::path::Path::new(&out_path);
    let parent = match path.parent() {
        Some(p) if !p.as_os_str().is_empty() => p,
        _ => std::path::Path::new("."),
    };
    let file = path
        .file_name()
        .and_then(|f| f.to_str())
        .ok_or_else(|| format!("--out `{out_path}` has no file name"))?;
    let fs_store = congress::FsStore::open(parent)
        .map_err(|e| format!("cannot open output directory: {e}"))?;
    congress::SnapshotStore::put(&fs_store, file, &bytes)
        .map_err(|e| format!("cannot write {out_path}: {e}"))?;

    let mut out = String::new();
    let _ = writeln!(
        out,
        "wrote {} ({} bytes): {} strategy, {} tuples over {} strata",
        out_path,
        bytes.len(),
        sample.strategy_name(),
        sample.total_sampled(),
        sample.stratum_count()
    );
    let _ = writeln!(
        out,
        "reload with congress::snapshot::decode or Aqua::build_from_snapshot \
         against the same base table."
    );
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::commands::test_support::args;

    #[test]
    fn sample_writes_decodable_snapshot() {
        let dir = std::env::temp_dir().join("congress_cli_sample");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("demo.sample");
        let out = sample(&args(&[
            "sample",
            "--demo",
            "--rows",
            "4000",
            "--groups",
            "27",
            "--space",
            "400",
            "--out",
            path.to_str().unwrap(),
        ]))
        .unwrap();
        assert!(out.contains("wrote"), "{out}");
        let bytes = std::fs::read(&path).unwrap();
        let decoded = congress::snapshot::decode(bytes::Bytes::from(bytes)).unwrap();
        assert_eq!(decoded.total_sampled(), 400);
        assert_eq!(decoded.stratum_count(), 27);
    }

    #[test]
    fn sample_snapshot_identical_across_parallelism() {
        let dir = std::env::temp_dir().join("congress_cli_sample_par");
        std::fs::create_dir_all(&dir).unwrap();
        let mut snapshots = Vec::new();
        for parallelism in ["1", "4"] {
            let path = dir.join(format!("p{parallelism}.sample"));
            sample(&args(&[
                "sample",
                "--demo",
                "--rows",
                "4000",
                "--groups",
                "27",
                "--space",
                "400",
                "--seed",
                "7",
                "--parallelism",
                parallelism,
                "--out",
                path.to_str().unwrap(),
            ]))
            .unwrap();
            snapshots.push(std::fs::read(&path).unwrap());
        }
        assert_eq!(
            snapshots[0], snapshots[1],
            "snapshot bytes must not depend on thread count"
        );
    }

    #[test]
    fn sample_requires_out_and_space() {
        let e = sample(&args(&[
            "sample", "--demo", "--rows", "100", "--groups", "8",
        ]))
        .unwrap_err();
        assert!(e.contains("--space"), "{e}");
        let e = sample(&args(&[
            "sample", "--demo", "--rows", "100", "--groups", "8", "--space", "10",
        ]))
        .unwrap_err();
        assert!(e.contains("--out"), "{e}");
    }
}
