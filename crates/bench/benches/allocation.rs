//! Criterion bench for the §4 allocation formulas themselves: cost of
//! computing House/Senate/Basic/Congress targets as the number of finest
//! groups grows (Congress is Θ(2^|G|·groups), the others Θ(groups)).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use congress::alloc::{AllocationStrategy, BasicCongress, Congress, House, Senate};
use congress::GroupCensus;
use relation::{ColumnId, GroupKey, Value};
use tpcd::zipf_sizes;

/// Synthetic 3-attribute census with `d³` groups and Zipf(1) sizes.
fn census(d: usize) -> GroupCensus {
    let groups = d * d * d;
    let sizes = zipf_sizes(groups, (groups as u64) * 100, 1.0);
    let keys = (0..groups)
        .map(|i| {
            GroupKey::new(vec![
                Value::Int((i / (d * d)) as i64),
                Value::Int(((i / d) % d) as i64),
                Value::Int((i % d) as i64),
            ])
        })
        .collect();
    GroupCensus::from_counts(vec![ColumnId(0), ColumnId(1), ColumnId(2)], keys, sizes).unwrap()
}

fn bench_allocation(c: &mut Criterion) {
    for d in [5usize, 10, 22, 46] {
        let census = census(d);
        let groups = census.group_count();
        let space = groups as f64 * 5.0;
        let mut group = c.benchmark_group(format!("allocate_{groups}_groups"));
        group.sample_size(10);
        group.bench_function(BenchmarkId::from_parameter("House"), |b| {
            b.iter(|| House.allocate(&census, space).unwrap())
        });
        group.bench_function(BenchmarkId::from_parameter("Senate"), |b| {
            b.iter(|| Senate.allocate(&census, space).unwrap())
        });
        group.bench_function(BenchmarkId::from_parameter("BasicCongress"), |b| {
            b.iter(|| BasicCongress.allocate(&census, space).unwrap())
        });
        group.bench_function(BenchmarkId::from_parameter("Congress"), |b| {
            b.iter(|| Congress.allocate(&census, space).unwrap())
        });
        group.finish();
    }
}

criterion_group!(benches, bench_allocation);
criterion_main!(benches);
