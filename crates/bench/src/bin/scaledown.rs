//! Scale-down factor analysis (§4.6): the Congress scale-down factor `f`
//! ranges from 1 (uniform group sizes) down to (nearly) `2^-|G|` under the
//! pathological distribution of Eq 7, `|(v₁…vₙ)| = (2m)^{2nα}` where `α`
//! counts coordinates equal to 1.
//!
//! Run: `cargo run -p bench --release --bin scaledown`
//!
//! Expected: for each n, measured `f` approaches `2^-n` as `m` grows, and
//! stays below the paper's closed-form bound `(1 + (2m)^-n)(2 − 1/m)^-n`.

use congress::alloc::{AllocationStrategy, Congress};
use congress::GroupCensus;
use relation::{ColumnId, GroupKey, Value};

use bench::report::Table;

/// Build the Eq-7 census for `n` attributes over domain `{1..m}`.
/// Sizes are `(2m)^{2nα}`, which overflows u64 quickly — callers must keep
/// `(2m)^{2n·n} < 2^63`.
fn pathological_census(n: usize, m: usize) -> GroupCensus {
    let base = (2 * m) as u128;
    let mut keys = Vec::new();
    let mut sizes = Vec::new();
    let groups = (m as u64).pow(n as u32);
    for idx in 0..groups {
        let mut v = Vec::with_capacity(n);
        let mut rest = idx;
        let mut alpha = 0u32;
        for _ in 0..n {
            let val = (rest % m as u64) + 1;
            rest /= m as u64;
            if val == 1 {
                alpha += 1;
            }
            v.push(Value::Int(val as i64));
        }
        let size = base.pow(2 * n as u32 * alpha);
        assert!(
            size < u64::MAX as u128,
            "Eq-7 size overflow: pick smaller m/n"
        );
        keys.push(GroupKey::new(v));
        sizes.push(size as u64);
    }
    let cols = (0..n).map(ColumnId).collect();
    GroupCensus::from_counts(cols, keys, sizes).expect("valid pathological census")
}

fn main() {
    let mut table = Table::new(
        "§4.6 scale-down factor f under the Eq-7 pathological distribution \
         [expect: f → 2^-n from above, below the closed-form bound]",
        &["n", "m", "measured f", "paper bound", "limit 2^-n"],
    );
    let cases: &[(usize, &[usize])] = &[
        (1, &[2, 8, 32, 128, 1024]),
        (2, &[2, 8, 32, 64]),
        (3, &[2, 3, 4, 5]),
    ];
    for &(n, ms) in cases {
        for &m in ms {
            let census = pathological_census(n, m);
            let alloc = Congress.allocate(&census, 1000.0).expect("allocation");
            let f = alloc.scale_down_factor();
            let bound = (1.0 + (2.0 * m as f64).powi(-(n as i32)))
                * (2.0 - 1.0 / m as f64).powi(-(n as i32));
            let limit = 2f64.powi(-(n as i32));
            assert!(
                f <= bound + 1e-9,
                "measured f {f} exceeds the paper's bound {bound} for n={n}, m={m}"
            );
            assert!(f >= limit - 1e-9, "f cannot drop below 2^-n");
            table.row(&[
                n.to_string(),
                m.to_string(),
                format!("{f:.5}"),
                format!("{bound:.5}"),
                format!("{limit:.5}"),
            ]);
        }
    }
    println!("{table}");

    // And the other extreme: uniform distribution → f = 1 (§4.6).
    let keys: Vec<GroupKey> = (0..6)
        .map(|i| GroupKey::new(vec![Value::Int(i % 2), Value::Int(i / 2)]))
        .collect();
    let uniform =
        GroupCensus::from_counts(vec![ColumnId(0), ColumnId(1)], keys, vec![100; 6]).unwrap();
    let f = Congress
        .allocate(&uniform, 60.0)
        .unwrap()
        .scale_down_factor();
    println!("uniform 2×3 grid: f = {f} (paper: exactly 1)");
}
