//! The [`Aqua`] middleware: stored table + synopsis + query answering.

use std::sync::{Arc, OnceLock};

use parking_lot::RwLock;

use engine::{execute_exact, ExecOptions, ExecTrace, GroupByQuery, QueryResult, ServedFrom};
use relation::{ColumnId, Relation, Value};

/// Serializable point-in-time metrics snapshot returned by
/// [`Aqua::stats`] (re-exported from the `obs` crate).
pub use obs::Snapshot as StatsSnapshot;

use crate::answer::{compute_bounds_cached, AnswerProvenance, ApproximateAnswer};
use crate::config::AquaConfig;
use crate::error::{AquaError, Result};
use crate::serve_cache::ServedAnswer;
use crate::synopsis::Synopsis;

/// `served` label for answers returned straight from the answer cache —
/// such a query never reaches the executor, so [`ExecTrace`] cannot name
/// its path.
pub const SERVED_ANSWER_CACHE: &str = "answer_cache";

/// Cached metric handles for the per-query hot path.
///
/// The serving profile showed span recording itself as measurable
/// per-query overhead: every answer paid `obs::label` string formatting
/// plus three registry `RwLock` + `BTreeMap` lookups. Handles are now
/// resolved once per (name, label) and memoized in `OnceLock` cells, so
/// recording a span is a few relaxed atomic adds. Registration stays
/// *lazy* — a metric family appears in the registry only once the path it
/// names has actually served a query (the obs contract tests pin this).
struct QueryMetrics {
    registry: Arc<obs::Registry>,
    rewrite: &'static str,
    /// Per-served-path query counters, found by label. The executor paths
    /// come from [`ServedFrom::all`]; "unknown" covers a missing trace and
    /// [`SERVED_ANSWER_CACHE`] the cache-hit path.
    served: [(&'static str, OnceLock<obs::Counter>); 5],
    errors: OnceLock<obs::Counter>,
    latency: OnceLock<obs::Histogram>,
    rows_scanned: OnceLock<obs::Counter>,
    sql_queries: OnceLock<obs::Counter>,
    sql_parse_errors: OnceLock<obs::Counter>,
}

impl QueryMetrics {
    fn new(registry: Arc<obs::Registry>, rewrite: &'static str) -> QueryMetrics {
        let [a, b, c] = ServedFrom::all().map(|s| s.label());
        QueryMetrics {
            registry,
            rewrite,
            served: [
                (a, OnceLock::new()),
                (b, OnceLock::new()),
                (c, OnceLock::new()),
                ("unknown", OnceLock::new()),
                (SERVED_ANSWER_CACHE, OnceLock::new()),
            ],
            errors: OnceLock::new(),
            latency: OnceLock::new(),
            rows_scanned: OnceLock::new(),
            sql_queries: OnceLock::new(),
            sql_parse_errors: OnceLock::new(),
        }
    }

    /// Record one successful query span: per-(rewrite, served) count,
    /// end-to-end latency, rows touched.
    fn record_query(&self, served: &str, elapsed_us: u64, rows_scanned: u64) {
        let (label, cell) = self
            .served
            .iter()
            .find(|(l, _)| *l == served)
            .unwrap_or(&self.served[3]); // closed label set; fall back to "unknown"
        cell.get_or_init(|| {
            self.registry.counter(&obs::label(
                "aqua_queries_total",
                &[("rewrite", self.rewrite), ("served", label)],
            ))
        })
        .inc();
        self.latency
            .get_or_init(|| {
                self.registry.histogram(&obs::label(
                    "aqua_query_latency_us",
                    &[("rewrite", self.rewrite)],
                ))
            })
            .record(elapsed_us);
        self.rows_scanned
            .get_or_init(|| self.registry.counter("aqua_rows_scanned_total"))
            .add(rows_scanned);
    }

    fn record_error(&self) {
        self.errors
            .get_or_init(|| self.registry.counter("aqua_query_errors_total"))
            .inc();
    }

    fn sql_queries(&self) -> &obs::Counter {
        self.sql_queries
            .get_or_init(|| self.registry.counter("aqua_sql_queries_total"))
    }

    fn sql_parse_errors(&self) -> &obs::Counter {
        self.sql_parse_errors
            .get_or_init(|| self.registry.counter("aqua_sql_parse_errors_total"))
    }
}

/// The approximate query answering system of §2, over a single stored
/// relation (the paper reduces multi-table warehouses to this case via
/// join synopses).
///
/// Thread-safe: queries take a read lock; insertions and refreshes take a
/// write lock. The synopsis refreshes lazily — after a batch of warehouse
/// insertions, the next query pays one plan rebuild.
pub struct Aqua {
    inner: RwLock<Inner>,
    /// Cached metric handles — outside the lock, so span recording never
    /// takes it.
    metrics: QueryMetrics,
}

struct Inner {
    /// The stored warehouse table, grown by [`Aqua::insert_batch`].
    table: Relation,
    grouping: Vec<ColumnId>,
    synopsis: Synopsis,
}

impl Aqua {
    /// Build the system over `table`, declaring `grouping` as the
    /// dimensional attributes `G`. The initial synopsis is constructed by
    /// the bulk parallel pipeline (parallel census + seeded per-stratum
    /// draws, on `config.parallelism` threads — identical output at any
    /// thread count); the table is also streamed through the incremental
    /// maintainer so later [`Self::insert_batch`] calls keep the synopsis
    /// maintainable in one pass.
    pub fn build(table: Relation, grouping: Vec<ColumnId>, config: AquaConfig) -> Result<Aqua> {
        config.validate()?;
        for &c in &grouping {
            table.schema().field(c)?;
        }
        if table.is_empty() {
            return Err(AquaError::InvalidConfig(
                "cannot build a synopsis over an empty relation".into(),
            ));
        }
        let rewrite = config.rewrite.name();
        let mut synopsis = Synopsis::new(config, grouping.clone())?;
        synopsis.ingest(&table, 0)?;
        synopsis.rebuild_bulk(&table)?;
        let metrics = QueryMetrics::new(Arc::clone(synopsis.registry()), rewrite);
        Ok(Aqua {
            inner: RwLock::new(Inner {
                table,
                grouping,
                synopsis,
            }),
            metrics,
        })
    }

    /// The declared grouping columns.
    pub fn grouping_columns(&self) -> Vec<ColumnId> {
        self.inner.read().grouping.clone()
    }

    /// The active configuration (needed to persist and rebuild the system).
    pub fn config(&self) -> AquaConfig {
        *self.inner.read().synopsis.config()
    }

    /// A snapshot of the stored table (cheap: columns are copied, but
    /// string dictionaries are shared `Arc`s under the hood).
    pub fn table_snapshot(&self) -> Relation {
        self.inner.read().table.clone()
    }

    /// Rows currently stored in the warehouse table.
    pub fn table_rows(&self) -> usize {
        self.inner.read().table.row_count()
    }

    /// Sampled tuples in the active synopsis.
    pub fn synopsis_rows(&self) -> usize {
        self.inner.read().synopsis.sample_rows()
    }

    /// Answer a query approximately from the synopsis, with per-group
    /// error bounds — the full Figure 2 → Figure 4 pipeline.
    ///
    /// Serving runs through the vectorized fast path: the synopsis's
    /// [`engine::QueryCache`] memoizes group indexes / stratum layouts
    /// across queries (invalidated on insert/refresh/rebuild), and chunked
    /// parallel aggregation engages when `config.parallelism` permits more
    /// than one thread. Answers are bit-identical to the cold serial path.
    pub fn answer(&self, query: &GroupByQuery) -> Result<ApproximateAnswer> {
        let timer = obs::Timer::start();
        let trace = ExecTrace::new();
        let result = (|| {
            let inner = self.read_fresh()?;
            self.answer_locked(
                &inner,
                query,
                if obs::ENABLED { Some(&trace) } else { None },
            )
        })();
        if obs::ENABLED {
            match &result {
                Ok(_) => {
                    let served = trace.served().map_or("unknown", |s| s.label());
                    self.metrics
                        .record_query(served, timer.elapsed_us(), trace.rows_scanned());
                }
                Err(_) => self.metrics.record_error(),
            }
        }
        result
    }

    /// Take the read lock with a *fresh* synopsis: probe staleness under
    /// the read lock, refreshing (write lock) and retrying as needed. The
    /// returned guard pins the generation — while held, no writer can
    /// ingest, refresh, or invalidate, so anything computed from it may be
    /// published to the generation-scoped caches before release.
    fn read_fresh(&self) -> Result<parking_lot::RwLockReadGuard<'_, Inner>> {
        loop {
            let inner = self.inner.read();
            if !inner.synopsis.is_stale() {
                return Ok(inner);
            }
            drop(inner);
            self.refresh_if_stale()?;
        }
    }

    /// The answer pipeline against an already-locked, already-fresh inner
    /// state; `trace` (when set) receives the served-from path and rows
    /// touched without affecting the result.
    fn answer_locked(
        &self,
        inner: &Inner,
        query: &GroupByQuery,
        trace: Option<&ExecTrace>,
    ) -> Result<ApproximateAnswer> {
        let plan = inner
            .synopsis
            .plan()
            .expect("read_fresh materialized the plan");
        let cache = inner.synopsis.query_cache();
        let opts = ExecOptions {
            cache: Some(cache),
            parallel: inner.synopsis.config().effective_parallelism() != 1,
            trace,
        };
        let result = plan.execute_opts(query, &opts)?;
        let input = inner
            .synopsis
            .input()
            .expect("read_fresh materialized the input");
        let confidence = inner.synopsis.config().confidence;
        let bounds = compute_bounds_cached(input, query, &result, confidence, Some(cache))?;
        Ok(ApproximateAnswer {
            result,
            bounds,
            confidence,
            provenance: AnswerProvenance::Sampled,
        })
    }

    /// Point-in-time metrics snapshot: query spans and maintenance
    /// counters from the synopsis registry, plus the query cache's
    /// per-kind / per-shard hit-miss breakdown and current table/sample
    /// size gauges. Under the `obs-off` feature the registry counters are
    /// all zero but the cache counters (pre-existing, always on) remain.
    pub fn stats(&self) -> StatsSnapshot {
        let inner = self.inner.read();
        let mut snap = inner.synopsis.registry().snapshot();
        let detail = inner.synopsis.query_cache().stats_detailed();
        for (name, k) in detail.kinds() {
            snap.set_counter(&format!("aqua_cache_{name}_hits_total"), k.hits);
            snap.set_counter(&format!("aqua_cache_{name}_misses_total"), k.misses);
        }
        for (i, s) in detail.shards.iter().enumerate() {
            let shard = i.to_string();
            snap.set_counter(
                &obs::label("aqua_cache_shard_hits_total", &[("shard", &shard)]),
                s.hits,
            );
            snap.set_counter(
                &obs::label("aqua_cache_shard_misses_total", &[("shard", &shard)]),
                s.misses,
            );
        }
        snap.set_counter("aqua_cache_invalidations_total", detail.invalidations);
        let total = detail.total();
        snap.set_counter("aqua_cache_hits_total", total.hits);
        snap.set_counter("aqua_cache_misses_total", total.misses);
        let plan = inner.synopsis.plan_cache().stats();
        snap.set_counter("aqua_plan_cache_hits_total", plan.hits);
        snap.set_counter("aqua_plan_cache_misses_total", plan.misses);
        snap.set_counter("aqua_plan_cache_invalidations_total", plan.invalidations);
        snap.set_gauge("aqua_plan_cache_entries", plan.entries as i64);
        snap.set_gauge(
            "aqua_plan_cache_hit_rate_permille",
            (plan.hit_rate() * 1000.0).round() as i64,
        );
        let ans = inner.synopsis.answer_cache().stats();
        snap.set_counter("aqua_answer_cache_hits_total", ans.hits);
        snap.set_counter("aqua_answer_cache_misses_total", ans.misses);
        snap.set_counter("aqua_answer_cache_invalidations_total", ans.invalidations);
        snap.set_gauge("aqua_answer_cache_entries", ans.entries as i64);
        snap.set_gauge(
            "aqua_answer_cache_hit_rate_permille",
            (ans.hit_rate() * 1000.0).round() as i64,
        );
        snap.set_gauge("aqua_table_rows", inner.table.row_count() as i64);
        snap.set_gauge("aqua_synopsis_rows", inner.synopsis.sample_rows() as i64);
        snap
    }

    /// Execute the query exactly against the stored table (what the
    /// warehouse itself would return, used for accuracy comparisons).
    pub fn exact(&self, query: &GroupByQuery) -> Result<QueryResult> {
        let inner = self.inner.read();
        Ok(execute_exact(&inner.table, query)?)
    }

    /// Insert new tuples into the warehouse. The synopsis maintainer sees
    /// each tuple once; the stored table grows; the physical plan is
    /// rebuilt lazily on the next query.
    pub fn insert_batch(&self, rows: &[Vec<Value>]) -> Result<()> {
        if rows.is_empty() {
            return Ok(());
        }
        let mut inner = self.inner.write();
        let mut builder = relation::RelationBuilder::from_schema(inner.table.schema());
        for row in rows {
            builder.push_row(row)?;
        }
        let batch = builder.finish();
        let first = inner.table.row_count();
        inner.synopsis.ingest(&batch, first)?;
        inner.table = Relation::concat(&[&inner.table, &batch])?;
        Ok(())
    }

    /// The Figure 2 pipeline in one call: parse SQL against the stored
    /// table's schema, answer it approximately, and return the answer
    /// along with the rewritten-SQL text the configured strategy would
    /// send to a back-end DBMS (Figures 8–11).
    ///
    /// This is the clone-per-call convenience wrapper around
    /// [`Self::answer_sql_shared`]; servers should call the shared form
    /// and keep the `Arc`.
    pub fn answer_sql(&self, sql: &str) -> Result<(ApproximateAnswer, String)> {
        let served = self.answer_sql_shared(sql)?;
        Ok((served.answer.clone(), served.rewritten.clone()))
    }

    /// The serving fast path: answer SQL through the plan cache and the
    /// answer cache, returning a shared [`ServedAnswer`].
    ///
    /// The SQL text is first normalized (case / whitespace / literal
    /// formatting folded — see [`engine::sql::normalize`]) and the
    /// normalized text is both the cache key *and* what gets parsed on a
    /// miss, so equivalent spellings share one plan and one answer.
    /// Repeat queries cost one hash probe + `Arc` bump; plans survive
    /// answer-cache invalidation only until the next ingest (both caches
    /// are generation-scoped, cleared under the write lock).
    pub fn answer_sql_shared(&self, sql: &str) -> Result<Arc<ServedAnswer>> {
        let timer = obs::Timer::start();
        if obs::ENABLED {
            self.metrics.sql_queries().inc();
        }
        let key = match engine::sql::normalize(sql) {
            Ok(k) => k,
            Err(e) => {
                if obs::ENABLED {
                    self.metrics.sql_parse_errors().inc();
                }
                return Err(e.into());
            }
        };
        // Hold the read lock across lookup, compute, AND insert: the guard
        // pins the synopsis generation, so a cached entry always matches
        // what recomputing now would return, and an insert can never land
        // after the invalidation of the generation it was computed in.
        let inner = self.read_fresh()?;
        if let Some(served) = inner.synopsis.answer_cache().get(&key) {
            if obs::ENABLED {
                self.metrics
                    .record_query(SERVED_ANSWER_CACHE, timer.elapsed_us(), 0);
            }
            return Ok(served);
        }
        let plan_cache = inner.synopsis.plan_cache();
        let plan = match plan_cache.get(&key) {
            Some(p) => p,
            None => {
                let query = match engine::sql::parse(inner.table.schema(), &key) {
                    Ok(q) => q,
                    Err(e) => {
                        if obs::ENABLED {
                            self.metrics.sql_parse_errors().inc();
                        }
                        return Err(e.into());
                    }
                };
                let kind = match inner.synopsis.config().rewrite {
                    crate::RewriteChoice::Integrated => {
                        engine::sql::render::RewriteKind::Integrated
                    }
                    crate::RewriteChoice::NestedIntegrated => {
                        engine::sql::render::RewriteKind::NestedIntegrated
                    }
                    crate::RewriteChoice::Normalized => {
                        engine::sql::render::RewriteKind::Normalized
                    }
                    crate::RewriteChoice::KeyNormalized => {
                        engine::sql::render::RewriteKind::KeyNormalized
                    }
                };
                let rewritten = engine::sql::render_rewritten(
                    &query,
                    inner.table.schema(),
                    kind,
                    "samp_rel",
                    "aux_rel",
                )?;
                plan_cache.insert(key.clone(), engine::CachedPlan { query, rewritten })
            }
        };
        let trace = ExecTrace::new();
        let result = self.answer_locked(
            &inner,
            &plan.query,
            if obs::ENABLED { Some(&trace) } else { None },
        );
        let answer = match result {
            Ok(a) => a,
            Err(e) => {
                if obs::ENABLED {
                    self.metrics.record_error();
                }
                return Err(e);
            }
        };
        if obs::ENABLED {
            let served = trace.served().map_or("unknown", |s| s.label());
            self.metrics
                .record_query(served, timer.elapsed_us(), trace.rows_scanned());
        }
        let served = Arc::new(ServedAnswer {
            answer,
            rewritten: plan.rewritten.clone(),
        });
        Ok(inner.synopsis.answer_cache().insert(key, served))
    }

    /// Parse SQL against the stored table's schema and execute it exactly
    /// — the warehouse-side ground truth for [`Self::answer_sql`].
    pub fn exact_sql(&self, sql: &str) -> Result<QueryResult> {
        let inner = self.inner.read();
        let query = engine::sql::parse(inner.table.schema(), sql)?;
        Ok(execute_exact(&inner.table, &query)?)
    }

    /// Export the synopsis as a compact binary snapshot (durable storage,
    /// shipping to another node, etc.).
    pub fn export_synopsis(&self) -> Result<bytes::Bytes> {
        let mut inner = self.inner.write();
        let Inner {
            table, synopsis, ..
        } = &mut *inner;
        synopsis.export(table)
    }

    /// Rebuild a system from a stored table plus an exported snapshot.
    /// The restored synopsis answers queries immediately; subsequent
    /// insertions start a fresh maintainer (snapshots carry the sample,
    /// not the sampler state).
    pub fn build_from_snapshot(
        table: Relation,
        config: AquaConfig,
        snapshot: bytes::Bytes,
    ) -> Result<Aqua> {
        let rewrite = config.rewrite.name();
        let synopsis = Synopsis::import(config, &table, snapshot)?;
        let grouping = synopsis.grouping().to_vec();
        let metrics = QueryMetrics::new(Arc::clone(synopsis.registry()), rewrite);
        Ok(Aqua {
            inner: RwLock::new(Inner {
                table,
                grouping,
                synopsis,
            }),
            metrics,
        })
    }

    /// Force a bulk *parallel* reconstruction of the synopsis from the
    /// stored table, on `config.parallelism` threads. Queries block for
    /// the duration (writer lock) and then see the new synopsis whole —
    /// never a partially rebuilt one. The maintainer keeps its stream
    /// state for future incremental refreshes.
    pub fn rebuild(&self) -> Result<()> {
        let mut inner = self.inner.write();
        let Inner {
            table, synopsis, ..
        } = &mut *inner;
        synopsis.rebuild_bulk(table)
    }

    /// Force a synopsis refresh now (normally lazy).
    pub fn refresh(&self) -> Result<()> {
        let mut inner = self.inner.write();
        let Inner {
            table, synopsis, ..
        } = &mut *inner;
        synopsis.refresh(table)
    }

    /// Refresh the synopsis if stale, with double-checked locking: the
    /// staleness probe under the read lock is cheap and concurrent, and
    /// the re-check under the write lock ensures that when many clients
    /// race past a stale probe, only the first refreshes (a refresh
    /// invalidates the query cache, so redundant refreshes would throw
    /// away a freshly warmed cache for nothing).
    fn refresh_if_stale(&self) -> Result<()> {
        if !self.inner.read().synopsis.is_stale() {
            return Ok(());
        }
        let mut inner = self.inner.write();
        if inner.synopsis.is_stale() {
            let Inner {
                table, synopsis, ..
            } = &mut *inner;
            synopsis.refresh(table)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{RewriteChoice, SamplingStrategy};
    use engine::AggregateSpec;
    use relation::{DataType, Expr, GroupKey, RelationBuilder};

    fn table(n: i64) -> Relation {
        let mut b = RelationBuilder::new()
            .column("g", DataType::Str)
            .column("v", DataType::Float);
        for i in 0..n {
            let g = match i % 10 {
                0 => "small",
                _ => "large",
            };
            b.push_row(&[Value::str(g), Value::from(10.0 + (i % 7) as f64)])
                .unwrap();
        }
        b.finish()
    }

    fn config() -> AquaConfig {
        AquaConfig {
            space: 100,
            strategy: SamplingStrategy::Congress,
            rewrite: RewriteChoice::NestedIntegrated,
            confidence: 0.9,
            seed: 4,
            parallelism: 0,
        }
    }

    fn count_query() -> GroupByQuery {
        GroupByQuery::new(vec![ColumnId(0)], vec![AggregateSpec::count("c")])
    }

    #[test]
    fn build_and_answer() {
        let aqua = Aqua::build(table(2000), vec![ColumnId(0)], config()).unwrap();
        assert_eq!(aqua.table_rows(), 2000);
        assert!(aqua.synopsis_rows() > 0);
        let ans = aqua.answer(&count_query()).unwrap();
        assert_eq!(ans.result.group_count(), 2);
        // COUNT estimates should be near 200 / 1800.
        let small = ans
            .result
            .get(&GroupKey::new(vec![Value::str("small")]))
            .unwrap()[0];
        assert!((small - 200.0).abs() < 80.0, "small count {small}");
        assert_eq!(ans.bounds.len(), 2);
    }

    #[test]
    fn answers_track_exact_within_bounds_often() {
        let aqua = Aqua::build(table(5000), vec![ColumnId(0)], config()).unwrap();
        let q = GroupByQuery::new(
            vec![ColumnId(0)],
            vec![AggregateSpec::avg(Expr::col(ColumnId(1)), "a")],
        );
        let approx = aqua.answer(&q).unwrap();
        let exact = aqua.exact(&q).unwrap();
        for (key, vals) in exact.iter() {
            let est = approx.result.get(key).unwrap()[0];
            // AVG of values in [10, 16]: estimate must land in-range and
            // close (bounded variables, decent sample).
            assert!((est - vals[0]).abs() < 2.0, "{key}: {est} vs {}", vals[0]);
        }
    }

    #[test]
    fn insert_batch_maintains_synopsis_lazily() {
        let aqua = Aqua::build(table(1000), vec![ColumnId(0)], config()).unwrap();
        let before = aqua.table_rows();
        // Insert a brand-new group.
        let rows: Vec<Vec<Value>> = (0..50)
            .map(|i| vec![Value::str("new_group"), Value::from(i as f64)])
            .collect();
        aqua.insert_batch(&rows).unwrap();
        assert_eq!(aqua.table_rows(), before + 50);
        // Next answer reflects the new group without an explicit refresh.
        let ans = aqua.answer(&count_query()).unwrap();
        let ng = ans
            .result
            .get(&GroupKey::new(vec![Value::str("new_group")]));
        assert!(ng.is_some(), "new group must appear in the answer");
    }

    #[test]
    fn empty_insert_is_noop() {
        let aqua = Aqua::build(table(100), vec![ColumnId(0)], config()).unwrap();
        aqua.insert_batch(&[]).unwrap();
        assert_eq!(aqua.table_rows(), 100);
    }

    #[test]
    fn build_rejects_bad_inputs() {
        assert!(Aqua::build(table(0).gather(&[]), vec![ColumnId(0)], config()).is_err());
        assert!(Aqua::build(table(10), vec![ColumnId(9)], config()).is_err());
        let mut c = config();
        c.space = 0;
        assert!(Aqua::build(table(10), vec![ColumnId(0)], c).is_err());
    }

    #[test]
    fn answer_sql_runs_figure2_pipeline() {
        let aqua = Aqua::build(table(3000), vec![ColumnId(0)], config()).unwrap();
        let (answer, rewritten) = aqua
            .answer_sql("SELECT g, COUNT(*) AS c FROM t GROUP BY g HAVING c > 100")
            .unwrap();
        assert_eq!(answer.result.group_count(), 2); // both groups exceed 100
                                                    // Rewritten SQL reflects the configured Nested-integrated plan.
        assert!(rewritten.contains("samp_rel"), "{rewritten}");
        assert!(rewritten.contains("SF"), "{rewritten}");
        // Bad SQL propagates a parse error.
        assert!(aqua.answer_sql("SELEKT oops").is_err());
        assert!(aqua
            .answer_sql("SELECT COUNT(*) FROM t WHERE nope = 1")
            .is_err());
    }

    #[test]
    fn exact_matches_engine() {
        let t = table(500);
        let aqua = Aqua::build(t.clone(), vec![ColumnId(0)], config()).unwrap();
        let q = count_query();
        let direct = execute_exact(&t, &q).unwrap();
        assert_eq!(aqua.exact(&q).unwrap(), direct);
    }
}
