//! The House strategy (§4.3): a uniform random sample of the relation —
//! each group's expected share is proportional to its population, like
//! seats in the U.S. House of Representatives.

use crate::alloc::{check_space, Allocation, AllocationStrategy};
use crate::census::GroupCensus;
use crate::error::Result;

/// Proportional (uniform-sampling) allocation.
#[derive(Debug, Clone, Copy, Default)]
pub struct House;

impl AllocationStrategy for House {
    fn name(&self) -> &'static str {
        "House"
    }

    fn allocate(&self, census: &GroupCensus, space: f64) -> Result<Allocation> {
        check_space(space)?;
        let n = census.total_rows() as f64;
        let targets = census
            .sizes()
            .iter()
            .map(|&ng| space * ng as f64 / n)
            .collect();
        Ok(Allocation::new(targets, 1.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::census::test_support::figure5_census;

    #[test]
    fn figure5_house_allocation() {
        // Paper Figure 5, House column: 30, 30, 15, 25 for X = 100.
        let c = figure5_census(1);
        let a = House.allocate(&c, 100.0).unwrap();
        let mut t = a.targets().to_vec();
        t.sort_by(f64::total_cmp);
        let expect = [15.0, 25.0, 30.0, 30.0];
        for (x, e) in t.iter().zip(expect) {
            assert!((x - e).abs() < 1e-9, "{x} vs {e}");
        }
        assert_eq!(a.scale_down_factor(), 1.0);
        assert!((a.total() - 100.0).abs() < 1e-9);
    }

    #[test]
    fn proportionality() {
        let c = figure5_census(10);
        let a = House.allocate(&c, 50.0).unwrap();
        for (t, &ng) in a.targets().iter().zip(c.sizes()) {
            assert!((t / 50.0 - ng as f64 / c.total_rows() as f64).abs() < 1e-12);
        }
    }

    #[test]
    fn rejects_bad_space() {
        let c = figure5_census(10);
        assert!(House.allocate(&c, 0.0).is_err());
    }
}
