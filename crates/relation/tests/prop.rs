//! Property tests over the storage layer: predicate path equivalence,
//! gather/concat algebra, and dictionary interning on arbitrary relations.

use proptest::prelude::*;
use relation::predicate::CmpOp;
use relation::{Column, ColumnId, DataType, Predicate, Relation, RelationBuilder, Value};

#[derive(Debug, Clone)]
struct Row {
    i: i64,
    f: f64,
    s: String,
    d: i32,
}

fn row_strategy() -> impl Strategy<Value = Row> {
    (
        -20i64..20,
        -100.0f64..100.0,
        prop_oneof![Just("aa"), Just("bb"), Just("cc"), Just("dd")],
        -50i32..50,
    )
        .prop_map(|(i, f, s, d)| Row {
            i,
            f,
            s: s.to_string(),
            d,
        })
}

fn relation_of(rows: &[Row]) -> Relation {
    let mut b = RelationBuilder::new()
        .column("i", DataType::Int)
        .column("f", DataType::Float)
        .column("s", DataType::Str)
        .column("d", DataType::Date);
    for r in rows {
        b.push_row(&[
            Value::Int(r.i),
            Value::from(r.f),
            Value::str(r.s.as_str()),
            Value::Date(r.d),
        ])
        .unwrap();
    }
    b.finish()
}

fn cmp_op_strategy() -> impl Strategy<Value = CmpOp> {
    prop_oneof![
        Just(CmpOp::Eq),
        Just(CmpOp::Ne),
        Just(CmpOp::Lt),
        Just(CmpOp::Le),
        Just(CmpOp::Gt),
        Just(CmpOp::Ge),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// The vectorized predicate path agrees with row-at-a-time evaluation
    /// for every column type and operator.
    #[test]
    fn predicate_paths_agree(
        rows in proptest::collection::vec(row_strategy(), 0..50),
        op in cmp_op_strategy(),
        int_lit in -25i64..25,
        float_lit in -110.0f64..110.0,
        str_lit in prop_oneof![Just("aa"), Just("cc"), Just("zz")],
        date_lit in -60i32..60,
    ) {
        let rel = relation_of(&rows);
        let preds = vec![
            Predicate::Cmp { col: ColumnId(0), op, value: Value::Int(int_lit) },
            Predicate::Cmp { col: ColumnId(1), op, value: Value::from(float_lit) },
            Predicate::Cmp { col: ColumnId(2), op, value: Value::str(str_lit) },
            Predicate::Cmp { col: ColumnId(3), op, value: Value::Date(date_lit) },
        ];
        for p in preds {
            let vectorized = p.eval(&rel).to_bools();
            let scalar: Vec<bool> = (0..rel.row_count()).map(|r| p.eval_row(&rel, r)).collect();
            prop_assert_eq!(vectorized, scalar, "mismatch for {}", p);
        }
    }

    /// Boolean combinators follow boolean algebra on the bitmaps.
    #[test]
    fn combinators_are_boolean_algebra(
        rows in proptest::collection::vec(row_strategy(), 1..50),
        t1 in -25i64..25,
        t2 in -110.0f64..110.0,
    ) {
        let rel = relation_of(&rows);
        let a = Predicate::ge(ColumnId(0), t1);
        let b = Predicate::le(ColumnId(1), t2);
        let and = a.clone().and(b.clone()).eval(&rel);
        let or = a.clone().or(b.clone()).eval(&rel);
        let na = a.clone().not().eval(&rel);
        let ea = a.eval(&rel);
        let eb = b.eval(&rel);
        for r in 0..rel.row_count() {
            prop_assert_eq!(and.get(r), ea.get(r) && eb.get(r));
            prop_assert_eq!(or.get(r), ea.get(r) || eb.get(r));
            prop_assert_eq!(na.get(r), !ea.get(r));
        }
    }

    /// gather(selected_rows(p)) contains exactly the rows satisfying p,
    /// in order — and re-filtering the gathered relation keeps everything.
    #[test]
    fn gather_filter_roundtrip(
        rows in proptest::collection::vec(row_strategy(), 0..50),
        threshold in -20i64..20,
    ) {
        let rel = relation_of(&rows);
        let p = Predicate::ge(ColumnId(0), threshold);
        let selected = p.selected_rows(&rel);
        let filtered = rel.gather(&selected);
        prop_assert_eq!(filtered.row_count(), selected.len());
        prop_assert!(p.eval(&filtered).all());
        prop_assert_eq!(p.selected_rows(&filtered).len(), filtered.row_count());
    }

    /// concat(split(R)) == R, value for value.
    #[test]
    fn concat_of_split_is_identity(
        rows in proptest::collection::vec(row_strategy(), 1..60),
        cut_frac in 0.0f64..1.0,
    ) {
        let rel = relation_of(&rows);
        let cut = ((rel.row_count() as f64) * cut_frac) as usize;
        let head: Vec<usize> = (0..cut).collect();
        let tail: Vec<usize> = (cut..rel.row_count()).collect();
        let a = rel.gather(&head);
        let b = rel.gather(&tail);
        let cat = Relation::concat(&[&a, &b]).unwrap();
        prop_assert_eq!(cat.row_count(), rel.row_count());
        for r in 0..rel.row_count() {
            for c in 0..rel.schema().width() {
                prop_assert_eq!(cat.value(r, ColumnId(c)), rel.value(r, ColumnId(c)));
            }
        }
    }

    /// String dictionaries stay consistent under gather: codes compact,
    /// values preserved.
    #[test]
    fn dictionary_consistent_under_gather(
        rows in proptest::collection::vec(row_strategy(), 1..60),
        pick in proptest::collection::vec(0usize..60, 0..40),
    ) {
        let rel = relation_of(&rows);
        let indices: Vec<usize> = pick.into_iter().filter(|&i| i < rel.row_count()).collect();
        let g = rel.gather(&indices);
        let col = g.column(ColumnId(2)).as_str().unwrap();
        // Dict has no more entries than rows, and decoding matches source.
        prop_assert!(col.dict_len() <= indices.len().max(1));
        for (out_r, &src_r) in indices.iter().enumerate() {
            prop_assert_eq!(g.value(out_r, ColumnId(2)), rel.value(src_r, ColumnId(2)));
        }
    }

    /// approx_bytes is monotone under concat.
    #[test]
    fn bytes_monotone_under_concat(
        rows in proptest::collection::vec(row_strategy(), 1..40),
    ) {
        let rel = relation_of(&rows);
        let doubled = Relation::concat(&[&rel, &rel]).unwrap();
        prop_assert!(doubled.approx_bytes() >= rel.approx_bytes());
    }
}

/// Deterministic check that a column built from typed values round-trips
/// through the generic Column API (not property-based: fixed exhaustive
/// small case).
#[test]
fn column_round_trip_all_types() {
    let cases: Vec<(DataType, Vec<Value>)> = vec![
        (DataType::Int, vec![Value::Int(1), Value::Int(-5)]),
        (DataType::Float, vec![Value::from(0.5), Value::from(-2.5)]),
        (DataType::Str, vec![Value::str("x"), Value::str("y")]),
        (DataType::Date, vec![Value::Date(3), Value::Date(-9)]),
    ];
    for (dt, values) in cases {
        let mut c = Column::empty(dt);
        for v in &values {
            c.push(v.clone()).unwrap();
        }
        for (r, v) in values.iter().enumerate() {
            assert_eq!(&c.value(r), v);
        }
    }
}
