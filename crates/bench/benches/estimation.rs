//! Criterion bench contrasting exact execution against sample execution —
//! the speedup that motivates approximate query answering — plus the cost
//! of error-bound computation.

use criterion::{criterion_group, criterion_main, Criterion};

use aqua::answer::compute_bounds;
use aqua::{RewriteChoice, SamplingStrategy};
use bench::harness::{build_plan, ExperimentSetup};
use congress::alloc::Congress;
use congress::CongressionalSample;
use engine::execute_exact;
use rand::rngs::StdRng;
use rand::SeedableRng;
use tpcd::GeneratorConfig;

fn bench_estimation(c: &mut Criterion) {
    let setup = ExperimentSetup::new(GeneratorConfig {
        table_size: 200_000,
        num_groups: 1000,
        group_skew: 0.86,
        agg_skew: 0.86,
        seed: 6,
    });

    c.bench_function("exact_qg2_200k", |b| {
        b.iter(|| execute_exact(&setup.dataset.relation, &setup.qg2).unwrap())
    });

    let plan = build_plan(
        &setup,
        SamplingStrategy::Congress,
        RewriteChoice::NestedIntegrated,
        0.07,
        9,
    );
    c.bench_function("approx_qg2_7pct", |b| {
        b.iter(|| plan.execute(&setup.qg2).unwrap())
    });

    // Bounds computation over the stratified input.
    let mut rng = StdRng::seed_from_u64(9);
    let sample = CongressionalSample::draw(
        &setup.dataset.relation,
        &setup.census,
        &Congress,
        14_000.0,
        &mut rng,
    )
    .unwrap();
    let input = sample.to_stratified_input(&setup.dataset.relation).unwrap();
    let result = plan.execute(&setup.qg2).unwrap();
    c.bench_function("bounds_qg2", |b| {
        b.iter(|| compute_bounds(&input, &setup.qg2, &result, 0.9).unwrap())
    });
}

criterion_group!(benches, bench_estimation);
criterion_main!(benches);
