//! CRC32C (Castagnoli) checksums for snapshot and warehouse integrity.
//!
//! The persistence layer guards every stored artifact — snapshot sections,
//! relation encodings, WAL records, and the warehouse manifest — with
//! CRC32C, the polynomial used by iSCSI, ext4, and most storage engines
//! (chosen for its superior burst-error detection over CRC32/IEEE). This
//! is a portable table-driven software implementation; it has no hardware
//! dependency and is more than fast enough for synopsis-sized payloads.

/// The Castagnoli polynomial, reflected.
const POLY: u32 = 0x82F6_3B78;

/// 8-bit lookup table, built at compile time.
const TABLE: [u32; 256] = build_table();

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ POLY
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

/// Streaming CRC32C state, for checksumming data produced in pieces.
#[derive(Debug, Clone, Copy)]
pub struct Crc32c(u32);

impl Crc32c {
    /// Fresh state.
    pub fn new() -> Crc32c {
        Crc32c(!0)
    }

    /// Fold `bytes` into the running checksum.
    pub fn update(&mut self, bytes: &[u8]) {
        let mut crc = self.0;
        for &b in bytes {
            crc = TABLE[((crc ^ b as u32) & 0xFF) as usize] ^ (crc >> 8);
        }
        self.0 = crc;
    }

    /// The final checksum value.
    pub fn finish(self) -> u32 {
        !self.0
    }
}

impl Default for Crc32c {
    fn default() -> Self {
        Crc32c::new()
    }
}

/// One-shot CRC32C of a byte slice.
pub fn crc32c(bytes: &[u8]) -> u32 {
    let mut c = Crc32c::new();
    c.update(bytes);
    c.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // RFC 3720 / iSCSI test vectors.
        assert_eq!(crc32c(b""), 0);
        assert_eq!(crc32c(b"123456789"), 0xE306_9283);
        assert_eq!(crc32c(&[0u8; 32]), 0x8A91_36AA);
        assert_eq!(crc32c(&[0xFFu8; 32]), 0x62A8_AB43);
    }

    #[test]
    fn streaming_matches_one_shot() {
        let data: Vec<u8> = (0..=255u8).cycle().take(1000).collect();
        let mut c = Crc32c::new();
        for chunk in data.chunks(7) {
            c.update(chunk);
        }
        assert_eq!(c.finish(), crc32c(&data));
    }

    #[test]
    fn detects_single_bit_flips() {
        let data = b"congressional samples".to_vec();
        let base = crc32c(&data);
        for byte in 0..data.len() {
            for bit in 0..8 {
                let mut flipped = data.clone();
                flipped[byte] ^= 1 << bit;
                assert_ne!(crc32c(&flipped), base, "flip at {byte}:{bit}");
            }
        }
    }
}
