//! The Basic Congress strategy (§4.5): per-group maximum of the House and
//! Senate allocations at the finest grouping, scaled down to the budget —
//! optimizing jointly for `T ∈ {∅, G}` only.

use rayon::prelude::*;

use crate::alloc::{check_space, scale_to_budget, Allocation, AllocationStrategy};
use crate::census::GroupCensus;
use crate::error::Result;

/// `c_g = X · max(n_g/|R|, 1/m) / Σ_j max(n_j/|R|, 1/m)` (§4.5).
#[derive(Debug, Clone, Copy, Default)]
pub struct BasicCongress;

impl AllocationStrategy for BasicCongress {
    fn name(&self) -> &'static str {
        "Basic Congress"
    }

    fn allocate(&self, census: &GroupCensus, space: f64) -> Result<Allocation> {
        check_space(space)?;
        let n = census.total_rows() as f64;
        let m = census.group_count() as f64;
        // Embarrassingly parallel per-group map; order preserved by the
        // parallel iterator, so results are identical to the sequential map.
        let raw: Vec<f64> = census
            .sizes()
            .par_iter()
            .map(|&ng| space * (ng as f64 / n).max(1.0 / m))
            .collect();
        Ok(scale_to_budget(raw, space))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::census::test_support::figure5_census;

    /// Match targets (sorted) against expectations within `tol`.
    fn assert_sorted_close(targets: &[f64], expect: &[f64], tol: f64) {
        let mut t = targets.to_vec();
        t.sort_by(f64::total_cmp);
        let mut e = expect.to_vec();
        e.sort_by(f64::total_cmp);
        for (x, y) in t.iter().zip(&e) {
            assert!((x - y).abs() < tol, "{t:?} vs {e:?}");
        }
    }

    #[test]
    fn figure5_before_and_after_scaling() {
        // Paper Figure 5: before scaling 30, 30, 25, 25 (sum 110);
        // after scaling 27.3, 27.3, 22.7, 22.7.
        let c = figure5_census(1);
        let a = BasicCongress.allocate(&c, 100.0).unwrap();
        assert!((a.scale_down_factor() - 100.0 / 110.0).abs() < 1e-9);
        assert_sorted_close(a.targets(), &[27.27, 27.27, 22.73, 22.73], 0.01);
        assert!((a.total() - 100.0).abs() < 1e-9);
    }

    #[test]
    fn dominates_pointwise_minimum_of_house_senate() {
        use crate::alloc::{House, Senate};
        let c = figure5_census(10);
        let x = 100.0;
        let bc = BasicCongress.allocate(&c, x).unwrap();
        let h = House.allocate(&c, x).unwrap();
        let s = Senate.allocate(&c, x).unwrap();
        // After scaling, each group still gets at least f·max(house, senate).
        let f = bc.scale_down_factor();
        for g in 0..c.group_count() {
            let ideal = h.targets()[g].max(s.targets()[g]);
            assert!(bc.targets()[g] >= f * ideal - 1e-9);
        }
    }

    #[test]
    fn uniform_groups_mean_no_scaling() {
        use relation::{ColumnId, GroupKey, Value};
        let keys = (0..4).map(|i| GroupKey::new(vec![Value::Int(i)])).collect();
        let c =
            crate::census::GroupCensus::from_counts(vec![ColumnId(0)], keys, vec![100; 4]).unwrap();
        let a = BasicCongress.allocate(&c, 40.0).unwrap();
        assert_eq!(a.scale_down_factor(), 1.0);
        assert_eq!(a.targets(), &[10.0; 4]);
    }
}
