//! Distributions: the `Standard` distribution behind `Rng::gen`, and the
//! uniform-range machinery behind `Rng::gen_range`.

use crate::Rng;

/// A distribution over values of type `T`.
pub trait Distribution<T> {
    /// Sample one value.
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> T;
}

/// The "natural" distribution for a type: uniform over the full domain for
/// integers and `bool`, uniform in `[0, 1)` for floats.
#[derive(Clone, Copy, Debug, Default)]
pub struct Standard;

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Distribution<$t> for Standard {
            fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Distribution<bool> for Standard {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Distribution<f64> for Standard {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        // 53 high bits → uniform in [0, 1) with full double precision.
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Distribution<f32> for Standard {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f32 {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

pub mod uniform {
    //! Range sampling for `Rng::gen_range`.

    use crate::Rng;
    use std::ops::{Range, RangeInclusive};

    /// A range that can produce uniform samples of `T`.
    pub trait SampleRange<T> {
        /// Draw one uniform sample from the range.
        fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> T;
    }

    /// Unbiased uniform integer in `[0, span)` via Lemire's widening
    /// multiply with rejection.
    fn uniform_u64<R: Rng + ?Sized>(rng: &mut R, span: u64) -> u64 {
        debug_assert!(span > 0);
        let mut x = rng.next_u64();
        let mut m = (x as u128) * (span as u128);
        let mut lo = m as u64;
        if lo < span {
            let threshold = span.wrapping_neg() % span;
            while lo < threshold {
                x = rng.next_u64();
                m = (x as u128) * (span as u128);
                lo = m as u64;
            }
        }
        (m >> 64) as u64
    }

    macro_rules! impl_int_range {
        ($($t:ty => $wide:ty),*) => {$(
            impl SampleRange<$t> for Range<$t> {
                fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                    assert!(self.start < self.end, "empty range in gen_range");
                    let span = (self.end as $wide).wrapping_sub(self.start as $wide) as u64;
                    self.start.wrapping_add(uniform_u64(rng, span) as $t)
                }
            }
            impl SampleRange<$t> for RangeInclusive<$t> {
                fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "empty inclusive range in gen_range");
                    let span = (end as $wide).wrapping_sub(start as $wide) as u64;
                    if span == u64::MAX {
                        return rng.next_u64() as $t;
                    }
                    start.wrapping_add(uniform_u64(rng, span + 1) as $t)
                }
            }
        )*};
    }
    impl_int_range!(
        u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
        i8 => i64, i16 => i64, i32 => i64, i64 => i64, isize => i64
    );

    /// Uniform in [0, 1) with 53 bits of precision.
    fn unit_f64<R: Rng + ?Sized>(rng: &mut R) -> f64 {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    macro_rules! impl_float_range {
        ($($t:ty),*) => {$(
            impl SampleRange<$t> for Range<$t> {
                fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                    assert!(self.start < self.end, "empty range in gen_range");
                    let u = unit_f64(rng);
                    let v = self.start as f64 + u * (self.end as f64 - self.start as f64);
                    // Guard against rounding up to the excluded endpoint.
                    if v >= self.end as f64 { <$t>::from_bits((self.end as $t).to_bits() - 1) } else { v as $t }
                }
            }
            impl SampleRange<$t> for RangeInclusive<$t> {
                fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "empty inclusive range in gen_range");
                    let u = unit_f64(rng);
                    (start as f64 + u * (end as f64 - start as f64)) as $t
                }
            }
        )*};
    }
    impl_float_range!(f32, f64);
}
