//! Crash-safety and corruption-recovery sweeps over the warehouse
//! persistence subsystem, driven by deterministic fault injection.

use aqua::{
    AnswerProvenance, AquaConfig, RecoveryPolicy, RelationStatus, SamplingStrategy, Warehouse,
};
use congress::{Fault, FaultyStore, MemStore, SnapshotStore};
use engine::{AggregateSpec, GroupByQuery};
use relation::{ColumnId, DataType, GroupKey, Relation, RelationBuilder, Value};

fn sales(n: i64) -> Relation {
    let mut b = RelationBuilder::new()
        .column("region", DataType::Str)
        .column("amount", DataType::Float);
    for i in 0..n {
        b.push_row(&[
            Value::str(if i % 4 == 0 { "east" } else { "west" }),
            Value::from((i % 50) as f64),
        ])
        .unwrap();
    }
    b.finish()
}

fn returns(n: i64) -> Relation {
    let mut b = RelationBuilder::new()
        .column("reason", DataType::Str)
        .column("qty", DataType::Int);
    for i in 0..n {
        b.push_row(&[
            Value::str(if i % 5 == 0 { "damaged" } else { "unwanted" }),
            Value::Int(1 + i % 3),
        ])
        .unwrap();
    }
    b.finish()
}

fn config() -> AquaConfig {
    AquaConfig {
        space: 60,
        strategy: SamplingStrategy::Congress,
        seed: 7,
        ..AquaConfig::default()
    }
}

fn count_query() -> GroupByQuery {
    GroupByQuery::new(vec![ColumnId(0)], vec![AggregateSpec::count("c")])
}

/// Build a two-relation warehouse, save it to `store` (generation 1), and
/// durably log one extra insert so a WAL exists.
fn seeded_warehouse(store: &MemStore) -> (Warehouse, f64) {
    let w = Warehouse::new();
    let t = sales(400);
    let grouping = t.schema().column_ids(&["region"]).unwrap();
    w.register("sales", t, grouping, config()).unwrap();
    let r = returns(200);
    let grouping = r.schema().column_ids(&["reason"]).unwrap();
    w.register("returns", r, grouping, config()).unwrap();
    w.save_all(store).unwrap();
    w.insert_logged(
        store,
        "sales",
        &[vec![Value::str("east"), Value::from(1.0)]],
    )
    .unwrap();
    let exact = w.exact("sales", &count_query()).unwrap();
    let total: f64 = exact.iter().map(|(_, v)| v[0]).sum();
    (w, total)
}

fn exact_total(w: &Warehouse, name: &str) -> f64 {
    w.exact(name, &count_query())
        .unwrap()
        .iter()
        .map(|(_, v)| v[0])
        .sum()
}

fn copy_store(src: &MemStore) -> MemStore {
    let dst = MemStore::new();
    for key in src.list().unwrap() {
        dst.put(&key, &src.get(&key).unwrap()).unwrap();
    }
    dst
}

/// The acceptance sweep: inject a clean failure at *every* store
/// operation index during `save_all`. Whatever the failure point, the
/// on-store warehouse must be fully the old generation or fully the new
/// one: `open` always succeeds, every relation comes back healthy, and no
/// row — including the WAL-logged insert — is lost.
#[test]
fn kill_the_writer_at_every_op() {
    // Dry run to learn how many store ops a save issues.
    let store = MemStore::new();
    let (w, expected_rows) = seeded_warehouse(&store);
    let probe = FaultyStore::new(copy_store(&store), Fault::FailAt { op: u64::MAX });
    w.save_all(&probe).unwrap();
    let total_ops = probe.ops();
    assert!(total_ops >= 5, "save of 2 relations must take several ops");

    for fail_at in 0..total_ops {
        let store = MemStore::new();
        let (w, expected_rows) = seeded_warehouse(&store);
        let faulty = FaultyStore::new(store, Fault::FailAt { op: fail_at });
        let _ = w.save_all(&faulty); // may or may not error; disk state is what matters
        let disk = faulty.into_inner();

        let (recovered, report) = Warehouse::open(&disk, RecoveryPolicy::Rebuild)
            .unwrap_or_else(|e| panic!("open failed after crash at op {fail_at}: {e}"));
        assert!(
            report.generation == 1 || report.generation == 2,
            "crash at op {fail_at}: generation {}",
            report.generation
        );
        for r in &report.relations {
            assert_eq!(
                r.status,
                RelationStatus::Healthy,
                "crash at op {fail_at}: relation {} not healthy: {:?}",
                r.name,
                r.status
            );
            assert_eq!(r.wal_bytes_dropped, 0, "crash at op {fail_at}");
        }
        assert_eq!(
            exact_total(&recovered, "sales"),
            expected_rows,
            "crash at op {fail_at} lost rows"
        );
        let ans = recovered.answer("sales", &count_query()).unwrap();
        assert!(!ans.is_degraded(), "crash at op {fail_at}");
    }
    let _ = expected_rows;
}

/// Flip a bit at many offsets of the synopsis blob. Every corruption must
/// be detected at open; under `Degrade` the relation serves exact answers
/// with `ExactFallback` provenance and the bad blob lands in quarantine,
/// under `Rebuild` it comes back sampled.
#[test]
fn bit_flip_in_snapshot_quarantines_and_recovers() {
    let pristine = MemStore::new();
    let (w, expected_rows) = seeded_warehouse(&pristine);
    let _ = &w;
    let snap_key = pristine
        .list()
        .unwrap()
        .into_iter()
        .find(|k| k.contains("rel-sales") && k.contains("synopsis"))
        .unwrap();
    let snap = pristine.get(&snap_key).unwrap();

    let offsets: Vec<usize> = (0..snap.len())
        .step_by(13)
        .chain([snap.len() - 1])
        .collect();
    for &off in &offsets {
        let store = copy_store(&pristine);
        let mut bad = snap.clone();
        bad[off] ^= 0x10;
        store.put(&snap_key, &bad).unwrap();

        let (w2, report) = Warehouse::open(&store, RecoveryPolicy::Degrade).unwrap();
        let sales_report = report.relations.iter().find(|r| r.name == "sales").unwrap();
        assert!(
            matches!(sales_report.status, RelationStatus::Degraded { .. }),
            "flip at byte {off}: {:?}",
            sales_report.status
        );
        // The corrupt blob was quarantined, not left in place.
        assert!(!store.exists(&snap_key).unwrap(), "flip at byte {off}");
        assert!(store.exists(&format!("quarantine/{snap_key}")).unwrap());
        // Degraded answers are exact and say so.
        let ans = w2.answer("sales", &count_query()).unwrap();
        assert!(
            matches!(ans.provenance, AnswerProvenance::ExactFallback { .. }),
            "flip at byte {off}"
        );
        let total: f64 = ans.result.iter().map(|(_, v)| v[0]).sum();
        assert_eq!(total, expected_rows, "flip at byte {off}");
        assert_eq!(w2.degraded_relations().len(), 1);
        // The healthy relation is unaffected.
        assert!(!w2.answer("returns", &count_query()).unwrap().is_degraded());
    }

    // Same corruption under Rebuild: full service restored from the table.
    let store = copy_store(&pristine);
    let mut bad = snap.clone();
    bad[snap.len() / 2] ^= 0x01;
    store.put(&snap_key, &bad).unwrap();
    let (w2, report) = Warehouse::open(&store, RecoveryPolicy::Rebuild).unwrap();
    let sales_report = report.relations.iter().find(|r| r.name == "sales").unwrap();
    assert!(matches!(
        sales_report.status,
        RelationStatus::Rebuilt {
            quarantined: Some(_)
        }
    ));
    let ans = w2.answer("sales", &count_query()).unwrap();
    assert!(!ans.is_degraded());
    assert!(w2.system("sales").is_ok());
}

/// A corrupt *base table* cannot be recovered from this store: the
/// relation is reported lost (and quarantined), while the rest of the
/// warehouse still opens.
#[test]
fn corrupt_table_is_lost_but_warehouse_opens() {
    let store = MemStore::new();
    let (_w, _) = seeded_warehouse(&store);
    let table_key = store
        .list()
        .unwrap()
        .into_iter()
        .find(|k| k.contains("rel-returns") && k.contains("table"))
        .unwrap();
    let mut bytes = store.get(&table_key).unwrap();
    bytes[7] ^= 0xFF;
    store.put(&table_key, &bytes).unwrap();

    let (w2, report) = Warehouse::open(&store, RecoveryPolicy::Rebuild).unwrap();
    let lost = report
        .relations
        .iter()
        .find(|r| r.name == "returns")
        .unwrap();
    assert!(matches!(lost.status, RelationStatus::Lost { .. }));
    assert!(store.exists(&format!("quarantine/{table_key}")).unwrap());
    assert!(w2.answer("returns", &count_query()).is_err());
    assert!(w2.answer("sales", &count_query()).is_ok());
}

/// A torn manifest write (non-atomic store) is detected — open refuses
/// loudly instead of serving a half-written catalog.
#[test]
fn torn_manifest_is_detected() {
    let store = MemStore::new();
    let (w, _) = seeded_warehouse(&store);
    // Manifest is the last put of save_all: relations sorted -> returns
    // (table, synopsis), sales (table, synopsis), manifest = op 4.
    let faulty = FaultyStore::new(store, Fault::TruncateAt { op: 4, keep: 40 });
    w.save_all(&faulty).unwrap(); // torn write reports success
    assert!(faulty.fired(), "fault must have hit the manifest put");
    let disk = faulty.into_inner();
    let err = match Warehouse::open(&disk, RecoveryPolicy::Rebuild) {
        Err(e) => e,
        Ok(_) => panic!("open must reject a torn manifest"),
    };
    assert!(err.to_string().contains("manifest"), "{err}");
}

/// Running out of space mid-save fails cleanly and leaves the previous
/// generation fully intact.
#[test]
fn enospc_leaves_old_generation_intact() {
    let store = MemStore::new();
    let (w, expected_rows) = seeded_warehouse(&store);
    let faulty = FaultyStore::new(store, Fault::Enospc { byte_budget: 512 });
    assert!(w.save_all(&faulty).is_err());
    let disk = faulty.into_inner();
    let (w2, report) = Warehouse::open(&disk, RecoveryPolicy::Rebuild).unwrap();
    assert_eq!(report.generation, 1);
    assert_eq!(exact_total(&w2, "sales"), expected_rows);
}

/// A torn WAL tail is dropped and truncated in-store; intact records
/// before the tear still replay.
#[test]
fn torn_wal_tail_is_truncated() {
    let store = MemStore::new();
    let (w, expected_rows) = seeded_warehouse(&store);
    w.insert_logged(
        &store,
        "sales",
        &[vec![Value::str("west"), Value::from(2.0)]],
    )
    .unwrap();
    let wal_key = store
        .list()
        .unwrap()
        .into_iter()
        .find(|k| k.contains("rel-sales") && k.contains("wal"))
        .unwrap();
    let wal = store.get(&wal_key).unwrap();
    // Tear off the last 3 bytes (mid-record) — models a crash mid-append.
    store.put(&wal_key, &wal[..wal.len() - 3]).unwrap();

    let (w2, report) = Warehouse::open(&store, RecoveryPolicy::Rebuild).unwrap();
    let sales_report = report.relations.iter().find(|r| r.name == "sales").unwrap();
    assert_eq!(sales_report.wal_records_replayed, 1);
    assert!(sales_report.wal_bytes_dropped > 0);
    // First logged insert survives; the torn second one is gone.
    assert_eq!(exact_total(&w2, "sales"), expected_rows);
    // The tail was physically truncated: a later open sees a clean WAL.
    let (_, report) = Warehouse::open(&store, RecoveryPolicy::Rebuild).unwrap();
    let sales_report = report.relations.iter().find(|r| r.name == "sales").unwrap();
    assert_eq!(sales_report.wal_bytes_dropped, 0);
}

/// `repair` after corruption writes a fresh, fully verifiable generation
/// and restores sampled service.
#[test]
fn repair_restores_full_service() {
    let store = MemStore::new();
    let (_w, expected_rows) = seeded_warehouse(&store);
    let snap_key = store
        .list()
        .unwrap()
        .into_iter()
        .find(|k| k.contains("rel-sales") && k.contains("synopsis"))
        .unwrap();
    let mut bytes = store.get(&snap_key).unwrap();
    bytes[3] ^= 0x02;
    store.put(&snap_key, &bytes).unwrap();
    assert!(!Warehouse::verify(&store).unwrap().ok);

    let (w2, open_report, save_report) =
        Warehouse::repair(&store, RecoveryPolicy::Rebuild).unwrap();
    assert!(open_report
        .relations
        .iter()
        .any(|r| matches!(r.status, RelationStatus::Rebuilt { .. })));
    assert_eq!(save_report.generation, 2);
    let verify = Warehouse::verify(&store).unwrap();
    assert!(verify.ok, "{:?}", verify.lines);
    let ans = w2.answer("sales", &count_query()).unwrap();
    assert!(!ans.is_degraded());
    assert_eq!(exact_total(&w2, "sales"), expected_rows);
}

/// Degraded relations keep accepting inserts and serving exact group-bys.
#[test]
fn degraded_mode_still_serves_and_grows() {
    let store = MemStore::new();
    let (_w, expected_rows) = seeded_warehouse(&store);
    let snap_key = store
        .list()
        .unwrap()
        .into_iter()
        .find(|k| k.contains("rel-sales") && k.contains("synopsis"))
        .unwrap();
    store.delete(&snap_key).unwrap();

    let (w2, _) = Warehouse::open(&store, RecoveryPolicy::Degrade).unwrap();
    assert_eq!(w2.degraded_relations().len(), 1);
    w2.insert("sales", &[vec![Value::str("north"), Value::from(9.0)]])
        .unwrap();
    let ans = w2.answer("sales", &count_query()).unwrap();
    assert!(ans.is_degraded());
    assert!(ans.to_string().contains("degraded"));
    let north = ans
        .result
        .get(&GroupKey::new(vec![Value::str("north")]))
        .unwrap();
    assert_eq!(north[0], 1.0);
    let total: f64 = ans.result.iter().map(|(_, v)| v[0]).sum();
    assert_eq!(total, expected_rows + 1.0);
    // Saving a degraded warehouse records `snapshot=-`; reopening under
    // Rebuild restores sampled service from the saved table.
    w2.save_all(&store).unwrap();
    let (w3, report) = Warehouse::open(&store, RecoveryPolicy::Rebuild).unwrap();
    assert!(report
        .relations
        .iter()
        .any(|r| r.status == RelationStatus::Rebuilt { quarantined: None }));
    assert!(!w3.answer("sales", &count_query()).unwrap().is_degraded());
    assert_eq!(exact_total(&w3, "sales"), expected_rows + 1.0);
}
