//! Error type for the congress crate.

use std::fmt;

use engine::EngineError;
use relation::RelationError;

/// Convenience alias used throughout the crate.
pub type Result<T> = std::result::Result<T, CongressError>;

/// Errors produced by census construction, allocation, and sampling.
#[derive(Debug, Clone, PartialEq)]
pub enum CongressError {
    /// Underlying storage/schema error.
    Relation(RelationError),
    /// Underlying engine error.
    Engine(EngineError),
    /// The requested sample space was not positive.
    InvalidSpace(f64),
    /// A census was used with a relation it was not built from.
    CensusMismatch(String),
    /// The relation has no rows to sample.
    EmptyRelation,
    /// A workload/criteria specification was malformed.
    InvalidSpec(String),
    /// A stored snapshot failed validation (bad magic, torn bytes,
    /// checksum mismatch, hostile length fields).
    CorruptSnapshot(String),
    /// The durable store failed an operation.
    Store(crate::store::StoreError),
}

impl fmt::Display for CongressError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CongressError::Relation(e) => write!(f, "relation error: {e}"),
            CongressError::Engine(e) => write!(f, "engine error: {e}"),
            CongressError::InvalidSpace(x) => {
                write!(f, "sample space must be positive, got {x}")
            }
            CongressError::CensusMismatch(m) => write!(f, "census mismatch: {m}"),
            CongressError::EmptyRelation => write!(f, "cannot sample an empty relation"),
            CongressError::InvalidSpec(m) => write!(f, "invalid specification: {m}"),
            CongressError::CorruptSnapshot(m) => write!(f, "corrupt snapshot: {m}"),
            CongressError::Store(e) => write!(f, "store error: {e}"),
        }
    }
}

impl std::error::Error for CongressError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CongressError::Relation(e) => Some(e),
            CongressError::Engine(e) => Some(e),
            CongressError::Store(e) => Some(e),
            _ => None,
        }
    }
}

impl From<RelationError> for CongressError {
    fn from(e: RelationError) -> Self {
        CongressError::Relation(e)
    }
}

impl From<crate::store::StoreError> for CongressError {
    fn from(e: crate::store::StoreError) -> Self {
        CongressError::Store(e)
    }
}

impl From<EngineError> for CongressError {
    fn from(e: EngineError) -> Self {
        CongressError::Engine(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_display() {
        let e: CongressError = RelationError::UnknownColumn("c".into()).into();
        assert!(e.to_string().contains("c"));
        let e: CongressError = EngineError::NoAggregates.into();
        assert!(e.to_string().contains("engine"));
        assert!(CongressError::InvalidSpace(-1.0).to_string().contains("-1"));
        assert!(std::error::Error::source(&CongressError::EmptyRelation).is_none());
        let e = CongressError::CorruptSnapshot("torn".into());
        assert!(e.to_string().contains("corrupt snapshot"));
        let e: CongressError = crate::store::StoreError {
            op: "put".into(),
            key: "k".into(),
            message: "boom".into(),
        }
        .into();
        assert!(e.to_string().contains("boom"));
        assert!(std::error::Error::source(&e).is_some());
    }
}
