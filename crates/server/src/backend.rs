//! The serving abstraction the HTTP layer talks to.
//!
//! [`QueryBackend`] is the whole surface the reactor needs: answer SQL,
//! snapshot metrics. [`Aqua`] (one relation) and [`Warehouse`] (many)
//! implement it for production; tests implement it with mocks — a
//! deliberately *blocking* backend is how the load-shed path is exercised
//! without timing games.

use std::sync::Arc;

use aqua::{Aqua, AquaError, ServedAnswer, Warehouse};

/// Why a query could not be answered, split by who is at fault: a
/// [`BadRequest`](BackendError::BadRequest) maps to HTTP 4xx (malformed
/// SQL, unknown relation/column), an [`Internal`](BackendError::Internal)
/// to 500.
#[derive(Debug, Clone, PartialEq)]
pub enum BackendError {
    /// The request is at fault; the message is safe to echo to the client.
    BadRequest(String),
    /// The server is at fault.
    Internal(String),
}

impl BackendError {
    /// The HTTP status this error maps to.
    pub fn status(&self) -> u16 {
        match self {
            BackendError::BadRequest(_) => 400,
            BackendError::Internal(_) => 500,
        }
    }

    /// The client-visible message.
    pub fn message(&self) -> &str {
        match self {
            BackendError::BadRequest(m) | BackendError::Internal(m) => m,
        }
    }
}

fn classify(e: AquaError) -> BackendError {
    match e {
        // Parse errors, unknown columns, unsupported shapes: the query is
        // at fault.
        AquaError::Engine(_) | AquaError::Relation(_) => BackendError::BadRequest(e.to_string()),
        _ => BackendError::Internal(e.to_string()),
    }
}

/// What the HTTP front end requires of a query answering system.
pub trait QueryBackend: Send + Sync + 'static {
    /// Answer `sql` against `relation` (`None` means the backend's
    /// default). Runs on a worker thread; blocking here blocks one worker,
    /// not the reactor.
    fn answer_sql(
        &self,
        relation: Option<&str>,
        sql: &str,
    ) -> Result<Arc<ServedAnswer>, BackendError>;

    /// Point-in-time metrics snapshot (rendered as JSON by `/stats` and
    /// Prometheus text by `/metrics`).
    fn stats(&self) -> obs::Snapshot;
}

impl QueryBackend for Aqua {
    fn answer_sql(
        &self,
        relation: Option<&str>,
        sql: &str,
    ) -> Result<Arc<ServedAnswer>, BackendError> {
        // A single-relation backend: any relation name is "the" relation.
        let _ = relation;
        self.answer_sql_shared(sql).map_err(classify)
    }

    fn stats(&self) -> obs::Snapshot {
        self.stats()
    }
}

impl QueryBackend for Warehouse {
    fn answer_sql(
        &self,
        relation: Option<&str>,
        sql: &str,
    ) -> Result<Arc<ServedAnswer>, BackendError> {
        let name = match relation {
            Some(n) => n,
            None => {
                return Err(BackendError::BadRequest(
                    "a warehouse backend requires a \"relation\" field".into(),
                ))
            }
        };
        Warehouse::answer_sql(self, name, sql).map_err(|e| match e {
            // `Warehouse::serving` reports unknown relations as
            // InvalidConfig — from the API's point of view that's the
            // client's mistake.
            AquaError::InvalidConfig(m) if m.starts_with("unknown relation") => {
                BackendError::BadRequest(m)
            }
            other => classify(other),
        })
    }

    fn stats(&self) -> obs::Snapshot {
        self.stats()
    }
}
