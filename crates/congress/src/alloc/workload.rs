//! Workload-weighted allocation (§4.7): when relative preferences between
//! groupings and groups are known, each group `h` under grouping `T`
//! carries a preference `r_h`, and each finest subgroup `g ⊆ h` is
//! allocated `X · r_h · n_g / n_h`, maximized over all `(T, h)` containing
//! it and scaled down to the budget.

use std::collections::HashMap;

use rayon::prelude::*;
use relation::GroupKey;

use crate::alloc::{check_space, scale_to_budget, Allocation, AllocationStrategy};
use crate::census::GroupCensus;
use crate::error::{CongressError, Result};
use crate::lattice::Grouping;

/// Preferences for one grouping `T`: a relative weight per super-group key.
/// Groups absent from the map carry weight zero (no interest).
#[derive(Debug, Clone)]
pub struct GroupingPreference {
    /// The grouping the preferences apply to.
    pub grouping: Grouping,
    /// `r_h` per super-group key under that grouping.
    pub weights: HashMap<GroupKey, f64>,
}

/// The §4.7 strategy, parameterized by per-grouping group preferences.
#[derive(Debug, Clone, Default)]
pub struct WorkloadWeighted {
    preferences: Vec<GroupingPreference>,
}

impl WorkloadWeighted {
    /// Build from explicit preferences. At least one preference with a
    /// positive weight is required.
    pub fn new(preferences: Vec<GroupingPreference>) -> Result<Self> {
        let any_positive = preferences
            .iter()
            .flat_map(|p| p.weights.values())
            .any(|&w| w > 0.0);
        if !any_positive {
            return Err(CongressError::InvalidSpec(
                "workload preferences must include at least one positive weight".into(),
            ));
        }
        if let Some(w) = preferences
            .iter()
            .flat_map(|p| p.weights.values())
            .find(|&&w| w < 0.0 || !w.is_finite())
        {
            return Err(CongressError::InvalidSpec(format!(
                "preference weights must be finite and non-negative, got {w}"
            )));
        }
        Ok(WorkloadWeighted { preferences })
    }

    /// Derive preferences from an observed query workload (the footnote-5
    /// direction: "automatically extract this information from a query
    /// workload"). Each query contributes one unit of interest to its
    /// grouping `T`, spread equally over `T`'s non-empty groups (strategy
    /// S1 applied per grouping, weighted by how often the grouping is
    /// asked). Queries grouping on columns outside the census's `G` are
    /// ignored — they cannot be served by this sample anyway.
    pub fn from_query_mix(
        census: &GroupCensus,
        groupings: &[Vec<relation::ColumnId>],
    ) -> Result<Self> {
        use std::collections::hash_map::Entry;
        let mut freq: HashMap<Grouping, f64> = HashMap::new();
        let positions_of = |cols: &[relation::ColumnId]| -> Option<Vec<usize>> {
            cols.iter()
                .map(|c| census.grouping_columns().iter().position(|g| g == c))
                .collect()
        };
        let mut covered = 0usize;
        for cols in groupings {
            let Some(positions) = positions_of(cols) else {
                continue;
            };
            covered += 1;
            *freq
                .entry(Grouping::from_positions(&positions))
                .or_insert(0.0) += 1.0;
        }
        if covered == 0 {
            return Err(CongressError::InvalidSpec(
                "no query in the mix groups on the census's dimensional columns".into(),
            ));
        }
        let mut preferences = Vec::with_capacity(freq.len());
        for (grouping, f) in freq {
            let positions = grouping.positions();
            let mut weights = HashMap::new();
            for key in census.keys() {
                let hkey = key.project(&positions);
                if let Entry::Vacant(e) = weights.entry(hkey) {
                    e.insert(f);
                }
            }
            preferences.push(GroupingPreference { grouping, weights });
        }
        WorkloadWeighted::new(preferences)
    }

    /// Uniform interest in every group of a single grouping `T` — recovers
    /// Senate on `T` when it is the only preference.
    pub fn uniform_on(census: &GroupCensus, grouping: Grouping) -> Self {
        let view = census.supergroups(grouping);
        let positions = grouping.positions();
        let mut weights = HashMap::new();
        for (g, key) in census.keys().iter().enumerate() {
            let hkey = key.project(&positions);
            let _ = view.supergroup_of[g];
            weights.entry(hkey).or_insert(1.0);
        }
        WorkloadWeighted {
            preferences: vec![GroupingPreference { grouping, weights }],
        }
    }
}

impl AllocationStrategy for WorkloadWeighted {
    fn name(&self) -> &'static str {
        "Workload-weighted"
    }

    fn allocate(&self, census: &GroupCensus, space: f64) -> Result<Allocation> {
        check_space(space)?;
        let k = census.attribute_count();
        let full = Grouping::full(k);
        for pref in &self.preferences {
            if !pref.grouping.is_subset_of(full) {
                return Err(CongressError::InvalidSpec(format!(
                    "preference grouping {:?} not a subset of G",
                    pref.grouping
                )));
            }
        }

        let m = census.group_count();
        // Parallel over preferences: each yields an independent per-group
        // candidate vector; the elementwise max is exact and
        // order-independent, so the result matches the sequential fold.
        let raw = self
            .preferences
            .par_iter()
            .map(|pref| {
                let view = census.supergroups(pref.grouping);
                let positions = pref.grouping.positions();
                view.supergroup_of
                    .iter()
                    .enumerate()
                    .map(|(g, &h)| {
                        let hkey = census.keys()[g].project(&positions);
                        let r = pref.weights.get(&hkey).copied().unwrap_or(0.0);
                        if r <= 0.0 {
                            return 0.0;
                        }
                        // SampleSize(g) candidate: X · r_h · n_g / n_h
                        space * r * census.sizes()[g] as f64 / view.sizes[h as usize] as f64
                    })
                    .collect::<Vec<f64>>()
            })
            .reduce(
                || vec![0.0f64; m],
                |mut a, b| {
                    for (x, y) in a.iter_mut().zip(b) {
                        if y > *x {
                            *x = y;
                        }
                    }
                    a
                },
            );
        Ok(scale_to_budget(raw, space))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alloc::Senate;
    use crate::census::test_support::figure5_census;
    use relation::Value;

    #[test]
    fn uniform_on_finest_matches_senate_shape() {
        let c = figure5_census(10);
        let w = WorkloadWeighted::uniform_on(&c, Grouping::full(2));
        let a = w.allocate(&c, 100.0).unwrap();
        let s = Senate.allocate(&c, 100.0).unwrap();
        // Proportions match Senate (weights are relative).
        let ratio = a.targets()[0] / s.targets()[0];
        for (x, y) in a.targets().iter().zip(s.targets()) {
            assert!((x / y - ratio).abs() < 1e-9);
        }
    }

    #[test]
    fn skewed_preference_biases_group() {
        let c = figure5_census(10);
        // Prefer a2 nine times more than a1 when grouping on A.
        let mut weights = HashMap::new();
        weights.insert(GroupKey::new(vec![Value::str("a1")]), 1.0);
        weights.insert(GroupKey::new(vec![Value::str("a2")]), 9.0);
        let w = WorkloadWeighted::new(vec![GroupingPreference {
            grouping: Grouping::from_positions(&[0]),
            weights,
        }])
        .unwrap();
        let a = w.allocate(&c, 100.0).unwrap();
        // a2's single finest group (a2,b3) should dwarf each a1 subgroup.
        let a2 = c
            .keys()
            .iter()
            .position(|k| k.values()[0] == Value::str("a2"))
            .unwrap();
        for (g, &t) in a.targets().iter().enumerate() {
            if g != a2 {
                assert!(a.targets()[a2] > 3.0 * t);
            }
        }
    }

    #[test]
    fn unreferenced_groups_get_zero() {
        let c = figure5_census(10);
        let mut weights = HashMap::new();
        weights.insert(GroupKey::new(vec![Value::str("a2")]), 1.0);
        let w = WorkloadWeighted::new(vec![GroupingPreference {
            grouping: Grouping::from_positions(&[0]),
            weights,
        }])
        .unwrap();
        let a = w.allocate(&c, 100.0).unwrap();
        let zeros = a.targets().iter().filter(|&&t| t == 0.0).count();
        assert_eq!(zeros, 3); // the three a1 subgroups
    }

    #[test]
    fn query_mix_weights_follow_frequencies() {
        let c = figure5_census(10);
        // Mix: grouping on {A,B} three times, on ∅ once. Column ids in the
        // figure-5 relation: A = 0, B = 1.
        use relation::ColumnId;
        let mix = vec![
            vec![ColumnId(0), ColumnId(1)],
            vec![ColumnId(0), ColumnId(1)],
            vec![ColumnId(0), ColumnId(1)],
            vec![],
        ];
        let w = WorkloadWeighted::from_query_mix(&c, &mix).unwrap();
        let a = w.allocate(&c, 100.0).unwrap();
        // Senate term dominates: 3 units over 4 groups (→ 75 per group
        // before normalization) vs 1 unit over the whole relation.
        // Allocation should be closer to Senate than to House.
        use crate::alloc::{House, Senate};
        let senate = Senate.allocate(&c, 100.0).unwrap();
        let house = House.allocate(&c, 100.0).unwrap();
        let dist =
            |x: &[f64], y: &[f64]| -> f64 { x.iter().zip(y).map(|(a, b)| (a - b).abs()).sum() };
        assert!(
            dist(a.targets(), senate.targets()) < dist(a.targets(), house.targets()),
            "mix dominated by finest grouping must look like Senate"
        );
    }

    #[test]
    fn query_mix_ignores_foreign_groupings() {
        let c = figure5_census(10);
        use relation::ColumnId;
        // One query on a column outside G, one on {A}.
        let mix = vec![vec![ColumnId(42)], vec![ColumnId(0)]];
        let w = WorkloadWeighted::from_query_mix(&c, &mix).unwrap();
        assert!(w.allocate(&c, 50.0).is_ok());
        // A mix with nothing addressable is rejected.
        let bad = vec![vec![ColumnId(42)]];
        assert!(WorkloadWeighted::from_query_mix(&c, &bad).is_err());
    }

    #[test]
    fn rejects_bad_specs() {
        assert!(WorkloadWeighted::new(vec![]).is_err());
        let mut weights = HashMap::new();
        weights.insert(GroupKey::empty(), -1.0);
        assert!(WorkloadWeighted::new(vec![GroupingPreference {
            grouping: Grouping::EMPTY,
            weights,
        }])
        .is_err());
    }

    #[test]
    fn rejects_grouping_outside_lattice() {
        let c = figure5_census(10); // |G| = 2
        let mut weights = HashMap::new();
        weights.insert(GroupKey::new(vec![Value::Int(0)]), 1.0);
        let w = WorkloadWeighted::new(vec![GroupingPreference {
            grouping: Grouping::from_positions(&[5]),
            weights,
        }])
        .unwrap();
        assert!(w.allocate(&c, 100.0).is_err());
    }
}
