//! Offline `parking_lot` facade backed by `std::sync`.
//!
//! Matches the parking_lot API shape the workspace uses: `RwLock::read` /
//! `write` and `Mutex::lock` return guards directly (no `Result`).
//! Poisoning is deliberately ignored — parking_lot has no poisoning, so a
//! panicked writer must not wedge every later reader here either.

use std::sync::{self, TryLockError};

/// Reader–writer lock with non-poisoning guards.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    pub fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.0.try_read() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        match self.0.try_write() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }
}

/// Mutex with non-poisoning guards.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    pub fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(5);
        assert_eq!(*l.read(), 5);
        *l.write() += 1;
        assert_eq!(*l.read(), 6);
        let _r1 = l.read();
        let _r2 = l.read();
        assert!(l.try_write().is_none());
    }

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(vec![1]);
        m.lock().push(2);
        assert_eq!(*m.lock(), vec![1, 2]);
    }
}
