//! Integration: the four rewrite strategies are algebraically equivalent
//! (§5.1 — they compute the same unbiased stratified estimate), and a 100%
//! "sample" reproduces exact answers bit-for-bit in expectation terms.

use aqua::{RewriteChoice, SamplingStrategy};
use congress::alloc::Senate;
use congress::CongressionalSample;
use engine::rewrite::{Integrated, KeyNormalized, NestedIntegrated, Normalized, SamplePlan};
use engine::{execute_exact, AggregateSpec, GroupByQuery};
use rand::rngs::StdRng;
use rand::SeedableRng;
use relation::{Expr, Predicate};
use tpcd::{q_g0, q_g2, q_g3, GeneratorConfig, TpcdDataset};

fn dataset() -> TpcdDataset {
    TpcdDataset::generate(GeneratorConfig {
        table_size: 20_000,
        num_groups: 27,
        group_skew: 1.2,
        agg_skew: 0.86,
        seed: 31,
    })
}

fn plans(ds: &TpcdDataset, space: f64) -> Vec<Box<dyn SamplePlan>> {
    let census = congress::GroupCensus::build(&ds.relation, &ds.grouping_columns()).unwrap();
    let mut rng = StdRng::seed_from_u64(5);
    let sample =
        CongressionalSample::draw(&ds.relation, &census, &Senate, space, &mut rng).unwrap();
    let input = sample.to_stratified_input(&ds.relation).unwrap();
    vec![
        Box::new(Integrated::build(&input).unwrap()),
        Box::new(NestedIntegrated::build(&input).unwrap()),
        Box::new(Normalized::build(&input).unwrap()),
        Box::new(KeyNormalized::build(&input).unwrap()),
    ]
}

fn assert_results_close(a: &engine::QueryResult, b: &engine::QueryResult, tag: &str, tol: f64) {
    assert_eq!(a.group_count(), b.group_count(), "{tag}: group counts");
    for ((k1, v1), (k2, v2)) in a.rows().iter().zip(b.rows()) {
        assert_eq!(k1, k2, "{tag}: keys");
        for (x, y) in v1.iter().zip(v2) {
            assert!(
                (x - y).abs() <= tol * (1.0 + y.abs()),
                "{tag}: {x} vs {y} at {k1}"
            );
        }
    }
}

#[test]
fn all_rewrites_agree_on_tpcd_queries() {
    let ds = dataset();
    let plans = plans(&ds, 2_000.0);
    let queries = vec![
        q_g2(&ds.ids),
        q_g3(&ds.ids),
        q_g0(&ds.ids, 500, 1_400),
        // AVG + predicate + coarse grouping, to stress the nested plan.
        GroupByQuery::new(
            vec![ds.ids.l_returnflag],
            vec![
                AggregateSpec::avg(Expr::col(ds.ids.l_quantity), "a"),
                AggregateSpec::count("c"),
            ],
        )
        .with_predicate(Predicate::ge(ds.ids.l_quantity, 3.0)),
    ];
    for q in &queries {
        let reference = plans[0].execute(q).unwrap();
        for p in &plans[1..] {
            let r = p.execute(q).unwrap();
            assert_results_close(&r, &reference, p.name(), 1e-9);
        }
    }
}

#[test]
fn full_sample_reproduces_exact_answers() {
    let ds = dataset();
    // Space = table size → every group fully sampled, SF = 1 everywhere.
    let plans = plans(&ds, ds.relation.row_count() as f64);
    for q in [q_g2(&ds.ids), q_g3(&ds.ids), q_g0(&ds.ids, 100, 5_000)] {
        let exact = execute_exact(&ds.relation, &q).unwrap();
        for p in &plans {
            let approx = p.execute(&q).unwrap();
            assert_results_close(&approx, &exact, p.name(), 1e-9);
        }
    }
}

#[test]
fn aqua_end_to_end_matches_direct_plan() {
    // The middleware path (maintainer + synopsis) must produce results
    // with the same *shape* as direct construction: same groups, sane
    // estimates for every rewrite choice.
    let ds = dataset();
    let exact = execute_exact(&ds.relation, &q_g2(&ds.ids)).unwrap();
    for rewrite in RewriteChoice::all() {
        let aqua = aqua::Aqua::build(
            ds.relation.clone(),
            ds.grouping_columns(),
            aqua::AquaConfig {
                space: 2_000,
                strategy: SamplingStrategy::Senate,
                rewrite,
                confidence: 0.9,
                seed: 17,
                parallelism: 0,
            },
        )
        .unwrap();
        let ans = aqua.answer(&q_g2(&ds.ids)).unwrap();
        assert_eq!(
            ans.result.group_count(),
            exact.group_count(),
            "{}: all groups must appear",
            rewrite.name()
        );
        let report = congress::compare_results(&exact, &ans.result, 0, 100.0);
        assert!(
            report.l1() < 25.0,
            "{}: mean error {}%",
            rewrite.name(),
            report.l1()
        );
        assert_eq!(report.spurious_groups, 0);
    }
}

#[test]
fn min_max_estimates_are_bounded_by_exact() {
    // MIN from a sample can only be ≥ exact MIN; MAX only ≤ exact MAX.
    let ds = dataset();
    let plans = plans(&ds, 1_000.0);
    let q = GroupByQuery::new(
        vec![ds.ids.l_returnflag],
        vec![
            AggregateSpec::min(Expr::col(ds.ids.l_extendedprice), "mn"),
            AggregateSpec::max(Expr::col(ds.ids.l_extendedprice), "mx"),
        ],
    );
    let exact = execute_exact(&ds.relation, &q).unwrap();
    for p in &plans {
        let approx = p.execute(&q).unwrap();
        for (key, vals) in approx.iter() {
            let evals = exact.get(key).unwrap();
            assert!(
                vals[0] >= evals[0] - 1e-9,
                "{}: sampled MIN below exact",
                p.name()
            );
            assert!(
                vals[1] <= evals[1] + 1e-9,
                "{}: sampled MAX above exact",
                p.name()
            );
        }
    }
}
