//! Hash joins used by the Normalized rewrite family.
//!
//! The paper's Normalized strategy joins the sample relation with a small
//! auxiliary relation on the grouping attributes; Key-normalized joins on a
//! single integer GID instead, "a shorter join predicate" (§7.3.1). The two
//! functions here deliberately mirror that cost difference: the value join
//! materializes a composite key per probe row, the int join probes a
//! fixed-width key.

use std::collections::HashMap;

use relation::{ColumnId, Relation, Value};

use crate::error::{EngineError, Result};

/// Join every row of `probe` to at most one row of `build` on equality of
/// the given column lists (positionally paired). Returns, per probe row,
/// the matched build-side row index.
///
/// The build side must have unique keys — this is the synopsis AuxRel,
/// keyed by group, so duplicates indicate a corrupted synopsis and are
/// reported as an error.
pub fn hash_join_unique(
    probe: &Relation,
    probe_cols: &[ColumnId],
    build: &Relation,
    build_cols: &[ColumnId],
) -> Result<Vec<Option<usize>>> {
    if probe_cols.len() != build_cols.len() {
        return Err(EngineError::JoinKeyMismatch(format!(
            "{} probe columns vs {} build columns",
            probe_cols.len(),
            build_cols.len()
        )));
    }
    for &c in probe_cols {
        probe.schema().field(c)?;
    }
    for &c in build_cols {
        build.schema().field(c)?;
    }

    let mut table: HashMap<Vec<Value>, usize> = HashMap::with_capacity(build.row_count());
    for r in 0..build.row_count() {
        let key: Vec<Value> = build_cols.iter().map(|&c| build.value(r, c)).collect();
        if table.insert(key, r).is_some() {
            return Err(EngineError::JoinKeyMismatch(
                "duplicate key on build side of unique join".into(),
            ));
        }
    }

    let mut out = Vec::with_capacity(probe.row_count());
    for r in 0..probe.row_count() {
        let key: Vec<Value> = probe_cols.iter().map(|&c| probe.value(r, c)).collect();
        out.push(table.get(&key).copied());
    }
    Ok(out)
}

/// Materialize a foreign-key join `fact ⋈ dim` (the join class the paper's
/// join synopses cover — "all joins in the TPC-D benchmark are on foreign
/// keys"). Every fact row must match exactly one dimension row; a dangling
/// foreign key is an integrity error. Dimension columns are appended to
/// the fact schema with `dim_prefix` prepended to their names.
pub fn foreign_key_join(
    fact: &Relation,
    fk: ColumnId,
    dim: &Relation,
    pk: ColumnId,
    dim_prefix: &str,
) -> Result<Relation> {
    let matches = hash_join_unique(fact, &[fk], dim, &[pk])?;
    let mut dim_rows = Vec::with_capacity(fact.row_count());
    for (r, m) in matches.into_iter().enumerate() {
        match m {
            Some(d) => dim_rows.push(d),
            None => {
                return Err(EngineError::JoinKeyMismatch(format!(
                    "fact row {r} has no matching dimension row (dangling foreign key {})",
                    fact.value(r, fk)
                )))
            }
        }
    }
    let gathered = dim.gather(&dim_rows);
    let extra: Vec<(relation::Field, relation::Column)> = gathered
        .schema()
        .fields()
        .iter()
        .enumerate()
        .map(|(i, f)| {
            (
                relation::Field::new(format!("{dim_prefix}{}", f.name), f.data_type),
                gathered.column(ColumnId(i)).clone(),
            )
        })
        .collect();
    Ok(fact.with_columns(extra)?)
}

/// Integer-keyed variant of [`hash_join_unique`]: probe ints against build
/// ints. Used by the Key-normalized rewrite (GID join).
pub fn hash_join_unique_int(probe_keys: &[i64], build_keys: &[i64]) -> Result<Vec<Option<usize>>> {
    let mut table: HashMap<i64, usize> = HashMap::with_capacity(build_keys.len());
    for (r, &k) in build_keys.iter().enumerate() {
        if table.insert(k, r).is_some() {
            return Err(EngineError::JoinKeyMismatch(
                "duplicate integer key on build side of unique join".into(),
            ));
        }
    }
    Ok(probe_keys.iter().map(|k| table.get(k).copied()).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use relation::{DataType, RelationBuilder};

    fn probe() -> Relation {
        let mut b = RelationBuilder::new()
            .column("a", DataType::Str)
            .column("b", DataType::Int);
        for (a, bb) in [("x", 1i64), ("y", 2), ("x", 2), ("z", 9)] {
            b.push_row(&[Value::str(a), Value::Int(bb)]).unwrap();
        }
        b.finish()
    }

    fn aux() -> Relation {
        let mut b = RelationBuilder::new()
            .column("a", DataType::Str)
            .column("b", DataType::Int)
            .column("sf", DataType::Float);
        for (a, bb, sf) in [("x", 1i64, 2.0), ("x", 2, 4.0), ("y", 2, 8.0)] {
            b.push_row(&[Value::str(a), Value::Int(bb), Value::from(sf)])
                .unwrap();
        }
        b.finish()
    }

    #[test]
    fn multi_column_join_matches() {
        let p = probe();
        let a = aux();
        let cols = [ColumnId(0), ColumnId(1)];
        let m = hash_join_unique(&p, &cols, &a, &cols).unwrap();
        assert_eq!(m, vec![Some(0), Some(2), Some(1), None]);
    }

    #[test]
    fn arity_mismatch_rejected() {
        let p = probe();
        let a = aux();
        assert!(hash_join_unique(&p, &[ColumnId(0)], &a, &[ColumnId(0), ColumnId(1)]).is_err());
    }

    #[test]
    fn duplicate_build_keys_rejected() {
        let p = probe();
        // Build side keyed on `a` alone has duplicate "x".
        let a = aux();
        assert!(hash_join_unique(&p, &[ColumnId(0)], &a, &[ColumnId(0)]).is_err());
    }

    #[test]
    fn unknown_column_rejected() {
        let p = probe();
        let a = aux();
        assert!(hash_join_unique(&p, &[ColumnId(9)], &a, &[ColumnId(0)]).is_err());
    }

    #[test]
    fn foreign_key_join_materializes_dimension_columns() {
        // fact: rows with fk into dim's pk
        let mut f = RelationBuilder::new()
            .column("id", DataType::Int)
            .column("fk", DataType::Int);
        for (id, fk) in [(1i64, 10i64), (2, 20), (3, 10)] {
            f.push_row(&[Value::Int(id), Value::Int(fk)]).unwrap();
        }
        let fact = f.finish();
        let mut d = RelationBuilder::new()
            .column("pk", DataType::Int)
            .column("name", DataType::Str);
        for (pk, name) in [(10i64, "alpha"), (20, "beta")] {
            d.push_row(&[Value::Int(pk), Value::str(name)]).unwrap();
        }
        let dim = d.finish();

        let joined = super::foreign_key_join(&fact, ColumnId(1), &dim, ColumnId(0), "d_").unwrap();
        assert_eq!(joined.row_count(), 3);
        assert_eq!(joined.schema().width(), 4); // id, fk, d_pk, d_name
        let name_col = joined.schema().column_id("d_name").unwrap();
        assert_eq!(joined.value(0, name_col), Value::str("alpha"));
        assert_eq!(joined.value(1, name_col), Value::str("beta"));
        assert_eq!(joined.value(2, name_col), Value::str("alpha"));
    }

    #[test]
    fn foreign_key_join_rejects_dangling_fk() {
        let mut f = RelationBuilder::new().column("fk", DataType::Int);
        f.push_row(&[Value::Int(99)]).unwrap();
        let fact = f.finish();
        let mut d = RelationBuilder::new().column("pk", DataType::Int);
        d.push_row(&[Value::Int(1)]).unwrap();
        let dim = d.finish();
        let err = super::foreign_key_join(&fact, ColumnId(0), &dim, ColumnId(0), "d_");
        assert!(matches!(err, Err(EngineError::JoinKeyMismatch(_))));
    }

    #[test]
    fn int_join() {
        let m = hash_join_unique_int(&[5, 7, 5, 1], &[7, 5]).unwrap();
        assert_eq!(m, vec![Some(1), Some(0), Some(1), None]);
        assert!(hash_join_unique_int(&[1], &[3, 3]).is_err());
    }
}
