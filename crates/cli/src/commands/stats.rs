//! `stats`: run a workload through the middleware and print the runtime
//! metrics snapshot — per-strategy query counts, latency quantiles,
//! cache hit rates, and warehouse durability counters.

use std::fmt::Write as _;

use aqua::{Aqua, AquaConfig, RecoveryPolicy, StatsSnapshot, Warehouse};
use congress::FsStore;

use crate::args::Args;
use crate::data::{load, rewrite, strategy};
use crate::{err, Result};

/// Answer the positional SQL queries (repeated `--repeat` times) against
/// a fresh synopsis, then print the [`Aqua::stats`] snapshot. With
/// `--dir` it instead opens a saved warehouse and reports its durability
/// counters. `--prometheus` and `--json` switch the output format.
pub fn stats(args: &Args) -> Result<String> {
    let snap = if let Some(dir) = args.get("dir") {
        let store = FsStore::open(dir).map_err(err)?;
        let policy = if args.has("degrade") {
            RecoveryPolicy::Degrade
        } else {
            RecoveryPolicy::Rebuild
        };
        let (w, _report) = Warehouse::open(&store, policy).map_err(err)?;
        w.stats()
    } else {
        let source = load(args)?;
        let space: usize = args.get_parsed("space", 0usize)?;
        if space == 0 {
            return Err("stats requires --space <tuples> (or --dir <DIR>)".into());
        }
        let config = AquaConfig {
            space,
            strategy: strategy(args)?,
            rewrite: rewrite(args)?,
            confidence: args.get_parsed("confidence", 0.9f64)?,
            seed: args.get_parsed("seed", 0u64)?,
            parallelism: args.get_parsed("parallelism", 0usize)?,
        };
        let demo = args.has("demo");
        let aqua = Aqua::build(source.relation, source.grouping, config).map_err(err)?;
        let queries: Vec<String> = if args.positional().is_empty() {
            if !demo {
                return Err(
                    "stats needs at least one SQL query as a positional argument \
                     (the built-in workload only exists for --demo)"
                        .into(),
                );
            }
            demo_workload()
        } else {
            args.positional().to_vec()
        };
        let repeat: usize = args.get_parsed("repeat", 2usize)?;
        for _ in 0..repeat.max(1) {
            for sql in &queries {
                aqua.answer_sql(sql).map_err(err)?;
            }
        }
        aqua.stats()
    };

    if args.has("prometheus") {
        Ok(snap.to_prometheus())
    } else if args.has("json") {
        Ok(snap.to_json())
    } else {
        Ok(render_human(&snap))
    }
}

/// The default workload for `--demo`: one additive and one non-additive
/// aggregate over the paper's lineitem table, so both the summary fast
/// path and the bound computation show up in the counters.
fn demo_workload() -> Vec<String> {
    vec![
        "SELECT l_returnflag, SUM(l_quantity) AS s FROM lineitem GROUP BY l_returnflag".into(),
        "SELECT l_returnflag, AVG(l_extendedprice) AS a FROM lineitem GROUP BY l_returnflag".into(),
    ]
}

/// Human-readable report over the snapshot's metric families.
fn render_human(s: &StatsSnapshot) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "== queries ==");
    let total = s.counter_family("aqua_queries_total");
    let errors = s.counter("aqua_query_errors_total");
    let _ = writeln!(
        out,
        "answered {total}  errors {errors}  sql parsed {}  sql rejected {}",
        s.counter("aqua_sql_queries_total"),
        s.counter("aqua_sql_parse_errors_total"),
    );
    for (name, v) in counters_with_prefix(s, "aqua_queries_total{") {
        let _ = writeln!(out, "  {name} {v}");
    }
    let _ = writeln!(
        out,
        "rows scanned {} (0 = all summary-served)",
        s.counter("aqua_rows_scanned_total")
    );
    for (name, h) in s
        .histograms
        .iter()
        .filter(|(k, _)| k.starts_with("aqua_query_latency_us"))
    {
        let _ = writeln!(
            out,
            "  {name}: n={} mean={:.0}us p50<={}us p95<={}us p99<={}us",
            h.count,
            h.mean(),
            h.p50(),
            h.p95(),
            h.p99()
        );
    }

    let _ = writeln!(out, "\n== query cache ==");
    let hits = s.counter("aqua_cache_hits_total");
    let misses = s.counter("aqua_cache_misses_total");
    let _ = writeln!(
        out,
        "hits {hits}  misses {misses}  hit rate {}  invalidations {}",
        rate(hits, misses),
        s.counter("aqua_cache_invalidations_total")
    );
    for kind in ["index", "summary", "stratum_summary", "layout", "weights"] {
        let h = s.counter(&format!("aqua_cache_{kind}_hits_total"));
        let m = s.counter(&format!("aqua_cache_{kind}_misses_total"));
        if h + m > 0 {
            let _ = writeln!(out, "  {kind:<16} hits {h:<6} misses {m:<6} {}", rate(h, m));
        }
    }

    let _ = writeln!(out, "\n== synopsis maintenance ==");
    let _ = writeln!(
        out,
        "rebuilds {}  refreshes {}  ingests {} ({} rows)  sample rows {}  table rows {}",
        s.counter("synopsis_rebuilds_total"),
        s.counter("synopsis_refreshes_total"),
        s.counter("synopsis_ingests_total"),
        s.counter("synopsis_ingested_rows_total"),
        s.gauge("aqua_synopsis_rows"),
        s.gauge("aqua_table_rows"),
    );
    for phase in ["census", "alloc", "draw"] {
        if let Some(h) = s.histogram(&format!("synopsis_build_{phase}_us")) {
            if h.count > 0 {
                let _ = writeln!(
                    out,
                    "  build {phase:<7} n={} mean={:.0}us",
                    h.count,
                    h.mean()
                );
            }
        }
    }

    if s.counters.keys().any(|k| k.starts_with("warehouse_")) {
        let _ = writeln!(out, "\n== warehouse durability ==");
        let _ = writeln!(
            out,
            "opens {}  saves {}  generation {}  relations {}",
            s.counter("warehouse_opens_total"),
            s.counter("warehouse_saves_total"),
            s.gauge("warehouse_generation"),
            s.gauge("warehouse_relations"),
        );
        let _ = writeln!(
            out,
            "wal appends {} ({} bytes)  replayed records {}  torn-tail truncations {} \
             ({} bytes dropped)",
            s.counter("warehouse_wal_appends_total"),
            s.counter("warehouse_wal_appended_bytes_total"),
            s.counter("warehouse_wal_replayed_records_total"),
            s.counter("warehouse_wal_truncations_total"),
            s.counter("warehouse_wal_dropped_bytes_total"),
        );
        let _ = writeln!(
            out,
            "degraded answers {}",
            s.counter("warehouse_degraded_answers_total")
        );
        for (name, v) in counters_with_prefix(s, "warehouse_recovered_relations_total{") {
            let _ = writeln!(out, "  {name} {v}");
        }
    }
    out
}

fn counters_with_prefix<'a>(
    s: &'a StatsSnapshot,
    prefix: &'a str,
) -> impl Iterator<Item = (&'a String, u64)> + 'a {
    s.counters
        .iter()
        .filter(move |(k, _)| k.starts_with(prefix))
        .map(|(k, v)| (k, *v))
}

fn rate(hits: u64, misses: u64) -> String {
    if hits + misses == 0 {
        "n/a".to_string()
    } else {
        format!("{:.1}%", hits as f64 / (hits + misses) as f64 * 100.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::commands::test_support::args;

    const DEMO: &[&str] = &[
        "stats", "--demo", "--rows", "4000", "--groups", "27", "--space", "400",
    ];

    #[test]
    fn demo_workload_reports_counters_and_latency() {
        let out = stats(&args(DEMO)).unwrap();
        assert!(out.contains("== queries =="), "{out}");
        assert!(out.contains("== query cache =="), "{out}");
        assert!(out.contains("== synopsis maintenance =="), "{out}");
        // Cache counters are live regardless of the obs feature.
        assert!(out.contains("hit rate"), "{out}");
        if !cfg!(feature = "obs-off") {
            assert!(out.contains("answered 4"), "{out}");
            assert!(out.contains("served=\"summary\""), "{out}");
            assert!(out.contains("p95<="), "{out}");
        }
    }

    #[test]
    fn prometheus_and_json_formats() {
        let mut with_prom: Vec<&str> = DEMO.to_vec();
        with_prom.push("--prometheus");
        let out = stats(&args(&with_prom)).unwrap();
        assert!(
            out.contains("# TYPE aqua_cache_hits_total counter"),
            "{out}"
        );

        let mut with_json: Vec<&str> = DEMO.to_vec();
        with_json.push("--json");
        let out = stats(&args(&with_json)).unwrap();
        assert!(out.contains("\"counters\""), "{out}");
        assert!(out.contains("\"aqua_cache_hits_total\""), "{out}");
    }

    #[test]
    fn warehouse_stats_report_durability_counters() {
        let dir = std::env::temp_dir().join("congress_cli_stats_wh");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let dir = dir.to_str().unwrap().to_string();
        crate::commands::warehouse(&args(&[
            "warehouse",
            "save",
            "--demo",
            "--rows",
            "3000",
            "--groups",
            "27",
            "--space",
            "300",
            "--dir",
            &dir,
        ]))
        .unwrap();
        let out = stats(&args(&["stats", "--dir", &dir])).unwrap();
        assert!(out.contains("== warehouse durability =="), "{out}");
        assert!(out.contains("relations 1"), "{out}");
        if !cfg!(feature = "obs-off") {
            assert!(out.contains("opens 1"), "{out}");
        }
    }

    #[test]
    fn stats_invocation_errors() {
        let e = stats(&args(&[
            "stats", "--demo", "--rows", "1000", "--groups", "8",
        ]))
        .unwrap_err();
        assert!(e.contains("--space"), "{e}");
        let e = stats(&args(&[
            "stats",
            "--csv",
            "/nonexistent.csv",
            "--group-by",
            "g",
            "--space",
            "10",
        ]))
        .unwrap_err();
        assert!(e.contains("cannot open"), "{e}");
    }
}
