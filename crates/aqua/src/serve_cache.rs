//! The answer cache: normalized SQL text → complete served answer.
//!
//! The serving bottleneck is not answer *cost* but per-query overhead:
//! even with the plan cache skipping parse + rewrite-render, every
//! `answer_sql` call still pays the plan execution and the per-group
//! bounds assembly. Dashboard workloads replay a small set of query
//! strings against a synopsis that only changes on ingest, so the whole
//! [`ApproximateAnswer`] is memoizable. Entries are shared `Arc`s — a
//! hit is one shard read-lock, one hash probe, and one refcount bump.
//!
//! Consistency: inserts happen while the owning [`Aqua`](crate::Aqua)
//! holds its synopsis *read* lock, and every mutation (ingest / refresh /
//! rebuild) clears the cache while holding the *write* lock — so an
//! entry computed against generation G can never survive into generation
//! G+1, and a hit always equals what recomputing against the current
//! synopsis would return.

use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::RwLock;

use crate::answer::ApproximateAnswer;

const SHARDS: usize = 8;

fn shard_of(key: &str) -> usize {
    let mut h = DefaultHasher::new();
    key.hash(&mut h);
    (h.finish() as usize) % SHARDS
}

/// A complete serving result: the approximate answer plus the rewritten
/// SQL the configured strategy would send a back-end DBMS.
#[derive(Debug, Clone)]
pub struct ServedAnswer {
    /// The approximate answer with per-group bounds.
    pub answer: ApproximateAnswer,
    /// Rewritten SQL (Figures 8–11) for the active rewrite strategy;
    /// empty for degraded-mode exact answers, which bypass the rewrite.
    pub rewritten: String,
}

/// Sharded map from normalized SQL to [`ServedAnswer`], with hit / miss /
/// invalidation counters (relaxed atomics; counters survive invalidation,
/// entries do not).
#[derive(Debug)]
pub struct AnswerCache {
    shards: Vec<RwLock<HashMap<String, Arc<ServedAnswer>>>>,
    hits: AtomicU64,
    misses: AtomicU64,
    invalidations: AtomicU64,
}

impl Default for AnswerCache {
    fn default() -> Self {
        Self::new()
    }
}

impl AnswerCache {
    /// An empty cache.
    pub fn new() -> AnswerCache {
        AnswerCache {
            shards: (0..SHARDS).map(|_| RwLock::default()).collect(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            invalidations: AtomicU64::new(0),
        }
    }

    /// Look up an answer by normalized key, counting a hit or miss.
    pub fn get(&self, key: &str) -> Option<Arc<ServedAnswer>> {
        let found = self.shards[shard_of(key)].read().get(key).cloned();
        match found {
            Some(a) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(a)
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Insert an answer under `key`. First insert wins (under a race both
    /// answers are bit-identical anyway — same plan, same synopsis
    /// generation — so keeping the earlier `Arc` is free).
    pub fn insert(&self, key: String, answer: Arc<ServedAnswer>) -> Arc<ServedAnswer> {
        let mut shard = self.shards[shard_of(&key)].write();
        Arc::clone(shard.entry(key).or_insert(answer))
    }

    /// Drop every entry (counters survive). Called on ingest / refresh /
    /// rebuild, in the same breath as the query-cache invalidation.
    pub fn invalidate(&self) {
        for shard in &self.shards {
            shard.write().clear();
        }
        self.invalidations.fetch_add(1, Ordering::Relaxed);
    }

    /// Number of cached answers.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.read().len()).sum()
    }

    /// `true` when no answers are cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Counter snapshot.
    pub fn stats(&self) -> AnswerCacheStats {
        AnswerCacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            invalidations: self.invalidations.load(Ordering::Relaxed),
            entries: self.len() as u64,
        }
    }
}

/// Point-in-time [`AnswerCache`] counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AnswerCacheStats {
    /// Lookups that found an answer.
    pub hits: u64,
    /// Lookups that found nothing.
    pub misses: u64,
    /// Times the cache was cleared.
    pub invalidations: u64,
    /// Answers currently cached.
    pub entries: u64,
}

impl AnswerCacheStats {
    /// Hits over lookups, 0.0 when no lookups happened.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::answer::AnswerProvenance;
    use engine::QueryResult;

    fn served(tag: &str) -> Arc<ServedAnswer> {
        Arc::new(ServedAnswer {
            answer: ApproximateAnswer {
                result: QueryResult::new(vec![tag.to_string()], Vec::new()),
                bounds: Vec::new(),
                confidence: 0.9,
                provenance: AnswerProvenance::Sampled,
            },
            rewritten: tag.to_string(),
        })
    }

    #[test]
    fn miss_insert_hit_and_invalidate() {
        let c = AnswerCache::new();
        assert!(c.get("k").is_none());
        c.insert("k".into(), served("a"));
        assert_eq!(c.get("k").unwrap().rewritten, "a");
        assert_eq!(c.len(), 1);
        c.invalidate();
        assert!(c.is_empty());
        assert!(c.get("k").is_none());
        let s = c.stats();
        assert_eq!((s.hits, s.misses, s.invalidations), (1, 2, 1));
        assert!((s.hit_rate() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn first_insert_wins_and_shares() {
        let c = AnswerCache::new();
        let first = c.insert("k".into(), served("first"));
        let second = c.insert("k".into(), served("second"));
        assert!(Arc::ptr_eq(&first, &second));
        let hit = c.get("k").unwrap();
        assert!(Arc::ptr_eq(&first, &hit));
    }
}
