//! §8 multi-criteria ablation: adding the per-group variance weight vector
//! improves accuracy when within-group spreads differ wildly — "the use of
//! the variance of values within the group can be expected to further
//! improve the sample accuracy".

use congress::alloc::criteria::{MultiCriteria, WeightVector};
use congress::alloc::{AllocationStrategy, Senate};
use congress::{compare_results, CongressionalSample, GroupCensus};
use engine::rewrite::{Integrated, SamplePlan};
use engine::{execute_exact, AggregateSpec, GroupByQuery};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use relation::{ColumnId, DataType, Expr, RelationBuilder};

/// Equal-sized groups with drastically different value spreads: the
/// paper's motivating case for the variance criterion (§8) — "consider two
/// groups of the same size. The first has values that are reasonably
/// uniform while the other has values with a very high variance."
fn table() -> relation::Relation {
    let mut rng = StdRng::seed_from_u64(808);
    let mut b = RelationBuilder::new()
        .column("g", DataType::Int)
        .column("v", DataType::Float);
    for g in 0..8i64 {
        // Groups 0–3: near-constant values. Groups 4–7: huge spread.
        let spread = if g < 4 { 1.0 } else { 500.0 };
        for _ in 0..4_000 {
            let v = 1_000.0 + rng.gen_range(-spread..spread);
            b.push_row(&[relation::Value::Int(g), relation::Value::from(v)])
                .unwrap();
        }
    }
    b.finish()
}

#[test]
fn variance_criterion_beats_plain_senate_under_heteroscedasticity() {
    let rel = table();
    let census = GroupCensus::build(&rel, &[ColumnId(0)]).unwrap();
    let v = rel.schema().column_id("v").unwrap();
    let q = GroupByQuery::new(
        vec![ColumnId(0)],
        vec![AggregateSpec::avg(Expr::col(v), "a")],
    );
    let exact = execute_exact(&rel, &q).unwrap();
    let space = 800.0;

    // Variance-aware per Figure 19: the variance criterion is an
    // ADDITIONAL weight vector alongside Senate — the framework takes the
    // per-group maximum, so low-variance groups keep their equal-space
    // floor while high-variance groups get extra budget. (A pure variance
    // vector alone would starve the near-constant groups to zero samples
    // and lose them from answers entirely.)
    let var_vec = WeightVector::variance(&census, &rel, &Expr::col(v)).unwrap();
    let aware = MultiCriteria::new(vec![WeightVector::senate(&census), var_vec]).unwrap();

    let trials = 25u64;
    let (mut err_senate, mut err_aware) = (0.0, 0.0);
    for t in 0..trials {
        let mut rng = StdRng::seed_from_u64(9_000 + t);
        for (strategy, err) in [
            (&Senate as &dyn AllocationStrategy, &mut err_senate),
            (&aware as &dyn AllocationStrategy, &mut err_aware),
        ] {
            let alloc = strategy.allocate(&census, space).unwrap();
            let sample = CongressionalSample::draw_with_allocation(
                &rel,
                &census,
                &alloc,
                strategy.name(),
                &mut rng,
            )
            .unwrap();
            let input = sample.to_stratified_input(&rel).unwrap();
            let plan = Integrated::build(&input).unwrap();
            let approx = plan.execute(&q).unwrap();
            *err += compare_results(&exact, &approx, 0, 100.0).l2() / trials as f64;
        }
    }
    assert!(
        err_aware < err_senate,
        "variance-aware L2 {err_aware} must beat equal-space {err_senate} \
         when spreads differ 500:1"
    );
}

#[test]
fn variance_criterion_harmless_under_homoscedasticity() {
    // When all groups share the same spread, the variance vector reduces
    // to (near-)equal weights — no pathological reallocation.
    let mut rng = StdRng::seed_from_u64(811);
    let mut b = RelationBuilder::new()
        .column("g", DataType::Int)
        .column("v", DataType::Float);
    for g in 0..6i64 {
        for _ in 0..2_000 {
            b.push_row(&[
                relation::Value::Int(g),
                relation::Value::from(rng.gen_range(0.0..100.0)),
            ])
            .unwrap();
        }
    }
    let rel = b.finish();
    let census = GroupCensus::build(&rel, &[ColumnId(0)]).unwrap();
    let v = rel.schema().column_id("v").unwrap();
    let vec = WeightVector::variance(&census, &rel, &Expr::col(v)).unwrap();
    let total: f64 = vec.weights.iter().sum();
    for &w in &vec.weights {
        let share = w / total;
        assert!(
            (share - 1.0 / 6.0).abs() < 0.02,
            "homoscedastic groups should get ~equal variance weight, got {share}"
        );
    }
}
