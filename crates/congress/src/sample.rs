//! The materialized congressional sample and its conversion to the
//! engine's stratified-input form.

use rand::seq::SliceRandom;
use rand::Rng;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

use engine::StratifiedInput;
use relation::{ColumnId, GroupKey, Relation};

use crate::alloc::{Allocation, AllocationStrategy};
use crate::census::GroupCensus;
use crate::error::{CongressError, Result};
use crate::seed::SeedSpec;

/// A drawn biased sample: per finest group, the sampled row indices into
/// the base relation, along with the census facts needed to scale
/// estimates (`n_g`) and to rebuild physical layouts.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CongressionalSample {
    grouping_columns: Vec<ColumnId>,
    strata_keys: Vec<GroupKey>,
    group_sizes: Vec<u64>,
    sampled_rows: Vec<Vec<usize>>,
    strategy_name: String,
}

impl CongressionalSample {
    /// Draw a sample from `rel` per `strategy` with budget `space` tuples.
    ///
    /// This is the "given a data cube ... constructed in one pass" route of
    /// §6: the census provides the counts, and each group's quota is drawn
    /// uniformly without replacement.
    pub fn draw<S: AllocationStrategy, R: Rng>(
        rel: &Relation,
        census: &GroupCensus,
        strategy: &S,
        space: f64,
        rng: &mut R,
    ) -> Result<CongressionalSample> {
        let allocation = strategy.allocate(census, space)?;
        Self::draw_with_allocation(rel, census, &allocation, strategy.name(), rng)
    }

    /// Draw a sample for an already-computed allocation.
    pub fn draw_with_allocation<R: Rng>(
        rel: &Relation,
        census: &GroupCensus,
        allocation: &Allocation,
        strategy_name: &str,
        rng: &mut R,
    ) -> Result<CongressionalSample> {
        if census.group_of_row().map(<[u32]>::len) != Some(rel.row_count()) {
            return Err(CongressError::CensusMismatch(format!(
                "census covers {:?} rows, relation has {}",
                census.group_of_row().map(<[u32]>::len),
                rel.row_count()
            )));
        }
        let counts = allocation.integer_counts(census.sizes());
        let rows_by_group = census.rows_by_group()?;
        let mut sampled_rows = Vec::with_capacity(counts.len());
        for (rows, &want) in rows_by_group.iter().zip(&counts) {
            sampled_rows.push(sample_without_replacement(rows, want, rng));
        }
        Ok(CongressionalSample {
            grouping_columns: census.grouping_columns().to_vec(),
            strata_keys: census.keys().to_vec(),
            group_sizes: census.sizes().to_vec(),
            sampled_rows,
            strategy_name: strategy_name.to_string(),
        })
    }

    /// Draw with *Bernoulli* semantics — §4.6's first alternative
    /// definition: "instead select each tuple in a group g with probability
    /// SampleSize(g)/n_g. Thus the expected number of tuples from g in the
    /// sample remains SampleSize(g), but the actual number may vary due to
    /// random fluctuations."
    pub fn draw_bernoulli<S: AllocationStrategy, R: Rng>(
        rel: &Relation,
        census: &GroupCensus,
        strategy: &S,
        space: f64,
        rng: &mut R,
    ) -> Result<CongressionalSample> {
        let allocation = strategy.allocate(census, space)?;
        if census.group_of_row().map(<[u32]>::len) != Some(rel.row_count()) {
            return Err(CongressError::CensusMismatch(format!(
                "census covers {:?} rows, relation has {}",
                census.group_of_row().map(<[u32]>::len),
                rel.row_count()
            )));
        }
        // Per-group inclusion probability, capped at 1.
        let probs: Vec<f64> = allocation
            .targets()
            .iter()
            .zip(census.sizes())
            .map(|(&t, &n)| (t / n as f64).min(1.0))
            .collect();
        let gor = census.group_of_row().expect("checked above");
        let mut sampled_rows: Vec<Vec<usize>> = vec![Vec::new(); census.group_count()];
        for (row, &g) in gor.iter().enumerate() {
            if rng.gen::<f64>() < probs[g as usize] {
                sampled_rows[g as usize].push(row);
            }
        }
        Ok(CongressionalSample {
            grouping_columns: census.grouping_columns().to_vec(),
            strata_keys: census.keys().to_vec(),
            group_sizes: census.sizes().to_vec(),
            sampled_rows,
            strategy_name: format!("{} (Bernoulli)", strategy.name()),
        })
    }

    /// Parallel variant of [`Self::draw`]: strata are filled concurrently,
    /// each from its own RNG stream derived from `spec` by group key, so
    /// the result is bit-for-bit identical for *any* thread count —
    /// including the sequential `parallelism = 1` path.
    pub fn draw_par<S: AllocationStrategy + ?Sized>(
        rel: &Relation,
        census: &GroupCensus,
        strategy: &S,
        space: f64,
        spec: &SeedSpec,
    ) -> Result<CongressionalSample> {
        let allocation = strategy.allocate(census, space)?;
        Self::draw_with_allocation_par(rel, census, &allocation, strategy.name(), spec)
    }

    /// Parallel variant of [`Self::draw_with_allocation`] (see
    /// [`Self::draw_par`] for the determinism contract).
    pub fn draw_with_allocation_par(
        rel: &Relation,
        census: &GroupCensus,
        allocation: &Allocation,
        strategy_name: &str,
        spec: &SeedSpec,
    ) -> Result<CongressionalSample> {
        if census.group_of_row().map(<[u32]>::len) != Some(rel.row_count()) {
            return Err(CongressError::CensusMismatch(format!(
                "census covers {:?} rows, relation has {}",
                census.group_of_row().map(<[u32]>::len),
                rel.row_count()
            )));
        }
        let counts = allocation.integer_counts(census.sizes());
        let rows_by_group = census.rows_by_group()?;
        let keys = census.keys();
        let sampled_rows: Vec<Vec<usize>> = rows_by_group
            .par_iter()
            .enumerate()
            .map(|(g, rows)| {
                let mut rng = spec.rng_for_group(&keys[g]);
                sample_without_replacement(rows, counts[g], &mut rng)
            })
            .collect();
        Ok(CongressionalSample {
            grouping_columns: census.grouping_columns().to_vec(),
            strata_keys: keys.to_vec(),
            group_sizes: census.sizes().to_vec(),
            sampled_rows,
            strategy_name: strategy_name.to_string(),
        })
    }

    /// Parallel variant of [`Self::draw_bernoulli`]: each group's Bernoulli
    /// coin flips come from that group's own seeded stream, walked over the
    /// group's rows in base-relation order — scheduling-independent, like
    /// [`Self::draw_par`].
    pub fn draw_bernoulli_par<S: AllocationStrategy + ?Sized>(
        rel: &Relation,
        census: &GroupCensus,
        strategy: &S,
        space: f64,
        spec: &SeedSpec,
    ) -> Result<CongressionalSample> {
        let allocation = strategy.allocate(census, space)?;
        if census.group_of_row().map(<[u32]>::len) != Some(rel.row_count()) {
            return Err(CongressError::CensusMismatch(format!(
                "census covers {:?} rows, relation has {}",
                census.group_of_row().map(<[u32]>::len),
                rel.row_count()
            )));
        }
        let probs: Vec<f64> = allocation
            .targets()
            .iter()
            .zip(census.sizes())
            .map(|(&t, &n)| (t / n as f64).min(1.0))
            .collect();
        let rows_by_group = census.rows_by_group()?;
        let keys = census.keys();
        let sampled_rows: Vec<Vec<usize>> = rows_by_group
            .par_iter()
            .enumerate()
            .map(|(g, rows)| {
                let mut rng = spec.rng_for_group(&keys[g]);
                let p = probs[g];
                rows.iter()
                    .copied()
                    .filter(|_| rng.gen::<f64>() < p)
                    .collect()
            })
            .collect();
        Ok(CongressionalSample {
            grouping_columns: census.grouping_columns().to_vec(),
            strata_keys: keys.to_vec(),
            group_sizes: census.sizes().to_vec(),
            sampled_rows,
            strategy_name: format!("{} (Bernoulli)", strategy.name()),
        })
    }

    /// Assemble a sample directly from parts (used by the incremental
    /// maintainers, which track membership themselves).
    pub fn from_parts(
        grouping_columns: Vec<ColumnId>,
        strata_keys: Vec<GroupKey>,
        group_sizes: Vec<u64>,
        sampled_rows: Vec<Vec<usize>>,
        strategy_name: impl Into<String>,
    ) -> Result<CongressionalSample> {
        if strata_keys.len() != group_sizes.len() || strata_keys.len() != sampled_rows.len() {
            return Err(CongressError::CensusMismatch(format!(
                "inconsistent strata: {} keys, {} sizes, {} row lists",
                strata_keys.len(),
                group_sizes.len(),
                sampled_rows.len()
            )));
        }
        for (g, rows) in sampled_rows.iter().enumerate() {
            if rows.len() as u64 > group_sizes[g] {
                return Err(CongressError::CensusMismatch(format!(
                    "stratum {g} sampled {} of {} tuples",
                    rows.len(),
                    group_sizes[g]
                )));
            }
        }
        Ok(CongressionalSample {
            grouping_columns,
            strata_keys,
            group_sizes,
            sampled_rows,
            strategy_name: strategy_name.into(),
        })
    }

    /// Name of the strategy that produced the sample.
    pub fn strategy_name(&self) -> &str {
        &self.strategy_name
    }

    /// Set the finest grouping columns (the streaming maintainers don't
    /// know schema column ids; construction wiring fills them in).
    pub fn set_grouping_columns(&mut self, cols: Vec<ColumnId>) {
        self.grouping_columns = cols;
    }

    /// The finest grouping columns `G`.
    pub fn grouping_columns(&self) -> &[ColumnId] {
        &self.grouping_columns
    }

    /// Number of strata (finest groups).
    pub fn stratum_count(&self) -> usize {
        self.strata_keys.len()
    }

    /// Stratum keys.
    pub fn strata_keys(&self) -> &[GroupKey] {
        &self.strata_keys
    }

    /// Group sizes `n_g` recorded at construction.
    pub fn group_sizes(&self) -> &[u64] {
        &self.group_sizes
    }

    /// Sampled base-relation row ids per stratum.
    pub fn sampled_rows(&self) -> &[Vec<usize>] {
        &self.sampled_rows
    }

    /// Total sampled tuples.
    pub fn total_sampled(&self) -> usize {
        self.sampled_rows.iter().map(Vec::len).sum()
    }

    /// Per-stratum ScaleFactor: `n_g / |sample_g|` (∞-avoiding: strata with
    /// no sampled tuples are excluded from the stratified input entirely).
    pub fn scale_factor(&self, stratum: usize) -> Option<f64> {
        let s = self.sampled_rows[stratum].len();
        (s > 0).then(|| self.group_sizes[stratum] as f64 / s as f64)
    }

    /// Like [`Self::to_stratified_input`], but with every stratum's
    /// ScaleFactor replaced by the single global factor `|R| / |sample|` —
    /// the classic uniform-sample scaling the paper's Aqua applies to House
    /// samples (the "100×" of Figure 2). Using per-stratum factors on a
    /// House sample would post-stratify it, which is *not* what the paper
    /// evaluates.
    pub fn to_stratified_input_uniform(&self, rel: &Relation) -> Result<StratifiedInput> {
        let mut input = self.to_stratified_input(rel)?;
        let population: u64 = self.group_sizes.iter().sum();
        let sampled = self.total_sampled();
        if sampled == 0 {
            return Err(CongressError::EmptyRelation);
        }
        let sf = population as f64 / sampled as f64;
        for s in &mut input.scale_factors {
            *s = sf;
        }
        Ok(input)
    }

    /// Materialize the engine-facing stratified input against the base
    /// relation the sample was drawn from. Empty strata are dropped (they
    /// contribute no tuples and would make ScaleFactor undefined).
    pub fn to_stratified_input(&self, rel: &Relation) -> Result<StratifiedInput> {
        let mut rows: Vec<usize> = Vec::with_capacity(self.total_sampled());
        let mut stratum_of_row: Vec<u32> = Vec::with_capacity(self.total_sampled());
        let mut scale_factors = Vec::new();
        let mut strata_keys = Vec::new();
        for (g, sampled) in self.sampled_rows.iter().enumerate() {
            if sampled.is_empty() {
                continue;
            }
            let dense = scale_factors.len() as u32;
            scale_factors.push(self.group_sizes[g] as f64 / sampled.len() as f64);
            strata_keys.push(self.strata_keys[g].clone());
            for &r in sampled {
                if r >= rel.row_count() {
                    return Err(CongressError::CensusMismatch(format!(
                        "sampled row {r} out of range for relation of {} rows",
                        rel.row_count()
                    )));
                }
                rows.push(r);
                stratum_of_row.push(dense);
            }
        }
        let input = StratifiedInput {
            rows: rel.gather(&rows),
            stratum_of_row,
            scale_factors,
            strata_keys,
            grouping_columns: self.grouping_columns.clone(),
        };
        input.validate()?;
        Ok(input)
    }
}

/// Uniform sample of `want` distinct elements from `rows`, preserving no
/// particular order. Uses a partial Fisher–Yates over a copied index
/// vector — O(|rows|) copy, O(want) shuffling.
pub(crate) fn sample_without_replacement<R: Rng + ?Sized>(
    rows: &[usize],
    want: usize,
    rng: &mut R,
) -> Vec<usize> {
    let want = want.min(rows.len());
    if want == 0 {
        return Vec::new();
    }
    if want == rows.len() {
        return rows.to_vec();
    }
    let mut pool: Vec<usize> = rows.to_vec();
    let (chosen, _) = pool.partial_shuffle(rng, want);
    chosen.to_vec()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alloc::{Congress, House, Senate};
    use crate::census::test_support::figure5_relation;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup() -> (Relation, GroupCensus) {
        let rel = figure5_relation(10);
        let cols = rel.schema().column_ids(&["A", "B"]).unwrap();
        let census = GroupCensus::build(&rel, &cols).unwrap();
        (rel, census)
    }

    #[test]
    fn draw_senate_equal_counts() {
        let (rel, census) = setup();
        let mut rng = StdRng::seed_from_u64(7);
        let s = CongressionalSample::draw(&rel, &census, &Senate, 100.0, &mut rng).unwrap();
        assert_eq!(s.total_sampled(), 100);
        for rows in s.sampled_rows() {
            assert_eq!(rows.len(), 25);
        }
        assert_eq!(s.strategy_name(), "Senate");
    }

    #[test]
    fn bernoulli_draw_matches_expectation() {
        let (rel, census) = setup();
        let trials = 40u64;
        let mut avg = vec![0.0f64; census.group_count()];
        let mut totals = Vec::new();
        for t in 0..trials {
            let mut rng = StdRng::seed_from_u64(600 + t);
            let s = CongressionalSample::draw_bernoulli(&rel, &census, &Congress, 100.0, &mut rng)
                .unwrap();
            assert!(s.strategy_name().contains("Bernoulli"));
            totals.push(s.total_sampled());
            for (g, rows) in s.sampled_rows().iter().enumerate() {
                avg[g] += rows.len() as f64 / trials as f64;
            }
        }
        // "The expected number of tuples from g remains SampleSize(g),
        // but the actual number may vary."
        let targets = Congress.allocate(&census, 100.0).unwrap();
        for (g, (&got, &want)) in avg.iter().zip(targets.targets()).enumerate() {
            assert!(
                (got - want).abs() < want * 0.25 + 2.0,
                "group {g}: Bernoulli avg {got} vs target {want}"
            );
        }
        // Sizes fluctuate (fixed-size draws never would).
        let min = totals.iter().min().unwrap();
        let max = totals.iter().max().unwrap();
        assert!(max > min, "Bernoulli totals must vary: {totals:?}");
    }

    #[test]
    fn sampled_rows_are_distinct_and_in_group() {
        let (rel, census) = setup();
        let mut rng = StdRng::seed_from_u64(42);
        let s = CongressionalSample::draw(&rel, &census, &Congress, 120.0, &mut rng).unwrap();
        let by_group = census.rows_by_group().unwrap();
        for (g, rows) in s.sampled_rows().iter().enumerate() {
            let mut sorted = rows.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), rows.len(), "duplicates in stratum {g}");
            for &r in rows {
                assert!(by_group[g].contains(&r), "row {r} not in stratum {g}");
            }
        }
    }

    #[test]
    fn scale_factors_reflect_rates() {
        let (rel, census) = setup();
        let mut rng = StdRng::seed_from_u64(3);
        let s = CongressionalSample::draw(&rel, &census, &House, 100.0, &mut rng).unwrap();
        for g in 0..s.stratum_count() {
            let sf = s.scale_factor(g).unwrap();
            let expect = census.sizes()[g] as f64 / s.sampled_rows()[g].len() as f64;
            assert_eq!(sf, expect);
        }
        let input = s.to_stratified_input(&rel).unwrap();
        assert_eq!(input.rows.row_count(), s.total_sampled());
        assert!(input.validate().is_ok());
    }

    #[test]
    fn stratified_input_drops_empty_strata() {
        let (rel, _) = setup();
        let s = CongressionalSample::from_parts(
            rel.schema().column_ids(&["A", "B"]).unwrap(),
            vec![
                GroupKey::new(vec![relation::Value::str("a1"), relation::Value::str("b1")]),
                GroupKey::new(vec![relation::Value::str("a2"), relation::Value::str("b3")]),
            ],
            vec![300, 250],
            vec![vec![0, 1, 2], vec![]],
            "test",
        )
        .unwrap();
        let input = s.to_stratified_input(&rel).unwrap();
        assert_eq!(input.stratum_count(), 1);
        assert_eq!(input.rows.row_count(), 3);
        assert_eq!(s.scale_factor(1), None);
    }

    #[test]
    fn from_parts_validation() {
        assert!(CongressionalSample::from_parts(
            vec![],
            vec![GroupKey::empty()],
            vec![10, 20],
            vec![vec![]],
            "t",
        )
        .is_err());
        // oversampled stratum
        assert!(CongressionalSample::from_parts(
            vec![],
            vec![GroupKey::empty()],
            vec![2],
            vec![vec![0, 1, 2]],
            "t",
        )
        .is_err());
    }

    #[test]
    fn out_of_range_row_detected() {
        let (rel, _) = setup();
        let s = CongressionalSample::from_parts(
            vec![ColumnId(0)],
            vec![GroupKey::new(vec![relation::Value::str("a1")])],
            vec![1000],
            vec![vec![999_999]],
            "t",
        )
        .unwrap();
        assert!(s.to_stratified_input(&rel).is_err());
    }

    #[test]
    fn deterministic_under_seed() {
        let (rel, census) = setup();
        let a = CongressionalSample::draw(
            &rel,
            &census,
            &Congress,
            80.0,
            &mut StdRng::seed_from_u64(5),
        )
        .unwrap();
        let b = CongressionalSample::draw(
            &rel,
            &census,
            &Congress,
            80.0,
            &mut StdRng::seed_from_u64(5),
        )
        .unwrap();
        assert_eq!(a.sampled_rows(), b.sampled_rows());
    }

    #[test]
    fn parallel_draw_identical_across_thread_counts() {
        let (rel, census) = setup();
        let spec = SeedSpec::new(11);
        let mut outputs = Vec::new();
        for threads in [1usize, 2, 8] {
            let pool = rayon::ThreadPoolBuilder::new()
                .num_threads(threads)
                .build()
                .unwrap();
            let s = pool
                .install(|| CongressionalSample::draw_par(&rel, &census, &Congress, 80.0, &spec))
                .unwrap();
            outputs.push(s);
        }
        for s in &outputs[1..] {
            assert_eq!(outputs[0].sampled_rows(), s.sampled_rows());
            assert_eq!(outputs[0].strata_keys(), s.strata_keys());
        }
    }

    #[test]
    fn parallel_bernoulli_identical_across_thread_counts() {
        let (rel, census) = setup();
        let spec = SeedSpec::new(23);
        let mut outputs = Vec::new();
        for threads in [1usize, 4] {
            let pool = rayon::ThreadPoolBuilder::new()
                .num_threads(threads)
                .build()
                .unwrap();
            let s = pool
                .install(|| {
                    CongressionalSample::draw_bernoulli_par(&rel, &census, &Congress, 100.0, &spec)
                })
                .unwrap();
            outputs.push(s);
        }
        assert_eq!(outputs[0].sampled_rows(), outputs[1].sampled_rows());
        // A different root seed must perturb the draw.
        let other = CongressionalSample::draw_bernoulli_par(
            &rel,
            &census,
            &Congress,
            100.0,
            &SeedSpec::new(24),
        )
        .unwrap();
        assert_ne!(outputs[0].sampled_rows(), other.sampled_rows());
    }

    #[test]
    fn parallel_draw_respects_allocation_counts() {
        let (rel, census) = setup();
        let spec = SeedSpec::new(3);
        let alloc = Senate.allocate(&census, 100.0).unwrap();
        let s =
            CongressionalSample::draw_with_allocation_par(&rel, &census, &alloc, "Senate", &spec)
                .unwrap();
        assert_eq!(s.total_sampled(), 100);
        let by_group = census.rows_by_group().unwrap();
        for (g, rows) in s.sampled_rows().iter().enumerate() {
            assert_eq!(rows.len(), 25);
            for &r in rows {
                assert!(by_group[g].contains(&r), "row {r} not in stratum {g}");
            }
        }
    }

    #[test]
    fn sampling_helper_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        let rows: Vec<usize> = (0..10).collect();
        assert!(sample_without_replacement(&rows, 0, &mut rng).is_empty());
        assert_eq!(sample_without_replacement(&rows, 10, &mut rng).len(), 10);
        assert_eq!(sample_without_replacement(&rows, 99, &mut rng).len(), 10);
        let s = sample_without_replacement(&rows, 4, &mut rng);
        assert_eq!(s.len(), 4);
        let mut d = s.clone();
        d.sort_unstable();
        d.dedup();
        assert_eq!(d.len(), 4);
    }
}
