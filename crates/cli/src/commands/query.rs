//! `query`: build a synopsis and answer SQL approximately, with the exact
//! answer and error report alongside.

use std::fmt::Write as _;

use aqua::{Aqua, AquaConfig};
use congress::compare_results;

use crate::args::Args;
use crate::data::{load, rewrite, strategy};
use crate::{err, Result};

/// Run one SQL query through the full middleware pipeline.
pub fn query(args: &Args) -> Result<String> {
    let source = load(args)?;
    let sql = args.one_positional("SQL query")?.to_string();
    let space: usize = args.get_parsed("space", 0usize)?;
    if space == 0 {
        return Err("query requires --space <tuples>".into());
    }
    let config = AquaConfig {
        space,
        strategy: strategy(args)?,
        rewrite: rewrite(args)?,
        confidence: args.get_parsed("confidence", 0.9f64)?,
        seed: args.get_parsed("seed", 0u64)?,
        parallelism: args.get_parsed("parallelism", 0usize)?,
    };
    let table_rows = source.relation.row_count();
    let aqua = Aqua::build(source.relation, source.grouping, config).map_err(err)?;
    let (answer, rewritten) = aqua.answer_sql(&sql).map_err(err)?;

    let mut out = String::new();
    let _ = writeln!(
        out,
        "synopsis: {} of {} rows ({:.2}%), strategy {}, rewrite {}",
        aqua.synopsis_rows(),
        table_rows,
        aqua.synopsis_rows() as f64 / table_rows as f64 * 100.0,
        config.strategy.name(),
        config.rewrite.name()
    );
    let _ = writeln!(out, "\nrewritten for the synopsis:\n{rewritten}");
    let _ = writeln!(out, "\napproximate answer:\n{answer}");

    if !args.has("quiet") {
        let exact = aqua.exact_sql(&sql).map_err(err)?;
        let _ = writeln!(out, "exact answer:\n{exact}");
        let report = compare_results(&exact, &answer.result, 0, 100.0);
        let _ = writeln!(
            out,
            "mean error {:.3}%  worst group {:.3}%  missing groups {}",
            report.l1(),
            report.l_inf(),
            report.missing_groups
        );
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::commands::test_support::args;

    #[test]
    fn query_reports_bounds_and_errors() {
        let out = query(&args(&[
            "query",
            "--demo",
            "--rows",
            "6000",
            "--groups",
            "27",
            "--space",
            "600",
            "SELECT l_returnflag, SUM(l_quantity) AS s FROM lineitem GROUP BY l_returnflag",
        ]))
        .unwrap();
        assert!(out.contains("rewritten for the synopsis"), "{out}");
        assert!(out.contains('±'), "{out}");
        assert!(out.contains("mean error"), "{out}");
    }

    #[test]
    fn query_errors_are_clean() {
        let e = query(&args(&[
            "query", "--demo", "--rows", "1000", "--groups", "8",
        ]))
        .unwrap_err();
        assert!(e.contains("SQL query") || e.contains("--space"), "{e}");
        let e = query(&args(&[
            "query",
            "--demo",
            "--rows",
            "1000",
            "--groups",
            "8",
            "--space",
            "100",
            "SELEKT nope",
        ]))
        .unwrap_err();
        assert!(
            e.to_lowercase().contains("sql") || e.contains("SELECT"),
            "{e}"
        );
    }
}
