//! The paper's four query-rewriting strategies (§5.2) as physical plans.
//!
//! Given a [`StratifiedInput`](crate::StratifiedInput), each strategy materializes a physical
//! *synopsis layout* once (at sample-construction time) and then answers
//! arbitrary [`GroupByQuery`]s against it:
//!
//! | Strategy | Layout | Per-query cost profile |
//! |---|---|---|
//! | [`Integrated`] | SF column stored per tuple (Fig 8) | one multiply per tuple |
//! | [`NestedIntegrated`] | SF column per tuple, nested plan (Fig 11) | one multiply per (group × SF) |
//! | [`Normalized`] | SF in AuxRel, joined on grouping columns (Fig 9) | multi-attribute hash join |
//! | [`KeyNormalized`] | SF in AuxRel, joined on integer GID (Fig 10) | single-int hash join |
//!
//! All four produce the *same* unbiased stratified estimate (§5.1) — an
//! invariant the integration tests assert — and differ only in execution
//! cost and maintenance cost (Integrated layouts duplicate the SF into
//! every tuple, so a group's rate change rewrites many tuples; Normalized
//! layouts confine it to one AuxRel row).

mod integrated;
mod key_normalized;
mod nested_integrated;
mod normalized;

pub use integrated::Integrated;
pub use key_normalized::KeyNormalized;
pub use nested_integrated::NestedIntegrated;
pub use normalized::Normalized;

use std::sync::Arc;

use rayon::prelude::*;
use relation::{Bitmap, ColumnId, Relation};

use crate::aggregate::Accumulator;
use crate::cache::ExecOptions;
use crate::error::Result;
use crate::grouping::{GroupIndex, PAR_MIN_ROWS};
use crate::query::GroupByQuery;
use crate::result::QueryResult;

/// A physical sample layout that can answer group-by queries approximately.
pub trait SamplePlan {
    /// Strategy name as used in the paper's tables.
    fn name(&self) -> &'static str;

    /// Execute `query` against the sample with explicit execution options
    /// (query cache, parallel aggregation). The result is bit-identical
    /// for every option combination; options only change the cost.
    fn execute_opts(&self, query: &GroupByQuery, opts: &ExecOptions) -> Result<QueryResult>;

    /// Execute `query` against the sample, producing scaled estimates.
    /// Equivalent to [`Self::execute_opts`] with default (cold, serial)
    /// options.
    fn execute(&self, query: &GroupByQuery) -> Result<QueryResult> {
        self.execute_opts(query, &ExecOptions::default())
    }

    /// The materialized sample relation (including any SF/GID columns).
    fn sample_relation(&self) -> &Relation;

    /// Total bytes of synopsis storage (sample plus any auxiliary relation).
    fn storage_bytes(&self) -> usize {
        self.sample_relation().approx_bytes()
    }

    /// How many stored cells must be rewritten when stratum `stratum`'s
    /// sampling rate (ScaleFactor) changes — the maintenance-cost side of
    /// the §5.2 trade-off. Integrated layouts duplicate the SF into every
    /// tuple, so the whole stratum is touched; Normalized layouts confine
    /// the change to a single AuxRel row.
    fn rate_change_cost(&self, stratum: u32) -> usize;
}

/// Rows per aggregation chunk. Fixed (rather than derived from the thread
/// count) so that serial and parallel execution produce *bit-identical*
/// accumulators: both compute the same per-chunk partials and merge them in
/// chunk order. A multiple of 64 so chunk boundaries align with bitmap
/// words.
pub(crate) const CHUNK_ROWS: usize = 16 * 1024;

/// The *unfiltered* group index for `cols` over `rel`: from the query cache
/// when one is supplied, freshly built otherwise. The parallel build is
/// used above [`PAR_MIN_ROWS`] rows when `opts.parallel` is set; it yields
/// an identical index at any thread count.
pub(crate) fn grouping_index(
    rel: &Relation,
    cols: &[ColumnId],
    opts: &ExecOptions,
) -> Arc<GroupIndex> {
    match opts.cache {
        Some(cache) => cache.index_for(rel, cols, opts.parallel),
        None => Arc::new(if opts.parallel && rel.row_count() >= PAR_MIN_ROWS {
            GroupIndex::par_build(rel, cols)
        } else {
            GroupIndex::build(rel, cols)
        }),
    }
}

/// Evaluate each aggregate's input expression over the rows selected by
/// `mask` only (satellite of the fast path: unselected rows used to be
/// evaluated and then discarded).
pub(crate) fn masked_exprs(
    rel: &Relation,
    query: &GroupByQuery,
    mask: &Bitmap,
) -> Result<Vec<Option<Vec<f64>>>> {
    Ok(query
        .aggregates
        .iter()
        .map(|a| {
            a.expr
                .as_ref()
                .map(|e| e.eval_masked(rel, mask))
                .transpose()
        })
        .collect::<std::result::Result<_, _>>()?)
}

/// Chunked (optionally parallel) accumulation of the masked rows of `rel`
/// into per-group accumulators.
///
/// Determinism contract: the row range is cut into fixed [`CHUNK_ROWS`]
/// chunks, each chunk folds its selected rows in row order, and partials
/// are merged in chunk order — so the result is bit-identical whether the
/// chunks ran on one thread or sixteen. Inputs of at most one chunk take a
/// direct single pass (which is the same computation, minus the merges).
pub(crate) fn accumulate(
    index: &GroupIndex,
    mask: &Bitmap,
    exprs: &[Option<Vec<f64>>],
    weights: Option<&[f64]>,
    query: &GroupByQuery,
    parallel: bool,
) -> Vec<Vec<Accumulator>> {
    let n = mask.len();
    let chunk_accs = |start: usize, end: usize| -> Vec<Vec<Accumulator>> {
        let mut accs: Vec<Vec<Accumulator>> = (0..index.group_count())
            .map(|_| {
                query
                    .aggregates
                    .iter()
                    .map(|a| Accumulator::new(a.func))
                    .collect()
            })
            .collect();
        for row in mask.ones_range(start, end) {
            let gid = index.group_of(row);
            if gid == u32::MAX {
                continue;
            }
            let w = weights.map_or(1.0, |ws| ws[row]);
            for (ai, acc) in accs[gid as usize].iter_mut().enumerate() {
                let v = exprs[ai].as_ref().map_or(0.0, |vals| vals[row]);
                acc.add(v, w);
            }
        }
        accs
    };

    if n <= CHUNK_ROWS {
        return chunk_accs(0, n);
    }
    let starts: Vec<usize> = (0..n).step_by(CHUNK_ROWS).collect();
    let partials: Vec<Vec<Vec<Accumulator>>> = if parallel && rayon::current_num_threads() > 1 {
        starts
            .par_iter()
            .map(|&s| chunk_accs(s, (s + CHUNK_ROWS).min(n)))
            .collect()
    } else {
        starts
            .iter()
            .map(|&s| chunk_accs(s, (s + CHUNK_ROWS).min(n)))
            .collect()
    };
    let mut iter = partials.into_iter();
    let mut base = iter.next().expect("at least one chunk");
    for partial in iter {
        for (group, partial_group) in base.iter_mut().zip(partial) {
            for (acc, p) in group.iter_mut().zip(partial_group) {
                acc.merge(&p);
            }
        }
    }
    base
}

/// Turn per-group accumulators into a sorted [`QueryResult`], dropping
/// groups with no qualifying rows and applying HAVING.
pub(crate) fn finish_rows(
    index: &GroupIndex,
    accs: Vec<Vec<Accumulator>>,
    query: &GroupByQuery,
) -> Result<QueryResult> {
    let names = query.aggregates.iter().map(|a| a.name.clone()).collect();
    let rows = accs
        .into_iter()
        .enumerate()
        .filter(|(_, a)| a.first().is_some_and(|x| x.rows() > 0))
        .map(|(gid, a)| {
            (
                index.key(gid as u32).clone(),
                a.iter().map(Accumulator::finish).collect(),
            )
        })
        .collect();
    query.apply_having(QueryResult::new(names, rows))
}

/// Shared flat aggregation: evaluate `query` over `rel` where each row
/// carries precomputed weight `weights[row]` (its stratum's ScaleFactor).
///
/// This is the execution core of Integrated, Normalized, and Key-normalized
/// — they differ only in how `weights` is obtained. The group index is the
/// *unfiltered* one (cacheable across predicates); the selection bitmap is
/// applied during accumulation instead.
pub(crate) fn aggregate_weighted_opts(
    rel: &Relation,
    weights: &[f64],
    query: &GroupByQuery,
    opts: &ExecOptions,
) -> Result<QueryResult> {
    query.validate(rel)?;
    debug_assert_eq!(weights.len(), rel.row_count());

    let mask = query.predicate.eval(rel);
    let index = grouping_index(rel, &query.grouping, opts);
    let exprs = masked_exprs(rel, query, &mask)?;
    let accs = accumulate(&index, &mask, &exprs, Some(weights), query, opts.parallel);
    finish_rows(&index, accs, query)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aggregate::AggregateSpec;
    use crate::stratified::test_support::{pred_v_ge, sample};
    use relation::{ColumnId, Expr, GroupKey, Value};

    /// Construct all four plans over the shared fixture.
    fn plans() -> Vec<Box<dyn SamplePlan>> {
        let s = sample();
        vec![
            Box::new(Integrated::build(&s).unwrap()),
            Box::new(NestedIntegrated::build(&s).unwrap()),
            Box::new(Normalized::build(&s).unwrap()),
            Box::new(KeyNormalized::build(&s).unwrap()),
        ]
    }

    fn queries() -> Vec<GroupByQuery> {
        let v = Expr::col(ColumnId(2));
        vec![
            // finest grouping
            GroupByQuery::new(
                vec![ColumnId(0), ColumnId(1)],
                vec![
                    AggregateSpec::sum(v.clone(), "s"),
                    AggregateSpec::count("c"),
                    AggregateSpec::avg(v.clone(), "a"),
                ],
            ),
            // coarser grouping on a alone (strata merge within groups)
            GroupByQuery::new(
                vec![ColumnId(0)],
                vec![
                    AggregateSpec::sum(v.clone(), "s"),
                    AggregateSpec::count("c"),
                ],
            ),
            // no grouping
            GroupByQuery::new(vec![], vec![AggregateSpec::sum(v.clone(), "s")]),
            // with predicate
            GroupByQuery::new(vec![ColumnId(0)], vec![AggregateSpec::sum(v.clone(), "s")])
                .with_predicate(pred_v_ge(3.0)),
            // grouping on the non-stratum column b
            GroupByQuery::new(
                vec![ColumnId(1)],
                vec![AggregateSpec::avg(v, "a"), AggregateSpec::count("c")],
            ),
        ]
    }

    #[test]
    fn all_strategies_agree_exactly() {
        let plans = plans();
        for q in queries() {
            let reference = plans[0].execute(&q).unwrap();
            for p in &plans[1..] {
                let r = p.execute(&q).unwrap();
                assert_eq!(
                    r.aggregate_names,
                    reference.aggregate_names,
                    "{} names",
                    p.name()
                );
                assert_eq!(
                    r.group_count(),
                    reference.group_count(),
                    "{} group count for {:?}",
                    p.name(),
                    q.grouping
                );
                for ((k1, v1), (k2, v2)) in r.rows().iter().zip(reference.rows()) {
                    assert_eq!(k1, k2, "{} keys", p.name());
                    for (x, y) in v1.iter().zip(v2) {
                        assert!(
                            (x - y).abs() < 1e-9 * (1.0 + y.abs()),
                            "{}: {x} vs {y} for key {k1}",
                            p.name()
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn estimates_scale_correctly() {
        // Fixture: ("x",1) has 4 rows sampled 2 @SF=2; ("x",2) 2 rows
        // sampled 1 @SF=2; ("y",1) fully sampled @SF=1.
        let plans = plans();
        let q = GroupByQuery::new(vec![ColumnId(0)], vec![AggregateSpec::count("c")]);
        for p in &plans {
            let r = p.execute(&q).unwrap();
            let x = GroupKey::new(vec![Value::str("x")]);
            let y = GroupKey::new(vec![Value::str("y")]);
            // COUNT(x) = 2·2 + 1·2 = 6 (true count 6); COUNT(y) = 2·1 = 2.
            assert_eq!(r.get(&x), Some(&[6.0][..]), "{}", p.name());
            assert_eq!(r.get(&y), Some(&[2.0][..]), "{}", p.name());
        }
    }

    #[test]
    fn fully_sampled_stratum_is_exact() {
        // ("y",1) is sampled at rate 1, so any query isolating it is exact.
        let plans = plans();
        let q = GroupByQuery::new(
            vec![ColumnId(0), ColumnId(1)],
            vec![
                AggregateSpec::sum(Expr::col(ColumnId(2)), "s"),
                AggregateSpec::avg(Expr::col(ColumnId(2)), "a"),
            ],
        );
        let y1 = GroupKey::new(vec![Value::str("y"), Value::Int(1)]);
        for p in &plans {
            let r = p.execute(&q).unwrap();
            let vals = r.get(&y1).unwrap();
            assert_eq!(vals[0], 300.0, "{}", p.name());
            assert_eq!(vals[1], 150.0, "{}", p.name());
        }
    }

    #[test]
    fn storage_accounting_positive() {
        for p in plans() {
            assert!(p.storage_bytes() > 0, "{}", p.name());
        }
    }

    #[test]
    fn rate_change_cost_tradeoff() {
        // Fixture strata sizes: 2, 1, 2 sampled tuples.
        let s = sample();
        let integrated = Integrated::build(&s).unwrap();
        let nested = NestedIntegrated::build(&s).unwrap();
        let norm = Normalized::build(&s).unwrap();
        let keyn = KeyNormalized::build(&s).unwrap();
        // Integrated layouts rewrite every tuple of the stratum.
        assert_eq!(integrated.rate_change_cost(0), 2);
        assert_eq!(integrated.rate_change_cost(1), 1);
        assert_eq!(nested.rate_change_cost(2), 2);
        // Normalized layouts touch exactly one AuxRel row.
        assert_eq!(norm.rate_change_cost(0), 1);
        assert_eq!(keyn.rate_change_cost(2), 1);
        // Unknown strata cost nothing on the normalized side.
        assert_eq!(norm.rate_change_cost(99), 0);
        assert_eq!(integrated.rate_change_cost(99), 0);
    }

    #[test]
    fn names_are_distinct() {
        let names: Vec<&str> = plans().iter().map(|p| p.name()).collect();
        let mut uniq = names.clone();
        uniq.sort();
        uniq.dedup();
        assert_eq!(uniq.len(), names.len());
    }
}
