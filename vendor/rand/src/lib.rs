//! Offline, dependency-free subset of the `rand` 0.8 API.
//!
//! The build environment for this workspace has no access to crates.io, so
//! the external crates are vendored as API-compatible stubs. This one
//! implements the parts of `rand` the workspace uses: the [`Rng`] /
//! [`RngCore`] / [`SeedableRng`] traits, a deterministic [`rngs::StdRng`]
//! (xoshiro256++ seeded via SplitMix64), uniform ranges for `gen_range`,
//! and the [`seq::SliceRandom`] shuffling helpers.
//!
//! Determinism note: `StdRng::seed_from_u64(s)` is a pure function of `s`
//! and the platform-independent integer arithmetic below, so seeded streams
//! are bit-for-bit reproducible across machines — a property the
//! congressional-sample determinism tests rely on.

pub mod distributions;
pub mod rngs;
pub mod seq;

/// Low-level source of random 32/64-bit words.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let w = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&w[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// User-facing random value generation.
pub trait Rng: RngCore {
    /// Sample a value of type `T` from the standard distribution.
    fn gen<T>(&mut self) -> T
    where
        distributions::Standard: distributions::Distribution<T>,
    {
        use distributions::Distribution as _;
        distributions::Standard.sample(self)
    }

    /// Sample uniformly from a range (`a..b` or `a..=b`).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: distributions::uniform::SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Bernoulli trial with success probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        debug_assert!((0.0..=1.0).contains(&p));
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Construction of RNGs from seeds.
pub trait SeedableRng: Sized {
    /// Raw seed type.
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Build from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Build from a `u64`, expanding it with SplitMix64 — the same
    /// convention `rand` uses, giving well-mixed state even for tiny seeds.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            // SplitMix64 step.
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn seeded_streams_are_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: i64 = rng.gen_range(-5..17);
            assert!((-5..17).contains(&x));
            let y: usize = rng.gen_range(3..=9);
            assert!((3..=9).contains(&y));
            let f: f64 = rng.gen_range(0.25..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn gen_range_covers_domain() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut seen = [false; 10];
        for _ in 0..1_000 {
            seen[rng.gen_range(0usize..10)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn unit_floats_in_range_and_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(13);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn partial_shuffle_selects_distinct_prefix() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut v: Vec<usize> = (0..100).collect();
        let (chosen, rest) = v.partial_shuffle(&mut rng, 10);
        assert_eq!(chosen.len(), 10);
        assert_eq!(rest.len(), 90);
        let mut c = chosen.to_vec();
        c.sort_unstable();
        c.dedup();
        assert_eq!(c.len(), 10);
    }
}
