//! Roll-up / drill-down (§1.2, §4.6): ONE congressional sample serves an
//! analyst walking the whole grouping lattice — the workload group-by
//! queries are "an essential part of the common drill-down and roll-up
//! processes".
//!
//! The analyst starts from the grand total, drills into returnflag, then
//! returnflag × linestatus, then the finest grouping, and rolls back up.
//! Each level reports its error against the exact answer, for a Congress
//! sample vs a House sample of the same size.
//!
//! Run: `cargo run --release --example rollup_drilldown`

use aqua::{Aqua, AquaConfig, SamplingStrategy};
use congress::compare_results;
use engine::{AggregateSpec, GroupByQuery};
use relation::{ColumnId, Expr};
use tpcd::{GeneratorConfig, TpcdDataset};

fn main() {
    let ds = TpcdDataset::generate(GeneratorConfig {
        table_size: 300_000,
        num_groups: 216, // 6 distinct values per grouping column
        group_skew: 1.2,
        agg_skew: 0.86,
        seed: 99,
    });
    let grouping = ds.grouping_columns();
    let quantity = ds.ids.l_quantity;

    // The drill-down path through the lattice.
    let path: Vec<(&str, Vec<ColumnId>)> = vec![
        ("∅ (grand total)", vec![]),
        ("{returnflag}", vec![ds.ids.l_returnflag]),
        (
            "{returnflag, linestatus}",
            vec![ds.ids.l_returnflag, ds.ids.l_linestatus],
        ),
        ("{returnflag, linestatus, shipdate}", grouping.clone()),
    ];

    println!(
        "lineitem: {} rows, {} finest groups, skew z=1.2; synopsis budget 3%\n",
        ds.relation.row_count(),
        216
    );
    println!(
        "{:38} | {:>14} | {:>14}",
        "grouping (drill-down ↓, roll-up ↑)", "House err %", "Congress err %"
    );

    let systems: Vec<(SamplingStrategy, Aqua)> =
        [SamplingStrategy::House, SamplingStrategy::Congress]
            .into_iter()
            .map(|strategy| {
                let aqua = Aqua::build(
                    ds.relation.clone(),
                    grouping.clone(),
                    AquaConfig {
                        space: 9_000,
                        strategy,
                        seed: 3,
                        ..AquaConfig::default()
                    },
                )
                .expect("aqua builds");
                (strategy, aqua)
            })
            .collect();

    for (label, cols) in &path {
        let q = GroupByQuery::new(
            cols.clone(),
            vec![AggregateSpec::sum(Expr::col(quantity), "sum_qty")],
        );
        let mut errs = Vec::new();
        for (_, aqua) in &systems {
            let exact = aqua.exact(&q).unwrap();
            let approx = aqua.answer(&q).unwrap();
            let report = compare_results(&exact, &approx.result, 0, 100.0);
            errs.push(report.l1());
        }
        println!("{label:38} | {:14.3} | {:14.3}", errs[0], errs[1]);
    }

    println!(
        "\nHouse is fine at the top of the lattice but degrades toward the finest\n\
         grouping; Congress stays accurate at every level — the Figure 14–16\n\
         story compressed into one drill-down session."
    );
}
