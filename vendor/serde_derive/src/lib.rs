//! No-op `Serialize` / `Deserialize` derives.
//!
//! The workspace annotates types with serde derives for forward
//! compatibility, but nothing actually serializes through serde (binary
//! persistence goes through `congress::snapshot`). With no registry
//! access, the real `serde_derive` cannot be fetched, so these derives
//! expand to nothing while still accepting `#[serde(...)]` attributes.

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
